/**
 * @file
 * Reproduces Figure 5, "Standout Predictor Results": for every
 * workload, the latency/bandwidth point of each predictor policy
 * (8192 entries, 1024 B macroblock indexing) inside multicast
 * snooping, against the broadcast-snooping and directory anchors.
 *
 * x-axis: request messages per miss (requests + forwards + retries)
 * y-axis: percent of misses requiring indirection
 *
 * Paper shape (16 processors):
 *  - Owner: indirections below ~25% with <25% more request traffic
 *    than the directory protocol (5 of 6 workloads);
 *  - Broadcast-If-Shared: indirections under ~6% everywhere, traffic
 *    well below snooping for the low-sharing workloads;
 *  - Group: at most half of snooping's traffic with <15% indirections;
 *  - Owner/Group: between Owner and Group; best on Ocean.
 */

#include <iostream>

#include "analysis/predictor_eval.hh"
#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace dsp;
    bench::Options opt = bench::parseOptions(argc, argv);

    stats::Table table({"workload", "config", "reqMsgs/miss",
                        "indirections", "traffic(B/miss)",
                        "retries/miss", "predSetSize"});

    PredictorEvaluator evaluator(opt.nodes);

    for (const std::string &name : opt.workloads) {
        const Trace &trace = bench::getOrCollectTrace(opt, name);

        auto addRow = [&](const std::string &label,
                          const EvalResult &r) {
            table.addRow({
                name,
                label,
                stats::Table::fixed(r.requestMessagesPerMiss, 2),
                stats::Table::percent(r.indirectionPct, 1),
                stats::Table::fixed(r.trafficBytesPerMiss, 1),
                stats::Table::fixed(r.retriesPerMiss, 3),
                stats::Table::fixed(r.predictedSetSize, 2),
            });
        };

        BroadcastSnoopingModel snooping(opt.nodes);
        DirectoryModel directory(opt.nodes);
        addRow("snooping",
               evaluator.evaluateBaseline(trace, snooping));
        addRow("directory",
               evaluator.evaluateBaseline(trace, directory));

        PredictorConfig config;
        config.numNodes = opt.nodes;
        config.entries = 8192;
        config.indexing = IndexingMode::Macroblock1024;
        for (PredictorPolicy policy : proposedPolicies())
            addRow(toString(policy),
                   evaluator.evaluatePredictor(trace, policy, config));
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout,
                    "Figure 5: predictor policies (8192 entries, "
                    "1024B macroblock indexing) in multicast snooping");
    return 0;
}
