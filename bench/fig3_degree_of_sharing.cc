/**
 * @file
 * Reproduces Figure 3, "Number of blocks touched by various numbers of
 * processors": (a) histogram over unique 64 B blocks; (b) the same
 * histogram weighted by the number of misses to each block.
 *
 * Paper shape: most blocks are touched by one processor, but the
 * misses concentrate on widely-touched blocks -- except Ocean, whose
 * column-blocked structure keeps most misses on blocks touched by four
 * or fewer processors.
 */

#include <iostream>

#include "analysis/characterization.hh"
#include "bench_common.hh"
#include "stats/table.hh"

namespace {

/** Bucket 1..16 into the display bins used below. */
std::vector<double>
binned(const dsp::stats::Histogram &hist)
{
    // bins: 1, 2, 3-4, 5-8, 9-12, 13-16
    std::vector<double> out(6, 0.0);
    for (std::size_t n = 1; n < hist.bins(); ++n) {
        std::size_t bin;
        if (n == 1)
            bin = 0;
        else if (n == 2)
            bin = 1;
        else if (n <= 4)
            bin = 2;
        else if (n <= 8)
            bin = 3;
        else if (n <= 12)
            bin = 4;
        else
            bin = 5;
        out[bin] += hist.percent(n);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dsp;
    bench::Options opt = bench::parseOptions(argc, argv);

    stats::Table table({"workload", "weighting", "1", "2", "3-4", "5-8",
                        "9-12", "13-16"});

    for (const std::string &name : opt.workloads) {
        const Trace &trace = bench::getOrCollectTrace(opt, name);
        WorkloadCharacterization chars(opt.nodes);
        chars.beginMeasurement(trace.warmupInstructions);
        chars.absorbTrace(trace);

        auto addRow = [&](const char *kind,
                          const stats::Histogram &hist) {
            std::vector<double> bins = binned(hist);
            std::vector<std::string> row = {name, kind};
            for (double v : bins)
                row.push_back(stats::Table::percent(v, 1));
            table.addRow(row);
        };
        addRow("blocks", chars.blocksTouchedBy());
        addRow("misses", chars.missesToBlocksTouchedBy());
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout,
                    "Figure 3: blocks touched by n processors -- "
                    "(a) per-block and (b) miss-weighted (percent)");
    return 0;
}
