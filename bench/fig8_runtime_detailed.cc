/**
 * @file
 * Reproduces Figure 8, "Detailed Processor Model Runtime Performance
 * Results": like Figure 7 but with the dynamically-scheduled
 * (ROB-window) processor model, for the three workloads the paper
 * could afford to run under its detailed model: Apache, OLTP, and
 * SPECjbb. The paper notes normalized results are similar to the
 * simple model's even though absolute runtimes differ.
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/table.hh"
#include "system/system.hh"

namespace {

struct Config {
    std::string label;
    dsp::ProtocolKind protocol;
    dsp::PredictorPolicy policy;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace dsp;
    bench::Options opt = bench::parseOptions(argc, argv);

    // The paper simulates an order of magnitude fewer transactions
    // under the detailed model; mirror that by default.
    std::vector<std::string> workloads = opt.workloads;
    if (workloads.size() == workloadNames().size())
        workloads = {"apache", "oltp", "specjbb"};

    const std::vector<Config> configs = {
        {"snooping", ProtocolKind::Snooping, PredictorPolicy::Owner},
        {"directory", ProtocolKind::Directory, PredictorPolicy::Owner},
        {"owner", ProtocolKind::Multicast, PredictorPolicy::Owner},
        {"bcast-if-shared", ProtocolKind::Multicast,
         PredictorPolicy::BroadcastIfShared},
        {"group", ProtocolKind::Multicast, PredictorPolicy::Group},
        {"owner-group", ProtocolKind::Multicast,
         PredictorPolicy::OwnerGroup},
    };

    stats::Table table({"workload", "config", "runtime(ms)",
                        "normRuntime", "traffic(B/miss)", "normTraffic",
                        "missLat(ns)", "misses"});

    for (const std::string &name : workloads) {
        std::vector<SystemStats> results;
        for (const Config &config : configs) {
            auto workload =
                makeWorkload(name, opt.nodes, opt.seed, opt.scale);
            SystemParams params;
            params.nodes = opt.nodes;
            params.protocol = config.protocol;
            params.policy = config.policy;
            params.predictor.entries = 8192;
            params.predictor.indexing = IndexingMode::Macroblock1024;
            params.cpuModel = CpuModel::Detailed;
            params.crossbar.topology.hubs = opt.hubs;
            params.crossbar.topology.cluster_size = opt.cluster;
            params.crossbar.topology.switch_link_ns = opt.switchNs;
            params.functionalWarmupMisses = opt.warmupMisses;
            params.warmupInstrPerCpu = opt.cpuWarmupInstr / 2;
            params.measureInstrPerCpu = opt.cpuMeasureInstr / 2;

            System system(*workload, params);
            results.push_back(system.run());
        }

        const SystemStats &snoop = results[0];
        const SystemStats &dir = results[1];
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const SystemStats &r = results[i];
            double norm_runtime =
                dir.runtimeTicks
                    ? 100.0 * static_cast<double>(r.runtimeTicks) /
                          static_cast<double>(dir.runtimeTicks)
                    : 0.0;
            double norm_traffic =
                snoop.trafficPerMiss() > 0.0
                    ? 100.0 * r.trafficPerMiss() /
                          snoop.trafficPerMiss()
                    : 0.0;
            table.addRow({
                name,
                configs[i].label,
                stats::Table::fixed(r.runtimeMs(), 3),
                stats::Table::fixed(norm_runtime, 1),
                stats::Table::fixed(r.trafficPerMiss(), 1),
                stats::Table::fixed(norm_traffic, 1),
                stats::Table::fixed(r.avgMissLatencyNs, 1),
                stats::Table::num(r.misses),
            });
        }
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout,
                    "Figure 8: detailed-CPU runtime vs traffic "
                    "(normRuntime: directory=100; normTraffic: "
                    "snooping=100)");
    return 0;
}
