/**
 * @file
 * google-benchmark microbenchmarks of the predictor implementations:
 * lookup/train throughput and table behaviour. These support the
 * paper's implementability argument (Section 3.1: the predictor is
 * accessed in parallel with the L2 tag array, so its access path must
 * be short) and quantify the host-side cost of each policy in the
 * simulator.
 */

#include <benchmark/benchmark.h>

#include "core/factory.hh"
#include "sim/rng.hh"

namespace {

using namespace dsp;

PredictorConfig
configFor(std::size_t entries, IndexingMode mode)
{
    PredictorConfig config;
    config.numNodes = 16;
    config.entries = entries;
    config.indexing = mode;
    return config;
}

void
runPredictBench(benchmark::State &state, PredictorPolicy policy)
{
    auto entries = static_cast<std::size_t>(state.range(0));
    auto predictor = makePredictor(
        policy, configFor(entries, IndexingMode::Macroblock1024));
    Rng rng(42);

    // Pre-train over a hot region so lookups mostly hit.
    for (int i = 0; i < 100000; ++i) {
        Addr addr = rng.uniformInt(1 << 24);
        predictor->trainExternalRequest(
            addr, 0x1000, RequestType::GetExclusive,
            static_cast<NodeId>(rng.uniformInt(16)));
    }

    std::uint64_t mask = 0;
    for (auto _ : state) {
        Addr addr = rng.uniformInt(1 << 24);
        DestinationSet set = predictor->predict(
            addr, 0x1000, RequestType::GetExclusive, 3, 7);
        mask ^= set.mask();
    }
    benchmark::DoNotOptimize(mask);
    state.SetItemsProcessed(state.iterations());
}

void
runTrainBench(benchmark::State &state, PredictorPolicy policy)
{
    auto entries = static_cast<std::size_t>(state.range(0));
    auto predictor = makePredictor(
        policy, configFor(entries, IndexingMode::Macroblock1024));
    Rng rng(42);

    for (auto _ : state) {
        Addr addr = rng.uniformInt(1 << 24);
        predictor->trainResponse(
            addr, 0x1000, static_cast<NodeId>(rng.uniformInt(16)),
            true);
    }
    state.SetItemsProcessed(state.iterations());
}

void
predictOwner(benchmark::State &s)
{
    runPredictBench(s, PredictorPolicy::Owner);
}
void
predictBcastIfShared(benchmark::State &s)
{
    runPredictBench(s, PredictorPolicy::BroadcastIfShared);
}
void
predictGroup(benchmark::State &s)
{
    runPredictBench(s, PredictorPolicy::Group);
}
void
predictOwnerGroup(benchmark::State &s)
{
    runPredictBench(s, PredictorPolicy::OwnerGroup);
}
void
predictStickySpatial(benchmark::State &s)
{
    runPredictBench(s, PredictorPolicy::StickySpatial);
}
void
trainOwner(benchmark::State &s)
{
    runTrainBench(s, PredictorPolicy::Owner);
}
void
trainGroup(benchmark::State &s)
{
    runTrainBench(s, PredictorPolicy::Group);
}

} // namespace

BENCHMARK(predictOwner)->Arg(8192)->Arg(0);
BENCHMARK(predictBcastIfShared)->Arg(8192)->Arg(0);
BENCHMARK(predictGroup)->Arg(8192)->Arg(0);
BENCHMARK(predictOwnerGroup)->Arg(8192)->Arg(0);
BENCHMARK(predictStickySpatial)->Arg(8192)->Arg(0);
BENCHMARK(trainOwner)->Arg(8192)->Arg(0);
BENCHMARK(trainGroup)->Arg(8192)->Arg(0);

BENCHMARK_MAIN();
