/**
 * @file
 * Simulation-farm sweep driver: the production surface that turns the
 * fast, bit-deterministic simulator into a crash-tolerant fleet.
 *
 *   bench_sweep --config farm.conf [--journal run.jsonl]
 *
 * The config (sesc simu.conf-style key=value, see docs/sweep.md)
 * expands into a (workload x protocol x policy x nodes x seed x ...)
 * job matrix; a supervised fork pool runs it with per-job watchdog
 * timeouts, bounded retries with exponential backoff, and graceful
 * degradation; one checksummed JSON-lines row per job streams to the
 * journal. Re-running the same invocation resumes from the journal,
 * and the aggregate table is byte-identical between a fresh and a
 * crash+resumed sweep.
 *
 * Flags:
 *   --config FILE    sweep config (required)
 *   --journal FILE   journal path (default: <config>.jsonl)
 *   --table FILE     aggregate table path (default: <journal>.table)
 *   --jobs N         worker pool size (default 4)
 *   --timeout SEC    per-attempt watchdog (default 300)
 *   --retries N      attempts per job (default 3)
 *   --backoff SEC    retry backoff base (default 0.05)
 *   --fresh          discard an existing journal instead of resuming
 *   --no-fsync       skip per-row fsync (CI speed)
 *   --print-matrix   list the expanded jobs and exit
 *
 * SWEEP_FAULT_INJECT=crash=P,hang=P,garbage=P,seed=N injects
 * deterministic worker faults (testing; see docs/sweep.md).
 *
 * Exit codes: 0 = matrix complete; 2 = complete with failed rows;
 * 75 = interrupted (SIGINT/SIGTERM; journal flushed, resumable);
 * 1 = usage/config error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "checkpoint/checkpoint.hh"
#include "sim/interrupt.hh"
#include "sim/logging.hh"
#include "sweep/config.hh"
#include "sweep/journal.hh"
#include "sweep/matrix.hh"
#include "sweep/sim_job.hh"
#include "sweep/supervisor.hh"

namespace {

using namespace dsp;
using namespace dsp::sweep;

struct DriverOptions {
    std::string config;
    std::string journal;
    std::string table;
    SupervisorOptions pool;
    bool fresh = false;
    bool printMatrix = false;
};

DriverOptions
parseArgs(int argc, char **argv)
{
    DriverOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                dsp_fatal("missing value for option '%s'", arg.c_str());
            return argv[++i];
        };
        if (arg == "--config") {
            opt.config = next();
        } else if (arg == "--journal") {
            opt.journal = next();
        } else if (arg == "--table") {
            opt.table = next();
        } else if (arg == "--jobs") {
            opt.pool.concurrency =
                std::max(1, std::atoi(next()));
        } else if (arg == "--timeout") {
            opt.pool.timeoutSeconds = std::atof(next());
        } else if (arg == "--retries") {
            opt.pool.maxAttempts =
                std::max(1, std::atoi(next()));
        } else if (arg == "--backoff") {
            opt.pool.backoffSeconds = std::atof(next());
        } else if (arg == "--fresh") {
            opt.fresh = true;
        } else if (arg == "--no-fsync") {
            opt.pool.fsyncRows = false;
        } else if (arg == "--print-matrix") {
            opt.printMatrix = true;
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr,
                         "options: --config FILE --journal FILE "
                         "--table FILE --jobs N --timeout SEC "
                         "--retries N --backoff SEC --fresh "
                         "--no-fsync --print-matrix\n");
            std::exit(0);
        } else {
            dsp_fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (opt.config.empty())
        dsp_fatal("--config is required (see docs/sweep.md)");
    if (opt.journal.empty())
        opt.journal = opt.config + ".jsonl";
    if (opt.table.empty())
        opt.table = opt.journal + ".table";
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    DriverOptions opt = parseArgs(argc, argv);
    installInterruptHandlers();

    SweepConfig config = SweepConfig::fromFile(opt.config);
    std::vector<JobSpec> jobs = expandMatrix(config);
    if (jobs.empty())
        dsp_fatal("config '%s' expands to an empty matrix",
                  opt.config.c_str());

    if (opt.printMatrix) {
        for (const JobSpec &job : jobs)
            std::printf("%s\n", job.id().c_str());
        std::printf("%zu job(s)\n", jobs.size());
        return 0;
    }

    if (opt.fresh)
        std::remove(opt.journal.c_str());

    FaultPlan faults = FaultPlan::fromEnv();
    if (faults.enabled()) {
        dsp_warn("fault injection active: crash=%.2f hang=%.2f "
                 "garbage=%.2f seed=%llu",
                 faults.crash, faults.hang, faults.garbage,
                 static_cast<unsigned long long>(faults.seed));
    }

    Supervisor supervisor(opt.journal, opt.pool);
    SweepSummary summary =
        supervisor.run(jobs, runSimJob, faults);

    std::printf("sweep: %zu job(s): %zu skipped (resumed), %zu "
                "completed, %zu failed; %zu launch(es), %zu "
                "retry(ies), %zu timeout(s), pool %u -> %u\n",
                summary.jobs, summary.skipped, summary.completed,
                summary.failed, summary.launched, summary.retries,
                summary.timeouts, opt.pool.concurrency,
                summary.finalConcurrency);
    if (summary.violations > 0) {
        std::printf("sweep: %zu coherence violation(s) -- each "
                    "journaled without retries; repro bundles are on "
                    "stderr (DSP-REPRO lines)\n",
                    summary.violations);
    }

    // The aggregate table is rebuilt from the journal every run --
    // fresh and resumed sweeps of one config produce identical bytes.
    // Written atomically (temp + fsync + rename) so an interrupt or
    // crash mid-write can never leave a torn table under the name a
    // byte-comparison (or a dashboard) reads.
    JournalRecovery recovery;
    std::vector<JournalRow> rows = readJournal(opt.journal, recovery);
    std::string table = aggregateTable(rows);
    if (ckpt::atomicWriteFile(opt.table, table)) {
        std::printf("wrote %s (%zu row(s))\n", opt.table.c_str(),
                    recovery.rows);
    } else {
        dsp_warn("cannot write table '%s'", opt.table.c_str());
    }
    std::fputs(table.c_str(), stdout);

    if (summary.interrupted) {
        std::printf("sweep interrupted: journal flushed; re-run the "
                    "same command to resume\n");
        return interruptExitCode;
    }
    return summary.failed > 0 ? 2 : 0;
}
