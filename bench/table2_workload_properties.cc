/**
 * @file
 * Reproduces Table 2, "Workload Properties": footprint at 64 B and
 * 1024 B granularity, static instructions causing L2 misses, total L2
 * misses, misses per 1000 instructions, and the percentage of misses
 * that would indirect through a directory.
 *
 * Paper values (16p, 4 MB L2, full-size workloads) for comparison:
 *   workload    touched64 touched1K staticPCs misses  /1kInstr  indir
 *   apache        46 MB     71 MB    18,745    22 M     5.9      89%
 *   barnes        11 MB     13 MB     7,912     3 M     0.4      96%
 *   ocean         52 MB     61 MB    11,384     5 M     0.5      58%
 *   oltp          57 MB    125 MB    21,921    18 M     7.0      73%
 *   slashcode    181 MB    316 MB    42,770    13 M     1.0      35%
 *   specjbb      341 MB    558 MB    24,023    21 M     3.3      41%
 *
 * Footprints accumulate with run length; our runs are ~50x shorter
 * than the paper's (tens of millions of misses), so the absolute
 * touched-memory numbers are smaller while rates and percentages are
 * directly comparable.
 */

#include <iostream>

#include "analysis/characterization.hh"
#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace dsp;
    bench::Options opt = bench::parseOptions(argc, argv);

    stats::Table table({"workload", "touched64B(MB)", "touched1KB(MB)",
                        "staticMissPCs", "misses", "missesPer1k",
                        "dirIndirections"});

    for (const std::string &name : opt.workloads) {
        const Trace &trace = bench::getOrCollectTrace(opt, name);
        WorkloadCharacterization chars(opt.nodes);
        chars.beginMeasurement(trace.warmupInstructions);
        chars.absorbTrace(trace);

        auto row = chars.table2(trace.totalInstructions);
        table.addRow({
            name,
            stats::Table::fixed(
                static_cast<double>(row.touched64Bytes) / (1 << 20), 1),
            stats::Table::fixed(
                static_cast<double>(row.touched1024Bytes) / (1 << 20),
                1),
            stats::Table::num(row.staticMissPcs),
            stats::Table::num(row.totalMisses),
            stats::Table::fixed(row.missesPer1kInstr, 2),
            stats::Table::percent(row.directoryIndirectionPct, 1),
        });
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout,
                    "Table 2: Workload Properties (scale=" +
                        stats::Table::fixed(opt.scale, 2) + ")");
    return 0;
}
