/**
 * @file
 * Shared command-line handling for the table/figure reproduction
 * benches. Every bench accepts:
 *   --scale F     workload footprint scale (default 1.0)
 *   --warmup N    warmup misses before measuring (default 150k)
 *   --measure N   measured misses (default 400k)
 *   --seed S      RNG seed (default 1)
 *   --workload W  restrict to one workload (default: all six)
 *   --nodes N     processors (default 16)
 *   --hubs N      address-interleaved ordering hubs (default 1)
 *   --cluster N   nodes per cluster, 0 = flat machine (default 0)
 *   --switch-ns F switch<->global interconnect leg in ns (default 0)
 *   --csv         emit CSV instead of aligned tables
 */

#ifndef DSP_BENCH_BENCH_COMMON_HH
#define DSP_BENCH_BENCH_COMMON_HH

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/trace_collector.hh"
#include "sim/flat_map.hh"
#include "sim/logging.hh"
#include "sim/types.hh"
#include "trace/trace.hh"
#include "workload/presets.hh"

namespace dsp {
namespace bench {

struct Options {
    double scale = 1.0;
    std::uint64_t warmupMisses = 600000;
    std::uint64_t measureMisses = 200000;
    std::uint64_t seed = 1;
    NodeId nodes = 16;
    unsigned hubs = 1;
    unsigned cluster = 0;
    double switchNs = 0.0;
    bool csv = false;
    std::vector<std::string> workloads;  ///< empty = all six

    // Execution-driven (Figures 7/8) knobs. Cache/predictor warmup
    // is functional (trace-style, --warmup misses); the timing warmup
    // only needs to settle in-flight state.
    std::uint64_t cpuWarmupInstr = 100000;
    std::uint64_t cpuMeasureInstr = 1000000;
    unsigned runs = 1;  ///< perturbed runs averaged per data point
};

inline Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                dsp_fatal("missing value for option '%s'", arg.c_str());
            return argv[++i];
        };
        if (arg == "--scale") {
            opt.scale = std::atof(next());
        } else if (arg == "--warmup") {
            opt.warmupMisses = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--measure") {
            opt.measureMisses = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--nodes") {
            opt.nodes = static_cast<NodeId>(std::atoi(next()));
        } else if (arg == "--hubs") {
            opt.hubs = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--cluster") {
            opt.cluster = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--switch-ns") {
            opt.switchNs = std::atof(next());
        } else if (arg == "--workload") {
            opt.workloads.push_back(next());
        } else if (arg == "--cpu-warmup") {
            opt.cpuWarmupInstr = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--cpu-measure") {
            opt.cpuMeasureInstr = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--runs") {
            opt.runs = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr,
                         "options: --scale F --warmup N --measure N "
                         "--seed S --nodes N --hubs N --cluster N "
                         "--switch-ns F --workload W --csv\n");
            std::exit(0);
        } else {
            dsp_fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (opt.workloads.empty())
        opt.workloads = workloadNames();
    return opt;
}

/** FNV-1a hash of a C string: the in-process trace-cache key. */
inline std::uint64_t
traceCacheKey(const char *s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (; *s != '\0'; ++s) {
        h ^= static_cast<unsigned char>(*s);
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Load a cached annotated trace for (workload, options) or collect and
 * cache one. Two cache levels, both keyed by every parameter that
 * affects trace contents: a FlatMap memo inside the process (so a
 * bench that revisits a configuration never re-reads, let alone
 * re-collects, and no caller copies the record vector) and ./traces/
 * on disk shared across bench binaries.
 *
 * The returned reference points at the memo-owned trace; it stays
 * valid across further getOrCollectTrace calls (entries are held by
 * pointer, so map growth never moves a Trace).
 */
inline const Trace &
getOrCollectTrace(const Options &opt, const std::string &name)
{
    char file[512];
    std::snprintf(file, sizeof(file),
                  "traces/%s_n%u_s%llu_sc%.3f_w%llu_m%llu.dsptrace",
                  name.c_str(), opt.nodes,
                  static_cast<unsigned long long>(opt.seed), opt.scale,
                  static_cast<unsigned long long>(opt.warmupMisses),
                  static_cast<unsigned long long>(opt.measureMisses));

    // The file name encodes the full parameter tuple, so its hash is
    // the memo key. (Cold table; FlatMap to finish the repo-wide
    // flat-map adoption rather than for speed.)
    static FlatMap<std::uint64_t, std::unique_ptr<Trace>> memo;
    const std::uint64_t key = traceCacheKey(file);
    if (auto it = memo.find(key); it != memo.end() &&
                                  it->second->workloadName == name) {
        return *it->second;
    }

    if (std::FILE *f = std::fopen(file, "rb")) {
        std::fclose(f);
        auto trace = std::make_unique<Trace>(readTrace(file));
        if (trace->workloadName == name &&
            trace->numNodes == opt.nodes &&
            trace->warmupRecords == opt.warmupMisses &&
            trace->size() == opt.warmupMisses + opt.measureMisses) {
            return *memo.emplace(key, std::move(trace))
                        .first->second;
        }
        dsp_warn("stale trace cache '%s'; recollecting", file);
    }

    auto workload = makeWorkload(name, opt.nodes, opt.seed, opt.scale);
    TraceCollector collector(*workload);
    auto trace = std::make_unique<Trace>(
        collector.collect(opt.warmupMisses, opt.measureMisses));

    mkdir("traces", 0755);
    if (!writeTrace(*trace, file))
        dsp_warn("could not cache trace to '%s'", file);
    return *memo.emplace(key, std::move(trace)).first->second;
}

} // namespace bench
} // namespace dsp

#endif // DSP_BENCH_BENCH_COMMON_HH
