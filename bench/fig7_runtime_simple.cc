/**
 * @file
 * Reproduces Figure 7, "Simple Processor Model Runtime Performance
 * Results": execution-driven runs of all six workloads under
 * broadcast snooping, the directory protocol, and multicast snooping
 * with each predictor policy.
 *
 * Axes match the paper: runtime normalized to the directory protocol
 * (x100) and interconnect traffic per miss normalized to broadcast
 * snooping (x100).
 *
 * Paper shape: snooping uses ~2x the directory's traffic but runs up
 * to ~2x faster on the high-miss-rate workloads (OLTP, Apache); the
 * predictors capture most of snooping's runtime advantage at a
 * fraction of its bandwidth (e.g., ~90% of snooping's performance at
 * ~15% more bandwidth than the directory).
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/table.hh"
#include "system/system.hh"

namespace {

struct Config {
    std::string label;
    dsp::ProtocolKind protocol;
    dsp::PredictorPolicy policy;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace dsp;
    bench::Options opt = bench::parseOptions(argc, argv);

    const std::vector<Config> configs = {
        {"snooping", ProtocolKind::Snooping, PredictorPolicy::Owner},
        {"directory", ProtocolKind::Directory, PredictorPolicy::Owner},
        {"owner", ProtocolKind::Multicast, PredictorPolicy::Owner},
        {"bcast-if-shared", ProtocolKind::Multicast,
         PredictorPolicy::BroadcastIfShared},
        {"group", ProtocolKind::Multicast, PredictorPolicy::Group},
        {"owner-group", ProtocolKind::Multicast,
         PredictorPolicy::OwnerGroup},
    };

    stats::Table table({"workload", "config", "runtime(ms)",
                        "normRuntime", "traffic(B/miss)", "normTraffic",
                        "missLat(ns)", "indirections", "misses"});

    for (const std::string &name : opt.workloads) {
        std::vector<SystemStats> results;
        for (const Config &config : configs) {
            SystemStats sum{};
            double runtime_ms = 0.0;
            double traffic_per_miss = 0.0;
            for (unsigned run = 0; run < opt.runs; ++run) {
                // Each run uses a perturbed seed but the same seed
                // across configs, so protocols see identical streams.
                auto workload = makeWorkload(name, opt.nodes,
                                             opt.seed + run, opt.scale);
                SystemParams params;
                params.nodes = opt.nodes;
                params.protocol = config.protocol;
                params.policy = config.policy;
                params.predictor.entries = 8192;
                params.predictor.indexing =
                    IndexingMode::Macroblock1024;
                params.cpuModel = CpuModel::Simple;
                params.crossbar.topology.hubs = opt.hubs;
                params.crossbar.topology.cluster_size = opt.cluster;
                params.crossbar.topology.switch_link_ns = opt.switchNs;
                params.functionalWarmupMisses = opt.warmupMisses;
                params.warmupInstrPerCpu = opt.cpuWarmupInstr;
                params.measureInstrPerCpu = opt.cpuMeasureInstr;

                System system(*workload, params);
                SystemStats stats = system.run();
                runtime_ms += stats.runtimeMs();
                traffic_per_miss += stats.trafficPerMiss();
                sum.runtimeTicks += stats.runtimeTicks;
                sum.misses += stats.misses;
                sum.indirections += stats.indirections;
                sum.trafficBytes += stats.trafficBytes;
                sum.avgMissLatencyNs += stats.avgMissLatencyNs;
            }
            sum.avgMissLatencyNs /= opt.runs;
            SystemStats avg = sum;
            results.push_back(avg);
            (void)runtime_ms;
            (void)traffic_per_miss;
        }

        const SystemStats &snoop = results[0];
        const SystemStats &dir = results[1];
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const SystemStats &r = results[i];
            double norm_runtime =
                dir.runtimeTicks
                    ? 100.0 * static_cast<double>(r.runtimeTicks) /
                          static_cast<double>(dir.runtimeTicks)
                    : 0.0;
            double norm_traffic =
                snoop.trafficPerMiss() > 0.0
                    ? 100.0 * r.trafficPerMiss() /
                          snoop.trafficPerMiss()
                    : 0.0;
            double indir_pct =
                r.misses ? 100.0 *
                               static_cast<double>(r.indirections) /
                               static_cast<double>(r.misses)
                         : 0.0;
            table.addRow({
                name,
                configs[i].label,
                stats::Table::fixed(
                    ticksToNs(r.runtimeTicks) / 1e6 /
                        static_cast<double>(opt.runs),
                    3),
                stats::Table::fixed(norm_runtime, 1),
                stats::Table::fixed(r.trafficPerMiss(), 1),
                stats::Table::fixed(norm_traffic, 1),
                stats::Table::fixed(r.avgMissLatencyNs, 1),
                stats::Table::percent(indir_pct, 1),
                stats::Table::num(r.misses),
            });
        }
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout,
                    "Figure 7: simple-CPU runtime vs traffic "
                    "(normRuntime: directory=100; normTraffic: "
                    "snooping=100)");
    return 0;
}
