/**
 * @file
 * Reproduces Figure 6, "Sensitivity Analysis Using OLTP":
 *  (a) program-counter vs data-block indexing (unbounded tables);
 *  (b) the effect of macroblock size (64 B / 256 B / 1024 B,
 *      unbounded);
 *  (c) finite predictor sizes (8k / 32k entries vs unbounded, 1024 B
 *      macroblocks) and the Sticky-Spatial(1) prior-work baseline
 *      across sizes.
 *
 * Paper shape: block indexing beats PC indexing for Owner and
 * Owner/Group; macroblocks reduce both traffic and indirections;
 * 8k-entry predictors perform close to unbounded; the proposed
 * predictors dominate Sticky-Spatial(1).
 */

#include <iostream>

#include "analysis/predictor_eval.hh"
#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace dsp;
    bench::Options opt = bench::parseOptions(argc, argv);
    // Figure 6 is an OLTP study unless the caller overrides.
    std::string name =
        opt.workloads.size() == 1 ? opt.workloads[0] : "oltp";

    const Trace &trace = bench::getOrCollectTrace(opt, name);
    PredictorEvaluator evaluator(opt.nodes);

    stats::Table table({"panel", "config", "policy", "reqMsgs/miss",
                        "indirections", "traffic(B/miss)"});

    auto addRow = [&](const char *panel, const std::string &config,
                      const EvalResult &r) {
        table.addRow({
            panel,
            config,
            r.policy,
            stats::Table::fixed(r.requestMessagesPerMiss, 2),
            stats::Table::percent(r.indirectionPct, 1),
            stats::Table::fixed(r.trafficBytesPerMiss, 1),
        });
    };

    auto evalWith = [&](PredictorPolicy policy, IndexingMode indexing,
                        std::size_t entries) {
        PredictorConfig config;
        config.numNodes = opt.nodes;
        config.indexing = indexing;
        config.entries = entries;
        return evaluator.evaluatePredictor(trace, policy, config);
    };

    // (a) PC vs 64 B block indexing, unbounded.
    for (PredictorPolicy policy : proposedPolicies()) {
        addRow("a", "block64",
               evalWith(policy, IndexingMode::Block64, 0));
        addRow("a", "pc",
               evalWith(policy, IndexingMode::ProgramCounter, 0));
    }

    // (b) macroblock size, unbounded.
    for (PredictorPolicy policy : proposedPolicies()) {
        addRow("b", "block64",
               evalWith(policy, IndexingMode::Block64, 0));
        addRow("b", "macro256",
               evalWith(policy, IndexingMode::Macroblock256, 0));
        addRow("b", "macro1024",
               evalWith(policy, IndexingMode::Macroblock1024, 0));
    }

    // (c) finite sizes (1024 B macroblock) + Sticky-Spatial(1).
    for (PredictorPolicy policy : proposedPolicies()) {
        addRow("c", "unbounded",
               evalWith(policy, IndexingMode::Macroblock1024, 0));
        addRow("c", "32768",
               evalWith(policy, IndexingMode::Macroblock1024, 32768));
        addRow("c", "8192",
               evalWith(policy, IndexingMode::Macroblock1024, 8192));
    }
    for (std::size_t entries : {4096ul, 8192ul, 32768ul, 0ul}) {
        addRow("c", entries ? std::to_string(entries) : "unbounded",
               evalWith(PredictorPolicy::StickySpatial,
                        IndexingMode::Block64, entries));
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout,
                    "Figure 6: sensitivity analysis (" + name + ")");
    return 0;
}
