/**
 * @file
 * Reproduces Figure 4, "Sharing Locality": the cumulative fraction of
 * cache-to-cache misses covered by the N hottest (a) 64 B blocks,
 * (b) 1024 B macroblocks, and (c) static instructions.
 *
 * Paper shape: strong concentration -- e.g., the hottest 10,000
 * macroblocks cover over 80% of cache-to-cache misses for every
 * workload, and macroblocks concentrate faster than blocks.
 */

#include <iostream>

#include "analysis/characterization.hh"
#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace dsp;
    bench::Options opt = bench::parseOptions(argc, argv);

    const std::vector<std::size_t> points = {100,  500,  1000, 2000,
                                             4000, 6000, 8000, 10000};

    stats::Table table({"workload", "key", "@100", "@500", "@1k", "@2k",
                        "@4k", "@6k", "@8k", "@10k", "c2cMisses"});

    for (const std::string &name : opt.workloads) {
        const Trace &trace = bench::getOrCollectTrace(opt, name);
        WorkloadCharacterization chars(opt.nodes);
        chars.beginMeasurement(trace.warmupInstructions);
        chars.absorbTrace(trace);

        auto addRow = [&](const char *kind,
                          const std::vector<double> &coverage) {
            std::vector<std::string> row = {name, kind};
            for (double v : coverage)
                row.push_back(stats::Table::percent(v, 1));
            row.push_back(stats::Table::num(chars.cacheToCacheMisses()));
            table.addRow(row);
        };
        addRow("blocks64B", chars.blockCoverage(points));
        addRow("macro1KB", chars.macroblockCoverage(points));
        addRow("staticPCs", chars.pcCoverage(points));
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout,
                    "Figure 4: cumulative coverage of cache-to-cache "
                    "misses by the N hottest keys");
    return 0;
}
