/**
 * @file
 * Ablation study of the predictor design choices DESIGN.md calls out
 * (beyond the paper's own Figure 6 sensitivity analysis):
 *
 *  (a) table associativity -- the paper argues set-associative tables
 *      (enabled by macroblock tags) beat Sticky-Spatial's forced
 *      direct-mapped layout;
 *  (b) the Section 3.1 allocation filter ("allocate only if the
 *      minimal set proved insufficient") -- its value is predictor
 *      capacity, so the effect grows as tables shrink;
 *  (c) Sticky-Spatial's spatial degree k (0 = no neighbour OR,
 *      1 = the paper's variant, 2 = wider aggregation).
 *
 * Run on OLTP by default (like Figure 6); --workload overrides.
 */

#include <iostream>

#include "analysis/predictor_eval.hh"
#include "bench_common.hh"
#include "core/sticky_spatial.hh"
#include "stats/table.hh"

namespace {

using namespace dsp;

/** Replay with explicitly-constructed predictors (for panel c). */
EvalResult
evalStickyDegree(const Trace &trace, NodeId nodes,
                 std::size_t entries, unsigned degree)
{
    PredictorConfig config;
    config.numNodes = nodes;
    config.entries = entries;
    config.indexing = IndexingMode::Block64;
    config.ways = 1;

    std::vector<std::unique_ptr<Predictor>> predictors;
    for (NodeId n = 0; n < nodes; ++n)
        predictors.push_back(
            std::make_unique<StickySpatialPredictor>(config, degree));

    MulticastSnoopingModel protocol(nodes);
    EvalResult result;
    result.protocol = protocol.name();
    result.policy =
        "sticky-spatial(" + std::to_string(degree) + ")";

    std::uint64_t msgs = 0, indirections = 0, bytes = 0;
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        MissInfo miss = trace.records[i].toMissInfo(nodes);
        DestinationSet predicted = predictors[miss.requester]->predict(
            miss.addr, miss.pc, miss.type, miss.requester, miss.home);
        MissOutcome out = protocol.handleMiss(miss, predicted);

        Predictor &own = *predictors[miss.requester];
        if (out.retries > 0)
            own.trainRetry(miss.addr, miss.pc, miss.required);
        if (miss.responder != miss.requester)
            own.trainResponse(miss.addr, miss.pc, miss.responder,
                              !miss.required.empty());

        if (i < trace.warmupRecords)
            continue;
        ++result.misses;
        msgs += out.requestMessages;
        indirections += out.indirection ? 1 : 0;
        bytes += out.totalBytes();
    }
    double n = static_cast<double>(result.misses);
    result.requestMessagesPerMiss = msgs / n;
    result.indirectionPct = 100.0 * indirections / n;
    result.trafficBytesPerMiss = bytes / n;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dsp;
    bench::Options opt = bench::parseOptions(argc, argv);
    std::string name =
        opt.workloads.size() == 1 ? opt.workloads[0] : "oltp";

    const Trace &trace = bench::getOrCollectTrace(opt, name);
    PredictorEvaluator evaluator(opt.nodes);

    stats::Table table({"panel", "config", "policy", "reqMsgs/miss",
                        "indirections", "traffic(B/miss)"});

    auto addRow = [&](const char *panel, const std::string &config,
                      const EvalResult &r) {
        table.addRow({
            panel,
            config,
            r.policy,
            stats::Table::fixed(r.requestMessagesPerMiss, 2),
            stats::Table::percent(r.indirectionPct, 1),
            stats::Table::fixed(r.trafficBytesPerMiss, 1),
        });
    };

    // (a) associativity sweep at 8192 entries.
    for (std::size_t ways : {1ul, 2ul, 4ul, 8ul}) {
        for (PredictorPolicy policy :
             {PredictorPolicy::Owner, PredictorPolicy::OwnerGroup}) {
            PredictorConfig config;
            config.numNodes = opt.nodes;
            config.entries = 8192;
            config.ways = ways;
            addRow("a", std::to_string(ways) + "-way",
                   evaluator.evaluatePredictor(trace, policy, config));
        }
    }

    // (b) allocation filter on/off at small and standard sizes.
    for (std::size_t entries : {1024ul, 8192ul}) {
        for (bool filter : {true, false}) {
            PredictorConfig config;
            config.numNodes = opt.nodes;
            config.entries = entries;
            config.allocationFilter = filter;
            addRow("b",
                   std::to_string(entries) +
                       (filter ? "/filter" : "/no-filter"),
                   evaluator.evaluatePredictor(
                       trace, PredictorPolicy::OwnerGroup, config));
        }
    }

    // (c) Sticky-Spatial spatial degree.
    for (unsigned degree : {0u, 1u, 2u})
        addRow("c", "k=" + std::to_string(degree),
               evalStickyDegree(trace, opt.nodes, 8192, degree));

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout,
                    "Ablation: predictor design choices (" + name +
                        ")");
    return 0;
}
