/**
 * @file
 * Reproduces Figure 2, "Sharing Histogram": for each workload, the
 * percentage of read and write misses whose directory-protocol
 * handling must involve 0, 1, 2, or 3+ other processors.
 *
 * Paper shape: most misses need 0 or 1 other processors; only ~10% of
 * requests must reach more than one.
 */

#include <iostream>

#include "analysis/characterization.hh"
#include "bench_common.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace dsp;
    bench::Options opt = bench::parseOptions(argc, argv);

    stats::Table table({"workload", "kind", "0", "1", "2", "3+",
                        "shareOfMisses"});

    for (const std::string &name : opt.workloads) {
        const Trace &trace = bench::getOrCollectTrace(opt, name);
        WorkloadCharacterization chars(opt.nodes);
        chars.beginMeasurement(trace.warmupInstructions);
        chars.absorbTrace(trace);

        const stats::Histogram &reads = chars.sharingHistogramReads();
        const stats::Histogram &writes = chars.sharingHistogramWrites();
        std::uint64_t all = reads.total() + writes.total();

        auto addRow = [&](const char *kind,
                          const stats::Histogram &hist) {
            double share =
                all ? 100.0 * static_cast<double>(hist.total()) /
                          static_cast<double>(all)
                    : 0.0;
            table.addRow({
                name,
                kind,
                stats::Table::percent(hist.percent(0), 1),
                stats::Table::percent(hist.percent(1), 1),
                stats::Table::percent(hist.percent(2), 1),
                stats::Table::percent(hist.percent(3), 1),
                stats::Table::percent(share, 1),
            });
        };
        addRow("reads", reads);
        addRow("writes", writes);
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout,
                    "Figure 2: processors that must observe each miss "
                    "(percent of that kind's misses)");
    return 0;
}
