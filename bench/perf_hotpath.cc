/**
 * @file
 * Simulator-throughput microbench for the hot path.
 *
 * Runs the Figure-7 configuration (16 nodes, simple in-order CPUs)
 * under the event-heaviest protocol (snooping broadcast) and the
 * headline predictor configuration (multicast + owner-group), plus a
 * sharded-kernel run of the multicast config on --threads host
 * threads, and reports wall-clock throughput: kernel events per
 * second and simulated misses per second. Results go to stdout and,
 * as JSON, to BENCH_hotpath.json so every PR leaves a perf trajectory
 * behind. The sharded config's figure statistics are bit-identical to
 * the single-threaded multicast config by the kernel's determinism
 * contract; scripts/check.sh cross-checks exactly that.
 *
 * Also emits the event-pool counters; `slab_allocations` staying flat
 * across configs is the "no per-event heap allocation" invariant made
 * visible (the unit tests assert it, this bench records it).
 *
 * Flags:
 *   --measure N    measured instructions per CPU (default 1000000)
 *   --warmup N     functional warmup misses (default 50000)
 *   --workload W   workload preset (default barnes)
 *   --threads N    shard threads for the parallel config (default 4)
 *   --nodes N      processors (default 16)
 *   --hubs N       address-interleaved ordering hubs (default 1)
 *   --cluster N    nodes per cluster, 0 = flat (default 0)
 *   --switch-ns F  switch<->global interconnect leg in ns (default 0)
 *   --seed S       RNG seed (default 1)
 *   --out FILE     JSON output path (default BENCH_hotpath.json)
 *   --oracle       shadow every run with the coherence oracle
 *   --mutate M     inject protocol mutation M (implies --oracle);
 *                  the run must die with exit 77 and a repro bundle
 *   --stop-at T    stop at the first window boundary at/after tick T
 *                  (replays a repro bundle up to its violation)
 *   --checkpoint-every N   snapshot the run every N simulated ticks
 *                  (requires --config: one simulation per process)
 *   --checkpoint-dir D     directory for ckpt_<tick>.dsp snapshots
 *   --checkpoint-keep N    after each successful snapshot, prune all
 *                  but the newest N valid snapshots in the directory
 *                  (corrupt/quarantined files are never counted or
 *                  deleted); 0 = keep everything (default)
 *   --restore      resume from the newest valid checkpoint in the
 *                  checkpoint dir (fresh start when none validates)
 *   --restore-from FILE    resume from one specific checkpoint file
 *                  (violation replay from the repro bundle's
 *                  "checkpoint" field; combine with --stop-at)
 *
 * Oracle-shadowed runs are slower by design, so without an explicit
 * --out they write BENCH_hotpath.oracle.json: the perf-guarded
 * baseline only ever holds oracle-off numbers.
 *
 * SIGINT/SIGTERM stop the run at the next kernel window boundary; the
 * configs measured so far (plus the partial one, marked "partial")
 * are flushed as JSON -- to <out>.partial unless --out was explicit,
 * so an interrupted run never clobbers the guarded baseline -- and
 * the bench exits with code 75 (interrupted-but-flushed). A second
 * signal kills immediately.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.hh"
#include "interconnect/message.hh"
#include "sim/event.hh"
#include "sim/interrupt.hh"
#include "sim/logging.hh"
#include "sim/panic_hooks.hh"
#include "system/system.hh"
#include "verify/violation.hh"
#include "workload/presets.hh"

namespace {

using namespace dsp;

struct HotpathOptions {
    std::uint64_t measureInstr = 1000000;
    std::uint64_t warmupMisses = 50000;
    unsigned repeat = 1;
    std::string workload = "barnes";
    unsigned threads = 4;
    bool hubShard = false;
    NodeId nodes = 16;
    unsigned hubs = 1;
    unsigned cluster = 0;
    double switchNs = 0.0;
    std::uint64_t seed = 1;
    std::string out = "BENCH_hotpath.json";
    bool outExplicit = false;
    std::string onlyConfig;  ///< run just this config (profiling aid)
    bool oracle = false;
    verify::Mutation mutate = verify::Mutation::None;
    std::uint64_t stopAt = 0;
    bool noFuse = false;  ///< A/B knob: disable fused hop chains
    std::uint64_t ckptEvery = 0;
    std::string ckptDir;
    unsigned ckptKeep = 0;
    bool restore = false;
    std::string restoreFrom;
};

HotpathOptions
parseArgs(int argc, char **argv)
{
    HotpathOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                dsp_fatal("missing value for option '%s'", arg.c_str());
            return argv[++i];
        };
        if (arg == "--measure") {
            opt.measureInstr = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            opt.warmupMisses = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--workload") {
            opt.workload = next();
        } else if (arg == "--threads") {
            opt.threads = static_cast<unsigned>(std::atoi(next()));
            if (opt.threads == 0)
                opt.threads = 1;
        } else if (arg == "--hub-shard") {
            opt.hubShard = true;
        } else if (arg == "--repeat") {
            opt.repeat = static_cast<unsigned>(std::atoi(next()));
            if (opt.repeat == 0)
                opt.repeat = 1;
        } else if (arg == "--nodes") {
            opt.nodes = static_cast<NodeId>(std::atoi(next()));
        } else if (arg == "--hubs") {
            opt.hubs = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--cluster") {
            opt.cluster = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--switch-ns") {
            opt.switchNs = std::atof(next());
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--out") {
            opt.out = next();
            opt.outExplicit = true;
        } else if (arg == "--config") {
            opt.onlyConfig = next();
        } else if (arg == "--no-fuse") {
            opt.noFuse = true;
        } else if (arg == "--oracle") {
            opt.oracle = true;
        } else if (arg == "--mutate") {
            const char *name = next();
            if (!verify::parseMutation(name, opt.mutate))
                dsp_fatal("unknown mutation '%s'", name);
            opt.oracle = true;
        } else if (arg == "--stop-at") {
            opt.stopAt = std::strtoull(next(), nullptr, 10);
            opt.oracle = true;
        } else if (arg == "--checkpoint-every") {
            opt.ckptEvery = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--checkpoint-dir") {
            opt.ckptDir = next();
        } else if (arg == "--checkpoint-keep") {
            opt.ckptKeep = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--restore") {
            opt.restore = true;
        } else if (arg == "--restore-from") {
            opt.restoreFrom = next();
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr,
                         "options: --measure N --warmup N --workload W "
                         "--threads N --hub-shard --nodes N --hubs N "
                         "--cluster N --switch-ns F --seed S "
                         "--out FILE --config NAME --no-fuse "
                         "--repeat N "
                         "--oracle --mutate M --stop-at T "
                         "--checkpoint-every N --checkpoint-dir D "
                         "--checkpoint-keep N "
                         "--restore --restore-from FILE\n");
            std::exit(0);
        } else {
            dsp_fatal("unknown option '%s'", arg.c_str());
        }
    }
    // A checkpoint directory holds one simulation's snapshot stream;
    // the default 4-config bench would interleave four. Scope any
    // checkpoint/restore use to a single --config run.
    if ((opt.ckptEvery != 0 || opt.restore ||
         !opt.restoreFrom.empty()) &&
        opt.onlyConfig.empty()) {
        dsp_fatal("--checkpoint-every/--restore require --config "
                  "(one simulation per checkpoint directory)");
    }
    if (opt.ckptEvery != 0 && opt.ckptDir.empty())
        dsp_fatal("--checkpoint-every requires --checkpoint-dir");
    if (opt.restore && opt.ckptDir.empty() && opt.restoreFrom.empty())
        dsp_fatal("--restore requires --checkpoint-dir (or "
                  "--restore-from FILE)");
    if ((opt.restore || !opt.restoreFrom.empty()) && opt.repeat != 1) {
        dsp_warn("--restore forces --repeat 1 (every repetition would "
                 "resume from the same snapshot)");
        opt.repeat = 1;
    }
    return opt;
}

struct ConfigResult {
    std::string name;
    unsigned threads = 1;
    double wallSeconds = 0.0;
    bool partial = false;  ///< interrupted mid-run; stats incomplete
    SystemStats stats;

    double
    barriersPerWindow() const
    {
        return stats.windowsRun > 0
                   ? static_cast<double>(stats.barrierCrossings) /
                         static_cast<double>(stats.windowsRun)
                   : 0.0;
    }

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(stats.eventsExecuted) /
                         wallSeconds
                   : 0.0;
    }

    double
    missesPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(stats.misses) / wallSeconds
                   : 0.0;
    }
};

/** Config currently inside System::run(), for the panic hook: a
 *  violation exits from deep inside the simulator, and the dump
 *  should say which bench config was on the wire. */
std::string activeConfig;

ConfigResult
runConfig(const HotpathOptions &opt, const std::string &name,
          ProtocolKind protocol, PredictorPolicy policy,
          CpuModel cpu_model, unsigned threads)
{
    // Best-of-N (--repeat): fresh workload + System per repetition,
    // identical seeds, keep the fastest wall clock. Every repetition
    // must produce bit-identical simulation statistics -- a free
    // same-process determinism check the bench enforces.
    ConfigResult result;
    for (unsigned rep = 0; rep < opt.repeat; ++rep) {
        auto workload =
            makeWorkload(opt.workload, opt.nodes, opt.seed, 0.25);

        SystemParams params;
        params.nodes = opt.nodes;
        params.protocol = protocol;
        params.policy = policy;
        params.cpuModel = cpu_model;
        params.shards = threads;
        params.hubShard = opt.hubShard;
        params.crossbar.topology.hubs = opt.hubs;
        params.crossbar.topology.cluster_size = opt.cluster;
        params.crossbar.topology.switch_link_ns = opt.switchNs;
        params.crossbar.fuse_chains = !opt.noFuse;
        params.functionalWarmupMisses = opt.warmupMisses;
        params.warmupInstrPerCpu = opt.measureInstr / 10;
        params.measureInstrPerCpu = opt.measureInstr;
        params.verify.oracle = opt.oracle;
        params.verify.mutation = opt.mutate;
        params.verify.stopAtTick = opt.stopAt;
        params.checkpoint.every = opt.ckptEvery;
        params.checkpoint.dir = opt.ckptDir;
        params.checkpoint.keep = opt.ckptKeep;
        params.checkpoint.restore = opt.restore;
        params.checkpoint.restorePath = opt.restoreFrom;
        if (!opt.ckptDir.empty())
            ckpt::makeDirs(opt.ckptDir);

        activeConfig = name;
        System system(*workload, params);
        SystemStats stats = system.run();
        activeConfig.clear();

        if (stats.stoppedEarly) {
            // --stop-at halted the run at a window boundary; the
            // stats cover a prefix of the simulation, same contract
            // as an interrupt.
            result.name = name;
            result.threads = threads;
            result.stats = stats;
            result.wallSeconds = stats.wallSeconds;
            result.partial = true;
            return result;
        }

        if (interruptRequested()) {
            // The run stopped at a window boundary with partial
            // stats; they are not comparable against a completed
            // repetition, so skip the divergence check and let main
            // flush what we have.
            if (rep == 0) {
                result.name = name;
                result.threads = threads;
                result.stats = stats;
                result.wallSeconds = stats.wallSeconds;
            }
            result.partial = true;
            return result;
        }

        if (rep == 0) {
            result.name = name;
            result.threads = threads;
            result.stats = stats;
            // Wall time of the measured phase only, so warmup does
            // not dilute the throughput numbers.
            result.wallSeconds = stats.wallSeconds;
            continue;
        }
        if (stats.eventsExecuted != result.stats.eventsExecuted ||
            stats.misses != result.stats.misses ||
            stats.retries != result.stats.retries ||
            stats.trafficBytes != result.stats.trafficBytes ||
            stats.runtimeTicks != result.stats.runtimeTicks ||
            stats.avgMissLatencyNs != result.stats.avgMissLatencyNs ||
            stats.barrierCrossings != result.stats.barrierCrossings ||
            stats.windowsRun != result.stats.windowsRun ||
            stats.cacheAccesses != result.stats.cacheAccesses ||
            stats.l0Hits != result.stats.l0Hits ||
            stats.l0Absorbed != result.stats.l0Absorbed ||
            stats.wordTouches != result.stats.wordTouches) {
            dsp_fatal("repeat %u of config '%s' diverged from repeat "
                      "0 -- same-process nondeterminism",
                      rep, name.c_str());
        }
        if (stats.wallSeconds < result.wallSeconds) {
            result.stats = stats;
            result.wallSeconds = stats.wallSeconds;
        }
    }
    return result;
}

bool
writeJson(const HotpathOptions &opt,
          const std::vector<ConfigResult> &results)
{
    // Compose in memory, then land atomically (temp + fsync +
    // rename): the guarded baseline this refreshes must never exist
    // in a torn state, even across a crash or SIGKILL mid-write.
    char *mem = nullptr;
    std::size_t mem_len = 0;
    std::FILE *f = open_memstream(&mem, &mem_len);
    if (!f) {
        dsp_warn("cannot compose '%s'", opt.out.c_str());
        return false;
    }

    std::uint64_t total_events = 0;
    std::uint64_t total_misses = 0;
    double total_wall = 0.0;
    for (const ConfigResult &r : results) {
        total_events += r.stats.eventsExecuted;
        total_misses += r.stats.misses;
        total_wall += r.wallSeconds;
    }

    EventPoolStats pools = eventPoolStats();

    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"perf_hotpath\",\n");
    if (opt.oracle)
        std::fprintf(f, "  \"oracle\": true,\n");
    if (interruptRequested())
        std::fprintf(f, "  \"interrupted\": true,\n");
    std::fprintf(f, "  \"workload\": \"%s\",\n",
                 opt.workload.c_str());
    std::fprintf(f, "  \"nodes\": %u,\n", opt.nodes);
    std::fprintf(f, "  \"measure_instr_per_cpu\": %llu,\n",
                 static_cast<unsigned long long>(opt.measureInstr));
    std::fprintf(f, "  \"configs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ConfigResult &r = results[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
        if (r.partial)
            std::fprintf(f, "      \"partial\": true,\n");
        std::fprintf(f, "      \"threads\": %u,\n", r.threads);
        std::fprintf(f, "      \"wall_seconds\": %.6f,\n",
                     r.wallSeconds);
        std::fprintf(f, "      \"events\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.stats.eventsExecuted));
        std::fprintf(f, "      \"events_per_sec\": %.0f,\n",
                     r.eventsPerSec());
        std::fprintf(f, "      \"misses\": %llu,\n",
                     static_cast<unsigned long long>(r.stats.misses));
        std::fprintf(f, "      \"misses_per_sec\": %.0f,\n",
                     r.missesPerSec());
        // Deterministic figure statistics: check.sh diffs these
        // between --threads 1 and --threads K runs.
        std::fprintf(f, "      \"retries\": %llu,\n",
                     static_cast<unsigned long long>(r.stats.retries));
        std::fprintf(f, "      \"traffic_bytes\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.stats.trafficBytes));
        std::fprintf(f, "      \"avg_miss_latency_ns\": %.6f,\n",
                     r.stats.avgMissLatencyNs);
        // L0 block-result filter effectiveness: hit rate over all
        // cache accesses, and packed-array words attributed per
        // access (walk-counter based; 0 under NDEBUG). Both are
        // deterministic and shard-count independent, so the
        // determinism cross-check covers them.
        std::fprintf(f, "      \"l0_hit_rate\": %.6f,\n",
                     r.stats.l0HitRate());
        std::fprintf(f, "      \"touched_words_per_access\": %.4f,\n",
                     r.stats.touchedWordsPerAccess());
        std::fprintf(f, "      \"barriers_per_window\": %.4f,\n",
                     r.barriersPerWindow());
        // Host performance counters, not figure statistics: fused
        // chains skip calendar inserts/pops, and prefetch hints are
        // same-shard gated, so both are partition-dependent and stay
        // out of the determinism / repeat-divergence comparisons.
        std::fprintf(f, "      \"calendar_ops_per_miss\": %.4f,\n",
                     r.stats.calendarOpsPerMiss());
        std::fprintf(f, "      \"prefetch_issued\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.stats.prefetchIssued));
        std::fprintf(f, "      \"sim_runtime_ms\": %.3f\n",
                     r.stats.runtimeMs());
        std::fprintf(f, "    }%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"totals\": {\n");
    std::fprintf(f, "    \"wall_seconds\": %.6f,\n", total_wall);
    std::fprintf(f, "    \"events_per_sec\": %.0f,\n",
                 total_wall > 0.0
                     ? static_cast<double>(total_events) / total_wall
                     : 0.0);
    std::fprintf(f, "    \"misses_per_sec\": %.0f\n",
                 total_wall > 0.0
                     ? static_cast<double>(total_misses) / total_wall
                     : 0.0);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"event_pools\": {\n");
    std::fprintf(f, "    \"acquires\": %llu,\n",
                 static_cast<unsigned long long>(pools.acquires));
    std::fprintf(f, "    \"releases\": %llu,\n",
                 static_cast<unsigned long long>(pools.releases));
    std::fprintf(f, "    \"live\": %llu,\n",
                 static_cast<unsigned long long>(pools.live()));
    std::fprintf(f, "    \"slab_allocations\": %llu,\n",
                 static_cast<unsigned long long>(
                     pools.slabAllocations));
    std::fprintf(f, "    \"slab_bytes\": %llu\n",
                 static_cast<unsigned long long>(pools.slabBytes));
    std::fprintf(f, "  },\n");

    // Zero-copy multicast accounting: refs_shared counts deliveries
    // that reused a pooled payload instead of copying a Message.
    const MessagePoolStats &msgs = MessageRef::stats();
    std::fprintf(f, "  \"message_pool\": {\n");
    std::fprintf(f, "    \"payloads\": %llu,\n",
                 static_cast<unsigned long long>(msgs.acquires));
    std::fprintf(f, "    \"refs_shared\": %llu,\n",
                 static_cast<unsigned long long>(msgs.refsShared));
    std::fprintf(f, "    \"live\": %llu,\n",
                 static_cast<unsigned long long>(msgs.live()));
    std::fprintf(f, "    \"slab_bytes\": %llu\n",
                 static_cast<unsigned long long>(msgs.slabBytes));
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::string json(mem, mem_len);
    std::free(mem);
    if (!ckpt::atomicWriteFile(opt.out, json)) {
        dsp_warn("cannot write '%s'", opt.out.c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    HotpathOptions opt = parseArgs(argc, argv);
    installInterruptHandlers();

    // A violation (or kernel panic) terminates from deep inside
    // System::run(); ride the shared panic-hook chain so the dump
    // also names the bench config that was on the wire.
    addPanicHook("perf-hotpath", [&opt]() {
        std::fprintf(stderr,
                     "perf_hotpath: config '%s' workload=%s seed=%llu "
                     "measure=%llu\n",
                     activeConfig.empty() ? "(none)"
                                          : activeConfig.c_str(),
                     opt.workload.c_str(),
                     static_cast<unsigned long long>(opt.seed),
                     static_cast<unsigned long long>(opt.measureInstr));
    });

    // Oracle-shadowed wall clocks are slower by design; never let
    // them overwrite the perf-guarded oracle-off baseline.
    if (opt.oracle && !opt.outExplicit)
        opt.out = "BENCH_hotpath.oracle.json";

    // The Figure-7 configs (simple CPU) plus the Figure-8 headline
    // config (detailed out-of-order CPU), so the bench covers both
    // processor models' hot paths -- and the Figure-7 multicast
    // config again on the sharded kernel, exercising --threads host
    // threads (its figure statistics are bit-identical to the
    // single-threaded run; only the wall clock moves).
    struct Config {
        const char *name;
        ProtocolKind protocol;
        CpuModel cpuModel;
        bool sharded;
    };
    const Config configs[] = {
        {"snooping", ProtocolKind::Snooping, CpuModel::Simple, false},
        {"multicast-owner-group", ProtocolKind::Multicast,
         CpuModel::Simple, false},
        {"multicast-owner-group-detailed", ProtocolKind::Multicast,
         CpuModel::Detailed, false},
        {"multicast-owner-group-par", ProtocolKind::Multicast,
         CpuModel::Simple, true},
    };

    std::vector<ConfigResult> results;
    for (const Config &config : configs) {
        if (!opt.onlyConfig.empty() && opt.onlyConfig != config.name)
            continue;
        results.push_back(runConfig(opt, config.name, config.protocol,
                                    PredictorPolicy::OwnerGroup,
                                    config.cpuModel,
                                    config.sharded ? opt.threads
                                                   : 1));
        if (interruptRequested())
            break;
    }
    const bool interrupted = interruptRequested();
    if (results.empty() && !interrupted)
        dsp_fatal("no config named '%s'", opt.onlyConfig.c_str());

    std::printf("%-24s %12s %14s %12s %14s\n", "config", "events",
                "events/sec", "misses", "misses/sec");
    for (const ConfigResult &r : results) {
        std::printf("%-24s %12llu %14.0f %12llu %14.0f\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(
                        r.stats.eventsExecuted),
                    r.eventsPerSec(),
                    static_cast<unsigned long long>(r.stats.misses),
                    r.missesPerSec());
    }

    EventPoolStats pools = eventPoolStats();
    std::printf("event pools: %llu acquires, %llu slab allocations "
                "(%llu KiB resident)\n",
                static_cast<unsigned long long>(pools.acquires),
                static_cast<unsigned long long>(pools.slabAllocations),
                static_cast<unsigned long long>(pools.slabBytes /
                                                1024));

    // A --config subset run is a profiling aid; never let it clobber
    // the full 4-config baseline JSON (check.sh's perf guard would
    // silently stop guarding the missing configs).
    if (!opt.onlyConfig.empty() && !opt.outExplicit &&
        !interruptRequested()) {
        std::printf("single-config run: skipping JSON (pass --out to "
                    "write one)\n");
        return 0;
    }
    if (interrupted) {
        // Same clobber concern, harder failure mode: a partial run
        // must never replace the guarded baseline by default.
        if (!opt.outExplicit)
            opt.out += ".partial";
        std::printf("interrupted (signal %d): flushing partial "
                    "results to %s\n",
                    interruptSignal(), opt.out.c_str());
    }
    if (!writeJson(opt, results))
        return 1;
    std::printf("wrote %s\n", opt.out.c_str());
    return interrupted ? interruptExitCode : 0;
}
