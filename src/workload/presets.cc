#include "workload/presets.hh"

#include "sim/logging.hh"

namespace dsp {

namespace {

/** Regions are laid out 1 GB apart so their PC windows never collide. */
constexpr Addr regionStride = 0x40000000ull;

/** Round a scaled size up to a whole number of 1 KB macroblocks, with
 *  a floor large enough for every archetype's per-node partitioning. */
Addr
scaled(double scale, Addr bytes, Addr floor_bytes = 64 * 1024)
{
    auto scaled_bytes =
        static_cast<Addr>(static_cast<double>(bytes) * scale);
    if (scaled_bytes < floor_bytes)
        scaled_bytes = floor_bytes;
    constexpr Addr granule = 1024;
    return (scaled_bytes + granule - 1) / granule * granule;
}

/**
 * Floor for producer-consumer regions: one ring of buffer_blocks
 * 64 B buffers per node. Up to 64 nodes this is covered by the
 * generic 64 KB floor, so the paper's 16-node footprints (and every
 * existing figure) are byte-identical; on larger machines the
 * netbuf/boundary pools grow with the node count the way a scaled-up
 * server's would, instead of rounding to zero buffers per node.
 */
Addr
perNodeBufferFloor(NodeId nodes, std::uint32_t buffer_blocks)
{
    Addr per_node = static_cast<Addr>(nodes) * buffer_blocks * 64;
    return per_node > 64 * 1024 ? per_node : 64 * 1024;
}

/** Builder that assigns region base addresses and collects regions. */
class Mix
{
  public:
    Mix(std::string name, NodeId nodes, double mean_work,
        std::uint64_t seed)
        : workload_(std::make_unique<Workload>(std::move(name), nodes,
                                               mean_work, seed)),
          nodes_(nodes)
    {
    }

    Region::Params
    params(const char *name, Addr bytes, std::uint32_t pc_sites,
           double pc_theta = 0.6)
    {
        Region::Params p;
        p.name = name;
        p.base = nextBase_;
        p.bytes = bytes;
        p.pcSites = pc_sites;
        p.pcTheta = pc_theta;
        nextBase_ += regionStride;
        return p;
    }

    NodeId nodes() const { return nodes_; }

    void
    add(std::unique_ptr<Region> region, double weight)
    {
        workload_->addRegion(std::move(region), weight);
    }

    std::unique_ptr<Workload>
    take()
    {
        return std::move(workload_);
    }

  private:
    std::unique_ptr<Workload> workload_;
    NodeId nodes_;
    Addr nextBase_ = regionStride;
};

constexpr Addr MB = 1024 * 1024;
constexpr Addr KB = 1024;

} // namespace

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "apache", "barnes", "ocean", "oltp", "slashcode", "specjbb",
    };
    return names;
}

std::unique_ptr<Workload>
makeApache(NodeId nodes, std::uint64_t seed, double scale)
{
    // Static web serving: migratory connection state, a read-mostly
    // file cache with occasional updates, kernel/network buffers
    // streaming between processors, pthread locks. High miss rate,
    // ~89% of misses need another processor (Table 2).
    Mix mix("apache", nodes, /* mean_work */ 4.0, seed);

    mix.add(std::make_unique<HotRegion>(
                mix.params("locks", scaled(scale, 256 * KB), 400, 0.7),
                nodes, HotRegion::Config{0.80, 0.45}),
            0.003);
    mix.add(std::make_unique<MigratoryRegion>(
                mix.params("connections", scaled(scale, 10 * MB), 3000),
                nodes, MigratoryRegion::Config{2, 6, 1.10, 0.0}),
            0.040);
    mix.add(std::make_unique<ProducerConsumerRegion>(
                mix.params("netbufs",
                           scaled(scale, 2 * MB,
                                  perNodeBufferFloor(nodes, 16)),
                           1500),
                nodes, ProducerConsumerRegion::Config{16, 4, 0.5, 8}),
            0.030);
    mix.add(std::make_unique<ReadMostlyRegion>(
                mix.params("filecache", scaled(scale, 24 * MB), 6000),
                nodes, ReadMostlyRegion::Config{12000, 0.9985, 0.0012}),
            0.440);
    mix.add(std::make_unique<PrivateRegion>(
                mix.params("scratch", scaled(scale, 4 * MB), 7000),
                nodes,
                PrivateRegion::Config{4096, 1.0, 0.3, 0.02, 16, 8}),
            0.487);
    return mix.take();
}

std::unique_ptr<Workload>
makeBarnes(NodeId nodes, std::uint64_t seed, double scale)
{
    // SPLASH-2 Barnes-Hut, 64k bodies: the octree is read by everyone
    // and rebuilt/updated in place, bodies migrate between processors.
    // Tiny footprint, very low miss rate, but ~96% of the misses that
    // do occur are sharing misses.
    Mix mix("barnes", nodes, /* mean_work */ 14.0, seed);

    mix.add(std::make_unique<ReadMostlyRegion>(
                mix.params("octree", scaled(scale, 6 * MB), 2500),
                nodes, ReadMostlyRegion::Config{15000, 0.9999, 0.00015}),
            0.50);
    mix.add(std::make_unique<MigratoryRegion>(
                mix.params("bodies", scaled(scale, 4 * MB), 3000),
                nodes, MigratoryRegion::Config{1, 8, 0.90, 0.0}),
            0.025);
    mix.add(std::make_unique<PrivateRegion>(
                mix.params("workspace", scaled(scale, 1 * MB), 2000),
                nodes,
                PrivateRegion::Config{1024, 1.0, 0.3, 0.02, 8, 8}),
            0.418);
    mix.add(std::make_unique<HotRegion>(
                mix.params("globals", scaled(scale, 64 * KB), 400, 0.7),
                nodes, HotRegion::Config{0.80, 0.5}),
            0.002);
    return mix.take();
}

std::unique_ptr<Workload>
makeOcean(NodeId nodes, std::uint64_t seed, double scale)
{
    // SPLASH-2 Ocean, 514x514 grids, column-blocked: each processor
    // sweeps its own partition (capacity misses to memory) and
    // exchanges boundary rows with immediate neighbours only -- the
    // low-degree sharing the paper highlights in Figure 3(b).
    Mix mix("ocean", nodes, /* mean_work */ 16.0, seed);

    mix.add(std::make_unique<PrivateRegion>(
                mix.params("grids", scaled(scale, 40 * MB), 5000),
                nodes,
                PrivateRegion::Config{12000, 0.9995, 0.45, 0.00008,
                                      64, 8}),
            0.300);
    mix.add(std::make_unique<ProducerConsumerRegion>(
                mix.params("boundaries",
                           scaled(scale, 2 * MB,
                                  perNodeBufferFloor(nodes, 16)),
                           4000),
                nodes, ProducerConsumerRegion::Config{16, 1, 0.5, 8}),
            0.025);
    mix.add(std::make_unique<HotRegion>(
                mix.params("reductions", scaled(scale, 64 * KB), 300,
                           0.7),
                nodes, HotRegion::Config{0.80, 0.5}),
            0.001);
    mix.add(std::make_unique<ReadMostlyRegion>(
                mix.params("constants", scaled(scale, 4 * MB), 2000),
                nodes, ReadMostlyRegion::Config{12000, 0.9998, 0.00005}),
            0.668);
    return mix.take();
}

std::unique_ptr<Workload>
makeOltp(NodeId nodes, std::uint64_t seed, double scale)
{
    // TPC-C on DB2: migratory row/lock records, hot latches, a
    // read-mostly B-tree/catalog, private log buffers. The highest
    // miss rate of the suite, ~73% indirections.
    Mix mix("oltp", nodes, /* mean_work */ 3.5, seed);

    mix.add(std::make_unique<MigratoryRegion>(
                mix.params("rows", scaled(scale, 24 * MB), 8000),
                nodes, MigratoryRegion::Config{2, 6, 1.05, 0.0}),
            0.040);
    mix.add(std::make_unique<HotRegion>(
                mix.params("latches", scaled(scale, 512 * KB), 800,
                           0.7),
                nodes, HotRegion::Config{0.80, 0.5}),
            0.004);
    mix.add(std::make_unique<ReadMostlyRegion>(
                mix.params("btree", scaled(scale, 20 * MB), 8000),
                nodes, ReadMostlyRegion::Config{15000, 0.993, 0.0006}),
            0.420);
    mix.add(std::make_unique<PrivateRegion>(
                mix.params("logbuf", scaled(scale, 12 * MB), 5000),
                nodes,
                PrivateRegion::Config{12288, 1.0, 0.5, 0.0015, 64, 8}),
            0.520);
    return mix.take();
}

std::unique_ptr<Workload>
makeSlashcode(NodeId nodes, std::uint64_t seed, double scale)
{
    // Dynamic web (Slashcode on Apache+mod_perl+MySQL): a huge
    // per-process interpreter heap dominates, so only ~35% of misses
    // involve another processor -- the lowest of the suite.
    Mix mix("slashcode", nodes, /* mean_work */ 8.0, seed);

    mix.add(std::make_unique<PrivateRegion>(
                mix.params("perlheap", scaled(scale, 120 * MB), 18000),
                nodes,
                PrivateRegion::Config{18000, 0.9991, 0.3, 0.0001, 32,
                                      8}),
            0.620);
    mix.add(std::make_unique<ReadMostlyRegion>(
                mix.params("pagecache", scaled(scale, 48 * MB), 14000),
                nodes, ReadMostlyRegion::Config{12000, 0.9996, 0.0002}),
            0.300);
    mix.add(std::make_unique<MigratoryRegion>(
                mix.params("dbrows", scaled(scale, 12 * MB), 8000),
                nodes, MigratoryRegion::Config{2, 6, 1.00, 0.0}),
            0.005);
    mix.add(std::make_unique<HotRegion>(
                mix.params("mutexes", scaled(scale, 256 * KB), 2000,
                           0.7),
                nodes, HotRegion::Config{0.85, 0.4}),
            0.001);
    return mix.take();
}

std::unique_ptr<Workload>
makeSpecjbb(NodeId nodes, std::uint64_t seed, double scale)
{
    // SPECjbb2000: 24 warehouses over 16 processors. Java heap
    // allocation streams privately; warehouse state is shared within
    // small processor groups; the item catalog is read-mostly.
    Mix mix("specjbb", nodes, /* mean_work */ 4.5, seed);

    // GroupRegion requires the group size to divide the node count;
    // fall back to pairs for odd machine sizes.
    NodeId group = nodes % 4 == 0 ? 4 : (nodes % 2 == 0 ? 2 : 1);

    mix.add(std::make_unique<PrivateRegion>(
                mix.params("javaheap", scaled(scale, 200 * MB), 9000),
                nodes,
                PrivateRegion::Config{18000, 0.9971, 0.5, 0.0002, 32,
                                      8}),
            0.550);
    mix.add(std::make_unique<GroupRegion>(
                mix.params("warehouses", scaled(scale, 120 * MB), 9000),
                nodes, GroupRegion::Config{group, 12000, 0.997, 0.20}),
            0.014);
    mix.add(std::make_unique<ReadMostlyRegion>(
                mix.params("catalog", scaled(scale, 20 * MB), 4000),
                nodes, ReadMostlyRegion::Config{12000, 0.9994, 0.0002}),
            0.420);
    mix.add(std::make_unique<HotRegion>(
                mix.params("jvmlocks", scaled(scale, 512 * KB), 1200,
                           0.7),
                nodes, HotRegion::Config{0.85, 0.45}),
            0.002);
    return mix.take();
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, NodeId num_nodes,
             std::uint64_t seed, double scale)
{
    if (name == "apache")
        return makeApache(num_nodes, seed, scale);
    if (name == "barnes")
        return makeBarnes(num_nodes, seed, scale);
    if (name == "ocean")
        return makeOcean(num_nodes, seed, scale);
    if (name == "oltp")
        return makeOltp(num_nodes, seed, scale);
    if (name == "slashcode")
        return makeSlashcode(num_nodes, seed, scale);
    if (name == "specjbb")
        return makeSpecjbb(num_nodes, seed, scale);
    dsp_fatal("unknown workload '%s'", name.c_str());
}

} // namespace dsp
