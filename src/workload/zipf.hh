/**
 * @file
 * Zipf popularity sampling for workload synthesis.
 *
 * Commercial-workload miss streams are highly skewed (Figure 4 of the
 * paper: the hottest ~1000 blocks cover most cache-to-cache misses).
 * We use an exact discrete Zipf: P(rank r) proportional to 1/(r+1)^theta.
 * Small tables sample in O(1) by Walker's alias method (one uniform
 * draw, one table load that stays cache-resident); large tables keep
 * the CDF binary search, whose probe path through the hot head is far
 * cache-friendlier than the alias method's uniformly-random column
 * access. This keeps the head realistic (no single mega-hot item,
 * unlike the continuous power-law shortcut) while preserving the heavy
 * tail that produces capacity misses.
 */

#ifndef DSP_WORKLOAD_ZIPF_HH
#define DSP_WORKLOAD_ZIPF_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace dsp {

/**
 * Samples ranks in [0, n) with discrete Zipf skew.
 *
 * theta = 0 degenerates to uniform; theta around 0.8-1.0 matches the
 * block-popularity skew of server workloads. theta up to 2 supported.
 */
class ZipfSampler
{
  public:
    /** Create a sampler over n items (n > 0) with skew theta >= 0. */
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    std::uint64_t sample(Rng &rng) const;

    /** Probability mass of the `k` hottest items (for tests). */
    double headMass(std::uint64_t k) const;

    std::uint64_t items() const { return n_; }
    double theta() const { return theta_; }

  private:
    /** One alias-table cell: take the column if the coin lands below
     *  `threshold`, otherwise take `alias`. Packed to 8 bytes (float
     *  threshold, 32-bit alias -- both lossless at aliasMaxItems
     *  scale up to float rounding of ~1e-7 on the split point): the
     *  sample path indexes this table uniformly at random, so halving
     *  the cell halves the host cache footprint of every draw. */
    struct AliasCell {
        float threshold;
        std::uint32_t alias;
    };

    /** Largest table the alias method is built for (512 KiB of cells);
     *  beyond that the CDF search wins on cache behaviour. */
    static constexpr std::uint64_t aliasMaxItems = 1u << 16;

    std::uint64_t n_;
    double theta_;
    std::vector<double> cdf_;        ///< kept for headMass(); empty
                                     ///< when theta == 0 (uniform)
    std::vector<AliasCell> alias_;   ///< empty when theta == 0 or
                                     ///< n > aliasMaxItems
};

/**
 * Two-tier popularity: a hot working set that steady-state caches can
 * hold, plus a uniform cold tail that produces compulsory/capacity
 * misses. This is the knob structure that lets each workload preset
 * dial in its Table 2 miss rate and footprint growth independently:
 * hit rate ~= hotProb once the hot set is cached, and the cold tail
 * sweeps the region's full footprint over time.
 */
class WorkingSetSampler
{
  public:
    /**
     * @param n total items in the region
     * @param hot_items size of the hot working set (clamped to n)
     * @param hot_prob probability an access targets the hot set
     * @param hot_theta Zipf skew within the hot set
     */
    WorkingSetSampler(std::uint64_t n, std::uint64_t hot_items,
                      double hot_prob, double hot_theta = 0.4);

    /** Draw a rank in [0, n); ranks below hotItems() are hot. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t items() const { return n_; }
    std::uint64_t hotItems() const { return hot_; }
    double hotProb() const { return hotProb_; }

  private:
    std::uint64_t n_;
    std::uint64_t hot_;
    double hotProb_;
    ZipfSampler hotPick_;
};

/**
 * Map a popularity rank to a block index such that consecutive hot
 * ranks cluster into macroblock-sized runs whose *order* is scattered
 * across the region. This reproduces the paper's observation that
 * macroblock locality exceeds block locality (Figure 4b vs 4a) without
 * making the hot set perfectly contiguous.
 *
 * @param rank popularity rank in [0, blocks)
 * @param blocks total number of blocks in the region
 * @param run blocks per clustered run (16 = one 1 KB macroblock)
 */
std::uint64_t scatterRank(std::uint64_t rank, std::uint64_t blocks,
                          std::uint64_t run = 16);

} // namespace dsp

#endif // DSP_WORKLOAD_ZIPF_HH
