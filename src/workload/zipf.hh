/**
 * @file
 * Zipf popularity sampling for workload synthesis.
 *
 * Commercial-workload miss streams are highly skewed (Figure 4 of the
 * paper: the hottest ~1000 blocks cover most cache-to-cache misses).
 * We use an exact discrete Zipf: P(rank r) proportional to 1/(r+1)^theta.
 * Small tables sample in O(1) by Walker's alias method (one uniform
 * draw, one table load that stays cache-resident); large tables keep
 * the CDF binary search, whose probe path through the hot head is far
 * cache-friendlier than the alias method's uniformly-random column
 * access. This keeps the head realistic (no single mega-hot item,
 * unlike the continuous power-law shortcut) while preserving the heavy
 * tail that produces capacity misses.
 */

#ifndef DSP_WORKLOAD_ZIPF_HH
#define DSP_WORKLOAD_ZIPF_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace dsp {

/**
 * Samples ranks in [0, n) with discrete Zipf skew.
 *
 * theta = 0 degenerates to uniform; theta around 0.8-1.0 matches the
 * block-popularity skew of server workloads. theta up to 2 supported.
 */
class ZipfSampler
{
  public:
    /** Create a sampler over n items (n > 0) with skew theta >= 0. */
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    std::uint64_t sample(Rng &rng) const;

    /**
     * A sample split into its RNG draw and its table lookup. The
     * alias cell a draw lands on is uniformly random, so for the big
     * tables the cell load is a guaranteed host-cache miss; begin()
     * makes all the RNG draws (exactly the draws sample() makes, in
     * the same order) and issues a prefetch for the cell, and
     * finish() reads it. Callers interleave independent work (their
     * other per-ref draws) between the two, hiding the fetch latency
     * that used to stall every reference. begin()+finish() is
     * draw-for-draw and value-identical to sample().
     */
    struct Pending {
        std::uint64_t value = 0;     ///< resolved rank (non-alias) or column
        double coin = 0.0;
        const void *cell = nullptr;  ///< alias cell, when deferred
    };

    Pending
    begin(Rng &rng) const
    {
        if (cdf_.empty())
            return Pending{rng.uniformInt(n_), 0.0, nullptr};
        if (!alias_.empty()) {
            double u = rng.uniformReal() * static_cast<double>(n_);
            auto col = static_cast<std::uint64_t>(u);
            if (col >= n_)
                col = n_ - 1;  // guard against u == 1.0 rounding
            const AliasCell *cell = &alias_[col];
            __builtin_prefetch(cell, 0, 3);
            return Pending{col, u - static_cast<double>(col), cell};
        }
        return Pending{sampleCdf(rng), 0.0, nullptr};
    }

    std::uint64_t
    finish(const Pending &pending) const
    {
        if (pending.cell == nullptr)
            return pending.value;
        const auto *cell =
            static_cast<const AliasCell *>(pending.cell);
        return pending.coin < static_cast<double>(cell->threshold)
                   ? pending.value
                   : cell->alias;
    }

    /** Probability mass of the `k` hottest items (for tests). */
    double headMass(std::uint64_t k) const;

    std::uint64_t items() const { return n_; }
    double theta() const { return theta_; }

  private:
    /** One alias-table cell: take the column if the coin lands below
     *  `threshold`, otherwise take `alias`. Packed to 8 bytes (float
     *  threshold, 32-bit alias -- both lossless at aliasMaxItems
     *  scale up to float rounding of ~1e-7 on the split point): the
     *  sample path indexes this table uniformly at random, so halving
     *  the cell halves the host cache footprint of every draw. */
    struct AliasCell {
        float threshold;
        std::uint32_t alias;
    };

    /** Largest table the alias method is built for (512 KiB of cells);
     *  beyond that the CDF search wins on cache behaviour. */
    static constexpr std::uint64_t aliasMaxItems = 1u << 16;

    /** The big-table CDF binary search (shared by sample/begin). */
    std::uint64_t sampleCdf(Rng &rng) const;

    std::uint64_t n_;
    double theta_;
    std::vector<double> cdf_;        ///< kept for headMass(); empty
                                     ///< when theta == 0 (uniform)
    std::vector<AliasCell> alias_;   ///< empty when theta == 0 or
                                     ///< n > aliasMaxItems
};

/**
 * Two-tier popularity: a hot working set that steady-state caches can
 * hold, plus a uniform cold tail that produces compulsory/capacity
 * misses. This is the knob structure that lets each workload preset
 * dial in its Table 2 miss rate and footprint growth independently:
 * hit rate ~= hotProb once the hot set is cached, and the cold tail
 * sweeps the region's full footprint over time.
 */
class WorkingSetSampler
{
  public:
    /**
     * @param n total items in the region
     * @param hot_items size of the hot working set (clamped to n)
     * @param hot_prob probability an access targets the hot set
     * @param hot_theta Zipf skew within the hot set
     */
    WorkingSetSampler(std::uint64_t n, std::uint64_t hot_items,
                      double hot_prob, double hot_theta = 0.4);

    /** Draw a rank in [0, n); ranks below hotItems() are hot. */
    std::uint64_t sample(Rng &rng) const;

    /** Split sample (see ZipfSampler::begin): all draws happen in
     *  begin(), in sample()'s order; finish() only reads the
     *  prefetched alias cell. */
    struct Pending {
        bool hot = false;
        std::uint64_t cold = 0;
        ZipfSampler::Pending zipf;
    };

    Pending
    begin(Rng &rng) const
    {
        if (hot_ >= n_ || rng.chance(hotProb_))
            return Pending{true, 0, hotPick_.begin(rng)};
        return Pending{false, hot_ + rng.uniformInt(n_ - hot_), {}};
    }

    std::uint64_t
    finish(const Pending &pending) const
    {
        return pending.hot ? hotPick_.finish(pending.zipf)
                           : pending.cold;
    }

    std::uint64_t items() const { return n_; }
    std::uint64_t hotItems() const { return hot_; }
    double hotProb() const { return hotProb_; }

  private:
    std::uint64_t n_;
    std::uint64_t hot_;
    double hotProb_;
    ZipfSampler hotPick_;
};

/**
 * Exact magic-number modulo: mod() returns n % d bit-for-bit, with a
 * multiply-high and one conditional subtract instead of a hardware
 * divide (~30 cycles on the workload hot path). With
 * M = floor((2^64 - 1) / d), the true ratio satisfies
 * n/d - n*M/2^64 <= n * (1 + (d-1)) / (d * 2^64) < 1 for all 64-bit
 * n and d >= 2, so mulhi(n, M) is floor(n/d) or exactly one less and
 * a single fix-up subtract restores the exact remainder (fuzzed
 * against the hardware %, including d-boundary values, in
 * test_access_pipeline.cc). Divisors are per-region constants, so
 * the magic is computed once at construction.
 */
struct FastMod {
    std::uint64_t d = 1;
    std::uint64_t M = 0;

    FastMod() = default;
    explicit FastMod(std::uint64_t divisor)
        : d(divisor), M(divisor > 1 ? ~std::uint64_t{0} / divisor : 0)
    {
    }

    std::uint64_t
    mod(std::uint64_t n) const
    {
        if (d <= 1)
            return 0;
        std::uint64_t q = static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(n) * M) >> 64);
        std::uint64_t r = n - q * d;
        if (r >= d)
            r -= d;
        return r;
    }
};

/**
 * Map a popularity rank to a block index such that consecutive hot
 * ranks cluster into macroblock-sized runs whose *order* is scattered
 * across the region. This reproduces the paper's observation that
 * macroblock locality exceeds block locality (Figure 4b vs 4a) without
 * making the hot set perfectly contiguous.
 *
 * @param rank popularity rank in [0, blocks)
 * @param blocks total number of blocks in the region
 * @param run blocks per clustered run (16 = one 1 KB macroblock)
 */
std::uint64_t scatterRank(std::uint64_t rank, std::uint64_t blocks,
                          std::uint64_t run = 16);

/**
 * scatterRank with the per-region constants precomputed: the cluster
 * count's modulo runs on a FastMod magic and the run-size divisions
 * are shifts (run is a power of two). Bit-identical to scatterRank()
 * for every rank -- regions hold one of these per sampler so the per
 * -draw cost drops from three hardware divides to one multiply-high.
 */
class RankScatterer
{
  public:
    RankScatterer(std::uint64_t blocks, std::uint64_t run = 16)
        : blocks_(blocks),
          run_(run),
          clusters_(run ? (blocks + run - 1) / run : 0),
          blocksMod_(blocks),
          clustersMod_(clusters_ ? clusters_ : 1)
    {
        runShift_ = 0;
        while ((std::uint64_t{1} << runShift_) < run)
            ++runShift_;
        runPow2_ = (run & (run - 1)) == 0 && run != 0;
    }

    std::uint64_t
    map(std::uint64_t rank) const
    {
        if (rank >= blocks_)
            rank = blocksMod_.mod(rank);
        if (blocks_ <= run_)
            return rank;
        std::uint64_t cluster, offset;
        if (runPow2_) {
            cluster = rank >> runShift_;
            offset = rank & (run_ - 1);
        } else {
            cluster = rank / run_;
            offset = rank % run_;
        }
        std::uint64_t scattered =
            clustersMod_.mod(cluster * 0x9E3779B1ull);
        std::uint64_t block = scattered * run_ + offset;
        if (block >= blocks_)
            block = blocksMod_.mod(block);
        return block;
    }

  private:
    std::uint64_t blocks_;
    std::uint64_t run_;
    std::uint64_t clusters_;
    FastMod blocksMod_;
    FastMod clustersMod_;
    unsigned runShift_ = 0;
    bool runPow2_ = false;
};

} // namespace dsp

#endif // DSP_WORKLOAD_ZIPF_HH
