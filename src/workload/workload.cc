#include "workload/workload.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dsp {

Workload::Workload(std::string name, NodeId num_nodes, double mean_work,
                   std::uint64_t seed, double episode_len)
    : name_(std::move(name)),
      numNodes_(num_nodes),
      meanWork_(mean_work),
      episodeLen_(episode_len),
      workGeo_(mean_work + 1.0),
      episodeGeo_(episode_len)
{
    dsp_assert(num_nodes > 0 && num_nodes <= maxNodes,
               "bad node count %u", num_nodes);
    dsp_assert(mean_work >= 0.0, "mean work must be non-negative");
    dsp_assert(episode_len >= 1.0, "episode length must be >= 1");
    procs_.reserve(num_nodes);
    for (NodeId p = 0; p < num_nodes; ++p)
        procs_.emplace_back(Rng(seed, /* stream */ p + 1), p);
}

void
Workload::addRegion(std::unique_ptr<Region> region, double weight)
{
    dsp_assert(weight > 0.0, "region weight must be positive");
    double prev = cumWeights_.empty() ? 0.0 : cumWeights_.back();
    regions_.push_back(std::move(region));
    cumWeights_.push_back(prev + weight);
}

std::size_t
Workload::pickRegion(Rng &rng) const
{
    dsp_assert(!regions_.empty(), "workload '%s' has no regions",
               name_.c_str());
    double u = rng.uniformReal() * cumWeights_.back();
    // Linear scan: region counts are single digit.
    for (std::size_t i = 0; i < cumWeights_.size(); ++i)
        if (u < cumWeights_[i])
            return i;
    return cumWeights_.size() - 1;
}

void
Workload::refill(ProcState &st)
{
    st.buf.resize(refillBatch_);

    // Batched generation with the per-ref overheads hoisted out of
    // the inner loop: the RNG state lives in a local for the whole
    // batch (one load/store per refill instead of per draw), and refs
    // are generated an *episode chunk* at a time so the region
    // dispatch happens once per chunk, not once per ref. Every draw
    // happens in exactly the order the one-ref-at-a-time generator
    // made it -- chunk boundaries coincide with the episode draws --
    // so the stream is draw-identical to batch=1 (pinned by the
    // batching test in test_workload.cc).
    Rng rng = st.rng;
    const bool draw_work = meanWork_ != 0.0;
    std::size_t i = 0;
    while (i < refillBatch_) {
        if (st.episodeLeft == 0) {
            st.region = pickRegion(rng);
            st.episodeLeft = episodeGeo_.sample(rng);
        }
        Region &region = *regions_[st.region];
        std::size_t run = static_cast<std::size_t>(
            std::min<std::uint64_t>(refillBatch_ - i,
                                    st.episodeLeft));
        st.episodeLeft -= run;
        const NodeId proc = st.proc;
        for (std::size_t end = i + run; i < end; ++i) {
            RegionRef ref = region.gen(proc, rng);
            MemRef &out = st.buf[i];
            out.work = draw_work
                           ? static_cast<std::uint32_t>(
                                 workGeo_.sample(rng) - 1)
                           : 0;
            out.addr = ref.addr;
            out.pc = ref.pc;
            out.write = ref.write;
        }
    }
    st.rng = rng;
    st.bufPos = 0;
}

Addr
Workload::totalFootprint() const
{
    Addr total = 0;
    for (const auto &region : regions_)
        total += region->bytes();
    return total;
}

} // namespace dsp
