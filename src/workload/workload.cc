#include "workload/workload.hh"

#include "sim/logging.hh"

namespace dsp {

Workload::Workload(std::string name, NodeId num_nodes, double mean_work,
                   std::uint64_t seed, double episode_len)
    : name_(std::move(name)),
      numNodes_(num_nodes),
      meanWork_(mean_work),
      episodeLen_(episode_len),
      workGeo_(mean_work + 1.0),
      episodeGeo_(episode_len)
{
    dsp_assert(num_nodes > 0 && num_nodes <= maxNodes,
               "bad node count %u", num_nodes);
    dsp_assert(mean_work >= 0.0, "mean work must be non-negative");
    dsp_assert(episode_len >= 1.0, "episode length must be >= 1");
    procs_.reserve(num_nodes);
    for (NodeId p = 0; p < num_nodes; ++p)
        procs_.emplace_back(Rng(seed, /* stream */ p + 1), p);
}

void
Workload::addRegion(std::unique_ptr<Region> region, double weight)
{
    dsp_assert(weight > 0.0, "region weight must be positive");
    double prev = cumWeights_.empty() ? 0.0 : cumWeights_.back();
    regions_.push_back(std::move(region));
    cumWeights_.push_back(prev + weight);
}

std::size_t
Workload::pickRegion(Rng &rng) const
{
    dsp_assert(!regions_.empty(), "workload '%s' has no regions",
               name_.c_str());
    double u = rng.uniformReal() * cumWeights_.back();
    // Linear scan: region counts are single digit.
    for (std::size_t i = 0; i < cumWeights_.size(); ++i)
        if (u < cumWeights_[i])
            return i;
    return cumWeights_.size() - 1;
}

MemRef
Workload::genOne(ProcState &st)
{
    if (st.episodeLeft == 0) {
        st.region = pickRegion(st.rng);
        st.episodeLeft = episodeGeo_.sample(st.rng);
    }
    --st.episodeLeft;

    RegionRef ref = regions_[st.region]->gen(st.proc, st.rng);

    MemRef out;
    out.work = meanWork_ == 0.0
                   ? 0
                   : static_cast<std::uint32_t>(
                         workGeo_.sample(st.rng) - 1);
    out.addr = ref.addr;
    out.pc = ref.pc;
    out.write = ref.write;
    return out;
}

void
Workload::refill(ProcState &st)
{
    st.buf.resize(refillBatch_);
    for (MemRef &ref : st.buf)
        ref = genOne(st);
    st.bufPos = 0;
}

Addr
Workload::totalFootprint() const
{
    Addr total = 0;
    for (const auto &region : regions_)
        total += region->bytes();
    return total;
}

} // namespace dsp
