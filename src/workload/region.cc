#include "workload/region.hh"

#include "sim/logging.hh"

namespace dsp {

namespace {

/** Fixed virtual text segment where synthetic PCs live. */
constexpr Addr pcSegmentBase = 0x100000000ull;

/** Each region gets its own PC window so pools never overlap. */
constexpr Addr pcWindowBytes = 0x1000000ull;  // 16 MB of text per region

Addr
pcWindowFor(Addr region_base)
{
    // Derive a stable window index from the region's data base address.
    return pcSegmentBase + (region_base / pcWindowBytes) * pcWindowBytes;
}

} // namespace

Region::Region(const Params &params, NodeId num_nodes)
    : name_(params.name),
      base_(params.base),
      bytes_(params.bytes),
      numNodes_(num_nodes),
      pcBase_(pcWindowFor(params.base)),
      pcSampler_(params.pcSites ? params.pcSites : 1, params.pcTheta)
{
    dsp_assert(bytes_ >= blockBytes && bytes_ % blockBytes == 0,
               "region '%s' size %llu not a positive multiple of 64",
               name_.c_str(),
               static_cast<unsigned long long>(bytes_));
    dsp_assert(num_nodes > 0, "region needs at least one node");
}

Addr
Region::addrOf(std::uint64_t block_index, Rng &rng) const
{
    return addrAt(block_index, wordOffset(rng));
}

Addr
Region::addrAt(std::uint64_t block_index, Addr word) const
{
    dsp_assert(block_index < blocks(),
               "block index %llu outside region '%s'",
               static_cast<unsigned long long>(block_index),
               name_.c_str());
    return base_ + block_index * blockBytes + word;
}

Addr
Region::pcFor(Rng &rng) const
{
    return pcBase_ + pcSampler_.sample(rng) * 4;
}

// ---------------------------------------------------------------------
// PrivateRegion

PrivateRegion::PrivateRegion(const Params &params, NodeId num_nodes,
                             const Config &cfg)
    : Region(params, num_nodes),
      cfg_(cfg),
      sliceBlocks_(blocks() / num_nodes),
      slicePick_(sliceBlocks_ ? sliceBlocks_ : 1, cfg.hotBlocks,
                 cfg.hotProb),
      scatter_(sliceBlocks_ ? sliceBlocks_ : 1),
      procs_(num_nodes)
{
    dsp_assert(sliceBlocks_ > 0,
               "private region too small for %u nodes", num_nodes);
}

RegionRef
PrivateRegion::gen(NodeId p, Rng &rng)
{
    ProcState &st = procs_[p];
    std::uint64_t slice_base = static_cast<std::uint64_t>(p)
                             * sliceBlocks_;
    std::uint64_t block;

    if (st.refsLeftInBlock > 0) {
        // Still sweeping the current block (sub-block reuse).
        --st.refsLeftInBlock;
        block = slice_base + st.seqCursor;
    } else if (st.seqRemaining > 0) {
        --st.seqRemaining;
        if (++st.seqCursor >= sliceBlocks_)
            st.seqCursor = 0;
        st.refsLeftInBlock =
            cfg_.seqRefsPerBlock > 0 ? cfg_.seqRefsPerBlock - 1 : 0;
        block = slice_base + st.seqCursor;
    } else if (rng.chance(cfg_.seqProb)) {
        st.seqCursor = rng.uniformInt(sliceBlocks_);
        st.seqRemaining = rng.geometric(cfg_.seqRunBlocks);
        st.refsLeftInBlock =
            cfg_.seqRefsPerBlock > 0 ? cfg_.seqRefsPerBlock - 1 : 0;
        block = slice_base + st.seqCursor;
    } else {
        // Draw pipelining (see ReadMostlyRegion::gen): the alias-cell
        // read resolves behind the word/pc/write draws.
        WorkingSetSampler::Pending pending = slicePick_.begin(rng);
        Addr word = wordOffset(rng);
        Addr pc = pcFor(rng);
        bool write = rng.chance(cfg_.writeFraction);
        block = slice_base + scatter_.map(slicePick_.finish(pending));
        return RegionRef{addrAt(block, word), pc, write};
    }

    return RegionRef{addrOf(block, rng), pcFor(rng),
                     rng.chance(cfg_.writeFraction)};
}

// ---------------------------------------------------------------------
// ReadMostlyRegion

ReadMostlyRegion::ReadMostlyRegion(const Params &params,
                                   NodeId num_nodes, const Config &cfg)
    : Region(params, num_nodes),
      cfg_(cfg),
      pick_(blocks(), cfg.hotBlocks, cfg.hotProb),
      scatter_(blocks())
{
}

RegionRef
ReadMostlyRegion::gen(NodeId /* p */, Rng &rng)
{
    // Draw pipelining: the popularity draw happens first (begin),
    // exactly as sample() would make it; its alias-cell read resolves
    // last, hidden behind the word/pc/write draws. Draw order is
    // identical to the one-shot form (braced-init-lists evaluate
    // left to right), so the stream is bit-identical.
    WorkingSetSampler::Pending pending = pick_.begin(rng);
    Addr word = wordOffset(rng);
    Addr pc = pcFor(rng);
    bool write = rng.chance(cfg_.writeFraction);
    std::uint64_t block = scatter_.map(pick_.finish(pending));
    return RegionRef{addrAt(block, word), pc, write};
}

// ---------------------------------------------------------------------
// MigratoryRegion

MigratoryRegion::MigratoryRegion(const Params &params, NodeId num_nodes,
                                 const Config &cfg)
    : Region(params, num_nodes),
      cfg_(cfg),
      items_(blocks() / cfg.itemBlocks),
      itemPick_(items_ ? items_ : 1, cfg.theta),
      procs_(num_nodes)
{
    dsp_assert(items_ > 0, "migratory region smaller than one item");
}

RegionRef
MigratoryRegion::gen(NodeId p, Rng &rng)
{
    ProcState &st = procs_[p];
    if (st.opsLeft == 0) {
        // Acquire a new record. With pairAffinity, favour the slice of
        // items this processor's pair ping-pongs on.
        std::uint64_t item = itemPick_.sample(rng);
        if (cfg_.pairAffinity > 0.0 && numNodes() >= 2 &&
            rng.chance(cfg_.pairAffinity)) {
            std::uint64_t pairs = numNodes() / 2;
            std::uint64_t pair = p / 2;
            // Keep the item's popularity rank but steer it into the
            // pair's congruence class so only {2k, 2k+1} touch it.
            item = item - (item % pairs) + pair;
            if (item >= items_)
                item %= items_;
        }
        st.item = item;
        st.opsLeft = cfg_.burstLen;
    }

    --st.opsLeft;
    // Read the record first, write it back at the end of the burst:
    // the canonical migratory read-then-write sequence.
    bool write = st.opsLeft < (cfg_.burstLen + 1) / 2;
    std::uint64_t first = st.item * cfg_.itemBlocks;
    std::uint64_t block = first + rng.uniformInt(cfg_.itemBlocks);
    return RegionRef{addrOf(block, rng), pcFor(rng), write};
}

// ---------------------------------------------------------------------
// ProducerConsumerRegion

ProducerConsumerRegion::ProducerConsumerRegion(const Params &params,
                                               NodeId num_nodes,
                                               const Config &cfg)
    : Region(params, num_nodes),
      cfg_(cfg),
      buffers_(blocks() / cfg.bufferBlocks),
      buffersPerProc_(buffers_ / num_nodes),
      procs_(num_nodes)
{
    dsp_assert(buffersPerProc_ > 0,
               "producer-consumer region needs >= 1 buffer per node");
    // Force a fresh buffer pick on each processor's first reference
    // (otherwise everyone would start producing into buffer 0).
    for (ProcState &st : procs_)
        st.cursor = cfg_.bufferBlocks;
}

RegionRef
ProducerConsumerRegion::gen(NodeId p, Rng &rng)
{
    ProcState &st = procs_[p];
    if (st.refsLeftInBlock > 0) {
        --st.refsLeftInBlock;
        std::uint64_t cur = st.buffer * cfg_.bufferBlocks
                          + (st.cursor - 1);
        return RegionRef{addrOf(cur, rng), pcFor(rng), !st.consuming};
    }
    if (st.cursor >= cfg_.bufferBlocks) {
        // Finished a pass over a buffer; pick the next pass.
        st.cursor = 0;
        st.consuming = rng.chance(cfg_.consumeFraction);
        NodeId owner = p;
        if (st.consuming && numNodes() > 1) {
            // Read a buffer produced by a nearby processor.
            std::uint32_t dist =
                1 + rng.uniformInt(cfg_.neighborDist);
            owner = (p + dist) % numNodes();
        }
        std::uint64_t which = rng.uniformInt(buffersPerProc_);
        st.buffer = which * numNodes() + owner;
    }

    std::uint64_t block = st.buffer * cfg_.bufferBlocks + st.cursor;
    ++st.cursor;
    st.refsLeftInBlock =
        cfg_.refsPerBlock > 0 ? cfg_.refsPerBlock - 1 : 0;
    return RegionRef{addrOf(block, rng), pcFor(rng), !st.consuming};
}

// ---------------------------------------------------------------------
// GroupRegion

GroupRegion::GroupRegion(const Params &params, NodeId num_nodes,
                         const Config &cfg)
    : Region(params, num_nodes),
      cfg_(cfg),
      groups_(num_nodes / cfg.groupSize),
      sliceBlocks_(0)
{
    dsp_assert(cfg.groupSize > 0 && num_nodes % cfg.groupSize == 0,
               "group size %u must divide node count %u",
               cfg.groupSize, num_nodes);
    sliceBlocks_ = blocks() / groups_;
    dsp_assert(sliceBlocks_ > 0, "group region too small");
    slicePick_ = std::make_unique<WorkingSetSampler>(
        sliceBlocks_, cfg.hotBlocks, cfg.hotProb);
    scatter_ = RankScatterer(sliceBlocks_);
}

RegionRef
GroupRegion::gen(NodeId p, Rng &rng)
{
    NodeId group = p / cfg_.groupSize;
    // Draw pipelining (see ReadMostlyRegion::gen).
    WorkingSetSampler::Pending pending = slicePick_->begin(rng);
    Addr word = wordOffset(rng);
    Addr pc = pcFor(rng);
    bool write = rng.chance(cfg_.writeFraction);
    std::uint64_t block = static_cast<std::uint64_t>(group)
                        * sliceBlocks_
                        + scatter_.map(slicePick_->finish(pending));
    return RegionRef{addrAt(block, word), pc, write};
}

// ---------------------------------------------------------------------
// HotRegion

HotRegion::HotRegion(const Params &params, NodeId num_nodes,
                     const Config &cfg)
    : Region(params, num_nodes),
      cfg_(cfg),
      pick_(blocks(), cfg.theta),
      scatter_(blocks())
{
}

RegionRef
HotRegion::gen(NodeId /* p */, Rng &rng)
{
    // Draw pipelining (see ReadMostlyRegion::gen).
    ZipfSampler::Pending pending = pick_.begin(rng);
    Addr word = wordOffset(rng);
    Addr pc = pcFor(rng);
    bool write = rng.chance(cfg_.writeFraction);
    std::uint64_t block = scatter_.map(pick_.finish(pending));
    return RegionRef{addrAt(block, word), pc, write};
}

} // namespace dsp
