/**
 * @file
 * Sharing-pattern regions: the building blocks of synthetic workloads.
 *
 * Each region models one archetypal data structure class observed in
 * the paper's workload analysis (Section 2): private data, read-mostly
 * shared data, migratory (lock-protected) records, producer-consumer
 * buffers, group-shared partitions, and widely-shared hot blocks.
 * A workload is a weighted mixture of regions (see workload.hh).
 */

#ifndef DSP_WORKLOAD_REGION_HH
#define DSP_WORKLOAD_REGION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.hh"
#include "mem/types.hh"
#include "sim/rng.hh"
#include "workload/zipf.hh"

namespace dsp {

/** One generated memory reference (before cache filtering). */
struct RegionRef {
    Addr addr = 0;
    Addr pc = 0;
    bool write = false;
};

/**
 * Base class: a contiguous address range with a pool of static
 * instruction addresses (PCs) whose popularity is Zipf-skewed, matching
 * Figure 4(c).
 */
class Region
{
  public:
    /** Common construction parameters. */
    struct Params {
        std::string name;
        Addr base = 0;              ///< first byte of the region
        Addr bytes = 0;             ///< region size (multiple of 64)
        std::uint32_t pcSites = 64; ///< distinct miss PCs in this region
        double pcTheta = 0.6;       ///< PC popularity skew
    };

    Region(const Params &params, NodeId num_nodes);
    virtual ~Region() = default;

    Region(const Region &) = delete;
    Region &operator=(const Region &) = delete;

    /** Generate the next reference for processor p. */
    virtual RegionRef gen(NodeId p, Rng &rng) = 0;

    const std::string &name() const { return name_; }
    Addr base() const { return base_; }
    Addr bytes() const { return bytes_; }
    std::uint64_t blocks() const { return bytes_ / blockBytes; }
    NodeId numNodes() const { return numNodes_; }

    /**
     * Checkpoint mutable generator state. Samplers and geometry are
     * config-derived (rebuilt identically on construction), so only
     * the per-processor cursors need capturing; regions without any
     * (ReadMostly, Group, Hot) inherit the no-ops.
     */
    virtual void ckptSave(ckpt::Writer &w) const { (void)w; }
    virtual void ckptLoad(ckpt::Reader &r) { (void)r; }

  protected:
    /** Byte address of block index b within the region, with a random
     *  word offset so sub-block addresses look realistic. */
    Addr addrOf(std::uint64_t block_index, Rng &rng) const;

    /** addrOf() split for draw pipelining: the word-offset draw ... */
    Addr
    wordOffset(Rng &rng) const
    {
        return rng.uniformInt(blockBytes / 8) * 8;
    }

    /** ... and the address computation with the offset pre-drawn, so
     *  a pending popularity draw (ZipfSampler::begin) can resolve
     *  after the region's other draws. */
    Addr addrAt(std::uint64_t block_index, Addr word) const;

    /** Draw a PC from this region's static-instruction pool. */
    Addr pcFor(Rng &rng) const;

  private:
    std::string name_;
    Addr base_;
    Addr bytes_;
    NodeId numNodes_;
    Addr pcBase_;
    ZipfSampler pcSampler_;
};

/**
 * Thread-private data (stack, per-connection scratch, thread heap).
 * Each processor owns an equal slice; accesses mix sequential streaming
 * with a Zipf-hot working set. Produces capacity misses serviced by
 * memory -- never cache-to-cache traffic.
 */
class PrivateRegion : public Region
{
  public:
    struct Config {
        std::uint64_t hotBlocks = 8192;  ///< per-slice hot working set
        double hotProb = 0.995;          ///< hit probability knob
        double writeFraction = 0.3;
        double seqProb = 0.05;   ///< chance to start a streaming run
        double seqRunBlocks = 16; ///< mean streaming run length
        /** Consecutive references per block while streaming: a sweep
         *  over doubles touches each 64 B block ~8 times, and those
         *  repeats hit the L1. */
        std::uint32_t seqRefsPerBlock = 8;
    };

    PrivateRegion(const Params &params, NodeId num_nodes,
                  const Config &cfg);

    RegionRef gen(NodeId p, Rng &rng) override;

    void ckptSave(ckpt::Writer &w) const override { w.podVec(procs_); }

    void
    ckptLoad(ckpt::Reader &r) override
    {
        auto v = r.podVec<ProcState>();
        dsp_assert(v.size() == procs_.size(),
                   "region proc-state count mismatch");
        procs_ = std::move(v);
    }

  private:
    Config cfg_;
    std::uint64_t sliceBlocks_;
    WorkingSetSampler slicePick_;
    RankScatterer scatter_;

    struct ProcState {
        std::uint64_t seqCursor = 0;
        std::uint64_t seqRemaining = 0;  ///< blocks left in the run
        std::uint32_t refsLeftInBlock = 0;
    };
    std::vector<ProcState> procs_;
};

/**
 * Read-mostly shared data (file cache, code-like tables, catalog
 * pages). All processors read a common Zipf-skewed set; rare writes
 * invalidate all sharers, producing bursts of widely-shared misses
 * (the all-16-processors mass in Figure 3b).
 */
class ReadMostlyRegion : public Region
{
  public:
    struct Config {
        std::uint64_t hotBlocks = 16384;  ///< shared hot working set
        double hotProb = 0.995;
        double writeFraction = 0.02;
    };

    ReadMostlyRegion(const Params &params, NodeId num_nodes,
                     const Config &cfg);

    RegionRef gen(NodeId p, Rng &rng) override;

  private:
    Config cfg_;
    WorkingSetSampler pick_;
    RankScatterer scatter_;
};

/**
 * Migratory data: records accessed read-then-write under a lock
 * (database rows, kernel objects). Ownership migrates between
 * processors; with `pairAffinity`, items are mostly bounced between a
 * fixed pair, which the Owner predictor captures well (Section 3.3).
 */
class MigratoryRegion : public Region
{
  public:
    struct Config {
        std::uint32_t itemBlocks = 2;  ///< blocks per record
        std::uint32_t burstLen = 4;    ///< accesses per lock hold
        double theta = 0.6;            ///< item popularity skew
        double pairAffinity = 0.0;     ///< fraction of picks from the
                                       ///< processor pair's partition
    };

    MigratoryRegion(const Params &params, NodeId num_nodes,
                    const Config &cfg);

    RegionRef gen(NodeId p, Rng &rng) override;

    void ckptSave(ckpt::Writer &w) const override { w.podVec(procs_); }

    void
    ckptLoad(ckpt::Reader &r) override
    {
        auto v = r.podVec<ProcState>();
        dsp_assert(v.size() == procs_.size(),
                   "region proc-state count mismatch");
        procs_ = std::move(v);
    }

  private:
    Config cfg_;
    std::uint64_t items_;
    ZipfSampler itemPick_;

    struct ProcState {
        std::uint64_t item = 0;
        std::uint32_t opsLeft = 0;
    };
    std::vector<ProcState> procs_;
};

/**
 * Producer-consumer buffers (network packets, pipeline stages, Ocean's
 * column-blocked boundary rows). Each processor alternates between
 * writing a buffer it owns and reading a buffer owned by a nearby
 * processor. Sequential whole-buffer passes give the strong macroblock
 * spatial locality of Figure 4(b).
 */
class ProducerConsumerRegion : public Region
{
  public:
    struct Config {
        std::uint32_t bufferBlocks = 16;  ///< 16 blocks = 1 KB buffer
        std::uint32_t neighborDist = 1;   ///< consume from p +/- dist
        double consumeFraction = 0.5;     ///< fraction of passes reading
        /** References per block within a pass (sub-block reuse hits
         *  the L1; only the first touch reaches the L2). */
        std::uint32_t refsPerBlock = 8;
    };

    ProducerConsumerRegion(const Params &params, NodeId num_nodes,
                           const Config &cfg);

    RegionRef gen(NodeId p, Rng &rng) override;

    void ckptSave(ckpt::Writer &w) const override { w.podVec(procs_); }

    void
    ckptLoad(ckpt::Reader &r) override
    {
        auto v = r.podVec<ProcState>();
        dsp_assert(v.size() == procs_.size(),
                   "region proc-state count mismatch");
        procs_ = std::move(v);
    }

  private:
    Config cfg_;
    std::uint64_t buffers_;
    std::uint64_t buffersPerProc_;

    struct ProcState {
        bool consuming = false;
        std::uint64_t buffer = 0;
        std::uint32_t cursor = 0;
        std::uint32_t refsLeftInBlock = 0;
    };
    std::vector<ProcState> procs_;
};

/**
 * Group-shared data: a subset of processors (a logical partition,
 * e.g., warehouses in SPECjbb or a database partition) shares each
 * slice read-write. The Group predictor targets exactly this pattern.
 */
class GroupRegion : public Region
{
  public:
    struct Config {
        NodeId groupSize = 4;
        std::uint64_t hotBlocks = 16384;  ///< per-group hot working set
        double hotProb = 0.99;
        double writeFraction = 0.3;
    };

    GroupRegion(const Params &params, NodeId num_nodes,
                const Config &cfg);

    RegionRef gen(NodeId p, Rng &rng) override;

  private:
    Config cfg_;
    NodeId groups_;
    std::uint64_t sliceBlocks_;
    std::unique_ptr<WorkingSetSampler> slicePick_;
    RankScatterer scatter_{1};
};

/**
 * Widely-shared hot blocks: locks, allocator metadata, global
 * counters. Small, extremely skewed, with a high write fraction --
 * the classic broadcast-friendly traffic that makes snooping fast.
 */
class HotRegion : public Region
{
  public:
    struct Config {
        double theta = 0.9;
        double writeFraction = 0.5;
    };

    HotRegion(const Params &params, NodeId num_nodes,
              const Config &cfg);

    RegionRef gen(NodeId p, Rng &rng) override;

  private:
    Config cfg_;
    ZipfSampler pick_;
    RankScatterer scatter_;
};

} // namespace dsp

#endif // DSP_WORKLOAD_REGION_HH
