/**
 * @file
 * A workload is a weighted mixture of sharing-pattern regions plus an
 * instruction-work model. Each of the 16 simulated processors pulls an
 * independent, deterministic reference stream from it.
 */

#ifndef DSP_WORKLOAD_WORKLOAD_HH
#define DSP_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/types.hh"
#include "sim/rng.hh"
#include "workload/region.hh"

namespace dsp {

/** One memory reference with its preceding non-memory work. */
struct MemRef {
    std::uint32_t work = 0;  ///< non-memory instructions before this ref
    Addr addr = 0;
    Addr pc = 0;
    bool write = false;
};

/**
 * Weighted mixture of regions with per-processor episode structure:
 * a processor stays in one region for a geometrically-distributed
 * number of references (preserving burst locality) before re-drawing.
 */
class Workload
{
  public:
    /**
     * @param name workload name (Table 1 benchmark name)
     * @param num_nodes processors in the system
     * @param mean_work mean non-memory instructions per reference
     * @param seed RNG seed; change for perturbed re-runs (Section 5.2)
     * @param episode_len mean references per region episode
     */
    Workload(std::string name, NodeId num_nodes, double mean_work,
             std::uint64_t seed, double episode_len = 8.0);

    /** Append a region with a relative selection weight. */
    void addRegion(std::unique_ptr<Region> region, double weight);

    /** Next reference for processor p. Deterministic per (seed, p). */
    MemRef next(NodeId p);

    const std::string &name() const { return name_; }
    NodeId numNodes() const { return numNodes_; }
    double meanWork() const { return meanWork_; }
    std::size_t regionCount() const { return regions_.size(); }
    const Region &region(std::size_t i) const { return *regions_[i]; }

    /** Sum of all region footprints, in bytes. */
    Addr totalFootprint() const;

  private:
    std::size_t pickRegion(Rng &rng) const;

    std::string name_;
    NodeId numNodes_;
    double meanWork_;
    double episodeLen_;
    /** Precomputed geometric draws (log-free on the common path). */
    GeometricSampler workGeo_;
    GeometricSampler episodeGeo_;

    std::vector<std::unique_ptr<Region>> regions_;
    std::vector<double> cumWeights_;

    struct ProcState {
        Rng rng;
        std::size_t region = 0;
        std::uint64_t episodeLeft = 0;

        explicit ProcState(Rng r) : rng(r) {}
    };
    std::vector<ProcState> procs_;
};

} // namespace dsp

#endif // DSP_WORKLOAD_WORKLOAD_HH
