/**
 * @file
 * A workload is a weighted mixture of sharing-pattern regions plus an
 * instruction-work model. Each of the 16 simulated processors pulls an
 * independent, deterministic reference stream from it.
 */

#ifndef DSP_WORKLOAD_WORKLOAD_HH
#define DSP_WORKLOAD_WORKLOAD_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.hh"
#include "mem/types.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/region.hh"

namespace dsp {

/** One memory reference with its preceding non-memory work. */
struct MemRef {
    std::uint32_t work = 0;  ///< non-memory instructions before this ref
    Addr addr = 0;
    Addr pc = 0;
    bool write = false;
};

/**
 * Weighted mixture of regions with per-processor episode structure:
 * a processor stays in one region for a geometrically-distributed
 * number of references (preserving burst locality) before re-drawing.
 */
class Workload
{
  public:
    /**
     * @param name workload name (Table 1 benchmark name)
     * @param num_nodes processors in the system
     * @param mean_work mean non-memory instructions per reference
     * @param seed RNG seed; change for perturbed re-runs (Section 5.2)
     * @param episode_len mean references per region episode
     */
    Workload(std::string name, NodeId num_nodes, double mean_work,
             std::uint64_t seed, double episode_len = 8.0);

    /** Append a region with a relative selection weight. */
    void addRegion(std::unique_ptr<Region> region, double weight);

    /**
     * Next reference for processor p. Deterministic per (seed, p).
     *
     * References are generated refillBatch() at a time into a per
     * -processor buffer: the episode/region/work draws for a whole
     * batch run back to back with the generator state hot, instead of
     * re-entering through the CPU model for every reference. Each
     * processor's stream is independent and generated strictly in
     * order, so the refill changes no draw (pinned by a test).
     */
    MemRef
    next(NodeId p)
    {
        dsp_assert(p < numNodes_, "processor %u out of range", p);
        ProcState &st = procs_[p];
        if (st.bufPos == st.buf.size())
            refill(st);
        ++st.consumed;
        return st.buf[st.bufPos++];
    }

    /** References handed out to processor p so far. A violation repro
     *  bundle records these so a replay can bound its progress. */
    std::uint64_t
    consumed(NodeId p) const
    {
        return procs_[p].consumed;
    }

    /**
     * The next reference p will receive, if it is already buffered
     * (null at refill boundaries, i.e. for 1 in refillBatch refs).
     * Pure lookahead: does not advance the stream. CPU models use it
     * to issue host prefetches for the next access's cache sets.
     */
    const MemRef *
    peek(NodeId p) const
    {
        const ProcState &st = procs_[p];
        return st.bufPos < st.buf.size() ? &st.buf[st.bufPos]
                                         : nullptr;
    }

    /** References generated per refill (test knob; default 64). */
    std::size_t refillBatch() const { return refillBatch_; }

    /**
     * Change the refill granularity (1 = generate on demand, exactly
     * the pre-batching behaviour). Only affects *when* references are
     * generated, never their values; callable mid-stream (buffered
     * references drain first).
     */
    void
    setRefillBatch(std::size_t batch)
    {
        dsp_assert(batch >= 1, "refill batch must be >= 1");
        refillBatch_ = batch;
    }

    const std::string &name() const { return name_; }
    NodeId numNodes() const { return numNodes_; }
    double meanWork() const { return meanWork_; }
    std::size_t regionCount() const { return regions_.size(); }
    const Region &region(std::size_t i) const { return *regions_[i]; }

    /** Sum of all region footprints, in bytes. */
    Addr totalFootprint() const;

    /**
     * Checkpoint every per-processor stream: RNG state, episode
     * cursor, and the refill buffer verbatim. Restoring the buffer
     * (rather than regenerating) keeps the stream byte-identical even
     * if the restored run uses a different refill batch.
     */
    void
    ckptSave(ckpt::Writer &w) const
    {
        w.section(0x574b4c44u);  // "WKLD"
        w.u64(procs_.size());
        for (const ProcState &st : procs_) {
            for (std::uint64_t v : st.rng.ckptState())
                w.u64(v);
            w.u64(st.region);
            w.u64(st.episodeLeft);
            w.podVec(st.buf);
            w.u64(st.bufPos);
            w.u64(st.consumed);
        }
        w.u64(regions_.size());
        for (const auto &region : regions_)
            region->ckptSave(w);
    }

    void
    ckptLoad(ckpt::Reader &r)
    {
        r.section(0x574b4c44u);
        dsp_assert(r.u64() == procs_.size(),
                   "checkpoint workload processor count mismatch");
        for (ProcState &st : procs_) {
            std::array<std::uint64_t, 4> s;
            for (std::uint64_t &v : s)
                v = r.u64();
            st.rng.ckptRestore(s);
            st.region = static_cast<std::size_t>(r.u64());
            st.episodeLeft = r.u64();
            st.buf = r.podVec<MemRef>();
            st.bufPos = static_cast<std::size_t>(r.u64());
            st.consumed = r.u64();
        }
        dsp_assert(r.u64() == regions_.size(),
                   "checkpoint workload region count mismatch");
        for (auto &region : regions_)
            region->ckptLoad(r);
    }

  private:
    struct ProcState;

    std::size_t pickRegion(Rng &rng) const;

    /** Refill a processor's buffer with the next refillBatch_ refs,
     *  episode-chunked with the RNG state hoisted into locals (see
     *  the definition); draw-identical to one-at-a-time generation. */
    void refill(ProcState &st);

    std::string name_;
    NodeId numNodes_;
    double meanWork_;
    double episodeLen_;
    /** Precomputed geometric draws (log-free on the common path). */
    GeometricSampler workGeo_;
    GeometricSampler episodeGeo_;

    std::vector<std::unique_ptr<Region>> regions_;
    std::vector<double> cumWeights_;

    struct ProcState {
        Rng rng;
        NodeId proc;
        std::size_t region = 0;
        std::uint64_t episodeLeft = 0;
        /** Pre-generated references; refilled when drained. */
        std::vector<MemRef> buf;
        std::size_t bufPos = 0;
        /** References handed out (not merely buffered). */
        std::uint64_t consumed = 0;

        ProcState(Rng r, NodeId p) : rng(r), proc(p) {}
    };
    std::size_t refillBatch_ = 64;
    std::vector<ProcState> procs_;
};

} // namespace dsp

#endif // DSP_WORKLOAD_WORKLOAD_HH
