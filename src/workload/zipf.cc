#include "workload/zipf.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace dsp {

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    dsp_assert(n > 0, "zipf sampler needs at least one item");
    dsp_assert(theta >= 0.0 && theta <= 2.0,
               "zipf theta %.3f outside [0,2]", theta);
    if (theta == 0.0)
        return;  // uniform: no table needed

    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        sum += std::pow(static_cast<double>(i + 1), -theta);
        cdf_[i] = sum;
    }
    double inv = 1.0 / sum;
    for (double &v : cdf_)
        v *= inv;
    cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (cdf_.empty())
        return rng.uniformInt(n_);
    double u = rng.uniformReal();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

double
ZipfSampler::headMass(std::uint64_t k) const
{
    if (k == 0)
        return 0.0;
    if (k >= n_)
        return 1.0;
    if (cdf_.empty())
        return static_cast<double>(k) / static_cast<double>(n_);
    return cdf_[k - 1];
}

WorkingSetSampler::WorkingSetSampler(std::uint64_t n,
                                     std::uint64_t hot_items,
                                     double hot_prob, double hot_theta)
    : n_(n),
      hot_(hot_items < n ? (hot_items > 0 ? hot_items : 1) : n),
      hotProb_(hot_prob),
      hotPick_(hot_, hot_theta)
{
    dsp_assert(n > 0, "working set sampler needs items");
    dsp_assert(hot_prob >= 0.0 && hot_prob <= 1.0,
               "hot probability %.3f outside [0,1]", hot_prob);
}

std::uint64_t
WorkingSetSampler::sample(Rng &rng) const
{
    if (hot_ >= n_ || rng.chance(hotProb_))
        return hotPick_.sample(rng);
    // Cold tail: uniform over the non-hot remainder, so cold accesses
    // sweep the full footprint and almost always miss.
    return hot_ + rng.uniformInt(n_ - hot_);
}

std::uint64_t
scatterRank(std::uint64_t rank, std::uint64_t blocks, std::uint64_t run)
{
    dsp_assert(blocks > 0, "scatterRank over empty region");
    if (rank >= blocks)
        rank %= blocks;
    if (blocks <= run)
        return rank;

    // Fill one `run`-block cluster at a time; clusters are visited in a
    // multiplicative-permutation order so the hot clusters spread over
    // the whole region.
    std::uint64_t clusters = (blocks + run - 1) / run;
    std::uint64_t cluster = rank / run;
    std::uint64_t offset = rank % run;
    // 0x9E3779B1 is odd, hence coprime with any power of two; for
    // non-power-of-two cluster counts the modulo still permutes well
    // enough for our purposes (collisions only merge popularity mass).
    std::uint64_t scattered = (cluster * 0x9E3779B1ull) % clusters;
    std::uint64_t block = scattered * run + offset;
    return block % blocks;
}

} // namespace dsp
