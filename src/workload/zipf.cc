#include "workload/zipf.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace dsp {

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    dsp_assert(n > 0, "zipf sampler needs at least one item");
    dsp_assert(theta >= 0.0 && theta <= 2.0,
               "zipf theta %.3f outside [0,2]", theta);
    if (theta == 0.0)
        return;  // uniform: no table needed

    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        sum += std::pow(static_cast<double>(i + 1), -theta);
        cdf_[i] = sum;
    }
    double inv = 1.0 / sum;
    for (double &v : cdf_)
        v *= inv;
    cdf_.back() = 1.0;  // guard against rounding

    if (n > aliasMaxItems)
        return;

    // Walker alias construction: split the mass into n equal columns,
    // each covered by at most two items.
    alias_.resize(n);
    std::vector<double> scaled(n);  // P(i) * n
    double prev = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        scaled[i] = (cdf_[i] - prev) * static_cast<double>(n);
        prev = cdf_[i];
    }
    std::vector<std::uint64_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        (scaled[i] < 1.0 ? small : large).push_back(i);
    while (!small.empty() && !large.empty()) {
        std::uint64_t s = small.back();
        std::uint64_t l = large.back();
        small.pop_back();
        large.pop_back();
        alias_[s] = AliasCell{static_cast<float>(scaled[s]),
                              static_cast<std::uint32_t>(l)};
        scaled[l] -= 1.0 - scaled[s];
        (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    // Leftovers are numerically-full columns.
    for (std::uint64_t s : small)
        alias_[s] = AliasCell{1.0f, static_cast<std::uint32_t>(s)};
    for (std::uint64_t l : large)
        alias_[l] = AliasCell{1.0f, static_cast<std::uint32_t>(l)};
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (cdf_.empty())
        return rng.uniformInt(n_);
    if (!alias_.empty()) {
        // One draw covers both the column pick and the coin: the
        // integer part selects the column, the fraction is the coin.
        double u = rng.uniformReal() * static_cast<double>(n_);
        auto col = static_cast<std::uint64_t>(u);
        if (col >= n_)
            col = n_ - 1;  // guard against u == 1.0 rounding
        double coin = u - static_cast<double>(col);
        const AliasCell &cell = alias_[col];
        return coin < static_cast<double>(cell.threshold)
                   ? col
                   : cell.alias;
    }
    return sampleCdf(rng);
}

std::uint64_t
ZipfSampler::sampleCdf(Rng &rng) const
{
    double u = rng.uniformReal();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

double
ZipfSampler::headMass(std::uint64_t k) const
{
    if (k == 0)
        return 0.0;
    if (k >= n_)
        return 1.0;
    if (cdf_.empty())
        return static_cast<double>(k) / static_cast<double>(n_);
    return cdf_[k - 1];
}

WorkingSetSampler::WorkingSetSampler(std::uint64_t n,
                                     std::uint64_t hot_items,
                                     double hot_prob, double hot_theta)
    : n_(n),
      hot_(hot_items < n ? (hot_items > 0 ? hot_items : 1) : n),
      hotProb_(hot_prob),
      hotPick_(hot_, hot_theta)
{
    dsp_assert(n > 0, "working set sampler needs items");
    dsp_assert(hot_prob >= 0.0 && hot_prob <= 1.0,
               "hot probability %.3f outside [0,1]", hot_prob);
}

std::uint64_t
WorkingSetSampler::sample(Rng &rng) const
{
    if (hot_ >= n_ || rng.chance(hotProb_))
        return hotPick_.sample(rng);
    // Cold tail: uniform over the non-hot remainder, so cold accesses
    // sweep the full footprint and almost always miss.
    return hot_ + rng.uniformInt(n_ - hot_);
}

std::uint64_t
scatterRank(std::uint64_t rank, std::uint64_t blocks, std::uint64_t run)
{
    dsp_assert(blocks > 0, "scatterRank over empty region");
    if (rank >= blocks)
        rank %= blocks;
    if (blocks <= run)
        return rank;

    // Fill one `run`-block cluster at a time; clusters are visited in a
    // multiplicative-permutation order so the hot clusters spread over
    // the whole region.
    std::uint64_t clusters = (blocks + run - 1) / run;
    std::uint64_t cluster = rank / run;
    std::uint64_t offset = rank % run;
    // 0x9E3779B1 is odd, hence coprime with any power of two; for
    // non-power-of-two cluster counts the modulo still permutes well
    // enough for our purposes (collisions only merge popularity mass).
    std::uint64_t scattered = (cluster * 0x9E3779B1ull) % clusters;
    std::uint64_t block = scattered * run + offset;
    return block % blocks;
}

} // namespace dsp
