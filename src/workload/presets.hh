/**
 * @file
 * The six benchmark workloads of Table 1, expressed as region mixtures.
 *
 * Each preset is a statistical stand-in for the paper's full-system
 * workload (see DESIGN.md "Substitutions"): the mixture weights, region
 * sizes, popularity skews, and work densities are chosen so that the
 * *measured* Table 2 / Figure 2-4 statistics of the generated reference
 * stream reproduce the paper's characterization qualitatively.
 */

#ifndef DSP_WORKLOAD_PRESETS_HH
#define DSP_WORKLOAD_PRESETS_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace dsp {

/** Names of the six benchmarks, in the paper's order. */
const std::vector<std::string> &workloadNames();

/**
 * Construct a benchmark workload by name ("apache", "barnes", "ocean",
 * "oltp", "slashcode", "specjbb"; case-sensitive).
 *
 * @param name workload name
 * @param num_nodes processors (the paper evaluates 16)
 * @param seed RNG seed; vary for perturbed runs
 * @param scale footprint scale factor (1.0 = the paper's footprints;
 *        benches default to 0.25 to keep runtimes interactive)
 */
std::unique_ptr<Workload>
makeWorkload(const std::string &name, NodeId num_nodes,
             std::uint64_t seed, double scale = 0.25);

/** Individual factories (same parameters as makeWorkload). */
std::unique_ptr<Workload> makeApache(NodeId num_nodes,
                                     std::uint64_t seed, double scale);
std::unique_ptr<Workload> makeBarnes(NodeId num_nodes,
                                     std::uint64_t seed, double scale);
std::unique_ptr<Workload> makeOcean(NodeId num_nodes,
                                    std::uint64_t seed, double scale);
std::unique_ptr<Workload> makeOltp(NodeId num_nodes,
                                   std::uint64_t seed, double scale);
std::unique_ptr<Workload> makeSlashcode(NodeId num_nodes,
                                        std::uint64_t seed, double scale);
std::unique_ptr<Workload> makeSpecjbb(NodeId num_nodes,
                                      std::uint64_t seed, double scale);

} // namespace dsp

#endif // DSP_WORKLOAD_PRESETS_HH
