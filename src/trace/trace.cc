#include "trace/trace.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "sim/logging.hh"

namespace dsp {

namespace {

constexpr std::uint64_t traceMagic = 0x445350545243ull;  // "DSPTRC"
constexpr std::uint32_t traceVersion = 1;

struct TraceHeader {
    std::uint64_t magic = traceMagic;
    std::uint32_t version = traceVersion;
    std::uint32_t numNodes = 0;
    std::uint64_t totalInstructions = 0;
    std::uint64_t recordCount = 0;
    std::uint64_t warmupRecords = 0;
    std::uint64_t warmupInstructions = 0;
    char name[64] = {};
};

struct FileCloser {
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

bool
writeTrace(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f) {
        dsp_warn("cannot open '%s' for writing", path.c_str());
        return false;
    }

    TraceHeader header;
    header.numNodes = trace.numNodes;
    header.totalInstructions = trace.totalInstructions;
    header.recordCount = trace.records.size();
    header.warmupRecords = trace.warmupRecords;
    header.warmupInstructions = trace.warmupInstructions;
    std::strncpy(header.name, trace.workloadName.c_str(),
                 sizeof(header.name) - 1);

    if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1) {
        dsp_warn("short write of trace header to '%s'", path.c_str());
        return false;
    }
    if (!trace.records.empty() &&
        std::fwrite(trace.records.data(), sizeof(TraceRecord),
                    trace.records.size(), f.get()) !=
            trace.records.size()) {
        dsp_warn("short write of trace records to '%s'", path.c_str());
        return false;
    }
    return true;
}

Trace
readTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        dsp_fatal("cannot open trace file '%s'", path.c_str());

    TraceHeader header;
    if (std::fread(&header, sizeof(header), 1, f.get()) != 1)
        dsp_fatal("truncated trace header in '%s'", path.c_str());
    if (header.magic != traceMagic)
        dsp_fatal("'%s' is not a dsp trace file", path.c_str());
    if (header.version != traceVersion)
        dsp_fatal("trace version %u unsupported (expected %u)",
                  header.version, traceVersion);

    Trace trace;
    trace.workloadName.assign(
        header.name, strnlen(header.name, sizeof(header.name)));
    trace.numNodes = header.numNodes;
    trace.totalInstructions = header.totalInstructions;
    trace.warmupRecords = header.warmupRecords;
    trace.warmupInstructions = header.warmupInstructions;
    trace.records.resize(header.recordCount);
    if (header.recordCount &&
        std::fread(trace.records.data(), sizeof(TraceRecord),
                   header.recordCount, f.get()) != header.recordCount) {
        dsp_fatal("truncated trace records in '%s'", path.c_str());
    }
    return trace;
}

} // namespace dsp
