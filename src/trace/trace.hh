/**
 * @file
 * L2-miss trace records (Section 2.1: "trace records contain the data
 * address, program counter (PC) address, requester, and request type"),
 * extended with the ground-truth transaction facts captured at
 * collection time so protocols and predictors can be replayed without
 * re-simulating the caches.
 */

#ifndef DSP_TRACE_TRACE_HH
#define DSP_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coherence/trace_protocols.hh"
#include "mem/destination_set.hh"
#include "mem/types.hh"

namespace dsp {

/** One L2 miss, fully annotated. POD, 40 bytes on disk. */
struct TraceRecord {
    Addr addr = 0;            ///< data byte address
    Addr pc = 0;              ///< PC of the missing load/store
    std::uint64_t requiredMask = 0;  ///< caches that must observe
    std::uint32_t requester = 0;
    std::uint32_t responder = 0;     ///< memoryResponder = memory
    std::uint8_t type = 0;           ///< RequestType
    std::uint8_t pad[7] = {};

    /** Responder encoding for "memory supplies the data". */
    static constexpr std::uint32_t memoryResponder = 0xffffffffu;

    RequestType
    requestType() const
    {
        return static_cast<RequestType>(type);
    }

    DestinationSet
    required() const
    {
        return DestinationSet::fromMask(requiredMask);
    }

    /** Convert to the protocol-engine input for an n-node system. */
    MissInfo
    toMissInfo(NodeId num_nodes) const
    {
        MissInfo info;
        info.addr = addr;
        info.pc = pc;
        info.requester = requester;
        info.type = requestType();
        info.required = required();
        info.responder = responder == memoryResponder
                             ? invalidNode
                             : static_cast<NodeId>(responder);
        info.home = homeOf(blockOf(addr), num_nodes);
        return info;
    }
};

static_assert(sizeof(TraceRecord) == 40, "trace record layout changed");

/** An in-memory trace plus the execution metadata Table 2 needs. */
struct Trace {
    std::string workloadName;
    NodeId numNodes = 16;
    std::uint64_t totalInstructions = 0;  ///< across all processors

    /** The first `warmupRecords` misses warm caches and predictors and
     *  are excluded from measured statistics (Section 2.1 uses the
     *  first one million misses this way). */
    std::uint64_t warmupRecords = 0;
    std::uint64_t warmupInstructions = 0;

    std::vector<TraceRecord> records;

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }

    /** Misses after warmup. */
    std::uint64_t
    measuredRecords() const
    {
        return records.size() > warmupRecords
                   ? records.size() - warmupRecords
                   : 0;
    }

    /** Instructions executed after warmup. */
    std::uint64_t
    measuredInstructions() const
    {
        return totalInstructions > warmupInstructions
                   ? totalInstructions - warmupInstructions
                   : 0;
    }
};

/**
 * Write a trace to a binary file. Format: fixed header, then raw
 * records. Returns false (with a warning) on I/O failure.
 */
bool writeTrace(const Trace &trace, const std::string &path);

/**
 * Read a trace written by writeTrace(). Calls dsp_fatal on malformed
 * input (bad magic / truncated file).
 */
Trace readTrace(const std::string &path);

} // namespace dsp

#endif // DSP_TRACE_TRACE_HH
