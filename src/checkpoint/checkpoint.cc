#include "checkpoint/checkpoint.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <vector>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sweep/journal.hh"

namespace dsp {
namespace ckpt {

namespace {

/** Fixed-size on-disk header preceding the payload. */
struct FileHeader {
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t payloadLen;
    std::uint32_t payloadCrc;
    std::uint32_t pad;  // keeps the header at a stable 24 bytes
};
static_assert(sizeof(FileHeader) == 24, "checkpoint header layout drifted");

} // namespace

bool
atomicWriteFile(const std::string &path, const std::string &data)
{
    // Temp file in the same directory so the final rename cannot cross
    // a filesystem boundary (rename is only atomic within one fs).
    std::string tmp = path + ".tmp." + std::to_string(::getpid());
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        dsp_warn("atomicWriteFile: open %s failed: %s", tmp.c_str(),
                 std::strerror(errno));
        return false;
    }

    const char *p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            dsp_warn("atomicWriteFile: write %s failed: %s", tmp.c_str(),
                     std::strerror(errno));
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }

    if (::fsync(fd) != 0) {
        dsp_warn("atomicWriteFile: fsync %s failed: %s", tmp.c_str(),
                 std::strerror(errno));
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd);

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        dsp_warn("atomicWriteFile: rename %s -> %s failed: %s", tmp.c_str(),
                 path.c_str(), std::strerror(errno));
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

bool
writeCheckpointFile(const std::string &path, const std::string &payload)
{
    FileHeader hdr{};
    hdr.magic = fileMagic;
    hdr.version = formatVersion;
    hdr.payloadLen = payload.size();
    hdr.payloadCrc = sweep::crc32(payload);
    hdr.pad = 0;

    std::string blob;
    blob.reserve(sizeof(hdr) + payload.size());
    blob.append(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    blob.append(payload);
    return atomicWriteFile(path, blob);
}

bool
readCheckpointFile(const std::string &path, std::string &payload)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;

    FileHeader hdr{};
    bool ok = std::fread(&hdr, sizeof(hdr), 1, f) == 1 &&
              hdr.magic == fileMagic && hdr.version == formatVersion;
    if (ok) {
        std::string body(hdr.payloadLen, '\0');
        ok = hdr.payloadLen == 0 ||
             std::fread(body.data(), 1, body.size(), f) == body.size();
        // A byte past the declared length means a torn/garbled file too.
        if (ok && std::fgetc(f) != EOF)
            ok = false;
        if (ok && sweep::crc32(body) != hdr.payloadCrc)
            ok = false;
        if (ok)
            payload = std::move(body);
    }
    std::fclose(f);
    return ok;
}

std::string
checkpointPath(const std::string &dir, std::uint64_t tick)
{
    return dir + "/ckpt_" + std::to_string(tick) + ".dsp";
}

namespace {

struct CkptFile {
    std::uint64_t tick;
    std::string path;
};

/**
 * Enumerate the valid ckpt_<tick>.dsp files under `dir` (unsorted),
 * quarantining every candidate that fails validation by renaming it
 * to <name>.corrupt -- shared by the newest-scan and the pruner so
 * both agree on what "valid" means.
 */
std::vector<CkptFile>
scanValidCheckpoints(const std::string &dir)
{
    std::vector<CkptFile> found;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return found;

    while (struct dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name.rfind("ckpt_", 0) != 0)
            continue;
        auto dot = name.rfind(".dsp");
        if (dot == std::string::npos || dot + 4 != name.size())
            continue;

        std::string tickText = name.substr(5, dot - 5);
        if (tickText.empty() ||
            tickText.find_first_not_of("0123456789") != std::string::npos) {
            continue;
        }
        std::uint64_t tick = std::strtoull(tickText.c_str(), nullptr, 10);

        std::string path = dir + "/" + name;
        std::string payload;
        if (!readCheckpointFile(path, payload)) {
            std::string quarantined = path + ".corrupt";
            if (::rename(path.c_str(), quarantined.c_str()) == 0) {
                dsp_warn("checkpoint %s failed validation; quarantined as %s",
                         path.c_str(), quarantined.c_str());
            }
            continue;
        }
        found.push_back(CkptFile{tick, std::move(path)});
    }
    ::closedir(d);
    return found;
}

} // namespace

std::string
newestValidCheckpoint(const std::string &dir)
{
    std::vector<CkptFile> valid = scanValidCheckpoints(dir);
    std::uint64_t bestTick = 0;
    std::string best;
    for (CkptFile &f : valid) {
        if (best.empty() || f.tick > bestTick) {
            bestTick = f.tick;
            best = std::move(f.path);
        }
    }
    return best;
}

std::size_t
pruneCheckpoints(const std::string &dir, unsigned keep)
{
    if (keep == 0)
        return 0;
    std::vector<CkptFile> valid = scanValidCheckpoints(dir);
    if (valid.size() <= keep)
        return 0;
    // Newest first; everything past the first `keep` goes.
    std::sort(valid.begin(), valid.end(),
              [](const CkptFile &a, const CkptFile &b) {
                  return a.tick > b.tick;
              });
    std::size_t removed = 0;
    for (std::size_t i = keep; i < valid.size(); ++i) {
        if (::unlink(valid[i].path.c_str()) == 0) {
            ++removed;
        } else {
            dsp_warn("pruneCheckpoints: unlink %s failed: %s",
                     valid[i].path.c_str(), std::strerror(errno));
        }
    }
    return removed;
}

void
makeDirs(const std::string &path)
{
    std::string::size_type slash = path.rfind('/');
    if (slash != std::string::npos && slash > 0)
        ::mkdir(path.substr(0, slash).c_str(), 0777);
    if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
        dsp_warn("cannot create checkpoint dir '%s'", path.c_str());
}

unsigned
killAfterFromEnv()
{
    const char *v = std::getenv("DSP_CKPT_KILL_AFTER");
    if (!v || !*v)
        return 0;
    char *end = nullptr;
    unsigned long n = std::strtoul(v, &end, 10);
    if (end == v || (end && *end))
        return 0;
    return static_cast<unsigned>(n);
}

} // namespace ckpt
} // namespace dsp
