/**
 * @file
 * Versioned, CRC-checked simulation checkpoints (docs/checkpoint.md).
 *
 * A checkpoint is one flat byte buffer: a fixed header (magic,
 * format version, payload length, CRC-32 of the payload) followed by
 * the payload the subsystems serialize through Writer/Reader. Files
 * are written atomically -- temp file in the same directory, fsync,
 * rename -- so a crash mid-write can never leave a torn file under
 * the final name, and a torn rename survivor fails the CRC and is
 * quarantined instead of being restored.
 *
 * Snapshots are only taken at quiescent kernel barriers (every shard
 * clock equal, all mailboxes empty), which is what makes the format
 * shard-count independent: a checkpoint written at K=1 restores at
 * K=4 and vice versa, bit-identically (see docs/parallel_kernel.md
 * for the determinism contract this rides on).
 */

#ifndef DSP_CHECKPOINT_CHECKPOINT_HH
#define DSP_CHECKPOINT_CHECKPOINT_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"

namespace dsp {
namespace ckpt {

/** File magic ("DSPC") and the serialization-contract version. Any
 *  change to any subsystem's save layout bumps the version; restore
 *  refuses a version mismatch instead of misreading old bytes. */
constexpr std::uint32_t fileMagic = 0x43505344u;
constexpr std::uint32_t formatVersion = 2;

/**
 * Append-only byte-buffer serializer. All integers are written in
 * little-endian byte order via memcpy, so the format is independent
 * of host alignment rules; trivially-copyable structs go through
 * pod() as raw bytes (the struct layouts themselves are part of the
 * versioned contract).
 */
class Writer
{
  public:
    void
    bytes(const void *data, std::size_t n)
    {
        buf_.append(static_cast<const char *>(data), n);
    }

    void u8(std::uint8_t v) { bytes(&v, 1); }
    void u16(std::uint16_t v) { bytes(&v, 2); }
    void u32(std::uint32_t v) { bytes(&v, 4); }
    void u64(std::uint64_t v) { bytes(&v, 8); }

    void
    f64(double v)
    {
        bytes(&v, 8);
    }

    void b(bool v) { u8(v ? 1 : 0); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    template <typename T>
    void
    pod(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "pod() needs a trivially copyable type");
        bytes(&v, sizeof(T));
    }

    template <typename T>
    void
    podVec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "podVec() needs a trivially copyable type");
        u64(v.size());
        if (!v.empty())
            bytes(v.data(), v.size() * sizeof(T));
    }

    /** Section marker: cheap structural self-check of the stream. */
    void section(std::uint32_t tag) { u32(tag); }

    const std::string &buffer() const { return buf_; }

  private:
    std::string buf_;
};

/**
 * Reader over a validated payload. The file CRC is checked before a
 * Reader is constructed, so any out-of-bounds read or section-tag
 * mismatch here is a serialization-contract bug, not disk corruption
 * -- both are fatal with a diagnostic rather than silently garbled.
 */
class Reader
{
  public:
    Reader(const void *data, std::size_t size)
        : p_(static_cast<const std::uint8_t *>(data)),
          end_(p_ + size)
    {
    }

    explicit Reader(const std::string &payload)
        : Reader(payload.data(), payload.size())
    {
    }

    void
    bytes(void *out, std::size_t n)
    {
        dsp_assert(static_cast<std::size_t>(end_ - p_) >= n,
                   "checkpoint payload underrun (%zu byte(s) short)",
                   n - static_cast<std::size_t>(end_ - p_));
        std::memcpy(out, p_, n);
        p_ += n;
    }

    std::uint8_t
    u8()
    {
        std::uint8_t v;
        bytes(&v, 1);
        return v;
    }

    std::uint16_t
    u16()
    {
        std::uint16_t v;
        bytes(&v, 2);
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v;
        bytes(&v, 4);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v;
        bytes(&v, 8);
        return v;
    }

    double
    f64()
    {
        double v;
        bytes(&v, 8);
        return v;
    }

    bool b() { return u8() != 0; }

    std::string
    str()
    {
        std::string s(u64(), '\0');
        bytes(s.data(), s.size());
        return s;
    }

    template <typename T>
    T
    pod()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "pod() needs a trivially copyable type");
        T v;
        bytes(&v, sizeof(T));
        return v;
    }

    template <typename T>
    std::vector<T>
    podVec()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "podVec() needs a trivially copyable type");
        std::vector<T> v(u64());
        if (!v.empty())
            bytes(v.data(), v.size() * sizeof(T));
        return v;
    }

    void
    section(std::uint32_t tag)
    {
        std::uint32_t got = u32();
        dsp_assert(got == tag,
                   "checkpoint section mismatch: expected 0x%08x, "
                   "got 0x%08x (serialization contract drift)",
                   tag, got);
    }

    bool atEnd() const { return p_ == end_; }

  private:
    const std::uint8_t *p_;
    const std::uint8_t *end_;
};

/**
 * In-flight event tags, one per checkpointable event type. The saving
 * event writes its tag then its payload (Event::ckptSave); the owning
 * subsystem's restore dispatch switches on the tag.
 */
enum class EventTag : std::uint8_t {
    SysLocalDeliver,  ///< System: node-local / self-observation delivery
    SysSend,          ///< System: deferred sendOrLocal
    SysEvict,         ///< System: eviction notice in flight to its hub
    XbarOrder,        ///< crossbar: message at/leaving an ordering point
    XbarDeliver,      ///< crossbar: (payload, destination) delivery hop
    XbarChain,        ///< crossbar: fused same-tick delivery chain
    CacheIssue,       ///< cache controller: request issue after MSHR fill
    MemDirContinue,   ///< memory controller: directory-access continuation
    MemRetry,         ///< memory controller: home-reissued retry
    CpuResume,        ///< SimpleCpu: execution-resume slice
    CpuFetch,         ///< DetailedCpu: fetch-loop wakeup
};

/**
 * Write `data` to `path` atomically: temp file beside the target,
 * fsync, rename over the final name. Returns false (with a warning)
 * on any I/O failure; the target is never left torn.
 */
bool atomicWriteFile(const std::string &path, const std::string &data);

/** Wrap `payload` in the checkpoint header (magic, version, length,
 *  CRC-32) and atomicWriteFile it. */
bool writeCheckpointFile(const std::string &path,
                         const std::string &payload);

/**
 * Read and validate a checkpoint file: magic, version, length, CRC.
 * Returns false on any mismatch (torn write, truncation, corruption,
 * stale format) without touching `payload` semantics.
 */
bool readCheckpointFile(const std::string &path, std::string &payload);

/**
 * Newest valid checkpoint under `dir` (files named ckpt_<tick>.dsp),
 * or "" if none. Invalid candidates (failed CRC/header) are
 * quarantined by renaming to <name>.corrupt so they are never
 * considered again and remain on disk for forensics.
 */
std::string newestValidCheckpoint(const std::string &dir);

/**
 * Delete all but the newest `keep` *valid* checkpoints under `dir`
 * (0 = keep everything; no-op). Candidates that fail validation are
 * quarantined exactly as newestValidCheckpoint would -- they never
 * count toward `keep` and are never deleted, so a torn newest file
 * can't cause the last good snapshot to be pruned away. Returns the
 * number of files removed.
 */
std::size_t pruneCheckpoints(const std::string &dir, unsigned keep);

/** Conventional file name for the checkpoint at `tick` under `dir`. */
std::string checkpointPath(const std::string &dir, std::uint64_t tick);

/**
 * mkdir -p limited to two levels (parent + leaf) -- enough for a
 * checkpoint root and a per-job subdirectory. EEXIST is success;
 * other failures warn (the subsequent atomicWriteFile will fail
 * loudly per snapshot).
 */
void makeDirs(const std::string &path);

/**
 * Preemption-test hook: DSP_CKPT_KILL_AFTER=N makes a run that did
 * NOT restore from a checkpoint raise SIGKILL immediately after
 * writing its Nth checkpoint -- a deterministic stand-in for being
 * preempted mid-flight. Runs that restored ignore it, so a resumed
 * attempt under the same environment completes. 0 = disabled.
 */
unsigned killAfterFromEnv();

} // namespace ckpt
} // namespace dsp

#endif // DSP_CHECKPOINT_CHECKPOINT_HH
