#include "stats/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace dsp {
namespace stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    dsp_assert(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    dsp_assert(cells.size() == headers_.size(),
               "row has %zu cells, table has %zu columns",
               cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(std::uint64_t v)
{
    // Group digits for readability: 1234567 -> "1,234,567".
    std::string s = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = s.rbegin(); it != s.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
Table::fixed(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string
Table::percent(double v, int decimals)
{
    return fixed(v, decimals) + "%";
}

const std::string &
Table::cell(std::size_t r, std::size_t c) const
{
    dsp_assert(r < rows_.size() && c < headers_.size(),
               "table cell (%zu,%zu) out of range", r, c);
    return rows_[r][c];
}

void
Table::print(std::ostream &os, const std::string &title) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    if (!title.empty())
        os << title << "\n";

    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "");
            // Right-align everything but the first column, which is
            // typically a name.
            if (c == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(width[c])) << row[c];
        }
        os << "\n";
    };

    emitRow(headers_);
    std::size_t totalWidth = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        totalWidth += width[c] + (c ? 2 : 0);
    os << std::string(totalWidth, '-') << "\n";
    for (const auto &row : rows_)
        emitRow(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += "\"\"";
            else
                out.push_back(ch);
        }
        out += "\"";
        return out;
    };

    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << quote(row[c]);
        os << "\n";
    };
    emitRow(headers_);
    for (const auto &row : rows_)
        emitRow(row);
}

} // namespace stats
} // namespace dsp
