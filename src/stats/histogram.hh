/**
 * @file
 * Simple counting statistics: bucketed histograms and hot-spot
 * accumulators used throughout the workload characterization
 * (Figures 2, 3, and 4 of the paper).
 */

#ifndef DSP_STATS_HISTOGRAM_HH
#define DSP_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

#include "sim/flat_map.hh"

namespace dsp {
namespace stats {

/**
 * Fixed-bin histogram over small non-negative integer samples
 * (e.g., "number of processors that must observe a miss").
 *
 * Samples >= bins() are clamped into the final bin, which therefore acts
 * as a "k or more" bucket, exactly like the "3+" bin in Figure 2.
 */
class Histogram
{
  public:
    /** Create a histogram with `bins` buckets [0, bins-1], clamping. */
    explicit Histogram(std::size_t bins);

    /** Record one sample with weight `w`. */
    void record(std::uint64_t value, std::uint64_t w = 1);

    /** Count in bucket i. */
    std::uint64_t bucket(std::size_t i) const;

    /** Sum of all bucket counts. */
    std::uint64_t total() const { return total_; }

    /** Bucket count as a percentage of total (0 if empty). */
    double percent(std::size_t i) const;

    /** Number of buckets. */
    std::size_t bins() const { return counts_.size(); }

    /** Weighted mean of recorded values (clamped values included). */
    double mean() const;

    /** Reset all buckets to zero. */
    void clear();

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t weightedSum_ = 0;
};

/**
 * Accumulates per-key hit counts and answers "how much of the total mass
 * do the hottest N keys cover?" -- the cumulative-locality question of
 * Figure 4. Keys are opaque 64-bit identifiers (block addresses,
 * macroblock addresses, or program counters).
 */
class HotSpotAccumulator
{
  public:
    /** Record `weight` events against `key`. */
    void record(std::uint64_t key, std::uint64_t weight = 1);

    /** Number of distinct keys observed. */
    std::size_t uniqueKeys() const { return counts_.size(); }

    /** Total recorded weight. */
    std::uint64_t total() const { return total_; }

    /**
     * Cumulative coverage: element i of the result is the percentage of
     * all mass covered by the points[i] hottest keys. Monotone
     * non-decreasing in points.
     */
    std::vector<double>
    coverageAt(const std::vector<std::size_t> &points) const;

    /** Per-key weights sorted descending (for CDF plotting). */
    std::vector<std::uint64_t> sortedWeights() const;

  private:
    FlatMap<std::uint64_t, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace stats
} // namespace dsp

#endif // DSP_STATS_HISTOGRAM_HH
