/**
 * @file
 * Aligned text-table and CSV emission. Every bench binary reports its
 * table/figure through this printer so output formats stay consistent.
 */

#ifndef DSP_STATS_TABLE_HH
#define DSP_STATS_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace dsp {
namespace stats {

/**
 * A rectangular table of strings with a header row, printable either as
 * an aligned monospace table or as CSV.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly one cell per column. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format helpers for numeric cells. */
    static std::string num(std::uint64_t v);
    static std::string fixed(double v, int decimals = 1);
    static std::string percent(double v, int decimals = 1);

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Number of columns. */
    std::size_t columns() const { return headers_.size(); }

    /** Cell accessor (row-major, excluding the header). */
    const std::string &cell(std::size_t r, std::size_t c) const;

    /** Render with aligned columns, optionally preceded by a title. */
    void print(std::ostream &os, const std::string &title = "") const;

    /** Render as CSV (RFC-4180-ish quoting for commas/quotes). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace stats
} // namespace dsp

#endif // DSP_STATS_TABLE_HH
