#include "stats/histogram.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dsp {
namespace stats {

Histogram::Histogram(std::size_t bins)
    : counts_(bins, 0)
{
    dsp_assert(bins > 0, "histogram needs at least one bin");
}

void
Histogram::record(std::uint64_t value, std::uint64_t w)
{
    std::size_t bin = static_cast<std::size_t>(value);
    if (bin >= counts_.size())
        bin = counts_.size() - 1;
    counts_[bin] += w;
    total_ += w;
    weightedSum_ += value * w;
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    dsp_assert(i < counts_.size(), "histogram bucket out of range");
    return counts_[i];
}

double
Histogram::percent(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return 100.0 * static_cast<double>(bucket(i)) /
           static_cast<double>(total_);
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(weightedSum_) / static_cast<double>(total_);
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    weightedSum_ = 0;
}

void
HotSpotAccumulator::record(std::uint64_t key, std::uint64_t weight)
{
    counts_[key] += weight;
    total_ += weight;
}

std::vector<std::uint64_t>
HotSpotAccumulator::sortedWeights() const
{
    std::vector<std::uint64_t> w;
    w.reserve(counts_.size());
    for (const auto &kv : counts_)
        w.push_back(kv.second);
    std::sort(w.begin(), w.end(), std::greater<>());
    return w;
}

std::vector<double>
HotSpotAccumulator::coverageAt(const std::vector<std::size_t> &points) const
{
    std::vector<double> result;
    result.reserve(points.size());
    if (total_ == 0) {
        result.assign(points.size(), 0.0);
        return result;
    }

    std::vector<std::uint64_t> w = sortedWeights();
    // Prefix sums once, then answer each query.
    std::vector<std::uint64_t> prefix(w.size() + 1, 0);
    for (std::size_t i = 0; i < w.size(); ++i)
        prefix[i + 1] = prefix[i] + w[i];

    for (std::size_t p : points) {
        std::size_t n = std::min(p, w.size());
        result.push_back(100.0 * static_cast<double>(prefix[n]) /
                         static_cast<double>(total_));
    }
    return result;
}

} // namespace stats
} // namespace dsp
