#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dsp {

namespace {

/** 56 bits of insertion sequence below one byte of priority. */
constexpr std::uint64_t seqBits = 56;
constexpr std::uint64_t seqMask = (std::uint64_t{1} << seqBits) - 1;

} // namespace

EventQueue::~EventQueue()
{
    // Events still pending go back to their pools; member events are
    // simply detached.
    for (HeapEntry &entry : heap_) {
        entry.ev->scheduled_ = false;
        entry.ev->heapIndex_ = Event::invalidHeapIndex;
        entry.ev->release();
    }
}

void
EventQueue::assertSchedulable(Tick when) const
{
    dsp_assert(when >= now_,
               "cannot schedule in the past (when=%llu now=%llu)",
               static_cast<unsigned long long>(when),
               static_cast<unsigned long long>(now_));
}

void
EventQueue::schedule(Event &ev, Tick when, EventPriority prio)
{
    assertSchedulable(when);
    dsp_assert(!ev.scheduled_, "event already scheduled (when=%llu)",
               static_cast<unsigned long long>(ev.when_));
    const auto prio_bits = static_cast<std::uint64_t>(prio);
    dsp_assert(prio_bits < 256, "priority %d does not fit the packed "
                                "tiebreak key",
               static_cast<int>(prio));
    dsp_assert(nextSeq_ <= seqMask, "insertion sequence overflow");

    ev.when_ = when;
    ev.scheduled_ = true;
    ev.heapIndex_ = heap_.size();
    heap_.push_back(
        HeapEntry{when, (prio_bits << seqBits) | nextSeq_++, &ev});
    siftUp(heap_.size() - 1);
}

void
EventQueue::deschedule(Event &ev)
{
    dsp_assert(ev.scheduled_, "deschedule of unscheduled event");
    dsp_assert(ev.heapIndex_ < heap_.size() &&
                   heap_[ev.heapIndex_].ev == &ev,
               "event/queue mismatch in deschedule");
    removeAt(ev.heapIndex_);
    ev.release();
}

void
EventQueue::siftUp(std::size_t i)
{
    HeapEntry entry = heap_[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / heapArity;
        if (!earlier(entry, heap_[parent]))
            break;
        place(i, heap_[parent]);
        i = parent;
    }
    place(i, entry);
}

void
EventQueue::siftDown(std::size_t i)
{
    HeapEntry entry = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t first = heapArity * i + 1;
        if (first >= n)
            break;
        std::size_t last = std::min(first + heapArity, n);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c) {
            if (earlier(heap_[c], heap_[best]))
                best = c;
        }
        if (!earlier(heap_[best], entry))
            break;
        place(i, heap_[best]);
        i = best;
    }
    place(i, entry);
}

Event *
EventQueue::removeAt(std::size_t i)
{
    Event *ev = heap_[i].ev;
    HeapEntry last = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
        place(i, last);
        // The displaced entry may need to move either way; siftUp from
        // wherever siftDown left it is a no-op if it already sank.
        siftDown(i);
        siftUp(last.ev->heapIndex_);
    }
    ev->scheduled_ = false;
    ev->heapIndex_ = Event::invalidHeapIndex;
    return ev;
}

void
EventQueue::step()
{
    dsp_assert(!heap_.empty(), "step() on empty event queue");
    Tick when = heap_.front().when;
    Event *ev = removeAt(0);
    now_ = when;
    ++executed_;
    ev->process();
    ev->release();
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.front().when <= limit) {
        step();
        ++n;
    }
    if (now_ < limit && limit != maxTick)
        now_ = limit;
    return n;
}

} // namespace dsp
