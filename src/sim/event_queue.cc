#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace dsp {

void
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    dsp_assert(when >= now_,
               "cannot schedule in the past (when=%llu now=%llu)",
               static_cast<unsigned long long>(when),
               static_cast<unsigned long long>(now_));
    heap_.push(Entry{when, static_cast<int>(prio), nextSeq_++,
                     std::move(cb)});
}

void
EventQueue::scheduleIn(Tick delay, Callback cb, EventPriority prio)
{
    schedule(now_ + delay, std::move(cb), prio);
}

void
EventQueue::step()
{
    dsp_assert(!heap_.empty(), "step() on empty event queue");
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    ++executed_;
    e.cb();
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().when <= limit) {
        step();
        ++n;
    }
    if (now_ < limit && limit != maxTick)
        now_ = limit;
    return n;
}

} // namespace dsp
