#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace dsp {

namespace {

/** 56 bits of insertion sequence below one byte of priority. */
constexpr std::uint64_t seqBits = 56;
constexpr std::uint64_t seqMask = (std::uint64_t{1} << seqBits) - 1;

/** Ticks at/above this would overflow the window arithmetic; events
 *  there are served straight from the overflow heap. */
constexpr Tick calendarCeiling = maxTick - EventQueue::ringHorizon;

constexpr std::size_t
lowestBit(std::uint64_t word)
{
    return static_cast<std::size_t>(std::countr_zero(word));
}

} // namespace

EventQueue::EventQueue()
    : buckets_(bucketCount), occupied_(bitmapWords, 0)
{
}

EventQueue::~EventQueue()
{
    // Events still pending go back to their pools; member events are
    // simply detached.
    for (Bucket &bucket : buckets_) {
        for (Event *ev = bucket.head; ev != nullptr;) {
            Event *next = ev->next_;
            ev->scheduled_ = false;
            ev->prev_ = ev->next_ = nullptr;
            ev->release();
            ev = next;
        }
    }
    for (HeapEntry &entry : heap_) {
        entry.ev->scheduled_ = false;
        entry.ev->heapIndex_ = Event::invalidHeapIndex;
        entry.ev->release();
    }
    for (std::size_t i = 0; i < runNextLive_; ++i) {
        runNext_[i]->scheduled_ = false;
        runNext_[i]->release();
    }
}

void
EventQueue::assertSchedulable(Tick when) const
{
    dsp_assert(when >= now_,
               "cannot schedule in the past (when=%llu now=%llu)",
               static_cast<unsigned long long>(when),
               static_cast<unsigned long long>(now_));
}

void
EventQueue::schedule(Event &ev, Tick when, EventPriority prio)
{
    assertSchedulable(when);
    dsp_assert(!ev.scheduled_, "event already scheduled (when=%llu)",
               static_cast<unsigned long long>(ev.when_));
    const auto prio_bits = static_cast<std::uint64_t>(prio);
    dsp_assert(prio_bits < 256, "priority %d does not fit the packed "
                                "tiebreak key",
               static_cast<int>(prio));
    dsp_assert(nextSeq_ <= seqMask, "insertion sequence overflow");

    ev.when_ = when;
    ev.key_ = (prio_bits << seqBits) | nextSeq_++;
    ev.scheduled_ = true;
    enqueuePrepared(ev);
}

std::uint64_t
EventQueue::allocKey(EventPriority prio)
{
    const auto prio_bits = static_cast<std::uint64_t>(prio);
    dsp_assert(prio_bits < 256, "priority %d does not fit the packed "
                                "tiebreak key",
               static_cast<int>(prio));
    dsp_assert(nextSeq_ <= seqMask, "insertion sequence overflow");
    return (prio_bits << seqBits) | nextSeq_++;
}

void
EventQueue::scheduleWithKey(Event &ev, Tick when, std::uint64_t key)
{
    assertSchedulable(when);
    dsp_assert(!ev.scheduled_, "event already scheduled (when=%llu)",
               static_cast<unsigned long long>(ev.when_));

    ev.when_ = when;
    ev.key_ = key;
    ev.scheduled_ = true;
    enqueuePrepared(ev);
}

void
EventQueue::enqueuePrepared(Event &ev)
{
    if (running_) {
        std::size_t n = runNextLive_;
        if (n == runNextCap) {
            // Full: the latest-ordering event loses its seat --
            // either the newcomer goes straight to a calendar plane,
            // or the current back is spilled to make room.
            Event *back = runNext_[n - 1];
            if (ev.when_ > back->when_ ||
                (ev.when_ == back->when_ && ev.key_ > back->key_)) {
                insertPrepared(ev);
                return;
            }
            insertPrepared(*back);
            --n;
        }
        // Sorted insert scanned from the back: a freshly scheduled
        // hop usually orders after the hops already parked.
        std::size_t i = n;
        while (i > 0 &&
               (runNext_[i - 1]->when_ > ev.when_ ||
                (runNext_[i - 1]->when_ == ev.when_ &&
                 runNext_[i - 1]->key_ > ev.key_))) {
            runNext_[i] = runNext_[i - 1];
            --i;
        }
        runNext_[i] = &ev;
        runNextLive_ = n + 1;
        return;
    }
    insertPrepared(ev);
}

void
EventQueue::insertPrepared(Event &ev)
{
    ++inserts_;
    if (ev.when_ < ringLimit_)
        ringInsert(ev);
    else
        heapPush(ev);
}

bool
EventQueue::chainAdvance(Tick when, std::uint64_t key,
                         std::uint16_t domain)
{
    dsp_assert(when >= now_,
               "chain hop at %llu behind the clock %llu",
               static_cast<unsigned long long>(when),
               static_cast<unsigned long long>(now_));
    // A fused hop may not outrun the window the scheduler planned
    // around: past runLimit_ other shards (or the planner) are
    // entitled to insert earlier work first.
    if (when > runLimit_)
        return false;
    // Nothing already queued may order before the hop, or inlining it
    // would reorder against the calendar's total order.
    if (!empty()) {
        const Event *min = peekEarliest();
        if (min->when_ < when ||
            (min->when_ == when && min->key_ < key)) {
            return false;
        }
    }
    now_ = when;
    advanceWindow(now_);
    ++executed_;  // a fused hop is still one executed event
    *domainSink_ = domain;
    return true;
}

void
EventQueue::deschedule(Event &ev)
{
    dsp_assert(ev.scheduled_, "deschedule of unscheduled event");
    for (std::size_t i = 0; i < runNextLive_; ++i) {
        if (runNext_[i] == &ev) {
            for (std::size_t j = i + 1; j < runNextLive_; ++j)
                runNext_[j - 1] = runNext_[j];
            --runNextLive_;
            ev.scheduled_ = false;
            ev.release();
            return;
        }
    }
    if (ev.heapIndex_ != Event::invalidHeapIndex) {
        dsp_assert(ev.heapIndex_ < heap_.size() &&
                       heap_[ev.heapIndex_].ev == &ev,
                   "event/queue mismatch in deschedule");
        heapRemoveAt(ev.heapIndex_);
    } else {
        // A list head must be this queue's bucket head; catches an
        // event descheduled on the wrong queue before its unlink can
        // corrupt this queue's bucket lists.
        dsp_assert(ev.prev_ != nullptr ||
                       buckets_[bucketOf(ev.when_)].head == &ev,
                   "event/queue mismatch in deschedule");
        ringRemove(ev);
    }
    ev.scheduled_ = false;
    ev.release();
}

// ---- ring plane -----------------------------------------------------------

void
EventQueue::setOccupied(std::size_t b)
{
    occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
    occupiedSummary_ |= std::uint64_t{1} << (b >> 6);
}

void
EventQueue::clearOccupied(std::size_t b)
{
    occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    if (occupied_[b >> 6] == 0)
        occupiedSummary_ &= ~(std::uint64_t{1} << (b >> 6));
}

std::size_t
EventQueue::firstOccupiedBucket() const
{
    // Circular scan from the cursor: bits at/after it in its word,
    // then later words, then the wrapped-around words, and finally the
    // cursor word's bits before the cursor (one whole lap).
    const std::size_t c = cursor();
    const std::size_t cw = c >> 6;

    if (std::uint64_t bits = occupied_[cw] >> (c & 63))
        return c + lowestBit(bits);

    std::uint64_t above =
        cw + 1 < bitmapWords
            ? occupiedSummary_ & (~std::uint64_t{0} << (cw + 1))
            : 0;
    if (above) {
        std::size_t w = lowestBit(above);
        return (w << 6) + lowestBit(occupied_[w]);
    }

    if (std::uint64_t below =
            occupiedSummary_ & ((std::uint64_t{1} << cw) - 1)) {
        std::size_t w = lowestBit(below);
        return (w << 6) + lowestBit(occupied_[w]);
    }

    std::uint64_t tail =
        (c & 63) ? occupied_[cw] & ((std::uint64_t{1} << (c & 63)) - 1)
                 : 0;
    dsp_assert(tail != 0, "ring bitmap inconsistent");
    return (cw << 6) + lowestBit(tail);
}

void
EventQueue::ringInsert(Event &ev)
{
    std::size_t b = bucketOf(ev.when_);
    Bucket &bucket = buckets_[b];

    // Sorted insert scanned from the tail: the simulator schedules
    // overwhelmingly in ascending (when, key) order, so this is an
    // O(1) append in the steady state.
    Event *after = bucket.tail;
    while (after != nullptr &&
           (after->when_ > ev.when_ ||
            (after->when_ == ev.when_ && after->key_ > ev.key_))) {
        after = after->prev_;
    }

    ev.prev_ = after;
    if (after != nullptr) {
        ev.next_ = after->next_;
        after->next_ = &ev;
    } else {
        ev.next_ = bucket.head;
        bucket.head = &ev;
    }
    if (ev.next_ != nullptr)
        ev.next_->prev_ = &ev;
    else
        bucket.tail = &ev;

    setOccupied(b);
    ++ringLive_;
}

void
EventQueue::ringRemove(Event &ev)
{
    std::size_t b = bucketOf(ev.when_);
    Bucket &bucket = buckets_[b];

    if (ev.prev_ != nullptr)
        ev.prev_->next_ = ev.next_;
    else
        bucket.head = ev.next_;
    if (ev.next_ != nullptr)
        ev.next_->prev_ = ev.prev_;
    else
        bucket.tail = ev.prev_;

    if (bucket.head == nullptr)
        clearOccupied(b);
    ev.prev_ = ev.next_ = nullptr;
    --ringLive_;
}

void
EventQueue::advanceWindow(Tick upTo)
{
    if (upTo >= calendarCeiling)
        return;  // stay put; the heap serves the top of the tick range
    Tick target = ((upTo >> bucketShift) << bucketShift) + ringHorizon;
    if (target <= ringLimit_)
        return;
    ringLimit_ = target;
    // Overflow events now inside the window migrate to their buckets
    // (which the advancing cursor has just freed).
    while (!heap_.empty() && heap_.front().when < ringLimit_)
        ringInsert(*heapRemoveAt(0));
}

std::size_t
EventQueue::nextOccupiedAfter(std::size_t b) const
{
    // Window order is circular from the cursor; a bucket's position
    // in that order is its circular distance from the cursor. Scan
    // every occupied bucket (windows hold tens of events, so this is
    // a handful of word operations once per window) and keep the one
    // closest behind `b`.
    const std::size_t c = cursor();
    const std::size_t b_pos = (b - c) & bucketMask;
    std::size_t best = bucketCount;
    std::size_t best_pos = bucketCount;
    std::uint64_t summary = occupiedSummary_;
    while (summary != 0) {
        std::size_t w = lowestBit(summary);
        summary &= summary - 1;
        std::uint64_t bits = occupied_[w];
        while (bits != 0) {
            std::size_t bucket = (w << 6) + lowestBit(bits);
            bits &= bits - 1;
            std::size_t pos = (bucket - c) & bucketMask;
            if (pos > b_pos && pos < best_pos) {
                best = bucket;
                best_pos = pos;
            }
        }
    }
    return best;
}

void
EventQueue::planesEarliestTwo(Tick &first, Tick &second) const
{
    first = maxTick;
    second = maxTick;
    if (ringLive_ == 0) {
        // Both minima come from the overflow heap: the root, then the
        // smallest of its (up to four) children.
        if (heap_.empty())
            return;
        first = heap_.front().when;
        std::size_t last = std::min(heapArity + 1, heap_.size());
        for (std::size_t c = 1; c < last; ++c)
            second = std::min(second, heap_[c].when);
        return;
    }

    // Ring events always precede heap events (the heap only holds
    // when >= ringLimit_). Within the ring, bucket window order is
    // tick order and each bucket's list is sorted.
    std::size_t b1 = firstOccupiedBucket();
    const Event *head = buckets_[b1].head;
    first = head->when_;
    if (head->next_ != nullptr)
        second = head->next_->when_;
    if (ringLive_ > 1) {
        std::size_t b2 = nextOccupiedAfter(b1);
        if (b2 != bucketCount)
            second = std::min(second, buckets_[b2].head->when_);
    } else if (!heap_.empty()) {
        second = heap_.front().when;
    }
}

void
EventQueue::earliestTwo(Tick &first, Tick &second) const
{
    planesEarliestTwo(first, second);
    // The buffer is sorted, so its first two entries are the only
    // candidates for the global two-smallest multiset.
    for (std::size_t i = 0; i < runNextLive_ && i < 2; ++i) {
        Tick t = runNext_[i]->when_;
        if (t < first) {
            second = first;
            first = t;
        } else if (t < second) {
            second = t;
        }
    }
}

void
EventQueue::advanceTo(Tick t)
{
    if (t <= now_ || t == maxTick)
        return;
    dsp_assert(empty() || peekEarliest()->when_ > t,
               "advanceTo(%llu) would skip a pending event at %llu",
               static_cast<unsigned long long>(t),
               static_cast<unsigned long long>(
                   peekEarliest()->when_));
    now_ = t;
    advanceWindow(now_);
}

Event *
EventQueue::peekEarliest() const
{
    // Ring events always precede overflow events (the heap only holds
    // when >= ringLimit_), so the ring wins whenever it is non-empty;
    // otherwise the heap front is the plane minimum directly. The
    // run-next buffer's front competes on (when, key) like a third
    // plane. No side effects: peeking must never advance the calendar
    // window, or a run(limit) that peeks a far-future event without
    // executing it would leave later near-tick schedules in aliased
    // buckets.
    Event *min = nullptr;
    if (ringLive_ != 0)
        min = buckets_[firstOccupiedBucket()].head;
    else if (!heap_.empty())
        min = heap_.front().ev;
    if (runNextLive_ != 0) {
        Event *parked = runNext_[0];
        if (min == nullptr || parked->when_ < min->when_ ||
            (parked->when_ == min->when_ && parked->key_ < min->key_))
            return parked;
    }
    return min;
}

// ---- overflow plane -------------------------------------------------------

void
EventQueue::heapPush(Event &ev)
{
    ev.heapIndex_ = heap_.size();
    heap_.push_back(HeapEntry{ev.when_, ev.key_, &ev});
    siftUp(heap_.size() - 1);
}

void
EventQueue::siftUp(std::size_t i)
{
    HeapEntry entry = heap_[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / heapArity;
        if (!earlier(entry, heap_[parent]))
            break;
        place(i, heap_[parent]);
        i = parent;
    }
    place(i, entry);
}

void
EventQueue::siftDown(std::size_t i)
{
    HeapEntry entry = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
        std::size_t first = heapArity * i + 1;
        if (first >= n)
            break;
        std::size_t last = std::min(first + heapArity, n);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c) {
            if (earlier(heap_[c], heap_[best]))
                best = c;
        }
        if (!earlier(heap_[best], entry))
            break;
        place(i, heap_[best]);
        i = best;
    }
    place(i, entry);
}

Event *
EventQueue::heapRemoveAt(std::size_t i)
{
    Event *ev = heap_[i].ev;
    HeapEntry last = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
        place(i, last);
        // The displaced entry may need to move either way; siftUp from
        // wherever siftDown left it is a no-op if it already sank.
        siftDown(i);
        siftUp(last.ev->heapIndex_);
    }
    ev->heapIndex_ = Event::invalidHeapIndex;
    return ev;
}

// ---- execution ------------------------------------------------------------

void
EventQueue::execute(Event *ev)
{
    if (runNextLive_ != 0 && ev == runNext_[0]) {
        // Served straight from the run-next buffer: neither calendar
        // plane was ever touched, so no pop is counted (its insert
        // was skipped too).
        --runNextLive_;
        for (std::size_t i = 0; i < runNextLive_; ++i)
            runNext_[i] = runNext_[i + 1];
    } else {
        if (ev->heapIndex_ != Event::invalidHeapIndex)
            heapRemoveAt(ev->heapIndex_);
        else
            ringRemove(*ev);
        ++pops_;
    }
    ev->scheduled_ = false;
    now_ = ev->when_;
    advanceWindow(now_);
    ++executed_;
    *domainSink_ = ev->domain_;
    ev->process();
    // A process() that rescheduled the event itself (fused chains
    // re-inserting at their next hop) still owns its slot.
    if (!ev->scheduled_)
        ev->release();
}

void
EventQueue::step()
{
    dsp_assert(!empty(), "step() on empty event queue");
    execute(peekEarliest());
}

std::uint64_t
EventQueue::run(Tick limit)
{
    runLimit_ = limit;
    running_ = true;
    std::uint64_t n = 0;
    while (!empty()) {
        Event *ev = peekEarliest();
        if (ev->when_ > limit)
            break;
        execute(ev);
        ++n;
    }
    running_ = false;
    if (now_ < limit && limit != maxTick) {
        now_ = limit;
        advanceWindow(now_);
    }
    runLimit_ = maxTick;
    return n;
}

} // namespace dsp
