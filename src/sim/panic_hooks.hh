/**
 * @file
 * Process-wide panic-hook registry: diagnostic dumpers that should run
 * once, in registration order, when the process is about to die on a
 * panic (dsp_panic's abort path) or an abnormal driver exit.
 *
 * Before this registry each subsystem printed its diagnostics from its
 * own failure path, so a sharded-kernel watchdog panic dumped kernel
 * state but not the oracle's forensic ring, and the bench drivers'
 * interrupt exits (75) dumped nothing at all. Registering a hook
 * composes: the kernel registers its per-shard diagnostics, the bench
 * driver registers the repro bundle, the oracle's report prints from
 * the raise path -- and whichever path kills the process runs them
 * all, exactly once.
 *
 * Hooks must be async-signal-unsafe-tolerant only in the sense that
 * they run on the panicking thread with other threads possibly alive;
 * keep them to reads + fprintf(stderr). Never panic from a hook --
 * the run-once guard turns a recursive panic into a plain abort.
 */

#ifndef DSP_SIM_PANIC_HOOKS_HH
#define DSP_SIM_PANIC_HOOKS_HH

#include <functional>
#include <string>

namespace dsp {

/** Register a named diagnostic dumper; returns an id for removal.
 *  Hooks run in registration order. Thread-safe. */
int addPanicHook(const std::string &name, std::function<void()> fn);

/** Remove a previously registered hook (objects with shorter lifetime
 *  than the process must remove their hooks in their destructor). */
void removePanicHook(int id);

/**
 * Run every registered hook, once per process. The second and later
 * calls (including reentrant calls from a hook that itself panics)
 * return immediately, so every death path can call this defensively.
 */
void runPanicHooks();

} // namespace dsp

#endif // DSP_SIM_PANIC_HOOKS_HH
