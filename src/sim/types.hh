/**
 * @file
 * Fundamental simulation types shared by every library in the project.
 */

#ifndef DSP_SIM_TYPES_HH
#define DSP_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace dsp {

/**
 * Simulated time in nanoseconds.
 *
 * The target machine of the paper runs at 2 GHz (0.5 ns per cycle), so we
 * keep time in *picoseconds* internally to represent half-nanosecond cycle
 * boundaries exactly. All public latency parameters are expressed in
 * nanoseconds and converted with nsToTicks().
 */
using Tick = std::uint64_t;

/** Number of ticks (picoseconds) per nanosecond. */
constexpr Tick ticksPerNs = 1000;

/** An impossibly-late point in simulated time. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Convert a latency in nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(ticksPerNs));
}

/** Convert ticks back to (fractional) nanoseconds for reporting. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerNs);
}

/** Processor/node identifier. Nodes combine CPU, caches, and memory. */
using NodeId = std::uint32_t;

/** Sentinel meaning "no node" (e.g., data owned by memory). */
constexpr NodeId invalidNode = static_cast<NodeId>(-1);

/**
 * Maximum system size supported by DestinationSet's word-array mask.
 * Must be a multiple of 64 (DestinationSet packs nodes into 64-bit
 * words). The evaluated machines are 16, 64, and 256 nodes.
 */
constexpr NodeId maxNodes = 256;

} // namespace dsp

#endif // DSP_SIM_TYPES_HH
