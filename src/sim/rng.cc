#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace dsp {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
{
    // Mix the stream id into the seed so streams are independent.
    std::uint64_t x = seed ^ (stream * 0xda942042e4dd58b5ull + 1);
    for (auto &word : s_)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    dsp_assert(bound > 0, "uniformInt bound must be positive");
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::uniformRange(std::int64_t lo, std::int64_t hi)
{
    dsp_assert(lo <= hi, "uniformRange requires lo <= hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::uniformReal()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

std::uint64_t
Rng::geometric(double mean)
{
    dsp_assert(mean >= 1.0, "geometric mean must be >= 1");
    if (mean == 1.0)
        return 1;
    // Inverse-CDF sampling of a geometric with success prob 1/mean.
    double u = uniformReal();
    double p = 1.0 / mean;
    double v = std::log1p(-u) / std::log1p(-p);
    std::uint64_t k = static_cast<std::uint64_t>(v) + 1;
    return k == 0 ? 1 : k;
}

} // namespace dsp
