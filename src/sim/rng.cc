#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace dsp {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
{
    // Mix the stream id into the seed so streams are independent.
    std::uint64_t x = seed ^ (stream * 0xda942042e4dd58b5ull + 1);
    for (auto &word : s_)
        word = splitmix64(x);
}

std::int64_t
Rng::uniformRange(std::int64_t lo, std::int64_t hi)
{
    dsp_assert(lo <= hi, "uniformRange requires lo <= hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

std::uint64_t
Rng::geometric(double mean)
{
    dsp_assert(mean >= 1.0, "geometric mean must be >= 1");
    if (mean == 1.0)
        return 1;
    // Inverse-CDF sampling of a geometric with success prob 1/mean.
    double u = uniformReal();
    double p = 1.0 / mean;
    double v = std::log1p(-u) / std::log1p(-p);
    std::uint64_t k = static_cast<std::uint64_t>(v) + 1;
    return k == 0 ? 1 : k;
}

GeometricSampler::GeometricSampler(double mean) : mean_(mean)
{
    dsp_assert(mean >= 1.0, "geometric mean must be >= 1");
    if (mean == 1.0)
        return;
    double p = 1.0 / mean;
    double survive = 1.0;
    for (std::size_t k = 0; k < tableSize; ++k) {
        survive *= 1.0 - p;         // (1-p)^(k+1)
        cdf_[k] = 1.0 - survive;    // P(X <= k+1)
    }
}

std::uint64_t
GeometricSampler::tailSample(double u) const
{
    double p = 1.0 / mean_;
    double v = std::log1p(-u) / std::log1p(-p);
    std::uint64_t k = static_cast<std::uint64_t>(v) + 1;
    return k == 0 ? 1 : k;
}

} // namespace dsp
