/**
 * @file
 * Shared slab-recycling machinery for the per-thread object pools.
 *
 * One SlabArena manages the raw slots of one pool instance: slots are
 * carved out of fixed-size slabs (kept for the life of the process --
 * arenas belong to immortal pools, see sim/pool_registry.hh), vacant
 * slots thread a local free list, and slots released by *other*
 * threads come back through a lock-free MPSC stack that the owner
 * splices into its free list before ever growing. That keeps the
 * same-thread path allocator- and atomic-free while bounding slab
 * memory by the peak number of live objects, not the object count --
 * even when, under the sharded kernel, most objects are acquired on
 * one shard thread and released on another.
 *
 * SlotT must provide two members the arena may use while the slot is
 * vacant: `SlotT *next` (free-list linkage) and `void *home` (the
 * owning arena, set once at slab creation and never changed).
 */

#ifndef DSP_SIM_SLAB_POOL_HH
#define DSP_SIM_SLAB_POOL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dsp {

template <typename SlotT>
class SlabArena
{
  public:
    static constexpr std::size_t slabSlots = 256;

    /** The two counters live in the owning pool's stats struct. */
    SlabArena(std::uint64_t *slab_allocations, std::uint64_t *slab_bytes)
        : slabAllocations_(slab_allocations), slabBytes_(slab_bytes)
    {
    }

    SlabArena(const SlabArena &) = delete;
    SlabArena &operator=(const SlabArena &) = delete;

    /** A vacant slot (recycled or fresh); only the owning thread may
     *  call this. */
    SlotT *
    acquire()
    {
        if (freeList_ == nullptr) {
            reclaimRemote();
            if (freeList_ == nullptr)
                grow();
        }
        SlotT *slot = freeList_;
        freeList_ = slot->next;
        return slot;
    }

    /** Return a vacant slot from any thread: locally when this
     *  thread's arena owns its slab, via the home arena's remote
     *  stack otherwise. */
    void
    release(SlotT *slot)
    {
        auto *home = static_cast<SlabArena *>(slot->home);
        if (home == this) {
            slot->next = freeList_;
            freeList_ = slot;
            return;
        }
        SlotT *head = home->remoteFree_.load(std::memory_order_relaxed);
        do {
            slot->next = head;
        } while (!home->remoteFree_.compare_exchange_weak(
            head, slot, std::memory_order_release,
            std::memory_order_relaxed));
    }

  private:
    /** Splice every remotely-released slot back into the local list. */
    void
    reclaimRemote()
    {
        SlotT *head =
            remoteFree_.exchange(nullptr, std::memory_order_acquire);
        while (head != nullptr) {
            SlotT *next = head->next;
            head->next = freeList_;
            freeList_ = head;
            head = next;
        }
    }

    void
    grow()
    {
        slabs_.push_back(std::make_unique<SlotT[]>(slabSlots));
        ++*slabAllocations_;
        *slabBytes_ += slabSlots * sizeof(SlotT);
        SlotT *slab = slabs_.back().get();
        for (std::size_t i = slabSlots; i-- > 0;) {
            slab[i].home = this;
            slab[i].next = freeList_;
            freeList_ = &slab[i];
        }
    }

    std::vector<std::unique_ptr<SlotT[]>> slabs_;
    SlotT *freeList_ = nullptr;
    /** Slots released by other threads, awaiting reclamation. */
    std::atomic<SlotT *> remoteFree_{nullptr};
    std::uint64_t *slabAllocations_;
    std::uint64_t *slabBytes_;
};

} // namespace dsp

#endif // DSP_SIM_SLAB_POOL_HH
