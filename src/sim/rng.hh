/**
 * @file
 * Deterministic random number generation for reproducible simulation.
 *
 * Every stochastic component in the simulator draws from its own Rng
 * stream, seeded from a global seed plus a stream identifier, so that runs
 * are bit-reproducible and perturbation studies (Section 5.2 of the paper)
 * can vary a single seed.
 */

#ifndef DSP_SIM_RNG_HH
#define DSP_SIM_RNG_HH

#include <cstdint>

namespace dsp {

/**
 * xoshiro256** generator (Blackman & Vigna). Small, fast, and high
 * quality; state is seeded through splitmix64 so any 64-bit seed works.
 */
class Rng
{
  public:
    /** Construct from a seed and an optional stream id. Two Rngs with the
     *  same seed but different streams produce independent sequences. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull,
                 std::uint64_t stream = 0);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method. bound > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli trial: true with probability p. */
    bool chance(double p);

    /** Geometric-ish positive integer with given mean (>= 1). */
    std::uint64_t geometric(double mean);

  private:
    std::uint64_t s_[4];
};

} // namespace dsp

#endif // DSP_SIM_RNG_HH
