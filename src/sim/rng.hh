/**
 * @file
 * Deterministic random number generation for reproducible simulation.
 *
 * Every stochastic component in the simulator draws from its own Rng
 * stream, seeded from a global seed plus a stream identifier, so that runs
 * are bit-reproducible and perturbation studies (Section 5.2 of the paper)
 * can vary a single seed.
 *
 * The draw methods are header-inline: workload synthesis draws tens of
 * millions of values per simulated second, all on the hot path.
 */

#ifndef DSP_SIM_RNG_HH
#define DSP_SIM_RNG_HH

#include <array>
#include <cstdint>

#include "sim/logging.hh"

namespace dsp {

/**
 * xoshiro256** generator (Blackman & Vigna). Small, fast, and high
 * quality; state is seeded through splitmix64 so any 64-bit seed works.
 */
class Rng
{
  public:
    /** Construct from a seed and an optional stream id. Two Rngs with the
     *  same seed but different streams produce independent sequences. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull,
                 std::uint64_t stream = 0);

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using Lemire's method. bound > 0. */
    std::uint64_t
    uniformInt(std::uint64_t bound)
    {
        dsp_assert(bound > 0, "uniformInt bound must be positive");
        // Lemire's multiply-shift rejection method.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = -bound % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        // 53 random mantissa bits.
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial: true with probability p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniformReal() < p;
    }

    /** Geometric-ish positive integer with given mean (>= 1). */
    std::uint64_t geometric(double mean);

    /** Raw xoshiro state, exposed for checkpoint save/restore only. */
    std::array<std::uint64_t, 4>
    ckptState() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }

    void
    ckptRestore(const std::array<std::uint64_t, 4> &s)
    {
        s_[0] = s[0];
        s_[1] = s[1];
        s_[2] = s[2];
        s_[3] = s[3];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

/**
 * Repeated geometric draws with a fixed mean (per-reference work
 * counts, episode lengths). Rng::geometric costs two log1p calls per
 * draw; this caches the distribution in a small cumulative table and
 * answers the common short draws with a cache-resident scan, falling
 * back to the exact log form only in the far tail. Draws follow the
 * same inverse-CDF mapping as Rng::geometric(mean); floating-point
 * rounding at bin boundaries can differ by one in rare cases, so the
 * two are distribution-equivalent, not draw-identical.
 */
class GeometricSampler
{
  public:
    /** mean >= 1; mean == 1 always draws 1. */
    explicit GeometricSampler(double mean);

    std::uint64_t
    sample(Rng &rng)
    {
        if (mean_ == 1.0)
            return 1;
        double u = rng.uniformReal();
        if (u < cdf_[tableSize - 1]) {
            // The table covers all but the far tail of the mass.
            std::uint64_t k = 0;
            while (u >= cdf_[k])
                ++k;
            return k + 1;
        }
        return tailSample(u);
    }

    double mean() const { return mean_; }

  private:
    static constexpr std::size_t tableSize = 32;

    std::uint64_t tailSample(double u) const;

    double mean_;
    std::array<double, tableSize> cdf_{};  ///< cdf_[k] = P(X <= k+1)
};

} // namespace dsp

#endif // DSP_SIM_RNG_HH
