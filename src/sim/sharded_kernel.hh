/**
 * @file
 * Sharded multi-queue parallel event kernel with conservative
 * lookahead synchronization.
 *
 * The simulator's components are grouped into *domains* -- logical
 * processes that own disjoint state (one per simulated node, plus one
 * for the interconnect ordering point). Domains are partitioned onto
 * *shards*, each with its own calendar/bucket EventQueue, and shards
 * execute on host threads in lock-step windows of width L, the
 * *lookahead*: the minimum latency of any cross-domain interaction
 * (one crossbar link hop). Within a window every shard runs
 * independently; an event scheduled into another shard is posted to a
 * single-writer, double-buffered mailbox and drained right after the
 * next barrier crossing, which is safe because conservative lookahead
 * guarantees it cannot fire before the next window starts. Each
 * window costs exactly one barrier crossing: shards publish their
 * queue summaries and outbound-mail minima before arriving, so the
 * last arriver plans the next window and releases in the same
 * crossing. Stretches where only one shard has pending work inside
 * the horizon are batched -- several windows per crossing -- with
 * K-independent entry and truncation rules (see planNext()).
 *
 * Determinism contract (the non-negotiable invariant): a K-shard run
 * executes *exactly* the same events in *exactly* the same per-domain
 * order as a 1-shard run. Two mechanisms make the total order
 * K-independent:
 *
 *  - every event's tiebreak key is (priority, scheduling domain,
 *    per-domain sequence number) -- assigned by the *sender* and
 *    carried across mailboxes, never re-assigned at insertion. A
 *    domain's sequence counter advances only while that domain's
 *    events execute, so the key stream is a function of the simulation
 *    alone, not of the shard partition;
 *  - window boundaries are derived from the global earliest pending
 *    tick, which is the same for every K.
 *
 * Components interact with the kernel through DomainPort, a small
 * value type that also wraps a bare EventQueue for standalone
 * (non-sharded) use, so unit tests and single-queue tools keep their
 * exact PR 2 behavior.
 */

#ifndef DSP_SIM_SHARDED_KERNEL_HH
#define DSP_SIM_SHARDED_KERNEL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "sim/event.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace dsp {

class ShardedKernel;

namespace ckpt {
class Reader;
} // namespace ckpt

/**
 * Scheduling interface handed to simulator components: either a thin
 * wrapper over a standalone EventQueue (implicit conversion keeps
 * existing call sites working) or a (kernel, domain) pair that routes
 * through the sharded kernel's keyed/mailbox path.
 */
class DomainPort
{
  public:
    DomainPort() = default;

    /** Standalone mode: schedule straight into `queue`. */
    DomainPort(EventQueue &queue) : queue_(&queue) {}

    /** Kernel mode (built by ShardedKernel::port()). */
    DomainPort(ShardedKernel &kernel, std::uint16_t domain);

    /**
     * Current simulated time. Inside a kernel run this is the
     * *executing* shard's clock (the running event's tick) -- never
     * the target shard's, whose clock mid-window is both racy to read
     * and partition-dependent. Outside a run every shard's clock sits
     * at the same window boundary, so boot reads are K-independent.
     */
    Tick now() const;

    void schedule(Event &ev, Tick when,
                  EventPriority prio = EventPriority::Default);

    void
    scheduleIn(Event &ev, Tick delay,
               EventPriority prio = EventPriority::Default)
    {
        schedule(ev, now() + delay, prio);
    }

    /** Schedule a callable through a pooled CallbackEvent. */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    void
    schedule(Tick when, F cb,
             EventPriority prio = EventPriority::Default)
    {
        schedule(*CallbackEvent<F>::make(std::move(cb)), when, prio);
    }

    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    void
    scheduleIn(Tick delay, F cb,
               EventPriority prio = EventPriority::Default)
    {
        schedule(now() + delay, std::move(cb), prio);
    }

    /** Cancel a scheduled event (must target this port's shard, from
     *  its own thread or while the kernel is quiescent). */
    void deschedule(Event &ev);

    /**
     * Allocate the key the next schedule() through this port would
     * assign -- same sending-domain counter, same priority packing,
     * and the same cross-domain-send accounting (so batched-window
     * truncation stays identical to an unfused run). Chain fusion
     * pre-assigns per-hop keys with this; pair with scheduleKeyed().
     */
    std::uint64_t allocKey(EventPriority prio);

    /** Schedule with a key previously produced by allocKey(); routes
     *  through the same mailbox/direct-insert paths as schedule(). */
    void scheduleKeyed(Event &ev, Tick when, std::uint64_t key);

    /** The underlying queue (this domain's shard in kernel mode). */
    EventQueue &queue() const { return *queue_; }

    std::uint16_t domain() const { return domain_; }

  private:
    EventQueue *queue_ = nullptr;
    ShardedKernel *kernel_ = nullptr;  ///< null in standalone mode
    std::uint16_t domain_ = 0;
    std::uint8_t shard_ = 0;
};

/**
 * K event queues in conservative lock-step.
 *
 * Lifecycle: construct with a domain->shard map and the lookahead,
 * hand ports to components, schedule initial events (boot context:
 * single-threaded, direct insertion), then run() phases. Between
 * run() calls the kernel is quiescent and boot-context scheduling is
 * allowed again.
 */
class ShardedKernel
{
  public:
    /** Domain ids are 1..numDomains (10 bits in the tiebreak key; 0
     *  is reserved for standalone queues, 1023 for boot-context
     *  scheduling). 1022 usable domains cover a 256-node machine plus
     *  its ordering hubs with ample headroom. */
    static constexpr std::uint16_t maxDomains = 1022;
    static constexpr std::uint16_t bootDomain = 1023;

    /**
     * @param num_shards   host-parallel shards (>= 1)
     * @param domain_shard shard of each domain; index 0 unused,
     *                     size() == numDomains + 1
     * @param lookahead    minimum cross-domain latency in ticks (> 0);
     *                     also the synchronization window width
     */
    ShardedKernel(unsigned num_shards,
                  std::vector<unsigned> domain_shard, Tick lookahead);
    ~ShardedKernel();

    ShardedKernel(const ShardedKernel &) = delete;
    ShardedKernel &operator=(const ShardedKernel &) = delete;

    /** Port for one domain. */
    DomainPort port(std::uint16_t domain);

    Tick lookahead() const { return lookahead_; }
    unsigned numShards() const { return numShards_; }

    /** Shard owning `domain`. Host-side prefetch hints gate on this:
     *  touching another shard's live structures -- even just to warm
     *  the host cache -- would race its worker thread. */
    unsigned
    shardOf(std::uint16_t domain) const
    {
        return domainShard_[domain];
    }

    /**
     * Run windows until `stop` returns true at a window boundary
     * (finishing the window in progress first -- part of the
     * determinism contract) or until every queue drains. Returns true
     * iff stopped by the predicate. `stop` runs on one (arbitrary)
     * thread per boundary with all shards quiescent.
     */
    bool run(const std::function<bool()> &stop);

    /** Total events executed across all shards. */
    std::uint64_t executed() const;

    /** Calendar insertions + pops across all shards (quiescent state
     *  only); fused chain hops bypass both, so this is the cost the
     *  bench's calendar_ops_per_miss attributes. */
    std::uint64_t calendarOps() const;

    /** True when no shard has pending events (quiescent state only). */
    bool empty() const;

    /** Per-shard pending event count (quiescent state only). */
    std::size_t pending(unsigned shard) const;

    // ---- checkpoint support (quiescent state only) ------------------------
    //
    // At run() exit every shard clock sits at the same window boundary
    // and all mailboxes are drained, so (clock, pending events, domain
    // sequence counters, kernel counters) is the complete kernel state
    // and is identical for every shard count K.

    /** One pending event with its full scheduling coordinates. */
    struct CkptPending {
        Tick when;
        std::uint64_t key;
        std::uint16_t domain;
        Event *ev;
    };

    /** All pending events across shards, sorted by (when, key) -- the
     *  canonical K-independent order ((when, key) is total: the key
     *  embeds the scheduling domain and its sequence number). */
    std::vector<CkptPending> ckptCollectPending() const;

    /** The common quiescent shard clock. */
    Tick ckptNow() const { return shards_[0]->queue.now(); }

    /** Advance every (fresh) shard queue to the checkpointed clock,
     *  reproducing each queue's calendar-window position. Must run
     *  before any ckptSchedule() call. */
    void ckptAdvanceTo(Tick t);

    /** Re-insert a restored event with its original key; routed to the
     *  owning shard through this kernel's domain map, so any K works. */
    void ckptSchedule(Event &ev, std::uint16_t domain, Tick when,
                      std::uint64_t key);

    /** Per-domain sequence counters + kernel window/crossing counters
     *  + lifetime executed total. */
    void ckptSaveCounters(ckpt::Writer &w) const;
    void ckptLoadCounters(ckpt::Reader &r);

  private:
    friend class DomainPort;

    /** One cross-shard handoff: the key was already assigned by the
     *  sending domain, so insertion order cannot perturb the total
     *  order. */
    struct MailRec {
        Event *ev;
        Tick when;
        std::uint64_t key;
    };

    /**
     * Single-writer mailbox for one (source, destination) shard pair.
     * Double-buffered: with only one barrier crossing per window, the
     * destination drains the *previous* window's plane while the
     * source already appends to the current one; the planes swap at
     * every crossing, and a plane is always cleared by its drainer a
     * full crossing before its writer touches it again. Each plane
     * also tracks the two earliest mailed ticks so the window planner
     * can account for in-flight events without reading the records.
     */
    struct Plane {
        std::vector<MailRec> recs;
        Tick min1 = maxTick;
        Tick min2 = maxTick;
    };
    struct alignas(64) Mailbox {
        Plane planes[2];
    };

    struct alignas(64) Shard {
        EventQueue queue;
        /** Domain of the event currently executing (EventQueue domain
         *  sink); keys for schedules made during execution come from
         *  this domain's counter. */
        std::uint16_t curDomain = bootDomain;
        /** Mailbox plane this shard currently writes (window parity). */
        unsigned curPlane = 0;
        /** Two earliest pending ticks of this shard's queue,
         *  published before each barrier arrival. */
        Tick e1 = maxTick;
        Tick e2 = maxTick;
        /** Where this shard's window actually ended (batched windows
         *  may truncate early); published before arrival. */
        Tick achievedEnd = 0;
        /** Cross-domain schedules since the batch started; any such
         *  send truncates a batched window at the next sub-boundary
         *  (counted for every K, so truncation is K-independent). */
        std::uint64_t crossDomainSends = 0;
    };

    struct alignas(64) DomainSeq {
        std::uint64_t next = 0;
    };

    /** Centralized sense-reversing spin barrier; the last arriver
     *  runs a callback (window planning) before releasing. */
    class Barrier
    {
      public:
        explicit Barrier(unsigned n) : n_(n) {}

        template <typename F>
        void
        arrive(F on_last)
        {
            unsigned gen = gen_.load(std::memory_order_acquire);
            if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                n_) {
                count_.store(0, std::memory_order_relaxed);
                on_last();
                gen_.fetch_add(1, std::memory_order_release);
                return;
            }
            wait(gen);
        }

      private:
        void wait(unsigned gen) const;

        unsigned n_;
        std::atomic<unsigned> count_{0};
        std::atomic<unsigned> gen_{0};
    };

    /** Bits available for the per-domain sequence below the priority
     *  byte and the 10-bit domain field. */
    static constexpr std::uint64_t seqBits = 46;

    static std::uint64_t
    packKey(EventPriority prio, std::uint16_t domain,
            std::uint64_t seq)
    {
        dsp_assert_key_seq(seq);
        return (static_cast<std::uint64_t>(prio) << 56) |
               (static_cast<std::uint64_t>(domain) << seqBits) | seq;
    }

    /** Out-of-line so logging.hh stays out of this header. */
    static void dsp_assert_key_seq(std::uint64_t seq);

    void scheduleOn(std::uint16_t domain, unsigned target_shard,
                    Event &ev, Tick when, EventPriority prio);

    std::uint64_t allocKeyFor(std::uint16_t target_domain,
                              EventPriority prio);

    void scheduleKeyedOn(std::uint16_t domain, unsigned target_shard,
                         Event &ev, Tick when, std::uint64_t key);

    Mailbox &
    mailbox(unsigned src, unsigned dst)
    {
        return mail_[src * numShards_ + dst];
    }

    void workerLoop(unsigned shard);
    void planNext();
    void checkProgress(Tick earliest);
    [[noreturn]] void panicStalled(Tick earliest);
    int panicHookId_ = 0;  ///< "sharded-kernel" diagnostics hook
    void drainInbox(unsigned shard, unsigned plane);
    void runBatch(Shard &mine);
    void startWorkers();

    unsigned numShards_;
    std::vector<unsigned> domainShard_;
    Tick lookahead_;

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<Mailbox> mail_;
    std::vector<DomainSeq> domainSeq_;  ///< index 0 unused; last = boot

    Barrier barrier_;

    /**
     * Window plan, written by the barrier's last arriver only. One
     * crossing serves a whole window: each shard publishes its queue
     * summary and outbound-mail minima *before* arriving, so the last
     * arriver can plan the next window and release in a single
     * crossing (the second barrier the old design used to separate
     * runs from drains is replaced by the double-buffered mailboxes).
     */
    struct Plan {
        Tick start = 0;   ///< global earliest pending tick
        Tick end = 0;     ///< exclusive window end
        /** Previous window's achieved end: the floor for this
         *  crossing's mailbox drains and clock harmonization. */
        Tick resume = 0;
        bool stop = false;
        /** Solo-shard batch: only `solo` has events before `end`
         *  (everyone else's earliest is at/after it), so it may run
         *  up to maxBatchWindows L-sub-windows in this one crossing,
         *  truncating at the first sub-boundary after a cross-domain
         *  send. */
        bool batch = false;
        unsigned solo = 0;
    };
    Plan plan_;

    /** Most windows a single crossing may cover in a quiet stretch. */
    static constexpr Tick maxBatchWindows = 16;

    bool firstCrossing_ = true;  ///< no window precedes the next plan
    bool stoppedByPredicate_ = false;
    const std::function<bool()> *stopFn_ = nullptr;

    // -- kernel-level counters (written by the planner only; read
    //    while quiescent). barrierCrossings()/windowsRun() feed the
    //    bench's barriers_per_window stat.
    std::uint64_t crossings_ = 0;
    std::uint64_t windows_ = 0;
    std::uint64_t batchedWindows_ = 0;

    // -- progress watchdog (planner-only state). Every crossing runs
    //    with all shards quiescent, so executed() is exact there; if
    //    it fails to advance across stallCrossingLimit_ consecutive
    //    crossings while events still pend, the kernel is wedged --
    //    dump per-shard diagnostics and panic instead of spinning
    //    silently forever.
    std::uint64_t watchdogExecuted_ = ~std::uint64_t{0};
    unsigned stalledCrossings_ = 0;
    unsigned stallCrossingLimit_ = 64;
    bool stallTestFreeze_ = false;  ///< see injectStallForTest()

  public:
    /** Window/shard diagnostics (plan, per-shard clocks and queue
     *  depths) to stderr. Registered as a panic hook, so every death
     *  path -- watchdog panic, oracle violation, bench abort --
     *  includes this dump. Requires quiescence (or a dying process,
     *  where a torn read beats no dump). */
    void dumpDiagnostics() const;

    /** Barrier crossings over the kernel's lifetime. */
    std::uint64_t barrierCrossings() const { return crossings_; }

    /** Lookahead windows executed (batched sub-windows included). */
    std::uint64_t windowsRun() const { return windows_; }

    /** Windows that rode along in a batch without their own crossing. */
    std::uint64_t batchedWindows() const { return batchedWindows_; }

    /**
     * Test-only fault injection for the progress watchdog: lower the
     * stall threshold to `limit` crossings and freeze the watchdog's
     * executed-events baseline, so an otherwise healthy run presents
     * exactly like a wedged kernel (events pending, barrier crossings
     * advancing, zero observed progress) and the dump+panic path can
     * be exercised deterministically.
     */
    void
    injectStallForTest(unsigned limit)
    {
        setStallLimitForTest(limit);
        stallTestFreeze_ = true;
    }

    /** Test-only: lower the stall threshold without freezing the
     *  progress signal (tests that the watchdog stays quiet on
     *  healthy runs even at an aggressive limit). */
    void
    setStallLimitForTest(unsigned limit)
    {
        stallCrossingLimit_ = limit;
    }

  private:

    /**
     * Persistent worker threads (shards 1..K-1), spawned lazily at
     * the first run() and parked on a condition variable between
     * runs. Reusing threads keeps the per-thread immortal pools --
     * and their slab memory -- bounded per kernel instead of growing
     * with every run() call.
     */
    std::vector<std::thread> workers_;
    std::mutex parkMutex_;
    std::condition_variable parkCv_;
    std::uint64_t runGen_ = 0;   ///< bumped per run(); guarded by mutex
    unsigned activeWorkers_ = 0; ///< workers inside the current run
    bool shutdown_ = false;
};

} // namespace dsp

#endif // DSP_SIM_SHARDED_KERNEL_HH
