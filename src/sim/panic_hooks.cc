#include "sim/panic_hooks.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>
#include <vector>

namespace dsp {

namespace {

struct Hook {
    int id;
    std::string name;
    std::function<void()> fn;
};

std::mutex &
hookMutex()
{
    static std::mutex m;
    return m;
}

std::vector<Hook> &
hooks()
{
    static std::vector<Hook> v;
    return v;
}

int nextHookId = 1;
std::atomic<bool> ran{false};

} // namespace

int
addPanicHook(const std::string &name, std::function<void()> fn)
{
    std::lock_guard<std::mutex> lock(hookMutex());
    int id = nextHookId++;
    hooks().push_back(Hook{id, name, std::move(fn)});
    return id;
}

void
removePanicHook(int id)
{
    std::lock_guard<std::mutex> lock(hookMutex());
    auto &v = hooks();
    for (auto it = v.begin(); it != v.end(); ++it) {
        if (it->id == id) {
            v.erase(it);
            return;
        }
    }
}

void
runPanicHooks()
{
    // Run-once *and* recursion guard: a hook that panics re-enters
    // here through panicImpl and must fall straight through to abort.
    if (ran.exchange(true, std::memory_order_acq_rel))
        return;

    // Copy under the lock, run outside it: a hook may (transitively)
    // register/remove hooks without deadlocking. Later registrations
    // are intentionally not picked up -- the process is dying.
    std::vector<Hook> snapshot;
    {
        std::lock_guard<std::mutex> lock(hookMutex());
        snapshot = hooks();
    }
    for (const Hook &h : snapshot) {
        std::fprintf(stderr, "panic-hook: %s\n", h.name.c_str());
        h.fn();
    }
}

} // namespace dsp
