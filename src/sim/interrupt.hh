/**
 * @file
 * Cooperative SIGINT/SIGTERM handling for long-running drivers.
 *
 * The handler only sets a flag; compute loops poll it at natural
 * boundaries (the sharded kernel's window crossings, the sweep
 * supervisor's poll loop) and unwind cleanly: partial results are
 * flushed and the process exits with interruptExitCode so callers can
 * tell "interrupted, partial output valid" from both success and
 * failure.
 */

#ifndef DSP_SIM_INTERRUPT_HH
#define DSP_SIM_INTERRUPT_HH

namespace dsp {

/** Exit status of a driver that was interrupted but flushed its
 *  partial output (EX_TEMPFAIL: rerun/resume to finish). */
constexpr int interruptExitCode = 75;

/** Route SIGINT and SIGTERM to a flag (idempotent). A second signal
 *  while the flag is already set falls back to the default action, so
 *  a wedged process can still be killed from the keyboard. */
void installInterruptHandlers();

/** True once SIGINT/SIGTERM was received (acquire semantics). */
bool interruptRequested();

/** The signal that set the flag (0 when none). */
int interruptSignal();

/** Reset the flag (tests; also lets a driver handle one interrupt and
 *  keep watching for the next). */
void clearInterruptRequest();

} // namespace dsp

#endif // DSP_SIM_INTERRUPT_HH
