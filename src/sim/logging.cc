#include "sim/logging.hh"

#include <cstdarg>
#include <stdexcept>
#include <vector>

#include "sim/panic_hooks.hh"

namespace dsp {

namespace {
int panicThrowDepth = 0;
} // namespace

bool
panicThrowsForTest()
{
    return panicThrowDepth > 0;
}

PanicGuard::PanicGuard()
{
    ++panicThrowDepth;
}

PanicGuard::~PanicGuard()
{
    --panicThrowDepth;
}

namespace detail {

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
logLine(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = formatString("panic: %s (%s:%d)", msg.c_str(),
                                    file, line);
    if (panicThrowsForTest())
        throw std::runtime_error(full);
    std::fprintf(stderr, "%s\n", full.c_str());
    // Death path only (the throw path belongs to tests): give every
    // registered diagnostic dumper one shot before the abort.
    runPanicHooks();
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = formatString("fatal: %s (%s:%d)", msg.c_str(),
                                    file, line);
    if (panicThrowsForTest())
        throw std::runtime_error(full);
    std::fprintf(stderr, "%s\n", full.c_str());
    std::exit(1);
}

} // namespace detail
} // namespace dsp
