/**
 * @file
 * Intrusive events and slab/free-list event pools.
 *
 * The discrete-event kernel schedules hundreds of events per simulated
 * miss; with the original std::function design every one of them cost
 * a heap allocation. Here an event is an intrusive object: its queue
 * linkage (tick, priority, sequence number, heap slot) lives inside the
 * Event itself, and short-lived events are recycled through per-type
 * slab pools, so the steady-state schedule/execute path performs no
 * heap allocation at all.
 *
 * Two usage styles:
 *
 *  - Member events: a component owns the Event as a field and
 *    reschedules it (at most one outstanding). release() is a no-op;
 *    the owner must deschedule() it before destruction.
 *  - Pooled events: acquired from an EventPool, automatically returned
 *    to the pool after process() (or on deschedule). CallbackEvent
 *    wraps any callable this way, giving each distinct callable type
 *    its own pool; EventQueue's template schedule() uses it.
 */

#ifndef DSP_SIM_EVENT_HH
#define DSP_SIM_EVENT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/pool_registry.hh"
#include "sim/slab_pool.hh"
#include "sim/types.hh"

#include <typeinfo>

namespace dsp {

class EventQueue;
class ShardedKernel;

namespace ckpt {
class Writer;
} // namespace ckpt

/**
 * Base class of everything the EventQueue can schedule.
 *
 * An Event may be in at most one queue at a time. process() runs at
 * the scheduled tick; release() is called by the queue once the event
 * leaves it (after process(), on deschedule, or at queue destruction)
 * and returns pooled events to their pool. process() may re-insert
 * the event itself (self-rescheduling order/delivery retries, fused
 * hop chains); the queue skips release() while the event is
 * scheduled, so pooled self-rescheduling events are safe.
 */
class Event
{
  public:
    Event() = default;
    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Execute the event at its scheduled tick. */
    virtual void process() = 0;

    /**
     * Hand the event back to its allocator once it has left the queue.
     * Default: no-op (member / statically-owned events).
     */
    virtual void release() {}

    /**
     * Serialize this in-flight event (tag byte + payload) into a
     * checkpoint. Every event type that can be pending at a quiescent
     * kernel barrier must override this; the default panics naming the
     * concrete type so an unserializable event (e.g. a raw lambda via
     * CallbackEvent) fails the checkpoint loudly instead of being
     * silently dropped.
     */
    virtual void
    ckptSave(ckpt::Writer &) const
    {
        dsp_panic("event type %s is not checkpoint-serializable",
                  typeid(*this).name());
    }

    /** True while the event sits in a queue. */
    bool scheduled() const { return scheduled_; }

    /** Scheduled tick (meaningful only while scheduled). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;
    friend class ShardedKernel;

    static constexpr std::size_t invalidHeapIndex =
        std::numeric_limits<std::size_t>::max();

    /**
     * Queue linkage. A scheduled event lives in exactly one of the
     * queue's two planes:
     *
     *  - the calendar ring (short horizon): a per-bucket doubly-linked
     *    list sorted by (when, key), threaded through prev_/next_;
     *  - the overflow heap (far future): heapIndex_ records its slot.
     *
     * heapIndex_ == invalidHeapIndex distinguishes the two. The full
     * ordering key (priority byte above a 56-bit insertion sequence)
     * is cached in key_ so list insertion never recomputes it.
     */
    Tick when_ = 0;
    std::uint64_t key_ = 0;
    Event *prev_ = nullptr;
    Event *next_ = nullptr;
    std::size_t heapIndex_ = invalidHeapIndex;
    bool scheduled_ = false;
    /** Logical domain the event executes in (sharded kernel only;
     *  0 for events scheduled on a standalone queue). Fits in the
     *  padding after scheduled_. */
    std::uint16_t domain_ = 0;
};

/** Aggregate counters for one pool (or, summed, for all pools). */
struct EventPoolStats {
    std::uint64_t acquires = 0;         ///< events handed out
    std::uint64_t releases = 0;         ///< events returned
    std::uint64_t slabAllocations = 0;  ///< backing-store mallocs
    std::uint64_t slabBytes = 0;        ///< backing-store footprint

    /** Events currently live (scheduled or executing). */
    std::uint64_t live() const { return acquires - releases; }
};

EventPoolStats eventPoolStats();

/**
 * Registry node so aggregate statistics can walk every pool.
 *
 * Pools are per thread (see EventPool::instance()) and are immortal
 * (see sim/pool_registry.hh): a pool's slabs must outlive its owning
 * thread because pooled events allocated on one shard thread may be
 * executed -- and their slots recycled -- on another.
 */
class EventPoolBase
{
  public:
    const EventPoolStats &stats() const { return stats_; }

  protected:
    EventPoolBase() { PoolRegistry<EventPoolBase>::add(this); }
    ~EventPoolBase() = default;

    EventPoolStats stats_;
};

/**
 * Total pool activity across the process (all threads' pools). The
 * hot-path invariant the tests pin down: once pools are warm,
 * slabAllocations stays constant while acquires keeps growing -- i.e.
 * zero heap allocations per event. Only call while no shard workers
 * are running.
 */
inline EventPoolStats
eventPoolStats()
{
    EventPoolStats total;
    PoolRegistry<EventPoolBase>::forEach(
        [&](const EventPoolBase &pool) {
            total.acquires += pool.stats().acquires;
            total.releases += pool.stats().releases;
            total.slabAllocations += pool.stats().slabAllocations;
            total.slabBytes += pool.stats().slabBytes;
        });
    return total;
}

/**
 * Slab allocator with an intrusive free list for one concrete event
 * type. Slots are carved out of fixed-size slabs (one malloc per
 * `slabSlots` events, kept for the lifetime of the process); the free
 * list threads through the slots themselves, so acquire/release touch
 * no allocator.
 *
 * instance() returns a *per-thread* pool, so the common same-thread
 * acquire/release path is lock-free and allocator-free under the
 * sharded kernel; cross-thread recycling (a cross-shard event:
 * acquired at the sender, executed at the destination) goes through
 * the shared SlabArena machinery (sim/slab_pool.hh), which bounds
 * slab memory by the peak number of live events, not the event
 * count. Pool objects (and their slabs) are deliberately leaked (see
 * sim/pool_registry.hh).
 */
template <typename T>
class EventPool : public EventPoolBase
{
    static_assert(std::is_base_of_v<Event, T>,
                  "EventPool manages Event subclasses");

  public:
    static EventPool &
    instance()
    {
        // Constant-initialized thread_local: no init-guard call on
        // the (very hot) common path, just a TLS load and null test.
        static thread_local EventPool *pool;
        EventPool *p = pool;
        if (__builtin_expect(p == nullptr, false)) {
            p = new EventPool;
            pool = p;
        }
        return *p;
    }

    /** Construct a T in a recycled (or fresh) slot. */
    template <typename... Args>
    T *
    acquire(Args &&...args)
    {
        ++stats_.acquires;
        return new (static_cast<void *>(&arena_.acquire()->storage))
            T(std::forward<Args>(args)...);
    }

    /** Destroy a T and recycle its slot (from any thread). */
    void
    release(T *event)
    {
        event->~T();
        ++stats_.releases;
        // The storage array is the Slot's first member, so the event
        // pointer is the slot pointer.
        arena_.release(reinterpret_cast<Slot *>(event));
    }

  private:
    struct Slot {
        /** Object storage; first member so T* == Slot*. */
        alignas(T) unsigned char storage[sizeof(T)];
        Slot *next = nullptr;   ///< arena free-list linkage
        void *home = nullptr;   ///< arena owning the slab
    };

    EventPool()
        : arena_(&stats_.slabAllocations, &stats_.slabBytes)
    {
    }

    SlabArena<Slot> arena_;
};

/**
 * Pooled event wrapping an arbitrary callable. Each distinct callable
 * type (in practice: each lambda at each call site) gets its own slab
 * pool, and the captures live inside the slot -- scheduling a lambda
 * through this path is heap-allocation free.
 */
template <typename F>
class CallbackEvent final : public Event
{
  public:
    explicit CallbackEvent(F &&fn) : fn_(std::move(fn)) {}

    static CallbackEvent *
    make(F fn)
    {
        return EventPool<CallbackEvent>::instance().acquire(
            std::move(fn));
    }

    void process() override { fn_(); }

    void
    release() override
    {
        EventPool<CallbackEvent>::instance().release(this);
    }

  private:
    F fn_;
};

} // namespace dsp

#endif // DSP_SIM_EVENT_HH
