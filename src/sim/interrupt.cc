#include "sim/interrupt.hh"

#include <csignal>

#include <atomic>

namespace dsp {

namespace {

std::atomic<int> g_signal{0};

extern "C" void
onInterrupt(int sig)
{
    // Second delivery with the flag still set: restore the default
    // disposition and re-raise, so an unresponsive driver dies the
    // normal way instead of eating signals forever.
    int expected = 0;
    if (!g_signal.compare_exchange_strong(expected, sig,
                                          std::memory_order_acq_rel)) {
        std::signal(sig, SIG_DFL);
        std::raise(sig);
    }
}

} // namespace

void
installInterruptHandlers()
{
    std::signal(SIGINT, onInterrupt);
    std::signal(SIGTERM, onInterrupt);
}

bool
interruptRequested()
{
    return g_signal.load(std::memory_order_acquire) != 0;
}

int
interruptSignal()
{
    return g_signal.load(std::memory_order_acquire);
}

void
clearInterruptRequest()
{
    g_signal.store(0, std::memory_order_release);
}

} // namespace dsp
