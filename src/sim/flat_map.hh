/**
 * @file
 * Open-addressing flat hash containers for the simulation hot path.
 *
 * std::unordered_map's node-per-element design costs an allocation and
 * a pointer chase per entry; the simulator's hot tables (sharing
 * state, MSHRs, in-flight transactions, unbounded predictor tables,
 * analysis accumulators) are all keyed by small integers and live in
 * inner loops. FlatMap stores entries inline in a power-of-two slot
 * array with linear probing, a strong integer mixer (so sequential
 * block numbers do not cluster), and tombstone deletion.
 *
 * API is the familiar subset of std::unordered_map used in this code
 * base: find / operator[] / try_emplace / emplace / erase / size /
 * clear / range-for. Differences to be aware of:
 *
 *  - any insertion may rehash, invalidating iterators AND references
 *    (unordered_map keeps references stable; do not hold a reference
 *    across an insertion into the same map);
 *  - erase() never rehashes, so iterators to other elements survive;
 *  - value_type is std::pair<K, V> (non-const key) and V must be
 *    default-constructible.
 */

#ifndef DSP_SIM_FLAT_MAP_HH
#define DSP_SIM_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace dsp {

/** splitmix64 finalizer: cheap, and decorrelates sequential keys. */
constexpr std::uint64_t
flatHashMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Open-addressing hash map from an integral key to V.
 */
template <typename K, typename V>
class FlatMap
{
    static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                  "FlatMap keys are small integers");

    enum : std::uint8_t { slotEmpty = 0, slotFull = 1, slotTomb = 2 };

  public:
    using value_type = std::pair<K, V>;

    template <bool Const>
    class Iterator
    {
        using MapPtr = std::conditional_t<Const, const FlatMap *,
                                          FlatMap *>;
        using Value = std::conditional_t<Const, const value_type,
                                         value_type>;

      public:
        Iterator() = default;

        Iterator(MapPtr map, std::size_t idx) : map_(map), idx_(idx)
        {
            skipToFull();
        }

        /** Conversion iterator -> const_iterator. */
        template <bool WasConst,
                  typename = std::enable_if_t<Const && !WasConst>>
        Iterator(const Iterator<WasConst> &other)
            : map_(other.map_), idx_(other.idx_)
        {
        }

        Value &operator*() const { return map_->slots_[idx_]; }
        Value *operator->() const { return &map_->slots_[idx_]; }

        Iterator &
        operator++()
        {
            ++idx_;
            skipToFull();
            return *this;
        }

        friend bool
        operator==(const Iterator &a, const Iterator &b)
        {
            return a.idx_ == b.idx_;
        }

        friend bool
        operator!=(const Iterator &a, const Iterator &b)
        {
            return a.idx_ != b.idx_;
        }

      private:
        friend class FlatMap;
        template <bool> friend class Iterator;

        void
        skipToFull()
        {
            while (idx_ < map_->ctrl_.size() &&
                   map_->ctrl_[idx_] != slotFull) {
                ++idx_;
            }
        }

        MapPtr map_ = nullptr;
        std::size_t idx_ = 0;
    };

    using iterator = Iterator<false>;
    using const_iterator = Iterator<true>;

    FlatMap() = default;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, ctrl_.size()); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, ctrl_.size()); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Slots currently allocated (0 until the first insertion). */
    std::size_t capacity() const { return ctrl_.size(); }

    iterator
    find(K key)
    {
        return iterator(this, findIndex(key));
    }

    const_iterator
    find(K key) const
    {
        return const_iterator(this, findIndex(key));
    }

    bool
    contains(K key) const
    {
        return findIndex(key) != ctrl_.size();
    }

    /**
     * Issue host prefetches for `key`'s home slot (control byte and
     * slot storage). Purely a latency hint for a lookup a few events
     * from now -- semantically a no-op, and probe chains past the home
     * slot still walk normally.
     */
    void
    prefetch(K key) const
    {
        if (ctrl_.empty())
            return;
        std::size_t i = indexOf(key);
        __builtin_prefetch(ctrl_.data() + i, 0, 3);
        __builtin_prefetch(slots_.data() + i, 0, 3);
    }

    V &
    operator[](K key)
    {
        return tryEmplaceIndex(key).first->second;
    }

    /** Insert a default-constructed V if `key` is absent. */
    std::pair<iterator, bool>
    try_emplace(K key)
    {
        return tryEmplaceIndex(key);
    }

    /** Insert (key, value) if `key` is absent. */
    template <typename U>
    std::pair<iterator, bool>
    emplace(K key, U &&value)
    {
        auto result = tryEmplaceIndex(key);
        if (result.second)
            result.first->second = std::forward<U>(value);
        return result;
    }

    /**
     * Remove the element at `it`. Never rehashes: iterators and
     * references to other elements stay valid (unlike insertion).
     */
    void
    erase(iterator it)
    {
        dsp_assert(it.idx_ < ctrl_.size() &&
                       ctrl_[it.idx_] == slotFull,
                   "FlatMap::erase of invalid iterator");
        ctrl_[it.idx_] = slotTomb;
        // Reset the slot so held resources (vectors etc.) are freed.
        slots_[it.idx_] = value_type{};
        --size_;
    }

    /** Remove `key` if present; true if an element was removed. */
    bool
    erase(K key)
    {
        std::size_t idx = findIndex(key);
        if (idx == ctrl_.size())
            return false;
        erase(iterator(this, idx));
        return true;
    }

    void
    clear()
    {
        ctrl_.assign(ctrl_.size(), slotEmpty);
        for (value_type &slot : slots_)
            slot = value_type{};
        size_ = 0;
        used_ = 0;
    }

    /** Grow so that `n` elements fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t needed = minCapacity;
        while (n > loadLimit(needed))
            needed *= 2;
        if (needed > ctrl_.size())
            rehash(needed);
    }

    /**
     * Checkpoint the exact physical layout -- control bytes (including
     * tombstones), live/used counts, and each full slot in index order
     * -- so a restored map reproduces probe chains, iteration order,
     * and future rehash points bit-for-bit. `saveValue(w, v)` writes
     * one mapped value; keys are written as raw pod bytes.
     */
    template <typename W, typename SaveValue>
    void
    ckptSave(W &w, SaveValue &&saveValue) const
    {
        w.podVec(ctrl_);
        w.u64(size_);
        w.u64(used_);
        for (std::size_t i = 0; i < ctrl_.size(); ++i) {
            if (ctrl_[i] != slotFull)
                continue;
            w.pod(slots_[i].first);
            saveValue(w, slots_[i].second);
        }
    }

    /** Layout save for trivially copyable mapped values. */
    template <typename W>
    void
    ckptSave(W &w) const
    {
        ckptSave(w, [](W &out, const V &v) { out.pod(v); });
    }

    /** Inverse of ckptSave: `loadValue(r, v)` fills one mapped value. */
    template <typename R, typename LoadValue>
    void
    ckptLoad(R &r, LoadValue &&loadValue)
    {
        ctrl_ = r.template podVec<std::uint8_t>();
        size_ = r.u64();
        used_ = r.u64();
        slots_ = std::vector<value_type>(ctrl_.size());
        for (std::size_t i = 0; i < ctrl_.size(); ++i) {
            if (ctrl_[i] != slotFull)
                continue;
            slots_[i].first = r.template pod<K>();
            loadValue(r, slots_[i].second);
        }
    }

    /** Layout load for trivially copyable mapped values. */
    template <typename R>
    void
    ckptLoad(R &r)
    {
        ckptLoad(r, [](R &in, V &v) { v = in.template pod<V>(); });
    }

  private:
    static constexpr std::size_t minCapacity = 16;

    /** Max live+tombstone slots before growing: 7/8 load. */
    static constexpr std::size_t
    loadLimit(std::size_t capacity)
    {
        return capacity - capacity / 8;
    }

    std::size_t
    indexOf(K key) const
    {
        return static_cast<std::size_t>(
                   flatHashMix(static_cast<std::uint64_t>(key))) &
               (ctrl_.size() - 1);
    }

    /** Index of `key`'s slot, or ctrl_.size() when absent. */
    std::size_t
    findIndex(K key) const
    {
        if (ctrl_.empty())
            return 0;  // == ctrl_.size(): the end sentinel
        std::size_t mask = ctrl_.size() - 1;
        for (std::size_t i = indexOf(key);; i = (i + 1) & mask) {
            if (ctrl_[i] == slotEmpty)
                return ctrl_.size();
            if (ctrl_[i] == slotFull && slots_[i].first == key)
                return i;
        }
    }

    std::pair<iterator, bool>
    tryEmplaceIndex(K key)
    {
        if (ctrl_.empty())
            rehash(minCapacity);

        // Probe first: a hit on an existing key is a pure lookup and
        // must never rehash (the documented contract is that only
        // insertion invalidates references).
        std::size_t mask = ctrl_.size() - 1;
        std::size_t insert_at = ctrl_.size();
        for (std::size_t i = indexOf(key);; i = (i + 1) & mask) {
            if (ctrl_[i] == slotFull) {
                if (slots_[i].first == key)
                    return {iterator(this, i), false};
                continue;
            }
            if (ctrl_[i] == slotTomb) {
                // Remember the first reusable slot but keep probing:
                // the key may still exist further along the chain.
                if (insert_at == ctrl_.size())
                    insert_at = i;
                continue;
            }
            // Empty: the key is definitely absent.
            if (insert_at == ctrl_.size())
                insert_at = i;
            break;
        }

        // The key is absent, so this is a real insertion. When the
        // load limit trips, rebuild at a capacity sized for the *live*
        // count: a churn-heavy map (insert+erase steady state) hits
        // the limit through tombstones and must rebuild in place, not
        // double forever. Rebuilding drops all tombstones, so the slot
        // is re-found on a clean chain.
        if (used_ + 1 > loadLimit(ctrl_.size())) {
            rehash(ctrl_.size());
            mask = ctrl_.size() - 1;
            std::size_t i = indexOf(key);
            while (ctrl_[i] == slotFull)
                i = (i + 1) & mask;
            insert_at = i;
        }

        if (ctrl_[insert_at] == slotEmpty)
            ++used_;  // consuming a fresh slot, not a tombstone
        ctrl_[insert_at] = slotFull;
        slots_[insert_at].first = key;
        ++size_;
        return {iterator(this, insert_at), true};
    }

    void
    rehash(std::size_t new_capacity)
    {
        // Leave headroom so a tombstone-heavy table does not rebuild
        // again almost immediately; genuinely growing tables double.
        while ((size_ + 1) * 2 > new_capacity)
            new_capacity *= 2;

        std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
        std::vector<value_type> old_slots = std::move(slots_);
        ctrl_.assign(new_capacity, slotEmpty);
        // Default-construct (not copy-fill) the new slots so move-only
        // values (e.g. unique_ptr payloads) work.
        slots_ = std::vector<value_type>(new_capacity);
        used_ = size_;

        std::size_t mask = new_capacity - 1;
        for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
            if (old_ctrl[i] != slotFull)
                continue;
            std::size_t j = indexOf(old_slots[i].first);
            while (ctrl_[j] == slotFull)
                j = (j + 1) & mask;
            ctrl_[j] = slotFull;
            slots_[j] = std::move(old_slots[i]);
        }
    }

    std::vector<std::uint8_t> ctrl_;
    std::vector<value_type> slots_;
    std::size_t size_ = 0;  ///< live elements
    std::size_t used_ = 0;  ///< live + tombstones
};

/**
 * Open-addressing hash set over an integral key; the thin wrapper the
 * analysis collectors need (insert / contains / size).
 */
template <typename K>
class FlatSet
{
    struct Empty {};

  public:
    /** Insert `key`; true if it was newly added. */
    bool
    insert(K key)
    {
        return map_.try_emplace(key).second;
    }

    bool contains(K key) const { return map_.contains(key); }
    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    void clear() { map_.clear(); }

  private:
    FlatMap<K, Empty> map_;
};

} // namespace dsp

#endif // DSP_SIM_FLAT_MAP_HH
