/**
 * @file
 * Process-wide registry for per-thread, intentionally-immortal pools.
 *
 * The sharded kernel gives every thread its own slab pools so
 * acquire/release stay lock-free; slots migrate freely between
 * threads' free lists, which means a pool's slabs must outlive the
 * thread that allocated them. Pools are therefore leaked on purpose,
 * and this registry is what keeps them (a) reachable past static
 * destruction -- so LeakSanitizer sees retained state, not leaks --
 * and (b) enumerable, so aggregate statistics can be computed while
 * the kernel is quiescent.
 *
 * Registration is mutex-guarded (it happens once per thread per pool
 * type); forEach takes the same mutex and is only meaningful while no
 * worker threads are running.
 */

#ifndef DSP_SIM_POOL_REGISTRY_HH
#define DSP_SIM_POOL_REGISTRY_HH

#include <mutex>
#include <vector>

namespace dsp {

template <typename PoolT>
class PoolRegistry
{
  public:
    /** Register an immortal pool (called once at pool creation). */
    static void
    add(PoolT *pool)
    {
        std::lock_guard<std::mutex> lock(mutex());
        list().push_back(pool);
    }

    /** Visit every registered pool (quiescent state only). */
    template <typename Fn>
    static void
    forEach(Fn fn)
    {
        std::lock_guard<std::mutex> lock(mutex());
        for (PoolT *pool : list())
            fn(*pool);
    }

  private:
    static std::vector<PoolT *> &
    list()
    {
        // Heap-allocated and never destroyed: see the file comment.
        static std::vector<PoolT *> *pools = new std::vector<PoolT *>;
        return *pools;
    }

    static std::mutex &
    mutex()
    {
        static std::mutex m;
        return m;
    }
};

} // namespace dsp

#endif // DSP_SIM_POOL_REGISTRY_HH
