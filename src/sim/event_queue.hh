/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A two-level calendar/bucket queue over intrusive events. Coherence
 * traffic is overwhelmingly short-horizon (link hops, controller
 * latencies, CPU quanta -- all well under a microsecond), so the queue
 * keeps a power-of-two ring of tick buckets covering the next ~2 us:
 * schedule and execute are O(1) there, with a two-level occupancy
 * bitmap skipping empty buckets in a handful of bit operations. Events
 * beyond the ring's horizon -- rare -- wait in a small 4-ary overflow
 * heap and migrate into the ring as the window advances past them.
 *
 * Events are intrusive (sim/event.hh): bucket linkage lives inside the
 * Event, events are recycled through slab pools, and the whole
 * schedule/execute path performs zero heap allocations. Ties are
 * broken first by an explicit priority, then by insertion order, so
 * execution is fully deterministic and identical to the total order
 * the previous heap-based kernel produced.
 */

#ifndef DSP_SIM_EVENT_QUEUE_HH
#define DSP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <type_traits>
#include <vector>

#include "sim/event.hh"
#include "sim/types.hh"

namespace dsp {

/** Scheduling priority; lower values run first at equal ticks.
 *  Values must fit in a byte (the queue packs them above the 56-bit
 *  insertion sequence to form one 64-bit tiebreak key). */
enum class EventPriority : int {
    NetworkOrder = 0,   ///< interconnect ordering-point events
    Delivery = 10,      ///< message deliveries
    Controller = 20,    ///< cache/memory controller work
    Cpu = 30,           ///< processor model ticks
    Stats = 40,         ///< bookkeeping
    Default = 50,
};

/**
 * Deterministic discrete-event queue.
 *
 * Not thread safe; the whole simulator is single threaded by design (it
 * models parallelism, it does not use it).
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule an intrusive event at absolute tick `when` (>= now). */
    void schedule(Event &ev, Tick when,
                  EventPriority prio = EventPriority::Default);

    /** Schedule an intrusive event `delay` ticks from now. */
    void
    scheduleIn(Event &ev, Tick delay,
               EventPriority prio = EventPriority::Default)
    {
        schedule(ev, now_ + delay, prio);
    }

    /**
     * Schedule a callable at absolute tick `when` (>= now). The
     * callable is moved into a pooled CallbackEvent; its captures live
     * in the slab slot, so no heap allocation occurs.
     */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    void
    schedule(Tick when, F cb,
             EventPriority prio = EventPriority::Default)
    {
        assertSchedulable(when);
        schedule(*CallbackEvent<F>::make(std::move(cb)), when, prio);
    }

    /** Schedule a callable `delay` ticks from now. */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    void
    scheduleIn(Tick delay, F cb,
               EventPriority prio = EventPriority::Default)
    {
        schedule(now_ + delay, std::move(cb), prio);
    }

    /**
     * Schedule an intrusive event with a caller-supplied tiebreak key.
     * The queue only requires that keys at equal ticks are unique and
     * that the priority occupies the top byte; the sharded kernel
     * packs (priority << 56 | 10-bit domain << 46 | 46-bit per-domain
     * seq), while this queue's own schedule() packs (priority << 56 |
     * 56-bit per-queue seq) -- the spaces stay disjoint because
     * kernel domain ids are nonzero and a queue-local sequence
     * cannot reach bit 46 in any realistic run (2^46 events on one
     * queue). The key is assigned by the *sending* domain and carried
     * across shard boundaries, so the resulting total order is
     * independent of which shard the event is inserted from -- the
     * foundation of the K-shard == 1-shard determinism contract.
     */
    void scheduleWithKey(Event &ev, Tick when, std::uint64_t key);

    /**
     * Cancel a scheduled event: remove it from the queue and release()
     * it (pooled events are recycled immediately; member events become
     * reschedulable).
     */
    void deschedule(Event &ev);

    /**
     * Allocate the tiebreak key the next schedule() at this priority
     * would assign, consuming the same sequence counter. Chain fusion
     * pre-assigns hop keys with this so a fused run's key stream is
     * bit-identical to the unfused one; pair with scheduleWithKey().
     */
    std::uint64_t allocKey(EventPriority prio);

    /**
     * Inline-advance to a fused chain hop at (when, key): legal only
     * when nothing pending orders before it and `when` lies inside the
     * current run() limit (a fused hop must never leak past a window
     * boundary the scheduler planned around). On success the clock
     * moves to `when`, the hop counts as an executed event, and the
     * hop's domain is published to the domain sink exactly as a real
     * pop would; the caller then runs the hop's work inline. On
     * refusal nothing changes -- the caller re-inserts itself with
     * scheduleWithKey() and the calendar serves the hop normally.
     */
    bool chainAdvance(Tick when, std::uint64_t key,
                      std::uint16_t domain);

    /** Calendar work over the queue's lifetime: schedule insertions
     *  plus executed pops. Fused chain hops skip both planes, so this
     *  is the counter chain fusion exists to shrink. */
    std::uint64_t calendarOps() const { return inserts_ + pops_; }

    /** Restore the lifetime calendar-op counter from a checkpoint. */
    void
    ckptSetCalendarOps(std::uint64_t n)
    {
        inserts_ = n;
        pops_ = 0;
    }

    /** True if no events remain. */
    bool
    empty() const
    {
        return ringLive_ == 0 && heap_.empty() && runNextLive_ == 0;
    }

    /** Tick of the earliest pending event (maxTick when empty). */
    Tick
    earliestTick() const
    {
        return empty() ? maxTick : peekEarliest()->when_;
    }

    /**
     * Ticks of the two earliest pending events, as a multiset (two
     * events at one tick report it twice); maxTick fills absent
     * slots. The sharded kernel merges these across shards to decide
     * whether a quiet stretch can be batched into one wide window.
     */
    void earliestTwo(Tick &first, Tick &second) const;

    /**
     * Advance the clock to `t` without executing anything; all
     * pending events must lie strictly after `t`. Equivalent to the
     * trailing clock advance of run(t), for shards that provably had
     * nothing to run in a window (batched windows skip their run()).
     */
    void advanceTo(Tick t);

    /**
     * Route the domain id of every executed event into `sink`
     * (before its process() runs). The sharded kernel points this at
     * the shard's current-domain latch so schedules made *during* an
     * event execution are keyed by the executing domain.
     */
    void
    setDomainSink(std::uint16_t *sink)
    {
        domainSink_ = sink != nullptr ? sink : &dummyDomain_;
    }

    /** Number of pending events. */
    std::size_t
    pending() const
    {
        return ringLive_ + heap_.size() + runNextLive_;
    }

    /** Execute the single earliest event, advancing time. */
    void step();

    /**
     * Run until the queue drains or `limit` ticks is reached (events at
     * tick > limit remain queued). Returns number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /** Restore the lifetime executed counter from a checkpoint. */
    void ckptSetExecuted(std::uint64_t n) { executed_ = n; }

    /**
     * Visit every pending event (both planes, no particular order)
     * with its scheduling coordinates: fn(ev, when, key, domain).
     * Checkpointing uses this to enumerate in-flight events at a
     * quiescent barrier; callers sort by (when, key) themselves to
     * get the shard-count-independent canonical order.
     */
    template <typename Fn>
    void
    forEachPending(Fn &&fn) const
    {
        for (const Bucket &bucket : buckets_) {
            for (Event *ev = bucket.head; ev != nullptr;
                 ev = ev->next_) {
                fn(*ev, ev->when_, ev->key_, ev->domain_);
            }
        }
        for (const HeapEntry &entry : heap_)
            fn(*entry.ev, entry.when, entry.key, entry.ev->domain_);
        for (std::size_t i = 0; i < runNextLive_; ++i) {
            Event *ev = runNext_[i];
            fn(*ev, ev->when_, ev->key_, ev->domain_);
        }
    }

    // ---- calendar geometry (public so tests can straddle it) -------------

    /** log2 of the tick width of one calendar bucket. */
    static constexpr std::size_t bucketShift = 9;

    /** Number of ring buckets (power of two). */
    static constexpr std::size_t bucketCount = 4096;

    /** Tick span of one bucket (512 ticks ~ half a nanosecond). */
    static constexpr Tick bucketWidth = Tick{1} << bucketShift;

    /**
     * Tick span the ring covers ahead of the window start (~2.1 us).
     * Events scheduled farther out go to the overflow heap first.
     */
    static constexpr Tick ringHorizon = bucketWidth * bucketCount;

  private:
    static constexpr std::size_t bucketMask = bucketCount - 1;

    /** Bitmap words covering the ring (64 buckets per word). */
    static constexpr std::size_t bitmapWords = bucketCount / 64;

    /** One calendar bucket: a (when, key)-sorted doubly-linked list
     *  threaded through the events themselves. */
    struct Bucket {
        Event *head = nullptr;
        Event *tail = nullptr;
    };

    /**
     * One overflow-heap slot: the full ordering key plus the event.
     * Priority (one byte) is packed above a 56-bit insertion sequence,
     * so the (tick, priority, sequence) contract is two integer
     * compares.
     */
    struct HeapEntry {
        Tick when;
        std::uint64_t key;
        Event *ev;
    };

    /** 4-ary heap: half the depth of a binary heap, and the four
     *  children of a node share one or two cache lines. */
    static constexpr std::size_t heapArity = 4;

    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.key < b.key;
    }

    void assertSchedulable(Tick when) const;

    // ---- ring plane -------------------------------------------------------

    static std::size_t
    bucketOf(Tick when)
    {
        return static_cast<std::size_t>(when >> bucketShift) &
               bucketMask;
    }

    /** Index of the bucket the window starts at (== bucketOf of the
     *  window start, which aliases bucketOf(ringLimit_)). */
    std::size_t cursor() const { return bucketOf(ringLimit_); }

    void setOccupied(std::size_t b);
    void clearOccupied(std::size_t b);

    /** First occupied bucket in window order from the cursor; the
     *  ring must be non-empty. */
    std::size_t firstOccupiedBucket() const;

    /** Next occupied bucket strictly after `b` in window order, or
     *  bucketCount if none. */
    std::size_t nextOccupiedAfter(std::size_t b) const;

    /** earliestTwo over the two calendar planes only (the public
     *  earliestTwo merges the run-next buffer on top). */
    void planesEarliestTwo(Tick &first, Tick &second) const;

    /**
     * Enqueue a prepared event (when_/key_/scheduled_ set). An event
     * scheduled from inside run() parks in the small sorted run-next
     * buffer instead of entering a calendar plane: the hops the
     * in-flight transactions schedule next are overwhelmingly the
     * next things to run, and consuming one from the buffer skips the
     * bucket insert and pop entirely (the sequential half of chain
     * fusion -- the request->order->deliver->supply ladder -- without
     * touching any call site). The buffer competes with the calendar
     * planes on exact (when, key) order everywhere the queue compares
     * events, so execution order is bit-identical to a pure calendar;
     * when it fills, the latest-ordering parked event spills to a
     * calendar plane. Parked events survive run() boundaries -- every
     * observer (pending counts, earliest queries, checkpoints via
     * forEachPending, deschedule) treats the buffer as a third plane.
     * Only the calendar-op counter notices: buffer-served events cost
     * no insert and no pop, which is the point.
     */
    void enqueuePrepared(Event &ev);

    /** Insert a prepared event into a calendar plane, counting the
     *  insert. */
    void insertPrepared(Event &ev);

    /** Insert a prepared event (when_/key_ set) into its bucket's
     *  sorted list. */
    void ringInsert(Event &ev);

    /** Unlink a ring event from its bucket. */
    void ringRemove(Event &ev);

    /**
     * Grow the ring window so `upTo` lies strictly below ringLimit_,
     * migrating overflow events that fall inside the new window.
     */
    void advanceWindow(Tick upTo);

    /** Earliest pending event, whichever plane holds it; no side
     *  effects. The queue must be non-empty. */
    Event *peekEarliest() const;

    /** Detach and run one event (the current minimum, from either
     *  plane). */
    void execute(Event *ev);

    // ---- overflow plane ---------------------------------------------------

    void heapPush(Event &ev);
    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Detach the event at heap slot `i`, restoring the heap. */
    Event *heapRemoveAt(std::size_t i);

    void
    place(std::size_t i, const HeapEntry &entry)
    {
        heap_[i] = entry;
        entry.ev->heapIndex_ = i;
    }

    std::vector<Bucket> buckets_;
    std::vector<std::uint64_t> occupied_;  ///< per-word bucket bitmap
    std::uint64_t occupiedSummary_ = 0;    ///< bit per bitmap word
    std::size_t ringLive_ = 0;
    Tick ringLimit_ = ringHorizon;  ///< exclusive upper ring coverage

    std::vector<HeapEntry> heap_;

    /** Capacity of the run-next buffer: enough seats for every
     *  in-flight transaction's next hop at the contention levels the
     *  workloads produce, small enough that the sorted insert is a
     *  few pointer moves within two cache lines. */
    static constexpr std::size_t runNextCap = 16;

    /** Run-next buffer: events parked outside both calendar planes,
     *  sorted ascending by (when, key) so runNext_[0] is its minimum
     *  (see enqueuePrepared). */
    Event *runNext_[runNextCap] = {};
    std::size_t runNextLive_ = 0;

    /** True while run() is executing events (parking is legal). */
    bool running_ = false;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t pops_ = 0;

    /** Inclusive upper tick of the run() in progress (maxTick outside
     *  run()); chainAdvance() refuses hops beyond it so fusion cannot
     *  cross a window boundary. */
    Tick runLimit_ = maxTick;

    /** Where execute() publishes the running event's domain id.
     *  Defaults to an internal dummy so the store is unconditional. */
    std::uint16_t dummyDomain_ = 0;
    std::uint16_t *domainSink_ = &dummyDomain_;
};

} // namespace dsp

#endif // DSP_SIM_EVENT_QUEUE_HH
