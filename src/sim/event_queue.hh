/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal gem5-flavoured event queue: events are callbacks scheduled at
 * an absolute Tick; ties are broken first by an explicit priority, then by
 * insertion order, so execution is fully deterministic.
 */

#ifndef DSP_SIM_EVENT_QUEUE_HH
#define DSP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace dsp {

/** Scheduling priority; lower values run first at equal ticks. */
enum class EventPriority : int {
    NetworkOrder = 0,   ///< interconnect ordering-point events
    Delivery = 10,      ///< message deliveries
    Controller = 20,    ///< cache/memory controller work
    Cpu = 30,           ///< processor model ticks
    Stats = 40,         ///< bookkeeping
    Default = 50,
};

/**
 * Deterministic discrete-event queue.
 *
 * Not thread safe; the whole simulator is single threaded by design (it
 * models parallelism, it does not use it).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule a callback at absolute tick `when` (>= now). */
    void
    schedule(Tick when, Callback cb,
             EventPriority prio = EventPriority::Default);

    /** Schedule a callback `delay` ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb,
               EventPriority prio = EventPriority::Default);

    /** True if no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Execute the single earliest event, advancing time. */
    void step();

    /**
     * Run until the queue drains or `limit` ticks is reached (events at
     * tick > limit remain queued). Returns number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry {
        Tick when;
        int prio;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace dsp

#endif // DSP_SIM_EVENT_QUEUE_HH
