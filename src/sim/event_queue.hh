/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A gem5-flavoured event queue over intrusive events. The binary heap
 * stores compact (tick, priority|sequence, event*) entries: ordering
 * comparisons touch only the contiguous heap array (no pointer chase)
 * and sift operations move 24 bytes, while the events themselves --
 * recycled through slab pools, see sim/event.hh -- never move. The
 * schedule/execute path performs zero heap allocations. Ties are
 * broken first by an explicit priority, then by insertion order, so
 * execution is fully deterministic.
 */

#ifndef DSP_SIM_EVENT_QUEUE_HH
#define DSP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <type_traits>
#include <vector>

#include "sim/event.hh"
#include "sim/types.hh"

namespace dsp {

/** Scheduling priority; lower values run first at equal ticks.
 *  Values must fit in a byte (the queue packs them above the 56-bit
 *  insertion sequence to form one 64-bit tiebreak key). */
enum class EventPriority : int {
    NetworkOrder = 0,   ///< interconnect ordering-point events
    Delivery = 10,      ///< message deliveries
    Controller = 20,    ///< cache/memory controller work
    Cpu = 30,           ///< processor model ticks
    Stats = 40,         ///< bookkeeping
    Default = 50,
};

/**
 * Deterministic discrete-event queue.
 *
 * Not thread safe; the whole simulator is single threaded by design (it
 * models parallelism, it does not use it).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule an intrusive event at absolute tick `when` (>= now). */
    void schedule(Event &ev, Tick when,
                  EventPriority prio = EventPriority::Default);

    /** Schedule an intrusive event `delay` ticks from now. */
    void
    scheduleIn(Event &ev, Tick delay,
               EventPriority prio = EventPriority::Default)
    {
        schedule(ev, now_ + delay, prio);
    }

    /**
     * Schedule a callable at absolute tick `when` (>= now). The
     * callable is moved into a pooled CallbackEvent; its captures live
     * in the slab slot, so no heap allocation occurs.
     */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    void
    schedule(Tick when, F cb,
             EventPriority prio = EventPriority::Default)
    {
        assertSchedulable(when);
        schedule(*CallbackEvent<F>::make(std::move(cb)), when, prio);
    }

    /** Schedule a callable `delay` ticks from now. */
    template <typename F,
              typename = std::enable_if_t<std::is_invocable_v<F &>>>
    void
    scheduleIn(Tick delay, F cb,
               EventPriority prio = EventPriority::Default)
    {
        schedule(now_ + delay, std::move(cb), prio);
    }

    /**
     * Cancel a scheduled event: remove it from the queue and release()
     * it (pooled events are recycled immediately; member events become
     * reschedulable).
     */
    void deschedule(Event &ev);

    /** True if no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Execute the single earliest event, advancing time. */
    void step();

    /**
     * Run until the queue drains or `limit` ticks is reached (events at
     * tick > limit remain queued). Returns number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    /**
     * One heap slot: the full ordering key plus the event. Priority
     * (one byte) is packed above a 56-bit insertion sequence, so the
     * (tick, priority, sequence) contract is two integer compares.
     */
    struct HeapEntry {
        Tick when;
        std::uint64_t key;
        Event *ev;
    };

    /** 4-ary heap: half the depth of a binary heap, and the four
     *  children of a node share one or two cache lines. */
    static constexpr std::size_t heapArity = 4;

    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.key < b.key;
    }

    void assertSchedulable(Tick when) const;

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Detach the event at heap slot `i`, restoring the heap. */
    Event *removeAt(std::size_t i);

    void
    place(std::size_t i, const HeapEntry &entry)
    {
        heap_[i] = entry;
        entry.ev->heapIndex_ = i;
    }

    std::vector<HeapEntry> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace dsp

#endif // DSP_SIM_EVENT_QUEUE_HH
