#include "sim/sharded_kernel.hh"

#include "sim/logging.hh"

namespace dsp {

namespace {

/**
 * Which kernel shard (if any) the current thread is executing. Boot
 * context -- the single-threaded state between run() calls -- is
 * `kernel == nullptr` (or a different kernel), and is allowed to
 * insert directly into any shard's queue.
 */
struct ExecContext {
    ShardedKernel *kernel = nullptr;
    unsigned shard = 0;
};

ExecContext &
execContext()
{
    static thread_local ExecContext ctx;
    return ctx;
}

} // namespace

DomainPort::DomainPort(ShardedKernel &kernel, std::uint8_t domain)
    : kernel_(&kernel), domain_(domain)
{
    dsp_assert(domain >= 1 && domain < ShardedKernel::bootDomain &&
                   domain < kernel.domainShard_.size(),
               "bad domain id %u", domain);
    shard_ = static_cast<std::uint8_t>(kernel.domainShard_[domain]);
    queue_ = &kernel.shards_[shard_]->queue;
}

Tick
DomainPort::now() const
{
    if (kernel_ != nullptr) {
        const ExecContext &ctx = execContext();
        if (ctx.kernel == kernel_)
            return kernel_->shards_[ctx.shard]->queue.now();
    }
    return queue_->now();
}

void
DomainPort::schedule(Event &ev, Tick when, EventPriority prio)
{
    if (kernel_ == nullptr) {
        queue_->schedule(ev, when, prio);
        return;
    }
    kernel_->scheduleOn(domain_, shard_, ev, when, prio);
}

void
DomainPort::deschedule(Event &ev)
{
    if (kernel_ != nullptr) {
        const ExecContext &ctx = execContext();
        dsp_assert(ctx.kernel != kernel_ || ctx.shard == shard_,
                   "cross-shard deschedule of domain %u from shard %u",
                   domain_, ctx.shard);
    }
    queue_->deschedule(ev);
}

ShardedKernel::ShardedKernel(unsigned num_shards,
                             std::vector<unsigned> domain_shard,
                             Tick lookahead)
    : numShards_(num_shards),
      domainShard_(std::move(domain_shard)),
      lookahead_(lookahead),
      barrier_(num_shards)
{
    dsp_assert(numShards_ >= 1 && numShards_ <= 64,
               "bad shard count %u", numShards_);
    dsp_assert(lookahead_ > 0, "lookahead must be positive");
    dsp_assert(domainShard_.size() >= 2 &&
                   domainShard_.size() <= maxDomains + std::size_t{1},
               "bad domain map size %zu", domainShard_.size());

    shards_.reserve(numShards_);
    for (unsigned s = 0; s < numShards_; ++s) {
        shards_.push_back(std::make_unique<Shard>());
        shards_[s]->queue.setDomainSink(&shards_[s]->curDomain);
    }
    for (std::size_t d = 1; d < domainShard_.size(); ++d) {
        dsp_assert(domainShard_[d] < numShards_,
                   "domain %zu mapped to bad shard %u", d,
                   domainShard_[d]);
    }
    mail_.resize(static_cast<std::size_t>(numShards_) * numShards_);
    // One sequence counter per domain plus one for the boot context
    // (index bootDomain): counters advance only on the owning domain's
    // thread, so the key stream is partition-independent.
    domainSeq_.resize(bootDomain + std::size_t{1});
}

ShardedKernel::~ShardedKernel()
{
    {
        std::unique_lock<std::mutex> lock(parkMutex_);
        shutdown_ = true;
    }
    parkCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();

    // Queues release their pending events; mailboxes are always
    // drained at run() exit, but guard against aborted runs anyway.
    for (Mailbox &box : mail_) {
        for (MailRec &rec : box.recs)
            rec.ev->release();
        box.recs.clear();
    }
}

void
ShardedKernel::dsp_assert_key_seq(std::uint64_t seq)
{
    dsp_assert(seq < (std::uint64_t{1} << seqBits),
               "per-domain sequence overflowed its %u key bits",
               static_cast<unsigned>(seqBits));
}

DomainPort
ShardedKernel::port(std::uint8_t domain)
{
    return DomainPort(*this, domain);
}

void
ShardedKernel::scheduleOn(std::uint8_t domain, unsigned target_shard,
                          Event &ev, Tick when, EventPriority prio)
{
    ev.domain_ = domain;
    const ExecContext &ctx = execContext();
    if (ctx.kernel != this) {
        // Boot context: single-threaded between windows; insert
        // directly wherever the event belongs. The dedicated boot
        // counter keeps these keys identical for every K.
        std::uint64_t key =
            packKey(prio, bootDomain, domainSeq_[bootDomain].next++);
        shards_[target_shard]->queue.scheduleWithKey(ev, when, key);
        return;
    }

    Shard &from = *shards_[ctx.shard];
    std::uint8_t sender = from.curDomain;
    std::uint64_t key =
        packKey(prio, sender, domainSeq_[sender].next++);
    if (ctx.shard == target_shard) {
        from.queue.scheduleWithKey(ev, when, key);
    } else {
        mailbox(ctx.shard, target_shard)
            .recs.push_back(MailRec{&ev, when, key});
    }
}

void
ShardedKernel::Barrier::wait(unsigned gen) const
{
    for (int spins = 0;
         gen_.load(std::memory_order_acquire) == gen; ++spins) {
        if (spins >= 256)
            std::this_thread::yield();
    }
}

void
ShardedKernel::planNext()
{
    if ((*stopFn_)()) {
        plan_.stop = true;
        stoppedByPredicate_ = true;
        return;
    }
    Tick earliest = maxTick;
    for (const auto &shard : shards_) {
        if (shard->earliest < earliest)
            earliest = shard->earliest;
    }
    if (earliest == maxTick) {
        plan_.stop = true;  // drained without satisfying the predicate
        return;
    }
    dsp_assert(earliest < maxTick - lookahead_,
               "window end would overflow the tick range");
    plan_.end = earliest + lookahead_;
}

void
ShardedKernel::drainInbox(unsigned shard)
{
    Shard &to = *shards_[shard];
    for (unsigned src = 0; src < numShards_; ++src) {
        Mailbox &box = mailbox(src, shard);
        for (const MailRec &rec : box.recs) {
            // Conservative-lookahead invariant: anything sent during
            // window [W, W+L) was scheduled at least L ahead, so it
            // cannot land inside a window this shard already ran.
            dsp_assert(rec.when >= plan_.end,
                       "lookahead violation: cross-shard event at "
                       "%llu inside window ending %llu",
                       static_cast<unsigned long long>(rec.when),
                       static_cast<unsigned long long>(plan_.end));
            to.queue.scheduleWithKey(*rec.ev, rec.when, rec.key);
        }
        box.recs.clear();
    }
}

void
ShardedKernel::workerLoop(unsigned shard)
{
    ExecContext &ctx = execContext();
    ctx.kernel = this;
    ctx.shard = shard;

    Shard &mine = *shards_[shard];
    while (true) {
        barrier_.arrive([this] { planNext(); });
        if (plan_.stop)
            break;
        mine.queue.run(plan_.end - 1);
        barrier_.arrive([] {});
        drainInbox(shard);
        mine.earliest = mine.queue.earliestTick();
    }

    ctx.kernel = nullptr;
}

void
ShardedKernel::startWorkers()
{
    workers_.reserve(numShards_ - 1);
    for (unsigned s = 1; s < numShards_; ++s) {
        workers_.emplace_back([this, s] {
            std::uint64_t seen = 0;
            while (true) {
                {
                    std::unique_lock<std::mutex> lock(parkMutex_);
                    parkCv_.wait(lock, [&] {
                        return shutdown_ || runGen_ != seen;
                    });
                    if (shutdown_)
                        return;
                    seen = runGen_;
                }
                workerLoop(s);
                {
                    std::unique_lock<std::mutex> lock(parkMutex_);
                    --activeWorkers_;
                }
                parkCv_.notify_all();
            }
        });
    }
}

bool
ShardedKernel::run(const std::function<bool()> &stop)
{
    stopFn_ = &stop;
    stoppedByPredicate_ = false;
    plan_ = Plan{};
    for (auto &shard : shards_)
        shard->earliest = shard->queue.earliestTick();

    if (numShards_ > 1 && workers_.empty())
        startWorkers();

    // Release the parked workers into this run (the mutex publishes
    // the boot-context state written above), run shard 0 ourselves,
    // then wait for every worker to park again before returning the
    // kernel to quiescent (boot) state.
    {
        std::unique_lock<std::mutex> lock(parkMutex_);
        activeWorkers_ = numShards_ - 1;
        ++runGen_;
    }
    parkCv_.notify_all();
    workerLoop(0);
    {
        std::unique_lock<std::mutex> lock(parkMutex_);
        parkCv_.wait(lock, [&] { return activeWorkers_ == 0; });
    }

    stopFn_ = nullptr;
    return stoppedByPredicate_;
}

std::uint64_t
ShardedKernel::executed() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->queue.executed();
    return total;
}

bool
ShardedKernel::empty() const
{
    for (const auto &shard : shards_) {
        if (!shard->queue.empty())
            return false;
    }
    return true;
}

std::size_t
ShardedKernel::pending(unsigned shard) const
{
    return shards_[shard]->queue.pending();
}

} // namespace dsp
