#include "sim/sharded_kernel.hh"

#include <algorithm>

#include "checkpoint/checkpoint.hh"
#include "sim/logging.hh"
#include "sim/panic_hooks.hh"

namespace dsp {

namespace {

/**
 * Which kernel shard (if any) the current thread is executing. Boot
 * context -- the single-threaded state between run() calls -- is
 * `kernel == nullptr` (or a different kernel), and is allowed to
 * insert directly into any shard's queue.
 */
struct ExecContext {
    ShardedKernel *kernel = nullptr;
    unsigned shard = 0;
};

ExecContext &
execContext()
{
    static thread_local ExecContext ctx;
    return ctx;
}

} // namespace

DomainPort::DomainPort(ShardedKernel &kernel, std::uint16_t domain)
    : kernel_(&kernel), domain_(domain)
{
    dsp_assert(domain >= 1 && domain < ShardedKernel::bootDomain &&
                   domain < kernel.domainShard_.size(),
               "bad domain id %u", domain);
    shard_ = static_cast<std::uint8_t>(kernel.domainShard_[domain]);
    queue_ = &kernel.shards_[shard_]->queue;
}

Tick
DomainPort::now() const
{
    if (kernel_ != nullptr) {
        const ExecContext &ctx = execContext();
        if (ctx.kernel == kernel_)
            return kernel_->shards_[ctx.shard]->queue.now();
    }
    return queue_->now();
}

void
DomainPort::schedule(Event &ev, Tick when, EventPriority prio)
{
    if (kernel_ == nullptr) {
        queue_->schedule(ev, when, prio);
        return;
    }
    kernel_->scheduleOn(domain_, shard_, ev, when, prio);
}

std::uint64_t
DomainPort::allocKey(EventPriority prio)
{
    if (kernel_ == nullptr)
        return queue_->allocKey(prio);
    return kernel_->allocKeyFor(domain_, prio);
}

void
DomainPort::scheduleKeyed(Event &ev, Tick when, std::uint64_t key)
{
    if (kernel_ == nullptr) {
        queue_->scheduleWithKey(ev, when, key);
        return;
    }
    kernel_->scheduleKeyedOn(domain_, shard_, ev, when, key);
}

void
DomainPort::deschedule(Event &ev)
{
    if (kernel_ != nullptr) {
        const ExecContext &ctx = execContext();
        dsp_assert(ctx.kernel != kernel_ || ctx.shard == shard_,
                   "cross-shard deschedule of domain %u from shard %u",
                   domain_, ctx.shard);
    }
    queue_->deschedule(ev);
}

ShardedKernel::ShardedKernel(unsigned num_shards,
                             std::vector<unsigned> domain_shard,
                             Tick lookahead)
    : numShards_(num_shards),
      domainShard_(std::move(domain_shard)),
      lookahead_(lookahead),
      barrier_(num_shards)
{
    dsp_assert(numShards_ >= 1 && numShards_ <= 64,
               "bad shard count %u", numShards_);
    dsp_assert(lookahead_ > 0, "lookahead must be positive");
    dsp_assert(domainShard_.size() >= 2 &&
                   domainShard_.size() <= maxDomains + std::size_t{1},
               "bad domain map size %zu", domainShard_.size());

    shards_.reserve(numShards_);
    for (unsigned s = 0; s < numShards_; ++s) {
        shards_.push_back(std::make_unique<Shard>());
        shards_[s]->queue.setDomainSink(&shards_[s]->curDomain);
    }
    for (std::size_t d = 1; d < domainShard_.size(); ++d) {
        dsp_assert(domainShard_[d] < numShards_,
                   "domain %zu mapped to bad shard %u", d,
                   domainShard_[d]);
    }
    mail_.resize(static_cast<std::size_t>(numShards_) * numShards_);
    // One sequence counter per domain plus one for the boot context
    // (index bootDomain): counters advance only on the owning domain's
    // thread, so the key stream is partition-independent.
    domainSeq_.resize(bootDomain + std::size_t{1});

    // Any death path (watchdog panic, oracle violation, driver abort)
    // gets this kernel's window/shard diagnostics in its dump.
    panicHookId_ = addPanicHook("sharded-kernel",
                                [this]() { dumpDiagnostics(); });
}

ShardedKernel::~ShardedKernel()
{
    removePanicHook(panicHookId_);
    {
        std::unique_lock<std::mutex> lock(parkMutex_);
        shutdown_ = true;
    }
    parkCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();

    // Queues release their pending events; mailboxes are always
    // drained at run() exit, but guard against aborted runs anyway.
    for (Mailbox &box : mail_) {
        for (Plane &plane : box.planes) {
            for (MailRec &rec : plane.recs)
                rec.ev->release();
            plane.recs.clear();
        }
    }
}

void
ShardedKernel::dsp_assert_key_seq(std::uint64_t seq)
{
    dsp_assert(seq < (std::uint64_t{1} << seqBits),
               "per-domain sequence overflowed its %u key bits",
               static_cast<unsigned>(seqBits));
}

DomainPort
ShardedKernel::port(std::uint16_t domain)
{
    return DomainPort(*this, domain);
}

void
ShardedKernel::scheduleOn(std::uint16_t domain, unsigned target_shard,
                          Event &ev, Tick when, EventPriority prio)
{
    ev.domain_ = domain;
    const ExecContext &ctx = execContext();
    if (ctx.kernel != this) {
        // Boot context: single-threaded between windows; insert
        // directly wherever the event belongs. The dedicated boot
        // counter keeps these keys identical for every K.
        std::uint64_t key =
            packKey(prio, bootDomain, domainSeq_[bootDomain].next++);
        shards_[target_shard]->queue.scheduleWithKey(ev, when, key);
        return;
    }

    Shard &from = *shards_[ctx.shard];
    std::uint16_t sender = from.curDomain;
    // Any cross-domain schedule -- same shard or not -- truncates a
    // batched window at the next sub-boundary. Counting by *domain*
    // keeps the truncation decision identical for every shard count.
    from.crossDomainSends += sender != domain ? 1 : 0;
    std::uint64_t key =
        packKey(prio, sender, domainSeq_[sender].next++);
    if (ctx.shard == target_shard) {
        from.queue.scheduleWithKey(ev, when, key);
    } else {
        Plane &plane =
            mailbox(ctx.shard, target_shard).planes[from.curPlane];
        plane.recs.push_back(MailRec{&ev, when, key});
        if (when < plane.min1) {
            plane.min2 = plane.min1;
            plane.min1 = when;
        } else if (when < plane.min2) {
            plane.min2 = when;
        }
    }
}

std::uint64_t
ShardedKernel::allocKeyFor(std::uint16_t target_domain,
                           EventPriority prio)
{
    const ExecContext &ctx = execContext();
    if (ctx.kernel != this) {
        return packKey(prio, bootDomain,
                       domainSeq_[bootDomain].next++);
    }
    Shard &from = *shards_[ctx.shard];
    std::uint16_t sender = from.curDomain;
    // Mirror scheduleOn()'s accounting exactly: a pre-assigned key
    // still represents one (possibly cross-domain) send, and batched
    // -window truncation must not notice whether a run fuses.
    from.crossDomainSends += sender != target_domain ? 1 : 0;
    return packKey(prio, sender, domainSeq_[sender].next++);
}

void
ShardedKernel::scheduleKeyedOn(std::uint16_t domain,
                               unsigned target_shard, Event &ev,
                               Tick when, std::uint64_t key)
{
    ev.domain_ = domain;
    const ExecContext &ctx = execContext();
    if (ctx.kernel != this) {
        shards_[target_shard]->queue.scheduleWithKey(ev, when, key);
        return;
    }
    Shard &from = *shards_[ctx.shard];
    if (ctx.shard == target_shard) {
        from.queue.scheduleWithKey(ev, when, key);
    } else {
        Plane &plane =
            mailbox(ctx.shard, target_shard).planes[from.curPlane];
        plane.recs.push_back(MailRec{&ev, when, key});
        if (when < plane.min1) {
            plane.min2 = plane.min1;
            plane.min1 = when;
        } else if (when < plane.min2) {
            plane.min2 = when;
        }
    }
}

void
ShardedKernel::Barrier::wait(unsigned gen) const
{
    for (int spins = 0;
         gen_.load(std::memory_order_acquire) == gen; ++spins) {
        if (spins >= 256)
            std::this_thread::yield();
    }
}

void
ShardedKernel::planNext()
{
    ++crossings_;

    // Settle the window the shards just finished. A batched window's
    // achieved end is whatever its solo shard reached before a
    // cross-domain send (or the plan end) stopped it; the solo shard
    // published it before arriving here.
    Tick resume = 0;
    if (firstCrossing_) {
        firstCrossing_ = false;
    } else if (plan_.batch) {
        resume = shards_[plan_.solo]->achievedEnd;
        Tick sub = (resume - plan_.start) / lookahead_;
        windows_ += sub;
        batchedWindows_ += sub - 1;
    } else {
        resume = plan_.end;
        windows_ += 1;
    }
    plan_.resume = resume;
    plan_.batch = false;

    if ((*stopFn_)()) {
        plan_.stop = true;
        stoppedByPredicate_ = true;
        return;
    }

    // Global two earliest pending ticks (as a multiset) and each
    // shard's effective earliest, from the shards' pre-arrival queue
    // summaries plus the minima of every undrained mailbox plane
    // (attributed to the *destination* shard, where the events will
    // execute).
    Tick e1 = maxTick;
    Tick e2 = maxTick;
    unsigned solo = 0;
    auto consider = [&](Tick t, unsigned dest_shard) {
        if (t < e1) {
            e2 = e1;
            e1 = t;
            solo = dest_shard;
        } else if (t < e2) {
            e2 = t;
        }
    };
    // The plane every sender wrote during the window just finished;
    // it is drained right after this crossing (all shards flip their
    // curPlane in lockstep, so shard 0's value speaks for all).
    unsigned plane = shards_[0]->curPlane;
    for (unsigned s = 0; s < numShards_; ++s) {
        consider(shards_[s]->e1, s);
        consider(shards_[s]->e2, s);
        for (unsigned src = 0; src < numShards_; ++src) {
            const Plane &p = mailbox(src, s).planes[plane];
            consider(p.min1, s);
            consider(p.min2, s);
        }
    }

    if (e1 == maxTick) {
        plan_.stop = true;  // drained without satisfying the predicate
        return;
    }
    checkProgress(e1);
    dsp_assert(e1 < maxTick - maxBatchWindows * lookahead_,
               "window end would overflow the tick range");
    plan_.start = e1;
    plan_.end = e1 + lookahead_;

    // Quiet-window batching: when the *second* earliest pending event
    // anywhere lies two or more windows out, only `solo`'s events can
    // fire before it -- every other shard is provably idle through
    // the horizon -- so one crossing may cover several windows. The
    // decision depends only on (e1, e2), which are partition
    // -independent, so a K-shard run batches exactly like K=1.
    if (e2 != maxTick && e2 - e1 >= 2 * lookahead_) {
        Tick span = std::min((e2 - e1) / lookahead_, maxBatchWindows);
        plan_.end = e1 + span * lookahead_;
        plan_.batch = true;
        plan_.solo = solo;
    } else if (e2 == maxTick) {
        plan_.end = e1 + maxBatchWindows * lookahead_;
        plan_.batch = true;
        plan_.solo = solo;
    }
}

void
ShardedKernel::checkProgress(Tick earliest)
{
    // Runs on the planner (last barrier arriver) with every shard
    // quiescent, so executed() is exact. A healthy kernel executes at
    // least the globally earliest event every window; crossing
    // stallCrossingLimit_ times with work pending and zero executed
    // events means a wedge (a queue that stopped delivering, a
    // lookahead/plan bug) -- diagnose loudly instead of spinning.
    std::uint64_t exec = stallTestFreeze_ ? watchdogExecuted_
                                          : executed();
    if (exec != watchdogExecuted_) {
        watchdogExecuted_ = exec;
        stalledCrossings_ = 0;
        return;
    }
    if (++stalledCrossings_ >= stallCrossingLimit_)
        panicStalled(earliest);
}

void
ShardedKernel::dumpDiagnostics() const
{
    dsp_warn("sharded kernel dump: crossings=%llu windows=%llu "
             "plan=[%llu,%llu) resume=%llu batch=%d solo=%u "
             "lookahead=%llu",
             static_cast<unsigned long long>(crossings_),
             static_cast<unsigned long long>(windows_),
             static_cast<unsigned long long>(plan_.start),
             static_cast<unsigned long long>(plan_.end),
             static_cast<unsigned long long>(plan_.resume),
             plan_.batch ? 1 : 0, plan_.solo,
             static_cast<unsigned long long>(lookahead_));
    for (unsigned s = 0; s < numShards_; ++s) {
        const Shard &shard = *shards_[s];
        dsp_warn("  shard %u: now=%llu pending=%zu executed=%llu "
                 "e1=%llu e2=%llu achieved_end=%llu",
                 s, static_cast<unsigned long long>(shard.queue.now()),
                 shard.queue.pending(),
                 static_cast<unsigned long long>(
                     shard.queue.executed()),
                 static_cast<unsigned long long>(shard.e1),
                 static_cast<unsigned long long>(shard.e2),
                 static_cast<unsigned long long>(shard.achievedEnd));
    }
}

void
ShardedKernel::panicStalled(Tick earliest)
{
    // The window/shard dump rides the panic-hook registry (registered
    // in the constructor), so it composes with other subsystems'
    // dumps instead of printing only its own.
    dsp_panic("sharded kernel stalled: no events executed across %u "
              "barrier crossings with work pending (earliest tick "
              "%llu)",
              stalledCrossings_,
              static_cast<unsigned long long>(earliest));
}

void
ShardedKernel::drainInbox(unsigned shard, unsigned plane)
{
    Shard &to = *shards_[shard];
    for (unsigned src = 0; src < numShards_; ++src) {
        Plane &box = mailbox(src, shard).planes[plane];
        for (const MailRec &rec : box.recs) {
            // Conservative-lookahead invariant: anything sent during
            // window [W, end) was scheduled at least L ahead of the
            // sender's clock, so it cannot land inside that window.
            dsp_assert(rec.when >= plan_.resume,
                       "lookahead violation: cross-shard event at "
                       "%llu inside window ending %llu",
                       static_cast<unsigned long long>(rec.when),
                       static_cast<unsigned long long>(plan_.resume));
            to.queue.scheduleWithKey(*rec.ev, rec.when, rec.key);
        }
        box.recs.clear();
        box.min1 = maxTick;
        box.min2 = maxTick;
    }
}

void
ShardedKernel::runBatch(Shard &mine)
{
    // Run L-wide sub-windows back to back without any crossing; stop
    // at the first sub-boundary after a cross-domain schedule (its
    // target -- possibly another shard's mailbox -- is guaranteed to
    // be at or after that boundary by the lookahead invariant, and
    // the next crossing's drain hands it over).
    mine.crossDomainSends = 0;
    Tick sub_end = plan_.start + lookahead_;
    while (true) {
        mine.queue.run(sub_end - 1);
        if (mine.crossDomainSends != 0 || sub_end >= plan_.end)
            break;
        sub_end += lookahead_;
    }
    mine.achievedEnd = sub_end;
}

void
ShardedKernel::workerLoop(unsigned shard)
{
    ExecContext &ctx = execContext();
    ctx.kernel = this;
    ctx.shard = shard;

    Shard &mine = *shards_[shard];
    while (true) {
        barrier_.arrive([this] { planNext(); });
        // Window parity flips at every crossing: drains empty the
        // plane senders filled last window, writes go to the other.
        unsigned write_plane = 1 - mine.curPlane;
        mine.curPlane = write_plane;
        // Shards that sat out a batched window lag; bring every clock
        // to the last window's end (before draining, so drained
        // schedules can never be in a lagging shard's past).
        if (plan_.resume > 0)
            mine.queue.advanceTo(plan_.resume - 1);
        drainInbox(shard, 1 - write_plane);
        if (plan_.stop)
            break;
        if (plan_.batch) {
            if (shard == plan_.solo) {
                runBatch(mine);
            }
            // Everyone else is provably idle until plan_.end and just
            // returns to the barrier; their clocks catch up above.
        } else {
            mine.queue.run(plan_.end - 1);
            mine.achievedEnd = plan_.end;
        }
        mine.queue.earliestTwo(mine.e1, mine.e2);
    }

    ctx.kernel = nullptr;
}

void
ShardedKernel::startWorkers()
{
    workers_.reserve(numShards_ - 1);
    for (unsigned s = 1; s < numShards_; ++s) {
        workers_.emplace_back([this, s] {
            std::uint64_t seen = 0;
            while (true) {
                {
                    std::unique_lock<std::mutex> lock(parkMutex_);
                    parkCv_.wait(lock, [&] {
                        return shutdown_ || runGen_ != seen;
                    });
                    if (shutdown_)
                        return;
                    seen = runGen_;
                }
                workerLoop(s);
                {
                    std::unique_lock<std::mutex> lock(parkMutex_);
                    --activeWorkers_;
                }
                parkCv_.notify_all();
            }
        });
    }
}

bool
ShardedKernel::run(const std::function<bool()> &stop)
{
    stopFn_ = &stop;
    stoppedByPredicate_ = false;
    plan_ = Plan{};
    firstCrossing_ = true;
    watchdogExecuted_ = ~std::uint64_t{0};
    stalledCrossings_ = 0;
    for (auto &shard : shards_) {
        shard->queue.earliestTwo(shard->e1, shard->e2);
        shard->achievedEnd = 0;
    }

    if (numShards_ > 1 && workers_.empty())
        startWorkers();

    // Release the parked workers into this run (the mutex publishes
    // the boot-context state written above), run shard 0 ourselves,
    // then wait for every worker to park again before returning the
    // kernel to quiescent (boot) state.
    {
        std::unique_lock<std::mutex> lock(parkMutex_);
        activeWorkers_ = numShards_ - 1;
        ++runGen_;
    }
    parkCv_.notify_all();
    workerLoop(0);
    {
        std::unique_lock<std::mutex> lock(parkMutex_);
        parkCv_.wait(lock, [&] { return activeWorkers_ == 0; });
    }

    stopFn_ = nullptr;
    return stoppedByPredicate_;
}

std::uint64_t
ShardedKernel::executed() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->queue.executed();
    return total;
}

std::uint64_t
ShardedKernel::calendarOps() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->queue.calendarOps();
    return total;
}

bool
ShardedKernel::empty() const
{
    for (const auto &shard : shards_) {
        if (!shard->queue.empty())
            return false;
    }
    return true;
}

std::size_t
ShardedKernel::pending(unsigned shard) const
{
    return shards_[shard]->queue.pending();
}

std::vector<ShardedKernel::CkptPending>
ShardedKernel::ckptCollectPending() const
{
    std::vector<CkptPending> pend;
    for (const auto &shard : shards_) {
        shard->queue.forEachPending(
            [&](Event &ev, Tick when, std::uint64_t key,
                std::uint16_t domain) {
                pend.push_back(CkptPending{when, key, domain, &ev});
            });
    }
    std::sort(pend.begin(), pend.end(),
              [](const CkptPending &a, const CkptPending &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  return a.key < b.key;
              });
    return pend;
}

void
ShardedKernel::ckptAdvanceTo(Tick t)
{
    for (auto &shard : shards_)
        shard->queue.advanceTo(t);
}

void
ShardedKernel::ckptSchedule(Event &ev, std::uint16_t domain, Tick when,
                            std::uint64_t key)
{
    dsp_assert(domain >= 1 && domain < domainShard_.size(),
               "checkpointed event has bad domain %u", domain);
    ev.domain_ = domain;
    shards_[domainShard_[domain]]->queue.scheduleWithKey(ev, when, key);
}

void
ShardedKernel::ckptSaveCounters(ckpt::Writer &w) const
{
    w.section(0x4b524e4cu);  // "KRNL"
    w.u64(domainSeq_.size());
    for (const DomainSeq &seq : domainSeq_)
        w.u64(seq.next);
    w.u64(crossings_);
    w.u64(windows_);
    w.u64(batchedWindows_);
    w.u64(executed());
    w.u64(calendarOps());
}

void
ShardedKernel::ckptLoadCounters(ckpt::Reader &r)
{
    r.section(0x4b524e4cu);
    std::uint64_t n = r.u64();
    dsp_assert(n == domainSeq_.size(),
               "checkpoint domain count %llu != machine's %zu",
               static_cast<unsigned long long>(n), domainSeq_.size());
    for (DomainSeq &seq : domainSeq_)
        seq.next = r.u64();
    crossings_ = r.u64();
    windows_ = r.u64();
    batchedWindows_ = r.u64();
    // The per-shard split of the executed count is partition-dependent;
    // the lifetime total is not. Park it all on shard 0. Same for the
    // calendar-op total (a host-cost attribution counter, not a
    // simulation statistic).
    shards_[0]->queue.ckptSetExecuted(r.u64());
    shards_[0]->queue.ckptSetCalendarOps(r.u64());
}

} // namespace dsp
