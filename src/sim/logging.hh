/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic()  -- an internal simulator invariant was violated (a bug in this
 *             code base); aborts so that a debugger or core dump can be
 *             used.
 * fatal()  -- the simulation cannot continue because of a user error (bad
 *             configuration, invalid argument); exits with status 1.
 * warn()   -- something is questionable but the simulation continues.
 * inform() -- plain status output.
 */

#ifndef DSP_SIM_LOGGING_HH
#define DSP_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dsp {

namespace detail {

/** Render a printf-style format into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit one log line with the given severity prefix. */
void logLine(const char *prefix, const std::string &msg);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace detail

/** True while a death-test / unit test wants panics to throw instead of
 *  aborting. Tests toggle this through PanicGuard. */
bool panicThrowsForTest();

/** Scoped override: while alive, panic()/fatal() throw std::runtime_error
 *  instead of terminating, so unit tests can assert on them. */
class PanicGuard
{
  public:
    PanicGuard();
    ~PanicGuard();

    PanicGuard(const PanicGuard &) = delete;
    PanicGuard &operator=(const PanicGuard &) = delete;
};

} // namespace dsp

#define dsp_panic(...)                                                     \
    ::dsp::detail::panicImpl(__FILE__, __LINE__,                           \
                             ::dsp::detail::formatString(__VA_ARGS__))

#define dsp_fatal(...)                                                     \
    ::dsp::detail::fatalImpl(__FILE__, __LINE__,                           \
                             ::dsp::detail::formatString(__VA_ARGS__))

#define dsp_warn(...)                                                      \
    ::dsp::detail::logLine("warn: ",                                       \
                           ::dsp::detail::formatString(__VA_ARGS__))

#define dsp_inform(...)                                                    \
    ::dsp::detail::logLine("info: ",                                       \
                           ::dsp::detail::formatString(__VA_ARGS__))

/** Assert a simulator invariant; compiled in all build types. */
#define dsp_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            dsp_panic("assertion '%s' failed: %s", #cond,                  \
                      ::dsp::detail::formatString(__VA_ARGS__).c_str());   \
        }                                                                  \
    } while (0)

#endif // DSP_SIM_LOGGING_HH
