/**
 * @file
 * Per-node cache hierarchy: split-L1-style filter plus a unified MOSI L2.
 *
 * The L2 is the coherence point (as in the paper: predictors and
 * controllers sit beside the L2); the L1 is a simple inclusive
 * valid/writable filter in front of it. Geometry defaults follow
 * Table 4: 128 kB 4-way L1, 4 MB 4-way unified L2, 64 B blocks.
 *
 * Accesses run as a staged probe -> commit pipeline (see
 * docs/access_pipeline.md):
 *
 *  - probeAccess() walks nothing it does not need and mutates nothing:
 *    it classifies the access (L0 repeat hit, L1 hit, L2 hit, upgrade,
 *    miss) and latches the set-walk handles the commit will consume;
 *  - commitAccess() applies every effect -- counters, LRU touches, the
 *    L1 fill on an L2 hit, and (for misses) the FillHandle the caller
 *    carries to fill() after the coherence round-trip.
 *
 * In front of the L1 walk sits a small direct-mapped L0 block-result
 * filter: recently resolved block -> (L1 line, writable) results. A
 * repeat hit through the L0 touches zero simulated-L2 words and at
 * most one L1 word; when the block is provably still the globally
 * most-recently-used L1 line (its recorded stamp equals the L1 LRU
 * clock in the same renormalization epoch), even that touch is
 * absorbed and the access reads zero packed-array words. The L0 is a
 * pure accelerator: every figure statistic is bit-identical with it
 * on or off (CacheParams::l0Filter), because it only short-circuits
 * walks whose side effects are nil or exactly reproduced.
 *
 * L0 staleness discipline: NodeCaches keeps the L0 coherent for every
 * mutation it performs itself (L1 conflict evictions inside commit,
 * L1 victims of an L2 fill, inclusion erases). External coherence
 * actions -- invalidate() and downgrade() -- deliberately do NOT probe
 * the L0; the system layer (CacheController / System) is the single
 * fan-in for them and calls l0Invalidate() at each such call site, so
 * the correctness argument is auditable at those sites. Debug builds
 * verify the discipline on every L0 hit (lineHolds cross-check).
 */

#ifndef DSP_MEM_NODE_CACHES_HH
#define DSP_MEM_NODE_CACHES_HH

#include <array>
#include <cstdint>

#include "mem/mosi.hh"
#include "mem/packed_cache_array.hh"
#include "mem/types.hh"

/**
 * The staged-access stages run once per simulated memory reference --
 * the hottest call in the simulator -- and every caller pairs them
 * back to back. The plain `inline` hint loses to the inliner's size
 * cutoff (measured: GCC leaves both out of line even under LTO, which
 * materializes the ~200-byte StagedAccess through memory twice per
 * access); forcing it keeps the staged state in registers.
 */
#if defined(__GNUC__) || defined(__clang__)
#define DSP_HOT_INLINE inline __attribute__((always_inline))
#else
#define DSP_HOT_INLINE inline
#endif

namespace dsp {

/** Geometry of one cache level. */
struct CacheGeometry {
    std::uint64_t size_bytes;
    std::size_t ways;

    /** Number of sets for 64-byte blocks. */
    std::size_t
    sets() const
    {
        return static_cast<std::size_t>(size_bytes / blockBytes / ways);
    }
};

/** Cache configuration for one node (Table 4 defaults). */
struct CacheParams {
    CacheGeometry l1{128 * 1024, 4};
    CacheGeometry l2{4 * 1024 * 1024, 4};

    /**
     * Consult the per-node L0 block-result filter before the L1 walk.
     * Pure accelerator knob: statistics are bit-identical either way
     * (pinned by tests); off exists for equivalence runs and triage.
     */
    bool l0Filter = true;
};

/** What, if anything, a memory access needs from the coherence layer. */
enum class CoherenceNeed : std::uint8_t {
    None,          ///< satisfied locally (L1 or L2 hit with permission)
    GetShared,     ///< L2 miss on a read
    GetExclusive,  ///< L2 miss on a write, or an upgrade from S/O
};

/**
 * The two cache levels of one node, with inclusion maintained
 * (L1 contents are always a subset of L2 contents).
 *
 * Both levels live in PackedCacheArray planes: one 64-bit word per
 * line (stamp + tag + permission bits), so every probe, hit, and fill
 * touches exactly one host cache line per level. The simulated L2s
 * dwarf the host's caches, making those line touches the dominant
 * cost of the whole access+fill path; the L0 filter exists to keep
 * repeat L1 hits -- the most common access by far -- off even the L1
 * set run.
 */
class NodeCaches
{
  private:
    /** L1 payload: one writable bit. */
    using L1Array = PackedCacheArray<1>;
    /** L2 payload: the 2-bit MOSI state. */
    using L2Array = PackedCacheArray<2>;

  public:
    explicit NodeCaches(const CacheParams &params = CacheParams{});

    /**
     * Set-walk handles from an access, consumed by fill() after the
     * coherence round-trip so the install re-walks nothing. Snapshot
     * -guarded: an intervening invalidate / downgrade / eviction /
     * LRU touch of the same set just costs one re-walk.
     */
    struct FillHandle {
        L1Array::Handle l1;
        L2Array::Handle l2;
    };

    /** Outcome of an access. */
    struct AccessResult {
        CoherenceNeed need = CoherenceNeed::None;
        bool l1Hit = false;
        bool l2Hit = false;          ///< tag present with any permission
        MosiState l2State = MosiState::Invalid;
    };

    /**
     * One access in flight between its probe and commit stages. The
     * `result` field is valid right after probeAccess(); everything
     * else is stage plumbing. After commitAccess(), fillHandle() is
     * the miss's walk-free install cursor when `result.need` is not
     * None -- carried by the caller to fill(), which removes any need
     * for a mutable "last miss" latch.
     */
    struct StagedAccess {
        AccessResult result;

        /** Which commit path this access takes. */
        enum class Path : std::uint8_t {
            L0Absorbed,  ///< repeat hit, LRU effect provably absorbed
            L0Refresh,   ///< repeat hit, one L1 word touch
            L1Hit,       ///< L1 walk hit with permission
            L2Hit,       ///< L2 hit with permission (L1 fill follows)
            Upgrade,     ///< L2 hit without write permission
            Miss,        ///< L2 miss
        };

        /** Sentinel: the L1 scan found no line for this block. */
        static constexpr std::uint32_t noLine = 0xffffffffu;

        BlockId block = 0;
        bool write = false;
        Path path = Path::Miss;
        /** The L1 scan's cursor: the matched line (or noLine). The
         *  hit path needs a touch cursor, not a snapshot handle, so
         *  it pays for neither. */
        std::uint32_t l1Line = noLine;
        bool l1Writable = false;
        /** Upgrade/Miss paths: the walks that double as the fill
         *  cursor pair (l2h from the probe stage, l1h latched by the
         *  commit -- the L1 install cursor must postdate the commit's
         *  own L1 touch). */
        L1Array::Handle l1h;
        L2Array::Handle l2h;

        /** The miss's install cursors (valid iff result.need is not
         *  None after commit). */
        FillHandle
        fillHandle() const
        {
            return FillHandle{l1h, l2h};
        }
    };

    /**
     * Probe stage: classify a load (is_write=false) or store
     * (is_write=true) without any side effect (no counter, no LRU
     * touch, no L0 update). The returned result already says whether
     * the coherence layer is needed; commitAccess() must be called
     * exactly once to apply the access's effects.
     */
    DSP_HOT_INLINE StagedAccess probeAccess(Addr addr,
                                            bool is_write) const;

    /**
     * Commit stage: apply the probed access's effects -- statistics,
     * LRU touches, the L1 fill on an L2 hit, L0 record/refresh, and
     * (for misses and upgrades) latch the FillHandle into sa.fill.
     */
    DSP_HOT_INLINE void commitAccess(StagedAccess &sa);

    /**
     * Convenience probe+commit. If the result's `need` is not None,
     * the caller must consult the coherence layer and then call
     * fill() with the granted state. Prefer the staged API where the
     * FillHandle is needed: it travels in the StagedAccess instead of
     * the mutable latch behind lastMissHandle().
     */
    AccessResult access(Addr addr, bool is_write);

    /**
     * The set-walk handles latched by the most recent access() whose
     * `need` was not None. Kept for convenience callers (tests,
     * single-shot tools); the staged API supersedes it on the system
     * hot path because a second access would silently overwrite this
     * latch.
     */
    const FillHandle &lastMissHandle() const { return lastMiss_; }

    /** Outcome of NodeCaches::fill(): the L2 victim, if any. */
    struct FillResult {
        bool evicted = false;
        BlockId victim = 0;
        MosiState victimState = MosiState::Invalid;
    };

    /**
     * Install (or upgrade) a block after a coherence grant. With the
     * miss's FillHandle, the install is walk-free (the handles carry
     * the set walks the probe stage already did); without one it
     * degrades to plain inserts. Records the filled block in the L0,
     * so an immediate replay of the blocked access (MSHR waiters, ROB
     * replays) resolves without re-walking L1 or L2.
     */
    FillResult fill(Addr addr, MosiState new_state,
                    FillHandle *handle = nullptr);

    /**
     * External GETX: drop the block entirely. Returns prior state.
     * Does NOT touch the L0: the caller (the system layer's single
     * coherence fan-in) must pair it with l0Invalidate().
     */
    MosiState invalidate(BlockId block);

    /**
     * External GETS to a block this node owns: M -> O (stay owner,
     * lose write permission). O/S unchanged. Returns new state.
     * Does NOT touch the L0 (see invalidate()).
     */
    MosiState downgrade(BlockId block);

    /**
     * Drop the L0 entry for `block`, if any. The system layer calls
     * this at every coherence-action call site that can stale an L0
     * result (remote invalidation, downgrade, writeback races); see
     * docs/access_pipeline.md for the audited call-site list. Idempotent
     * and cheap (one direct-mapped slot compare).
     */
    void
    l0Invalidate(BlockId block)
    {
        L0Entry &entry = l0_[l0Slot(block)];
        if (entry.valid && entry.block == block)
            entry.valid = false;
    }

    /** Current L2 state of a block (Invalid if absent). */
    MosiState stateOf(BlockId block) const;

    /** Counters for sanity checks and reporting. */
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t l1Hits() const { return l1Hits_; }
    std::uint64_t l2Hits() const { return l2Hits_; }
    std::uint64_t l2Misses() const { return l2Misses_; }
    std::uint64_t upgrades() const { return upgrades_; }
    std::uint64_t writebacks() const { return writebacks_; }

    /** Accesses resolved by the L0 filter (subset of l1Hits). */
    std::uint64_t l0Hits() const { return l0Hits_; }
    /** L0 hits whose LRU touch was provably absorbed: the access read
     *  and wrote zero packed-array words. */
    std::uint64_t l0Absorbed() const { return l0Absorbed_; }

    /** Debug-build tag-walk counters (0 in release); tests use these
     *  to pin the "fill performs zero extra walks" invariant. */
    static constexpr bool walkCounting = L2Array::walkCounting;
    std::uint64_t l1TagWalks() const { return l1_.walks(); }
    std::uint64_t l2TagWalks() const { return l2_.walks(); }
    std::uint64_t handleRewalks() const
    {
        return l1_.rewalks() + l2_.rewalks();
    }

    /** Per-stage walk attribution (debug builds; 0 in release). */
    std::uint64_t probeStageWalks() const { return probeWalks_; }
    std::uint64_t commitStageWalks() const { return commitWalks_; }
    std::uint64_t fillStageWalks() const { return fillWalks_; }

    /**
     * Host-cache warming for an upcoming access to `block`: prefetch
     * the simulated-L2 set's line. Semantically a no-op; the L2 plane
     * is the one that does not fit the host's caches, and one access
     * of lookahead covers its fetch latency.
     */
    void
    prefetchSets(BlockId block) const
    {
        l2_.prefetchSet(block);
    }

    /** Test hooks for the L0 renormalization-epoch guard. */
    std::uint32_t debugL1Clock() const { return l1_.useClock(); }
    void debugAdvanceL1Clock(std::uint32_t v) { l1_.debugSetUseClock(v); }

    /**
     * Checkpoint both packed planes, the L0 filter, and all counters.
     * Not captured: lastMiss_, the convenience-API latch -- the system
     * hot path carries its fill cursors in the StagedAccess/MSHR, and
     * a stale handle only ever costs a re-walk, never correctness.
     */
    template <typename W>
    void
    ckptSave(W &w) const
    {
        l1_.ckptSave(w);
        l2_.ckptSave(w);
        for (const L0Entry &entry : l0_)
            w.pod(entry);
        w.u64(accesses_);
        w.u64(l1Hits_);
        w.u64(l2Hits_);
        w.u64(l2Misses_);
        w.u64(upgrades_);
        w.u64(writebacks_);
        w.u64(l0Hits_);
        w.u64(l0Absorbed_);
        w.u64(probeWalks_);
        w.u64(commitWalks_);
        w.u64(fillWalks_);
    }

    template <typename R>
    void
    ckptLoad(R &r)
    {
        l1_.ckptLoad(r);
        l2_.ckptLoad(r);
        for (L0Entry &entry : l0_)
            entry = r.template pod<L0Entry>();
        accesses_ = r.u64();
        l1Hits_ = r.u64();
        l2Hits_ = r.u64();
        l2Misses_ = r.u64();
        upgrades_ = r.u64();
        writebacks_ = r.u64();
        l0Hits_ = r.u64();
        l0Absorbed_ = r.u64();
        probeWalks_ = r.u64();
        commitWalks_ = r.u64();
        fillWalks_ = r.u64();
    }

  private:
    /** One L0 filter entry: a resolved block -> L1-line result. */
    struct L0Entry {
        BlockId block = 0;
        std::uint32_t line = 0;   ///< L1 line index of the block
        std::uint32_t stamp = 0;  ///< L1 stamp written when recorded
        std::uint32_t epoch = 0;  ///< L1 renorm epoch at record time
        bool writable = false;
        bool valid = false;
    };

    /** Direct-mapped L0 size: repeat hits are overwhelmingly
     *  back-to-back same-block references (sub-block reuse), so a
     *  small power-of-two array covers them; 64 entries = 1.5 kB. */
    static constexpr std::size_t l0Size = 64;

    static std::size_t
    l0Slot(BlockId block)
    {
        return static_cast<std::size_t>(block) & (l0Size - 1);
    }

    static std::uint32_t
    packState(MosiState state)
    {
        return static_cast<std::uint32_t>(state);
    }

    static MosiState
    unpackState(std::uint32_t payload)
    {
        return static_cast<MosiState>(payload);
    }

    /** Record a block now resident in the L1 at `line`. The caller
     *  just touched/filled that line, so the L1 clock IS its stamp. */
    void
    l0Record(BlockId block, bool writable, std::size_t line)
    {
        if (!l0Enabled_)
            return;
        L0Entry &entry = l0_[l0Slot(block)];
        entry.block = block;
        entry.line = static_cast<std::uint32_t>(line);
        entry.stamp = l1_.useClock();
        entry.epoch = l1_.renormEpochs();
        entry.writable = writable;
        entry.valid = true;
    }

    L1Array l1_;
    L2Array l2_;
    bool l0Enabled_;
    std::array<L0Entry, l0Size> l0_{};
    FillHandle lastMiss_;

    std::uint64_t accesses_ = 0;
    std::uint64_t l1Hits_ = 0;
    std::uint64_t l2Hits_ = 0;
    std::uint64_t l2Misses_ = 0;
    std::uint64_t upgrades_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t l0Hits_ = 0;
    std::uint64_t l0Absorbed_ = 0;

    /** Per-stage walk attribution (mutable: the probe stage is
     *  logically const but still counts its walks in debug builds). */
    mutable std::uint64_t probeWalks_ = 0;
    std::uint64_t commitWalks_ = 0;
    std::uint64_t fillWalks_ = 0;
};

// The probe and commit stages are header-inline: they run once per
// simulated memory reference (the hottest path in the simulator), and
// every caller pairs them back to back -- inlining lets the compiler
// keep the StagedAccess in registers and fuse the stages in every
// build, not just under LTO.

inline NodeCaches::StagedAccess
NodeCaches::probeAccess(Addr addr, bool is_write) const
{
    StagedAccess sa;
    sa.block = blockOf(addr);
    sa.write = is_write;

    // Stage 0: the block-result filter. A valid entry proves the
    // block is L1-resident at `line` with the recorded permission --
    // the system layer's invalidation fan-in plus this class's own
    // eviction bookkeeping keep that proof current (debug builds
    // cross-check it against the live L1 word on every hit).
    if (l0Enabled_) {
        const L0Entry &entry = l0_[l0Slot(sa.block)];
        if (entry.valid && entry.block == sa.block &&
            (!is_write || entry.writable)) {
            dsp_assert(l1_.lineHolds(entry.line, sa.block),
                       "stale L0 entry: a coherence path is missing "
                       "its l0Invalidate() hook");
            dsp_assert((L1Array::payloadOf(l1_.wordAt(entry.line)) !=
                        0) == entry.writable,
                       "stale L0 writable bit: a downgrade path is "
                       "missing its l0Invalidate() hook");
            sa.result.l1Hit = true;
            // LRU absorption: stamp == clock (same epoch) proves this
            // line is the globally most-recently-used L1 line, so a
            // re-touch cannot change any set's LRU order and the
            // commit may skip it entirely.
            sa.path = entry.stamp == l1_.useClock() &&
                              entry.epoch == l1_.renormEpochs()
                          ? StagedAccess::Path::L0Absorbed
                          : StagedAccess::Path::L0Refresh;
            return sa;
        }
    }

    // Stage 1: a position-only L1 scan -- the hit path (the common
    // case by far) needs a touch cursor, not a snapshot handle.
    std::size_t line = l1_.scanLine(sa.block);
    if (line != L1Array::lineNpos) {
        sa.l1Line = static_cast<std::uint32_t>(line);
        sa.l1Writable = L1Array::payloadOf(l1_.wordAt(line)) != 0;
        if (!is_write || sa.l1Writable) {
            sa.path = StagedAccess::Path::L1Hit;
            sa.result.l1Hit = true;
            if constexpr (walkCounting)
                probeWalks_ += 1;
            return sa;
        }
        // A write to a read-only L1 line falls through to the L2,
        // which knows the real MOSI state; commit will still apply
        // the L1 touch the scan's tag match implies.
    }

    // Stage 2: one L2 walk; the handle is this access's touch cursor
    // on a hit and the eventual fill()'s install cursor otherwise.
    sa.l2h = l2_.probe(sa.block);
    if (sa.l2h.hit()) {
        MosiState state = unpackState(l2_.at(sa.l2h));
        sa.result.l2Hit = true;
        sa.result.l2State = state;
        if (!is_write || canWrite(state)) {
            sa.path = StagedAccess::Path::L2Hit;
        } else {
            // Write to S or O: coherence upgrade required. The line
            // stays put; fill() will promote it in place.
            sa.path = StagedAccess::Path::Upgrade;
            sa.result.need = CoherenceNeed::GetExclusive;
        }
    } else {
        sa.path = StagedAccess::Path::Miss;
        sa.result.need = is_write ? CoherenceNeed::GetExclusive
                                  : CoherenceNeed::GetShared;
    }
    if constexpr (walkCounting)
        probeWalks_ += 2;  // the L1 scan plus the L2 probe
    return sa;
}

inline void
NodeCaches::commitAccess(StagedAccess &sa)
{
    ++accesses_;

    switch (sa.path) {
      case StagedAccess::Path::L0Absorbed:
        // Repeat hit on the globally-MRU L1 line: zero packed-array
        // words read or written. Skipping the touch leaves the LRU
        // *order* of every set unchanged (the line already holds the
        // maximal stamp), so no statistic can diverge.
        ++l1Hits_;
        ++l0Hits_;
        ++l0Absorbed_;
        break;

      case StagedAccess::Path::L0Refresh: {
        // Repeat hit, but other lines were touched since: refresh the
        // line's stamp exactly as a walk hit would, through the L0's
        // line cursor -- one word, zero walks.
        ++l1Hits_;
        ++l0Hits_;
        L0Entry &entry = l0_[l0Slot(sa.block)];
        l1_.touchLine(entry.line);
        entry.stamp = l1_.useClock();
        entry.epoch = l1_.renormEpochs();
        break;
      }

      case StagedAccess::Path::L1Hit:
        ++l1Hits_;
        l1_.touchLine(sa.l1Line);
        l0Record(sa.block, sa.l1Writable, sa.l1Line);
        break;

      case StagedAccess::Path::L2Hit: {
        ++l2Hits_;
        if (sa.l1Line != StagedAccess::noLine)
            l1_.touchLine(sa.l1Line);  // the scan's tag-match touch
        l2_.touchAt(sa.l2h);
        std::uint32_t writable =
            canWrite(sa.result.l2State) ? 1 : 0;
        std::optional<PackedEviction> evicted;
        std::size_t line = l1_.insertLine(sa.block, writable, evicted);
        if (evicted)
            l0Invalidate(evicted->key);  // silent L1 conflict victim
        l0Record(sa.block, writable != 0, line);
        if constexpr (walkCounting)
            commitWalks_ += 1;  // the L1 install
        break;
      }

      case StagedAccess::Path::Upgrade:
        if (sa.l1Line != StagedAccess::noLine)
            l1_.touchLine(sa.l1Line);  // the scan's tag-match touch
        l2_.touchAt(sa.l2h);
        ++upgrades_;
        ++l2Misses_;
        // Latch the L1 install cursor now -- after this commit's own
        // L1 touch, so the snapshot is born fresh.
        sa.l1h = l1_.probe(sa.block);
        if constexpr (walkCounting)
            commitWalks_ += 1;
        break;

      case StagedAccess::Path::Miss:
        ++l2Misses_;
        sa.l1h = l1_.probe(sa.block);
        if constexpr (walkCounting)
            commitWalks_ += 1;
        break;
    }
}

inline NodeCaches::AccessResult
NodeCaches::access(Addr addr, bool is_write)
{
    StagedAccess sa = probeAccess(addr, is_write);
    commitAccess(sa);
    if (sa.result.need != CoherenceNeed::None)
        lastMiss_ = sa.fillHandle();
    return sa.result;
}

} // namespace dsp

#endif // DSP_MEM_NODE_CACHES_HH
