/**
 * @file
 * Per-node cache hierarchy: split-L1-style filter plus a unified MOSI L2.
 *
 * The L2 is the coherence point (as in the paper: predictors and
 * controllers sit beside the L2); the L1 is a simple inclusive
 * valid/writable filter in front of it. Geometry defaults follow
 * Table 4: 128 kB 4-way L1, 4 MB 4-way unified L2, 64 B blocks.
 */

#ifndef DSP_MEM_NODE_CACHES_HH
#define DSP_MEM_NODE_CACHES_HH

#include <cstdint>

#include "mem/mosi.hh"
#include "mem/packed_cache_array.hh"
#include "mem/types.hh"

namespace dsp {

/** Geometry of one cache level. */
struct CacheGeometry {
    std::uint64_t size_bytes;
    std::size_t ways;

    /** Number of sets for 64-byte blocks. */
    std::size_t
    sets() const
    {
        return static_cast<std::size_t>(size_bytes / blockBytes / ways);
    }
};

/** Cache configuration for one node (Table 4 defaults). */
struct CacheParams {
    CacheGeometry l1{128 * 1024, 4};
    CacheGeometry l2{4 * 1024 * 1024, 4};
};

/** What, if anything, a memory access needs from the coherence layer. */
enum class CoherenceNeed : std::uint8_t {
    None,          ///< satisfied locally (L1 or L2 hit with permission)
    GetShared,     ///< L2 miss on a read
    GetExclusive,  ///< L2 miss on a write, or an upgrade from S/O
};

/**
 * The two cache levels of one node, with inclusion maintained
 * (L1 contents are always a subset of L2 contents).
 *
 * Both levels live in PackedCacheArray planes: one 64-bit word per
 * line (stamp + tag + permission bits), so every probe, hit, and fill
 * touches exactly one host cache line per level. The simulated L2s
 * dwarf the host's caches, making those line touches the dominant
 * cost of the whole access+fill path (~a third of the simulator
 * profile before this layout).
 */
class NodeCaches
{
  private:
    /** L1 payload: one writable bit. */
    using L1Array = PackedCacheArray<1>;
    /** L2 payload: the 2-bit MOSI state. */
    using L2Array = PackedCacheArray<2>;

  public:
    explicit NodeCaches(const CacheParams &params = CacheParams{});

    /**
     * Set-walk handles from access(), consumed by fill() after the
     * coherence round-trip so the install re-walks nothing. Snapshot
     * -guarded: an intervening invalidate / downgrade / eviction /
     * LRU touch of the same set just costs one re-walk.
     */
    struct FillHandle {
        L1Array::Handle l1;
        L2Array::Handle l2;
    };

    /** Outcome of NodeCaches::access(). */
    struct AccessResult {
        CoherenceNeed need = CoherenceNeed::None;
        bool l1Hit = false;
        bool l2Hit = false;          ///< tag present with any permission
        MosiState l2State = MosiState::Invalid;
    };

    /**
     * Attempt a load (is_write=false) or store (is_write=true). If the
     * result's `need` is not None, the caller must consult the coherence
     * layer and then call fill() with the granted state.
     */
    AccessResult access(Addr addr, bool is_write);

    /**
     * The set-walk handles latched by the most recent access() whose
     * `need` was not None -- hardware would keep the walk result in
     * the MSHR; here the caller copies it out right after access()
     * (keeping AccessResult itself small keeps the hit path, which
     * vastly outnumbers misses, free of handle traffic).
     */
    const FillHandle &lastMissHandle() const { return lastMiss_; }

    /** Outcome of NodeCaches::fill(): the L2 victim, if any. */
    struct FillResult {
        bool evicted = false;
        BlockId victim = 0;
        MosiState victimState = MosiState::Invalid;
    };

    /**
     * Install (or upgrade) a block after a coherence grant. With the
     * miss's FillHandle, the install is walk-free (the handles carry
     * the set walks access() already did); without one it degrades to
     * plain inserts.
     */
    FillResult fill(Addr addr, MosiState new_state,
                    FillHandle *handle = nullptr);

    /** External GETX: drop the block entirely. Returns prior state. */
    MosiState invalidate(BlockId block);

    /**
     * External GETS to a block this node owns: M -> O (stay owner,
     * lose write permission). O/S unchanged. Returns new state.
     */
    MosiState downgrade(BlockId block);

    /** Current L2 state of a block (Invalid if absent). */
    MosiState stateOf(BlockId block) const;

    /** Counters for sanity checks and reporting. */
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t l1Hits() const { return l1Hits_; }
    std::uint64_t l2Hits() const { return l2Hits_; }
    std::uint64_t l2Misses() const { return l2Misses_; }
    std::uint64_t upgrades() const { return upgrades_; }
    std::uint64_t writebacks() const { return writebacks_; }

    /** Debug-build tag-walk counters (0 in release); tests use these
     *  to pin the "fill performs zero extra walks" invariant. */
    static constexpr bool walkCounting = L2Array::walkCounting;
    std::uint64_t l1TagWalks() const { return l1_.walks(); }
    std::uint64_t l2TagWalks() const { return l2_.walks(); }
    std::uint64_t handleRewalks() const
    {
        return l1_.rewalks() + l2_.rewalks();
    }

  private:
    static std::uint32_t
    packState(MosiState state)
    {
        return static_cast<std::uint32_t>(state);
    }

    static MosiState
    unpackState(std::uint32_t payload)
    {
        return static_cast<MosiState>(payload);
    }

    /** Latch the fill cursors: the L2 walk already in hand plus a
     *  fresh (cheap) L1 walk. */
    void latchMissHandles(BlockId block, const L2Array::Handle &l2h);

    L1Array l1_;
    L2Array l2_;
    FillHandle lastMiss_;

    std::uint64_t accesses_ = 0;
    std::uint64_t l1Hits_ = 0;
    std::uint64_t l2Hits_ = 0;
    std::uint64_t l2Misses_ = 0;
    std::uint64_t upgrades_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace dsp

#endif // DSP_MEM_NODE_CACHES_HH
