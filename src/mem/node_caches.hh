/**
 * @file
 * Per-node cache hierarchy: split-L1-style filter plus a unified MOSI L2.
 *
 * The L2 is the coherence point (as in the paper: predictors and
 * controllers sit beside the L2); the L1 is a simple inclusive
 * valid/writable filter in front of it. Geometry defaults follow
 * Table 4: 128 kB 4-way L1, 4 MB 4-way unified L2, 64 B blocks.
 */

#ifndef DSP_MEM_NODE_CACHES_HH
#define DSP_MEM_NODE_CACHES_HH

#include <cstdint>

#include "mem/cache_array.hh"
#include "mem/mosi.hh"
#include "mem/types.hh"

namespace dsp {

/** Geometry of one cache level. */
struct CacheGeometry {
    std::uint64_t size_bytes;
    std::size_t ways;

    /** Number of sets for 64-byte blocks. */
    std::size_t
    sets() const
    {
        return static_cast<std::size_t>(size_bytes / blockBytes / ways);
    }
};

/** Cache configuration for one node (Table 4 defaults). */
struct CacheParams {
    CacheGeometry l1{128 * 1024, 4};
    CacheGeometry l2{4 * 1024 * 1024, 4};
};

/** What, if anything, a memory access needs from the coherence layer. */
enum class CoherenceNeed : std::uint8_t {
    None,          ///< satisfied locally (L1 or L2 hit with permission)
    GetShared,     ///< L2 miss on a read
    GetExclusive,  ///< L2 miss on a write, or an upgrade from S/O
};

/**
 * The two cache levels of one node, with inclusion maintained
 * (L1 contents are always a subset of L2 contents).
 */
class NodeCaches
{
  public:
    explicit NodeCaches(const CacheParams &params = CacheParams{});

    /** Outcome of NodeCaches::access(). */
    struct AccessResult {
        CoherenceNeed need = CoherenceNeed::None;
        bool l1Hit = false;
        bool l2Hit = false;          ///< tag present with any permission
        MosiState l2State = MosiState::Invalid;
    };

    /**
     * Attempt a load (is_write=false) or store (is_write=true). If the
     * result's `need` is not None, the caller must consult the coherence
     * layer and then call fill() with the granted state.
     */
    AccessResult access(Addr addr, bool is_write);

    /** Outcome of NodeCaches::fill(): the L2 victim, if any. */
    struct FillResult {
        bool evicted = false;
        BlockId victim = 0;
        MosiState victimState = MosiState::Invalid;
    };

    /** Install (or upgrade) a block after a coherence grant. */
    FillResult fill(Addr addr, MosiState new_state);

    /** External GETX: drop the block entirely. Returns prior state. */
    MosiState invalidate(BlockId block);

    /**
     * External GETS to a block this node owns: M -> O (stay owner,
     * lose write permission). O/S unchanged. Returns new state.
     */
    MosiState downgrade(BlockId block);

    /** Current L2 state of a block (Invalid if absent). */
    MosiState stateOf(BlockId block) const;

    /** Counters for sanity checks and reporting. */
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t l1Hits() const { return l1Hits_; }
    std::uint64_t l2Hits() const { return l2Hits_; }
    std::uint64_t l2Misses() const { return l2Misses_; }
    std::uint64_t upgrades() const { return upgrades_; }
    std::uint64_t writebacks() const { return writebacks_; }

  private:
    struct L1Line {
        bool writable = false;
    };

    struct L2Line {
        MosiState state = MosiState::Invalid;
    };

    /**
     * Keys are block numbers (addr >> 6), far below 2^32 after the
     * per-set tag compression, so 32-bit tag planes suffice: the
     * 16-node system's simulated L2 tags drop from 8 MB to 4 MB of
     * host footprint, which is the difference between thrashing and
     * mostly fitting the host LLC on the access hot path.
     */
    CacheArray<L1Line, std::uint32_t> l1_;
    CacheArray<L2Line, std::uint32_t> l2_;

    std::uint64_t accesses_ = 0;
    std::uint64_t l1Hits_ = 0;
    std::uint64_t l2Hits_ = 0;
    std::uint64_t l2Misses_ = 0;
    std::uint64_t upgrades_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace dsp

#endif // DSP_MEM_NODE_CACHES_HH
