/**
 * @file
 * Memory-system domain types: addresses, block/macroblock arithmetic,
 * home-node interleaving, and coherence request kinds.
 */

#ifndef DSP_MEM_TYPES_HH
#define DSP_MEM_TYPES_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace dsp {

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Cache block (line) number: byte address with the offset dropped. */
using BlockId = std::uint64_t;

/** 64-byte coherence unit, as in the paper (Table 4). */
constexpr unsigned blockBits = 6;
constexpr Addr blockBytes = Addr{1} << blockBits;

/** Default macroblock: 1024 bytes = 16 blocks (Section 3.4). */
constexpr unsigned macroblockBits = 10;
constexpr Addr macroblockBytes = Addr{1} << macroblockBits;

/** Block number containing a byte address. */
constexpr BlockId
blockOf(Addr a)
{
    return a >> blockBits;
}

/** First byte address of a block. */
constexpr Addr
blockBase(BlockId b)
{
    return b << blockBits;
}

/** Macroblock number containing a byte address, for a given size. */
constexpr std::uint64_t
macroblockOf(Addr a, unsigned mbBits = macroblockBits)
{
    return a >> mbBits;
}

/**
 * Home node of a block: memory (and the directory slice for the block)
 * is block-interleaved across all nodes, as in systems of the Alpha
 * 21364 class the paper models.
 */
constexpr NodeId
homeOf(BlockId b, NodeId num_nodes)
{
    return static_cast<NodeId>(b % num_nodes);
}

/** Coherence request kinds visible to predictors and protocols. */
enum class RequestType : std::uint8_t {
    GetShared,      ///< read miss: needs a readable copy
    GetExclusive,   ///< write miss or upgrade: needs writable ownership
};

/** Short printable name for a request type. */
inline std::string
toString(RequestType t)
{
    return t == RequestType::GetShared ? "GETS" : "GETX";
}

/** Message sizes from Section 5.1 of the paper. */
constexpr std::uint64_t requestMessageBytes = 8;
constexpr std::uint64_t dataMessageBytes = 72;  // 64 B data + 8 B header

} // namespace dsp

#endif // DSP_MEM_TYPES_HH
