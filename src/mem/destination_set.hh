/**
 * @file
 * DestinationSet: the set of nodes that receive a coherence request.
 *
 * This is the central abstraction of the paper (the "multicast mask").
 * Represented as a fixed-size array of 64-bit words covering maxNodes
 * bits (256 nodes -> 4 words, 32 bytes), with SWAR popcount/iterate.
 * Systems up to 64 nodes live entirely in word 0, which keeps the
 * legacy single-word mask()/fromMask() surface (traces, predictor
 * tables, tests) valid for every machine the paper evaluates plus the
 * 64-node scale-up.
 */

#ifndef DSP_MEM_DESTINATION_SET_HH
#define DSP_MEM_DESTINATION_SET_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dsp {

/** A set of node identifiers, value semantics, O(words) set algebra. */
class DestinationSet
{
  public:
    /** Number of 64-bit words backing the set. */
    static constexpr unsigned wordCount = maxNodes / 64;
    static_assert(maxNodes % 64 == 0,
                  "maxNodes must be a multiple of the word width");

    using Words = std::array<std::uint64_t, wordCount>;

    constexpr DestinationSet() = default;

    /**
     * Construct from a raw 64-bit mask (bit i <=> node i). Only spans
     * nodes 0..63; word-array sets beyond that are built with add() or
     * fromWords().
     */
    static constexpr DestinationSet
    fromMask(std::uint64_t mask)
    {
        DestinationSet s;
        s.words_[0] = mask;
        return s;
    }

    /** Construct from a full word array (word w bit b <=> node 64w+b). */
    static constexpr DestinationSet
    fromWords(const Words &words)
    {
        DestinationSet s;
        s.words_ = words;
        return s;
    }

    /** The set containing every node in an n-node system. */
    static DestinationSet
    all(NodeId n)
    {
        dsp_assert(n > 0 && n <= maxNodes, "bad node count %u", n);
        DestinationSet s;
        for (unsigned w = 0; w < wordCount && n > 0; ++w) {
            if (n >= 64) {
                s.words_[w] = ~std::uint64_t{0};
                n -= 64;
            } else {
                s.words_[w] = (std::uint64_t{1} << n) - 1;
                n = 0;
            }
        }
        return s;
    }

    /** The singleton set {node}. */
    static DestinationSet
    of(NodeId node)
    {
        DestinationSet s;
        s.add(node);
        return s;
    }

    /**
     * Low-word accessor: the raw mask over nodes 0..63. Callers that
     * persist this single word (trace records, predictor training
     * tables) only handle <= 64-node sets; assert nothing is lost.
     */
    std::uint64_t
    mask() const
    {
        for (unsigned w = 1; w < wordCount; ++w)
            dsp_assert(words_[w] == 0,
                       "mask() on a set with nodes >= 64");
        return words_[0];
    }

    /** Full word array, for callers sized off maxNodes. */
    constexpr const Words &words() const { return words_; }

    /** Add a node to the set. */
    void
    add(NodeId node)
    {
        dsp_assert(node < maxNodes, "node %u out of range", node);
        words_[node >> 6] |= std::uint64_t{1} << (node & 63);
    }

    /** Remove a node from the set. */
    void
    remove(NodeId node)
    {
        dsp_assert(node < maxNodes, "node %u out of range", node);
        words_[node >> 6] &= ~(std::uint64_t{1} << (node & 63));
    }

    /** Membership test. */
    constexpr bool
    contains(NodeId node) const
    {
        return node < maxNodes &&
               (words_[node >> 6] >> (node & 63)) & 1;
    }

    /** True if every member of `other` is also a member of this set. */
    constexpr bool
    containsAll(const DestinationSet &other) const
    {
        std::uint64_t leak = 0;
        for (unsigned w = 0; w < wordCount; ++w)
            leak |= other.words_[w] & ~words_[w];
        return leak == 0;
    }

    /** Number of members. */
    constexpr unsigned
    count() const
    {
        unsigned n = 0;
        for (std::uint64_t w : words_)
            n += static_cast<unsigned>(std::popcount(w));
        return n;
    }

    /** True if the set is empty. */
    constexpr bool
    empty() const
    {
        std::uint64_t any = 0;
        for (std::uint64_t w : words_)
            any |= w;
        return any == 0;
    }

    /** Set union / difference / intersection. */
    constexpr DestinationSet
    operator|(const DestinationSet &o) const
    {
        DestinationSet s;
        for (unsigned w = 0; w < wordCount; ++w)
            s.words_[w] = words_[w] | o.words_[w];
        return s;
    }

    constexpr DestinationSet
    operator&(const DestinationSet &o) const
    {
        DestinationSet s;
        for (unsigned w = 0; w < wordCount; ++w)
            s.words_[w] = words_[w] & o.words_[w];
        return s;
    }

    /** Members of this set that are not in `o`. */
    constexpr DestinationSet
    minus(const DestinationSet &o) const
    {
        DestinationSet s;
        for (unsigned w = 0; w < wordCount; ++w)
            s.words_[w] = words_[w] & ~o.words_[w];
        return s;
    }

    DestinationSet &
    operator|=(const DestinationSet &o)
    {
        for (unsigned w = 0; w < wordCount; ++w)
            words_[w] |= o.words_[w];
        return *this;
    }

    constexpr bool
    operator==(const DestinationSet &) const = default;

    /** Invoke fn(NodeId) for each member, ascending. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (unsigned w = 0; w < wordCount; ++w) {
            std::uint64_t m = words_[w];
            while (m) {
                NodeId n = static_cast<NodeId>(
                    (w << 6) + std::countr_zero(m));
                fn(n);
                m &= m - 1;
            }
        }
    }

    /** Render like "{0,3,7}" for debugging. */
    std::string
    toString() const
    {
        std::string out = "{";
        bool first = true;
        forEach([&](NodeId n) {
            if (!first)
                out += ",";
            out += std::to_string(n);
            first = false;
        });
        out += "}";
        return out;
    }

  private:
    Words words_{};
};

} // namespace dsp

#endif // DSP_MEM_DESTINATION_SET_HH
