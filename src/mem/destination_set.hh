/**
 * @file
 * DestinationSet: the set of nodes that receive a coherence request.
 *
 * This is the central abstraction of the paper. Represented as a 64-bit
 * mask (the paper calls it a "multicast mask"), supporting up to 64
 * nodes; the evaluated systems use 16.
 */

#ifndef DSP_MEM_DESTINATION_SET_HH
#define DSP_MEM_DESTINATION_SET_HH

#include <bit>
#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dsp {

/** A set of node identifiers, value semantics, O(1) set algebra. */
class DestinationSet
{
  public:
    constexpr DestinationSet() = default;

    /** Construct from a raw bit mask (bit i <=> node i). */
    static constexpr DestinationSet
    fromMask(std::uint64_t mask)
    {
        DestinationSet s;
        s.mask_ = mask;
        return s;
    }

    /** The set containing every node in an n-node system. */
    static DestinationSet
    all(NodeId n)
    {
        dsp_assert(n > 0 && n <= maxNodes, "bad node count %u", n);
        return fromMask(n == maxNodes ? ~std::uint64_t{0}
                                      : ((std::uint64_t{1} << n) - 1));
    }

    /** The singleton set {node}. */
    static DestinationSet
    of(NodeId node)
    {
        DestinationSet s;
        s.add(node);
        return s;
    }

    /** Raw mask accessor. */
    constexpr std::uint64_t mask() const { return mask_; }

    /** Add a node to the set. */
    void
    add(NodeId node)
    {
        dsp_assert(node < maxNodes, "node %u out of range", node);
        mask_ |= std::uint64_t{1} << node;
    }

    /** Remove a node from the set. */
    void
    remove(NodeId node)
    {
        dsp_assert(node < maxNodes, "node %u out of range", node);
        mask_ &= ~(std::uint64_t{1} << node);
    }

    /** Membership test. */
    constexpr bool
    contains(NodeId node) const
    {
        return node < maxNodes && (mask_ >> node) & 1;
    }

    /** True if every member of `other` is also a member of this set. */
    constexpr bool
    containsAll(DestinationSet other) const
    {
        return (other.mask_ & ~mask_) == 0;
    }

    /** Number of members. */
    constexpr unsigned count() const { return std::popcount(mask_); }

    /** True if the set is empty. */
    constexpr bool empty() const { return mask_ == 0; }

    /** Set union / difference / intersection. */
    constexpr DestinationSet
    operator|(DestinationSet o) const
    {
        return fromMask(mask_ | o.mask_);
    }

    constexpr DestinationSet
    operator&(DestinationSet o) const
    {
        return fromMask(mask_ & o.mask_);
    }

    /** Members of this set that are not in `o`. */
    constexpr DestinationSet
    minus(DestinationSet o) const
    {
        return fromMask(mask_ & ~o.mask_);
    }

    DestinationSet &
    operator|=(DestinationSet o)
    {
        mask_ |= o.mask_;
        return *this;
    }

    constexpr bool
    operator==(const DestinationSet &) const = default;

    /** Invoke fn(NodeId) for each member, ascending. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::uint64_t m = mask_;
        while (m) {
            NodeId n = static_cast<NodeId>(std::countr_zero(m));
            fn(n);
            m &= m - 1;
        }
    }

    /** Render like "{0,3,7}" for debugging. */
    std::string
    toString() const
    {
        std::string out = "{";
        bool first = true;
        forEach([&](NodeId n) {
            if (!first)
                out += ",";
            out += std::to_string(n);
            first = false;
        });
        out += "}";
        return out;
    }

  private:
    std::uint64_t mask_ = 0;
};

} // namespace dsp

#endif // DSP_MEM_DESTINATION_SET_HH
