#include "mem/node_caches.hh"

namespace dsp {

NodeCaches::NodeCaches(const CacheParams &params)
    : l1_(params.l1.sets(), params.l1.ways),
      l2_(params.l2.sets(), params.l2.ways)
{
}

NodeCaches::AccessResult
NodeCaches::access(Addr addr, bool is_write)
{
    ++accesses_;
    BlockId block = blockOf(addr);
    AccessResult result;

    if (L1Line *l1 = l1_.find(block)) {
        if (!is_write || l1->writable) {
            ++l1Hits_;
            result.l1Hit = true;
            return result;
        }
        // Write to a read-only L1 line: fall through to the L2, which
        // knows the real MOSI state.
    }

    if (L2Line *l2 = l2_.find(block)) {
        result.l2Hit = true;
        result.l2State = l2->state;
        if (!is_write) {
            ++l2Hits_;
            l1_.insert(block, L1Line{canWrite(l2->state)});
            return result;
        }
        if (canWrite(l2->state)) {
            ++l2Hits_;
            l1_.insert(block, L1Line{true});
            return result;
        }
        // Write to S or O: coherence upgrade required. The line stays
        // put; fill() will promote it to Modified.
        ++upgrades_;
        ++l2Misses_;
        result.need = CoherenceNeed::GetExclusive;
        return result;
    }

    ++l2Misses_;
    result.l2State = MosiState::Invalid;
    result.need = is_write ? CoherenceNeed::GetExclusive
                           : CoherenceNeed::GetShared;
    return result;
}

NodeCaches::FillResult
NodeCaches::fill(Addr addr, MosiState new_state)
{
    dsp_assert(new_state != MosiState::Invalid,
               "fill with Invalid state");
    BlockId block = blockOf(addr);
    FillResult result;

    auto evicted = l2_.insert(block, L2Line{new_state});
    if (evicted) {
        result.evicted = true;
        result.victim = evicted->key;
        result.victimState = evicted->payload.state;
        if (isOwnerState(result.victimState))
            ++writebacks_;
        // Maintain inclusion: the victim may no longer live in the L1.
        l1_.erase(evicted->key);
    }
    l1_.insert(block, L1Line{canWrite(new_state)});
    return result;
}

MosiState
NodeCaches::invalidate(BlockId block)
{
    l1_.erase(block);
    auto line = l2_.erase(block);
    return line ? line->state : MosiState::Invalid;
}

MosiState
NodeCaches::downgrade(BlockId block)
{
    // The L1 copy, if any, loses write permission but stays readable.
    if (auto *l1 = l1_.find(block))
        l1->writable = false;

    if (auto *l2 = l2_.find(block)) {
        if (l2->state == MosiState::Modified)
            l2->state = MosiState::Owned;
        return l2->state;
    }
    return MosiState::Invalid;
}

MosiState
NodeCaches::stateOf(BlockId block) const
{
    const L2Line *line = l2_.peek(block);
    return line ? line->state : MosiState::Invalid;
}

} // namespace dsp
