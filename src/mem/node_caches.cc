#include "mem/node_caches.hh"

namespace dsp {

NodeCaches::NodeCaches(const CacheParams &params)
    : l1_(params.l1.sets(), params.l1.ways),
      l2_(params.l2.sets(), params.l2.ways)
{
}

NodeCaches::AccessResult
NodeCaches::access(Addr addr, bool is_write)
{
    ++accesses_;
    BlockId block = blockOf(addr);
    AccessResult result;

    if (L1Array::Entry *l1 = l1_.find(block)) {
        if (!is_write || L1Array::payloadOf(*l1) != 0) {
            ++l1Hits_;
            result.l1Hit = true;
            return result;
        }
        // Write to a read-only L1 line: fall through to the L2, which
        // knows the real MOSI state.
    }

    // One L2 walk whatever the outcome: the probe's handle serves as
    // this access's touch cursor on a hit and is latched as the
    // eventual fill()'s install cursor on a miss or upgrade.
    L2Array::Handle l2h = l2_.probe(block);
    if (l2h.hit()) {
        MosiState state = unpackState(l2_.at(l2h));
        result.l2Hit = true;
        result.l2State = state;
        if (!is_write || canWrite(state)) {
            ++l2Hits_;
            l2_.touchAt(l2h);
            l1_.insert(block, canWrite(state) ? 1 : 0);
            return result;
        }
        // Write to S or O: coherence upgrade required. The line stays
        // put; fill() will promote it to Modified in place.
        l2_.touchAt(l2h);
        ++upgrades_;
        ++l2Misses_;
        result.need = CoherenceNeed::GetExclusive;
        latchMissHandles(block, l2h);
        return result;
    }

    ++l2Misses_;
    result.l2State = MosiState::Invalid;
    result.need = is_write ? CoherenceNeed::GetExclusive
                           : CoherenceNeed::GetShared;
    latchMissHandles(block, l2h);
    return result;
}

void
NodeCaches::latchMissHandles(BlockId block, const L2Array::Handle &l2h)
{
    // The L2 handle is the walk access() just did; only the (small,
    // host-cache-hot) L1 re-walks here. The payoff comes at fill()
    // time, when the L2 set would otherwise need a fresh walk.
    // Keeping find() (not probe()) on the L1 hit path keeps the
    // vastly-more-common L1 hits free of handle traffic.
    lastMiss_.l1 = l1_.probe(block);
    lastMiss_.l2 = l2h;
}

NodeCaches::FillResult
NodeCaches::fill(Addr addr, MosiState new_state, FillHandle *handle)
{
    dsp_assert(new_state != MosiState::Invalid,
               "fill with Invalid state");
    BlockId block = blockOf(addr);
    FillResult result;

    FillHandle local;
    if (handle != nullptr) {
        dsp_assert(handle->l2.key == block && handle->l1.key == block,
                   "fill handle is for a different block");
    } else {
        local.l1 = l1_.probe(block);
        local.l2 = l2_.probe(block);
        handle = &local;
    }

    auto evicted = l2_.fillAt(handle->l2, packState(new_state));
    if (evicted) {
        result.evicted = true;
        result.victim = evicted->key;
        result.victimState = unpackState(evicted->payload);
        if (isOwnerState(result.victimState))
            ++writebacks_;
        // Maintain inclusion: the victim may no longer live in the L1.
        // (If the victim shares the L1 set with `block`, the erase
        // changes that set's words and the L1 fill below re-walks.)
        l1_.erase(evicted->key);
    }
    l1_.fillAt(handle->l1, canWrite(new_state) ? 1 : 0);
    return result;
}

MosiState
NodeCaches::invalidate(BlockId block)
{
    l1_.erase(block);
    auto payload = l2_.erase(block);
    return payload ? unpackState(*payload) : MosiState::Invalid;
}

MosiState
NodeCaches::downgrade(BlockId block)
{
    // The L1 copy, if any, loses write permission but stays readable.
    if (L1Array::Entry *l1 = l1_.find(block))
        L1Array::setPayload(*l1, 0);

    if (L2Array::Entry *l2 = l2_.find(block)) {
        MosiState state = unpackState(L2Array::payloadOf(*l2));
        if (state == MosiState::Modified) {
            state = MosiState::Owned;
            L2Array::setPayload(*l2, packState(state));
        }
        return state;
    }
    return MosiState::Invalid;
}

MosiState
NodeCaches::stateOf(BlockId block) const
{
    auto payload = l2_.peek(block);
    return payload ? unpackState(*payload) : MosiState::Invalid;
}

} // namespace dsp
