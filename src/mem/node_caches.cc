#include "mem/node_caches.hh"

namespace dsp {

NodeCaches::NodeCaches(const CacheParams &params)
    : l1_(params.l1.sets(), params.l1.ways),
      l2_(params.l2.sets(), params.l2.ways),
      l0Enabled_(params.l0Filter)
{
}

NodeCaches::FillResult
NodeCaches::fill(Addr addr, MosiState new_state, FillHandle *handle)
{
    dsp_assert(new_state != MosiState::Invalid,
               "fill with Invalid state");
    BlockId block = blockOf(addr);
    FillResult result;

    std::uint64_t rewalks_before = 0;
    if constexpr (walkCounting)
        rewalks_before = l1_.rewalks() + l2_.rewalks();

    FillHandle local;
    if (handle != nullptr) {
        dsp_assert(handle->l2.key == block && handle->l1.key == block,
                   "fill handle is for a different block");
    } else {
        local.l1 = l1_.probe(block);
        local.l2 = l2_.probe(block);
        handle = &local;
        if constexpr (walkCounting)
            fillWalks_ += 2;
    }

    auto evicted = l2_.fillAt(handle->l2, packState(new_state));
    if (evicted) {
        result.evicted = true;
        result.victim = evicted->key;
        result.victimState = unpackState(evicted->payload);
        if (isOwnerState(result.victimState))
            ++writebacks_;
        // Maintain inclusion: the victim may no longer live in the L1.
        // (If the victim shares the L1 set with `block`, the erase
        // changes that set's words and the L1 fill below re-walks.)
        l1_.erase(evicted->key);
        l0Invalidate(evicted->key);
    }
    std::uint32_t writable = canWrite(new_state) ? 1 : 0;
    auto l1_evicted = l1_.fillAt(handle->l1, writable);
    if (l1_evicted)
        l0Invalidate(l1_evicted->key);  // silent L1 conflict victim
    // Record the freshly installed block: the blocked access's replay
    // (MSHR waiters, ROB replays) resolves through the L0 instead of
    // re-walking L1/L2.
    l0Record(block, writable != 0, l1_.lineOf(handle->l1));

    // Stale-handle revalidations (plus the inclusion erase's fused
    // walk) are the only other fill-stage walks.
    if constexpr (walkCounting) {
        fillWalks_ +=
            l1_.rewalks() + l2_.rewalks() - rewalks_before;
        if (result.evicted)
            ++fillWalks_;  // the L1 inclusion erase
    }
    return result;
}

MosiState
NodeCaches::invalidate(BlockId block)
{
    l1_.erase(block);
    auto payload = l2_.erase(block);
    return payload ? unpackState(*payload) : MosiState::Invalid;
}

MosiState
NodeCaches::downgrade(BlockId block)
{
    // The L1 copy, if any, loses write permission but stays readable.
    if (L1Array::Entry *l1 = l1_.find(block))
        L1Array::setPayload(*l1, 0);

    if (L2Array::Entry *l2 = l2_.find(block)) {
        MosiState state = unpackState(L2Array::payloadOf(*l2));
        if (state == MosiState::Modified) {
            state = MosiState::Owned;
            L2Array::setPayload(*l2, packState(state));
        }
        return state;
    }
    return MosiState::Invalid;
}

MosiState
NodeCaches::stateOf(BlockId block) const
{
    auto payload = l2_.peek(block);
    return payload ? unpackState(*payload) : MosiState::Invalid;
}

} // namespace dsp
