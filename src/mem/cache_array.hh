/**
 * @file
 * Generic set-associative cache tag array with true-LRU replacement.
 *
 * The array tracks tags and a caller-supplied payload per line; it holds
 * no data (this is a timing/functional simulator, block contents are
 * never modelled). Used for L1s, L2s, and as the backing store of finite
 * destination-set predictor tables.
 *
 * Storage is structure-of-arrays: a dense tag plane, a parallel LRU
 * plane, and a payload plane, all indexed by set * ways + way. The
 * simulated L2s are far larger than the host's caches, so the miss
 * path -- the common case for L2 probes -- walks one short run of tags
 * per set instead of dragging a whole array-of-structs set (tags, LRU
 * words, and payloads interleaved) through the host cache. The LRU and
 * payload planes are touched only on tag matches and fills.
 *
 * Tags are stored compressed: tag = key / sets (a shift for the usual
 * power-of-two set counts), which with the set index reconstructs the
 * key exactly. The `Tag` template parameter picks the stored width;
 * the default 64-bit plane accepts any key, while callers whose keys
 * are known-small (block numbers) can halve the plane's footprint
 * with Tag = std::uint32_t -- an insert-time assert guards the range.
 */

#ifndef DSP_MEM_CACHE_ARRAY_HH
#define DSP_MEM_CACHE_ARRAY_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "sim/logging.hh"

namespace dsp {

/** Result of inserting into a CacheArray: the evicted line, if any. */
template <typename Payload>
struct Eviction {
    std::uint64_t key;
    Payload payload;
};

/**
 * Set-associative key -> payload store with per-set true LRU.
 *
 * Keys are arbitrary 64-bit values (block numbers, macroblock numbers,
 * PCs); set index is key % sets and the tag is key / sets, so any
 * key distribution works.
 */
template <typename Payload, typename Tag = std::uint64_t>
class CacheArray
{
    static_assert(std::is_unsigned_v<Tag>, "tags are unsigned");

  public:
    /**
     * @param sets number of sets (> 0)
     * @param ways associativity (> 0)
     */
    CacheArray(std::size_t sets, std::size_t ways)
        : sets_(sets),
          ways_(ways),
          tags_(sets * ways, 0),
          lastUse_(sets * ways, 0),
          payloads_(sets * ways)
    {
        dsp_assert(sets > 0 && ways > 0,
                   "cache geometry %zux%zu invalid", sets, ways);
        // Real cache geometries have power-of-two set counts; index
        // with a shift/mask there instead of a (much slower) division.
        if ((sets & (sets - 1)) == 0) {
            setMask_ = sets - 1;
            while ((std::size_t{1} << log2Sets_) < sets)
                ++log2Sets_;
        }
    }

    std::size_t sets() const { return sets_; }
    std::size_t ways() const { return ways_; }
    std::size_t capacity() const { return tags_.size(); }

    /** Number of valid lines currently held. */
    std::size_t size() const { return valid_; }

    /**
     * Look up a key; returns the payload and refreshes LRU on hit,
     * nullptr on miss.
     */
    Payload *
    find(std::uint64_t key)
    {
        std::size_t line = lookup(key);
        if (line == npos)
            return nullptr;
        touch(line);
        return &payloads_[line];
    }

    /** Look up without disturbing LRU state (for inspection/tests). */
    const Payload *
    peek(std::uint64_t key) const
    {
        std::size_t line = lookup(key);
        return line == npos ? nullptr : &payloads_[line];
    }

    /**
     * Insert (or overwrite) key with payload; evicts the set's LRU line
     * if the set is full. Returns the eviction, if one occurred.
     */
    std::optional<Eviction<Payload>>
    insert(std::uint64_t key, Payload payload)
    {
        // Single pass over the set's tag/LRU runs: find the key, a
        // free way, and the LRU victim at the same time.
        std::size_t set = setOf(key);
        Tag tag = tagOf(key);
        std::size_t base = set * ways_;
        std::size_t victim = npos;
        std::uint32_t victimUse = 0;
        for (std::size_t w = 0; w < ways_; ++w) {
            std::size_t line = base + w;
            std::uint32_t use = lastUse_[line];
            if (use != 0 && tags_[line] == tag) {
                payloads_[line] = std::move(payload);
                touch(line);
                return std::nullopt;
            }
            // First way seeds the victim unconditionally so one is
            // always chosen (a stamp can legitimately be UINT32_MAX
            // right before a renormalization); free ways (use 0)
            // always win thereafter.
            if (victim == npos || use < victimUse) {
                victim = line;
                victimUse = use;
            }
        }

        std::optional<Eviction<Payload>> evicted;
        if (victimUse != 0) {
            evicted = Eviction<Payload>{keyAt(victim),
                                        std::move(payloads_[victim])};
        } else {
            ++valid_;
        }
        tags_[victim] = tag;
        payloads_[victim] = std::move(payload);
        touch(victim);
        return evicted;
    }

    /** Remove a key if present; returns its payload. */
    std::optional<Payload>
    erase(std::uint64_t key)
    {
        std::size_t line = lookup(key);
        if (line == npos)
            return std::nullopt;
        lastUse_[line] = 0;
        --valid_;
        return std::move(payloads_[line]);
    }

    /** Invoke fn(key, payload&) on every valid line. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t line = 0; line < tags_.size(); ++line)
            if (lastUse_[line] != 0)
                fn(keyAt(line), payloads_[line]);
    }

    /** Drop all lines. */
    void
    clear()
    {
        std::fill(lastUse_.begin(), lastUse_.end(), 0);
        valid_ = 0;
    }

  private:
    static constexpr std::size_t npos =
        std::numeric_limits<std::size_t>::max();

    std::size_t
    setOf(std::uint64_t key) const
    {
        if (setMask_ != 0 || sets_ == 1)
            return static_cast<std::size_t>(key) & setMask_;
        return static_cast<std::size_t>(key % sets_);
    }

    /** Compressed tag: with setOf it reconstructs the key exactly. */
    Tag
    tagOf(std::uint64_t key) const
    {
        std::uint64_t quotient =
            setMask_ != 0 || sets_ == 1 ? key >> log2Sets_
                                        : key / sets_;
        dsp_assert(quotient <= std::numeric_limits<Tag>::max(),
                   "key %llu exceeds this array's tag width",
                   static_cast<unsigned long long>(key));
        return static_cast<Tag>(quotient);
    }

    /** Reconstruct a line's key from its stored tag and set index. */
    std::uint64_t
    keyAt(std::size_t line) const
    {
        std::uint64_t set = line / ways_;
        std::uint64_t quotient = tags_[line];
        if (setMask_ != 0 || sets_ == 1)
            return (quotient << log2Sets_) | set;
        return quotient * sets_ + set;
    }

    /**
     * Line index holding `key`, or npos. The scan reads only the tag
     * plane until a tag matches (a line is valid iff its lastUse word
     * is non-zero, checked second), so the common L2-probe miss stays
     * within one dense run of tags.
     */
    std::size_t
    lookup(std::uint64_t key) const
    {
        std::size_t base = setOf(key) * ways_;
        Tag tag = tagOf(key);
        for (std::size_t w = 0; w < ways_; ++w) {
            std::size_t line = base + w;
            if (tags_[line] == tag && lastUse_[line] != 0)
                return line;
        }
        return npos;
    }

    void
    touch(std::size_t line)
    {
        if (useClock_ == std::numeric_limits<std::uint32_t>::max())
            renormalizeUse();
        lastUse_[line] = ++useClock_;
    }

    /**
     * Compress all timestamps into [1, lines] preserving their order,
     * so the 32-bit use clock can wrap without disturbing LRU. Runs
     * once every ~4 billion touches; amortized cost is nil.
     */
    void
    renormalizeUse()
    {
        std::vector<std::size_t> valid_lines;
        valid_lines.reserve(valid_);
        for (std::size_t line = 0; line < lastUse_.size(); ++line)
            if (lastUse_[line] != 0)
                valid_lines.push_back(line);
        std::sort(valid_lines.begin(), valid_lines.end(),
                  [this](std::size_t a, std::size_t b) {
                      return lastUse_[a] < lastUse_[b];
                  });
        std::uint32_t next = 0;
        for (std::size_t line : valid_lines)
            lastUse_[line] = ++next;
        useClock_ = next;
    }

    std::size_t sets_;
    std::size_t ways_;
    std::size_t setMask_ = 0;  ///< sets-1 when sets is a power of two
    std::size_t log2Sets_ = 0; ///< log2(sets) when sets is a power of two

    /**
     * The three planes. A line is valid iff lastUse_ is non-zero
     * (touch() never hands out zero, and renormalization keeps valid
     * timestamps >= 1), so validity costs no extra plane and the
     * lookup loop stays in the tag stream.
     */
    std::vector<Tag> tags_;
    std::vector<std::uint32_t> lastUse_;
    std::vector<Payload> payloads_;

    std::size_t valid_ = 0;
    std::uint32_t useClock_ = 0;
};

} // namespace dsp

#endif // DSP_MEM_CACHE_ARRAY_HH
