/**
 * @file
 * Generic set-associative cache tag array with true-LRU replacement.
 *
 * The array tracks tags and a caller-supplied payload per line; it holds
 * no data (this is a timing/functional simulator, block contents are
 * never modelled). Used for L1s, L2s, and as the backing store of finite
 * destination-set predictor tables.
 *
 * Storage is structure-of-arrays: a dense tag plane, a parallel LRU
 * plane, and a payload plane, all indexed by set * ways + way. The
 * simulated L2s are far larger than the host's caches, so the miss
 * path -- the common case for L2 probes -- walks one short run of tags
 * per set instead of dragging a whole array-of-structs set (tags, LRU
 * words, and payloads interleaved) through the host cache. The LRU and
 * payload planes are touched only on tag matches and fills.
 *
 * Tags are stored compressed: tag = key / sets (a shift for the usual
 * power-of-two set counts), which with the set index reconstructs the
 * key exactly. The `Tag` template parameter picks the stored width;
 * the default 64-bit plane accepts any key, while callers whose keys
 * are known-small (block numbers) can halve the plane's footprint
 * with Tag = std::uint32_t -- an insert-time assert guards the range.
 *
 * One-walk probe/fill: a coherence miss probes the array, goes off to
 * the coherence layer, and installs the granted line much later. With
 * find() + insert() that costs two identical walks of the same set's
 * tag plane -- the single largest hot-path expense in the profile.
 * probe() instead performs the walk once and returns a small Handle
 * (set base, matched way or miss, precomputed LRU victim) that
 * fillAt() consumes to install without re-walking. Handles are
 * revalidated in O(ways) against the LRU plane itself: the probe
 * records the set's stamp vector, and no operation can change a
 * set's tags or validity without changing a stamp (installs and
 * overwrites touch, erases zero) -- so "stamps unchanged" proves the
 * whole walk result still holds, at the cost of comparing the one
 * 16-byte LRU line the fill is about to write anyway. The only
 * operation that rewrites stamps without changing state, the
 * once-per-4-billion-touches renormalization, bumps a per-array
 * counter the handle also carries. Nothing is stored per set and the
 * find()/insert()/erase() fast paths are byte-for-byte untouched
 * (an earlier per-set epoch plane cost a measured ~5% of simulator
 * throughput in extra cache lines). A stale handle transparently
 * re-walks, so fillAt() always behaves exactly like a fresh
 * insert().
 */

#ifndef DSP_MEM_CACHE_ARRAY_HH
#define DSP_MEM_CACHE_ARRAY_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "sim/logging.hh"

namespace dsp {

/** Result of inserting into a CacheArray: the evicted line, if any. */
template <typename Payload>
struct Eviction {
    std::uint64_t key;
    Payload payload;
};

/**
 * Set-associative key -> payload store with per-set true LRU.
 *
 * Keys are arbitrary 64-bit values (block numbers, macroblock numbers,
 * PCs); set index is key % sets and the tag is key / sets, so any
 * key distribution works.
 */
template <typename Payload, typename Tag = std::uint64_t>
class CacheArray
{
    static_assert(std::is_unsigned_v<Tag>, "tags are unsigned");

  public:
    /**
     * Tag-plane walks are counted in debug builds only (the counter
     * bump is nothing, but the hot loops stay branch-identical to the
     * release build); tests gate their exact-count assertions on this.
     */
#ifndef NDEBUG
    static constexpr bool walkCounting = true;
#else
    static constexpr bool walkCounting = false;
#endif

    /**
     * The result of one set walk: everything fillAt() needs to install
     * `key` without walking again. `way` is the matched way on a hit,
     * `wayNpos` on a miss; `victimWay` is the way insert() would pick
     * (first free way, else true-LRU). `stamps` is the set's LRU
     * vector at walk time (miss handles, associativity <= maxWays)
     * and `wayUse` the matched way's stamp (hit handles); fillAt()
     * revalidates against the live stamps plus the renormalization
     * epoch, re-walking only when an intervening operation actually
     * invalidated the walk. Sets wider than maxWays always re-walk --
     * only exotic fully-associative predictor-table geometries hit
     * that, never the default 4-way tables.
     */
    struct Handle {
        static constexpr std::uint32_t wayNpos =
            std::numeric_limits<std::uint32_t>::max();
        /** 4 covers every real geometry; wider sets re-walk at fill. */
        static constexpr std::size_t maxWays = 4;

        std::uint64_t key = 0;
        std::uint32_t set = 0;
        std::uint32_t way = wayNpos;
        std::uint32_t victimWay = wayNpos;
        std::uint32_t wayUse = 0;      ///< matched way's stamp
        std::uint32_t renormEpoch = 0;
        /** Deliberately uninitialized: probe() writes the first
         *  min(ways, maxWays) slots and revalidation reads no more. */
        std::array<std::uint32_t, maxWays> stamps;
        bool probed = false;  ///< default-constructed handles are inert

        bool hit() const { return way != wayNpos; }
        bool valid() const { return probed; }
    };

    /**
     * @param sets number of sets (> 0)
     * @param ways associativity (> 0)
     */
    CacheArray(std::size_t sets, std::size_t ways)
        : sets_(sets),
          ways_(ways),
          tags_(sets * ways, 0),
          lastUse_(sets * ways, 0),
          payloads_(sets * ways)
    {
        dsp_assert(sets > 0 && ways > 0,
                   "cache geometry %zux%zu invalid", sets, ways);
        // Real cache geometries have power-of-two set counts; index
        // with a shift/mask there instead of a (much slower) division.
        if ((sets & (sets - 1)) == 0) {
            setMask_ = sets - 1;
            while ((std::size_t{1} << log2Sets_) < sets)
                ++log2Sets_;
        }
    }

    std::size_t sets() const { return sets_; }
    std::size_t ways() const { return ways_; }
    std::size_t capacity() const { return tags_.size(); }

    /** Number of valid lines currently held. */
    std::size_t size() const { return valid_; }

    /**
     * Look up a key; returns the payload and refreshes LRU on hit,
     * nullptr on miss.
     */
    Payload *
    find(std::uint64_t key)
    {
        std::size_t line = lookupIn(setOf(key), tagOf(key));
        if (line == npos)
            return nullptr;
        touch(line);
        return &payloads_[line];
    }

    /** Look up without disturbing LRU state (for inspection/tests). */
    const Payload *
    peek(std::uint64_t key) const
    {
        std::size_t line = lookupIn(setOf(key), tagOf(key));
        return line == npos ? nullptr : &payloads_[line];
    }

    /** Issue host prefetches for the key's set in the planes a walk
     *  reads (tags + validity stamps). Semantically a no-op. */
    void
    prefetchSet(std::uint64_t key) const
    {
        std::size_t base = setOf(key) * ways_;
        __builtin_prefetch(tags_.data() + base, 0, 3);
        __builtin_prefetch(lastUse_.data() + base, 0, 3);
    }

    /**
     * Walk `key`'s set once, recording the match (if any) and the
     * victim insert() would choose. Does not disturb LRU state; pair
     * with touchAt() for find()-equivalent behaviour on a hit, or
     * fillAt() for insert()-equivalent installation.
     */
    Handle
    probe(std::uint64_t key) const
    {
        countWalk();
        Handle h;
        h.key = key;
        std::size_t set = setOf(key);
        h.set = static_cast<std::uint32_t>(set);
        h.renormEpoch = renormEpoch_;
        h.probed = true;

        Tag tag = tagOf(key);
        std::size_t base = set * ways_;
        std::uint32_t victim_use = 0;
        for (std::size_t w = 0; w < ways_; ++w) {
            std::uint32_t use = lastUse_[base + w];
            if (w < Handle::maxWays)
                h.stamps[w] = use;
            if (use != 0 && tags_[base + w] == tag) {
                h.way = static_cast<std::uint32_t>(w);
                h.wayUse = use;
                return h;
            }
            // First way seeds the victim unconditionally so one is
            // always chosen (a stamp can legitimately be UINT32_MAX
            // right before a renormalization); free ways (use 0)
            // always win thereafter.
            if (h.victimWay == Handle::wayNpos || use < victim_use) {
                h.victimWay = static_cast<std::uint32_t>(w);
                victim_use = use;
            }
        }
        return h;
    }

    /** Payload of a hit handle's line (no LRU refresh, no walk). */
    Payload *
    at(const Handle &h)
    {
        dsp_assert(h.valid() && h.hit(), "at() needs a hit handle");
        return &payloads_[h.set * ways_ + h.way];
    }

    /**
     * Refresh the LRU stamp of a hit handle's line, exactly like the
     * touch a find() hit performs. Contract: the caller must not have
     * structurally mutated *this array* (install/erase/clear) since
     * the probe -- every call site touches immediately after probing.
     * Debug builds assert the epoch still matches; release builds pay
     * nothing.
     */
    void
    touchAt(Handle &h)
    {
        dsp_assert(h.valid() && h.hit(),
                   "touchAt() needs a probe-fresh hit handle");
        if constexpr (walkCounting) {
            dsp_assert(h.renormEpoch == renormEpoch_ &&
                           lastUse_[h.set * ways_ + h.way] == h.wayUse,
                       "touchAt() on a stale handle");
        }
        std::size_t line = h.set * ways_ + h.way;
        touch(line);
        h.wayUse = lastUse_[line];  // our own touch; stay fresh
        if (h.way < Handle::maxWays)
            h.stamps[h.way] = h.wayUse;
    }

    /**
     * Install (or overwrite) the handle's key, exactly as
     * insert(h.key, payload) would -- but with zero tag-plane walks
     * when the set is unchanged since the probe. Stale handles are
     * revalidated (one re-walk) first, so the result is always
     * identical to a fresh insert. The handle is updated to point at
     * the installed line and remains usable.
     */
    std::optional<Eviction<Payload>>
    fillAt(Handle &h, Payload payload)
    {
        dsp_assert(h.valid(), "fillAt() on an unprobed handle");
        revalidate(h);

        std::optional<Eviction<Payload>> evicted;
        std::size_t base = h.set * ways_;
        std::size_t line;
        if (h.hit()) {
            line = base + h.way;
            dsp_assert(tags_[line] == tagOf(h.key) &&
                           lastUse_[line] != 0,
                       "hit handle does not hold its key");
        } else {
            line = base + h.victimWay;
            if (lastUse_[line] != 0) {
                evicted = Eviction<Payload>{
                    keyAt(line), std::move(payloads_[line])};
            } else {
                ++valid_;
            }
            tags_[line] = tagOf(h.key);
            h.way = h.victimWay;
        }
        // The argument is consumed exactly once, on exactly one line
        // (insert()'s fused walk keeps the same single-move shape).
        payloads_[line] = std::move(payload);
        touch(line);
        h.wayUse = lastUse_[line];  // fresh after our own mutation
        if (h.way < Handle::maxWays)
            h.stamps[h.way] = h.wayUse;
        return evicted;
    }

    /**
     * Insert (or overwrite) key with payload; evicts the set's LRU line
     * if the set is full. Returns the eviction, if one occurred.
     *
     * A dedicated fused walk rather than probe() + fillAt(): this is
     * the hottest store in the simulator and the handle bookkeeping
     * (stamp capture, revalidation, the handle itself) is pure
     * overhead when the fill follows the walk immediately.
     */
    std::optional<Eviction<Payload>>
    insert(std::uint64_t key, Payload payload)
    {
        countWalk();
        std::size_t set = setOf(key);
        Tag tag = tagOf(key);
        std::size_t base = set * ways_;
        std::size_t match = npos;
        std::size_t victim = npos;
        std::uint32_t victim_use = 0;
        for (std::size_t w = 0; w < ways_; ++w) {
            std::size_t line = base + w;
            std::uint32_t use = lastUse_[line];
            if (use != 0 && tags_[line] == tag) {
                match = line;
                break;
            }
            // First way seeds the victim unconditionally so one is
            // always chosen (a stamp can legitimately be UINT32_MAX
            // right before a renormalization); free ways (use 0)
            // always win thereafter.
            if (victim == npos || use < victim_use) {
                victim = line;
                victim_use = use;
            }
        }

        std::optional<Eviction<Payload>> evicted;
        std::size_t line;
        if (match != npos) {
            dsp_assert(lastUse_[match] != 0, "matched an invalid line");
            line = match;  // overwrite in place; not structural
        } else {
            if (victim_use != 0) {
                evicted = Eviction<Payload>{keyAt(victim),
                                            std::move(payloads_[victim])};
            } else {
                ++valid_;
            }
            tags_[victim] = tag;
            line = victim;
        }
        // The argument is consumed exactly once, on exactly one line,
        // whichever branch chose it (the previous structure had a
        // second move reachable by refactoring the match branch).
        payloads_[line] = std::move(payload);
        touch(line);
        return evicted;
    }

    /** Remove a key if present; returns its payload. */
    std::optional<Payload>
    erase(std::uint64_t key)
    {
        std::size_t line = lookupIn(setOf(key), tagOf(key));
        if (line == npos)
            return std::nullopt;
        lastUse_[line] = 0;
        --valid_;
        return std::move(payloads_[line]);
    }

    /** Invoke fn(key, payload&) on every valid line. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t line = 0; line < tags_.size(); ++line)
            if (lastUse_[line] != 0)
                fn(keyAt(line), payloads_[line]);
    }

    /** Drop all lines. */
    void
    clear()
    {
        std::fill(lastUse_.begin(), lastUse_.end(), 0);
        ++renormEpoch_;  // zeroed stamps could alias a free-way probe
        valid_ = 0;
    }

    /** Tag-plane walks performed (debug builds only; 0 in release). */
    std::uint64_t walks() const { return walks_; }

    /** fillAt()/touchAt() revalidations that had to re-walk. */
    std::uint64_t rewalks() const { return rewalks_; }

    /**
     * Test hook: advance the LRU use clock to `value` so the ~4e9
     * touches to its renormalization point do not have to be paid for
     * real. The next touch at UINT32_MAX renormalizes every stamp.
     */
    void
    debugSetUseClock(std::uint32_t value)
    {
        dsp_assert(value >= useClock_,
                   "use clock may only move forward");
        useClock_ = value;
    }

    /**
     * Checkpoint all three planes plus the LRU clock/epoch and walk
     * counters. Payloads must be trivially copyable (predictor-table
     * entries are small POD structs); geometry is rebuilt from
     * parameters and verified by the plane sizes.
     */
    template <typename W>
    void
    ckptSave(W &w) const
    {
        w.podVec(tags_);
        w.podVec(lastUse_);
        w.podVec(payloads_);
        w.u64(valid_);
        w.u32(useClock_);
        w.u32(renormEpoch_);
        w.u64(walks_);
        w.u64(rewalks_);
    }

    template <typename R>
    void
    ckptLoad(R &r)
    {
        auto tags = r.template podVec<Tag>();
        dsp_assert(tags.size() == tags_.size(),
                   "checkpointed tag plane has %zu lines, machine has "
                   "%zu (configuration mismatch)",
                   tags.size(), tags_.size());
        tags_ = std::move(tags);
        lastUse_ = r.template podVec<std::uint32_t>();
        payloads_ = r.template podVec<Payload>();
        valid_ = r.u64();
        useClock_ = r.u32();
        renormEpoch_ = r.u32();
        walks_ = r.u64();
        rewalks_ = r.u64();
    }

  private:
    static constexpr std::size_t npos =
        std::numeric_limits<std::size_t>::max();

    std::size_t
    setOf(std::uint64_t key) const
    {
        if (setMask_ != 0 || sets_ == 1)
            return static_cast<std::size_t>(key) & setMask_;
        return static_cast<std::size_t>(key % sets_);
    }

    /** Compressed tag: with setOf it reconstructs the key exactly. */
    Tag
    tagOf(std::uint64_t key) const
    {
        std::uint64_t quotient =
            setMask_ != 0 || sets_ == 1 ? key >> log2Sets_
                                        : key / sets_;
        dsp_assert(quotient <= std::numeric_limits<Tag>::max(),
                   "key %llu exceeds this array's tag width",
                   static_cast<unsigned long long>(key));
        return static_cast<Tag>(quotient);
    }

    /** Reconstruct a line's key from its stored tag and set index. */
    std::uint64_t
    keyAt(std::size_t line) const
    {
        std::uint64_t set = line / ways_;
        std::uint64_t quotient = tags_[line];
        if (setMask_ != 0 || sets_ == 1)
            return (quotient << log2Sets_) | set;
        return quotient * sets_ + set;
    }

    /**
     * Line index holding the tag within `set`, or npos. The scan reads
     * only the tag plane until a tag matches (a line is valid iff its
     * lastUse word is non-zero, checked second), so the common
     * L2-probe miss stays within one dense run of tags.
     */
    std::size_t
    lookupIn(std::size_t set, Tag tag) const
    {
        countWalk();
        std::size_t base = set * ways_;
        for (std::size_t w = 0; w < ways_; ++w) {
            std::size_t line = base + w;
            if (tags_[line] == tag && lastUse_[line] != 0)
                return line;
        }
        return npos;
    }

    /**
     * Re-walk a handle whose walk an intervening operation
     * invalidated. Freshness is proven from the LRU plane: no
     * operation changes a set's tags or validity without changing a
     * stamp, so a hit handle is fresh while its way's stamp is
     * unchanged, and a miss handle while the whole stamp vector is
     * (any erase frees a way the fill must prefer; any install may
     * consume one; both stamp). Renormalization rewrites stamps
     * without changing state, so its epoch is checked first.
     */
    void
    revalidate(Handle &h) const
    {
        bool fresh = h.renormEpoch == renormEpoch_;
        if (fresh) {
            std::size_t base = h.set * ways_;
            if (h.hit()) {
                fresh = lastUse_[base + h.way] == h.wayUse;
            } else if (ways_ <= Handle::maxWays) {
                for (std::size_t w = 0; w < ways_; ++w)
                    fresh &= lastUse_[base + w] == h.stamps[w];
            } else {
                fresh = false;  // wide sets always re-walk
            }
        }
        if (!fresh) {
            ++rewalks_;
            h = probe(h.key);
        }
    }

    void
    countWalk() const
    {
        if constexpr (walkCounting)
            ++walks_;
    }

    /**
     * Refresh a line's LRU stamp. Deliberately does not bump the set
     * epoch: handles detect a touched victim through its stamp, and a
     * per-hit epoch store costs more than the walk handles save.
     */
    void
    touch(std::size_t line)
    {
        if (useClock_ == std::numeric_limits<std::uint32_t>::max())
            renormalizeUse();
        lastUse_[line] = ++useClock_;
    }

    /**
     * Compress all timestamps into [1, lines] preserving their order,
     * so the 32-bit use clock can wrap without disturbing LRU. Runs
     * once every ~4 billion touches; amortized cost is nil. The
     * renormalization epoch is bumped: the rewrite preserves LRU
     * *order*, but conservatively invalidating outstanding handles
     * keeps the reasoning local.
     */
    void
    renormalizeUse()
    {
        std::vector<std::size_t> valid_lines;
        valid_lines.reserve(valid_);
        for (std::size_t line = 0; line < lastUse_.size(); ++line)
            if (lastUse_[line] != 0)
                valid_lines.push_back(line);
        std::sort(valid_lines.begin(), valid_lines.end(),
                  [this](std::size_t a, std::size_t b) {
                      return lastUse_[a] < lastUse_[b];
                  });
        std::uint32_t next = 0;
        for (std::size_t line : valid_lines)
            lastUse_[line] = ++next;
        useClock_ = next;
        ++renormEpoch_;  // stamps rewrote; outstanding handles re-walk
    }

    std::size_t sets_;
    std::size_t ways_;
    std::size_t setMask_ = 0;  ///< sets-1 when sets is a power of two
    std::size_t log2Sets_ = 0; ///< log2(sets) when sets is a power of two

    /**
     * The three planes. A line is valid iff lastUse_ is non-zero
     * (touch() never hands out zero, and renormalization keeps valid
     * timestamps >= 1), so validity costs no extra plane and the
     * lookup loop stays in the tag stream.
     */
    std::vector<Tag> tags_;
    std::vector<std::uint32_t> lastUse_;
    std::vector<Payload> payloads_;

    std::size_t valid_ = 0;
    std::uint32_t useClock_ = 0;
    /** Bumped whenever stamps are rewritten wholesale (renormalize,
     *  clear); the only invalidation handles cannot read off the LRU
     *  plane itself. */
    std::uint32_t renormEpoch_ = 0;

    mutable std::uint64_t walks_ = 0;    ///< debug builds only
    mutable std::uint64_t rewalks_ = 0;  ///< stale-handle re-walks
};

} // namespace dsp

#endif // DSP_MEM_CACHE_ARRAY_HH
