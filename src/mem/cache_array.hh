/**
 * @file
 * Generic set-associative cache tag array with true-LRU replacement.
 *
 * The array tracks tags and a caller-supplied payload per line; it holds
 * no data (this is a timing/functional simulator, block contents are
 * never modelled). Used for L1s, L2s, and as the backing store of finite
 * destination-set predictor tables.
 */

#ifndef DSP_MEM_CACHE_ARRAY_HH
#define DSP_MEM_CACHE_ARRAY_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "sim/logging.hh"

namespace dsp {

/** Result of inserting into a CacheArray: the evicted line, if any. */
template <typename Payload>
struct Eviction {
    std::uint64_t key;
    Payload payload;
};

/**
 * Set-associative key -> payload store with per-set true LRU.
 *
 * Keys are arbitrary 64-bit values (block numbers, macroblock numbers,
 * PCs); set index is key % sets and the tag is key / sets, so any
 * key distribution works.
 */
template <typename Payload>
class CacheArray
{
  public:
    /**
     * @param sets number of sets (> 0)
     * @param ways associativity (> 0)
     */
    CacheArray(std::size_t sets, std::size_t ways)
        : sets_(sets), ways_(ways), lines_(sets * ways)
    {
        dsp_assert(sets > 0 && ways > 0,
                   "cache geometry %zux%zu invalid", sets, ways);
        // Real cache geometries have power-of-two set counts; index
        // with a mask there instead of a (much slower) division.
        if ((sets & (sets - 1)) == 0)
            setMask_ = sets - 1;
    }

    std::size_t sets() const { return sets_; }
    std::size_t ways() const { return ways_; }
    std::size_t capacity() const { return lines_.size(); }

    /** Number of valid lines currently held. */
    std::size_t size() const { return valid_; }

    /**
     * Look up a key; returns the payload and refreshes LRU on hit,
     * nullptr on miss.
     */
    Payload *
    find(std::uint64_t key)
    {
        Line *line = lookup(key);
        if (!line)
            return nullptr;
        touch(*line);
        return &line->payload;
    }

    /** Look up without disturbing LRU state (for inspection/tests). */
    const Payload *
    peek(std::uint64_t key) const
    {
        const Line *line = lookup(key);
        return line ? &line->payload : nullptr;
    }

    /**
     * Insert (or overwrite) key with payload; evicts the set's LRU line
     * if the set is full. Returns the eviction, if one occurred.
     */
    std::optional<Eviction<Payload>>
    insert(std::uint64_t key, Payload payload)
    {
        // Single pass over the set: find the key, a free way, and the
        // LRU victim at the same time.
        std::size_t set = setOf(key);
        Line *victim = nullptr;
        for (std::size_t w = 0; w < ways_; ++w) {
            Line &cand = lines_[set * ways_ + w];
            if (cand.valid && cand.key == key) {
                cand.payload = std::move(payload);
                touch(cand);
                return std::nullopt;
            }
            if (!cand.valid) {
                if (!victim || victim->valid)
                    victim = &cand;
                continue;
            }
            if (!victim ||
                (victim->valid && cand.lastUse < victim->lastUse)) {
                victim = &cand;
            }
        }

        std::optional<Eviction<Payload>> evicted;
        if (victim->valid) {
            evicted = Eviction<Payload>{victim->key,
                                        std::move(victim->payload)};
        } else {
            ++valid_;
        }
        victim->valid = true;
        victim->key = key;
        victim->payload = std::move(payload);
        touch(*victim);
        return evicted;
    }

    /** Remove a key if present; returns its payload. */
    std::optional<Payload>
    erase(std::uint64_t key)
    {
        if (Line *line = lookup(key)) {
            line->valid = false;
            --valid_;
            return std::move(line->payload);
        }
        return std::nullopt;
    }

    /** Invoke fn(key, payload&) on every valid line. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (Line &line : lines_)
            if (line.valid)
                fn(line.key, line.payload);
    }

    /** Drop all lines. */
    void
    clear()
    {
        for (Line &line : lines_)
            line.valid = false;
        valid_ = 0;
    }

  private:
    /** Packed to 16 bytes for small payloads, so a whole 4-way set is
     *  one host cache line per lookup. lastUse is a 32-bit timestamp;
     *  on wrap the array renormalizes (order-preserving), so LRU
     *  behaviour is exact at any run length. */
    struct Line {
        std::uint64_t key = 0;
        std::uint32_t lastUse = 0;
        bool valid = false;
        Payload payload{};
    };

    std::size_t
    setOf(std::uint64_t key) const
    {
        if (setMask_ != 0 || sets_ == 1)
            return static_cast<std::size_t>(key) & setMask_;
        return static_cast<std::size_t>(key % sets_);
    }

    Line *
    lookup(std::uint64_t key)
    {
        std::size_t set = setOf(key);
        for (std::size_t w = 0; w < ways_; ++w) {
            Line &line = lines_[set * ways_ + w];
            if (line.valid && line.key == key)
                return &line;
        }
        return nullptr;
    }

    const Line *
    lookup(std::uint64_t key) const
    {
        return const_cast<CacheArray *>(this)->lookup(key);
    }

    void
    touch(Line &line)
    {
        if (useClock_ == std::numeric_limits<std::uint32_t>::max())
            renormalizeUse();
        line.lastUse = ++useClock_;
    }

    /**
     * Compress all timestamps into [1, lines] preserving their order,
     * so the 32-bit use clock can wrap without disturbing LRU. Runs
     * once every ~4 billion touches; amortized cost is nil.
     */
    void
    renormalizeUse()
    {
        std::vector<Line *> valid_lines;
        valid_lines.reserve(valid_);
        for (Line &line : lines_)
            if (line.valid)
                valid_lines.push_back(&line);
        std::sort(valid_lines.begin(), valid_lines.end(),
                  [](const Line *a, const Line *b) {
                      return a->lastUse < b->lastUse;
                  });
        std::uint32_t next = 0;
        for (Line *line : valid_lines)
            line->lastUse = ++next;
        useClock_ = next;
    }

    std::size_t sets_;
    std::size_t ways_;
    std::size_t setMask_ = 0;  ///< sets-1 when sets is a power of two
    std::vector<Line> lines_;
    std::size_t valid_ = 0;
    std::uint32_t useClock_ = 0;
};

} // namespace dsp

#endif // DSP_MEM_CACHE_ARRAY_HH
