/**
 * @file
 * MOSI coherence states, as used by all three protocols in the paper
 * (broadcast snooping, directory, and multicast snooping are all MOSI
 * write-invalidate protocols; Section 2.1 / 4.2).
 */

#ifndef DSP_MEM_MOSI_HH
#define DSP_MEM_MOSI_HH

#include <cstdint>
#include <string>

namespace dsp {

/** Stable MOSI states of a block in a node's L2 cache. */
enum class MosiState : std::uint8_t {
    Invalid,   ///< not present
    Shared,    ///< read-only copy; memory or another cache owns the block
    Owned,     ///< read-only + responsible for supplying data (dirty)
    Modified,  ///< sole writable copy (dirty)
};

/** True if the state permits reads. */
constexpr bool
canRead(MosiState s)
{
    return s != MosiState::Invalid;
}

/** True if the state permits writes without a coherence request. */
constexpr bool
canWrite(MosiState s)
{
    return s == MosiState::Modified;
}

/** True if this cache must supply data for external requests. */
constexpr bool
isOwnerState(MosiState s)
{
    return s == MosiState::Owned || s == MosiState::Modified;
}

/** Printable name. */
inline std::string
toString(MosiState s)
{
    switch (s) {
      case MosiState::Invalid:
        return "I";
      case MosiState::Shared:
        return "S";
      case MosiState::Owned:
        return "O";
      case MosiState::Modified:
        return "M";
    }
    return "?";
}

} // namespace dsp

#endif // DSP_MEM_MOSI_HH
