/**
 * @file
 * Packed set-associative cache array: one 64-bit word per line.
 *
 * The generic CacheArray keeps tags, LRU stamps, and payloads in three
 * parallel planes, which is right for wide tags and fat payloads
 * (predictor tables). The simulated L1/L2 planes are the opposite
 * extreme: the payload is 1-2 bits of permission state and the tag
 * fits easily beside a 32-bit LRU stamp. Packing
 *
 *     [ stamp:32 | tag:(32-PayloadBits) | payload:PayloadBits ]
 *
 * into a single word puts an entire 4-way set into one 32-byte,
 * line-aligned run: a probe, a hit, or a fill touches exactly one
 * host cache line where the split planes touched two or three. The
 * simulated L2s are far larger than the host's caches, so those line
 * touches -- not the walk instructions -- dominate the access+fill
 * profile; measured on the Figure-7 configs this layout is the
 * difference the probe-combining rework was after.
 *
 * The probe()/fillAt() handle carries a snapshot of the set's words.
 * Freshness is self-evident: no operation can change a set's outcome
 * (tag match, validity, LRU order) without changing some word, and if
 * the words are bit-identical to the snapshot then a fresh walk would
 * return this exact handle, so using it is correct by construction --
 * no epochs, no invalidation hooks, nothing on the fast paths. The
 * comparison reads only the line fillAt() is about to write anyway.
 *
 * LRU semantics (true LRU per set, free ways first, stamp
 * renormalization every ~4 billion touches) are bit-compatible with
 * CacheArray, so swapping a level between the two layouts changes no
 * simulation statistic.
 */

#ifndef DSP_MEM_PACKED_CACHE_ARRAY_HH
#define DSP_MEM_PACKED_CACHE_ARRAY_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "sim/logging.hh"

namespace dsp {

/** Result of an insert that displaced a line: its key and payload. */
struct PackedEviction {
    std::uint64_t key;
    std::uint32_t payload;
};

/**
 * Set-associative key -> small-payload store with per-set true LRU,
 * one 64-bit word per line.
 *
 * @tparam PayloadBits width of the payload field (1..8)
 */
template <unsigned PayloadBits>
class PackedCacheArray
{
    static_assert(PayloadBits >= 1 && PayloadBits <= 8,
                  "packed payloads are a few permission bits");

  public:
    using Entry = std::uint64_t;

    static constexpr unsigned tagBits = 32 - PayloadBits;
    static constexpr Entry payloadMask = (Entry{1} << PayloadBits) - 1;
    static constexpr Entry tagMask = (Entry{1} << tagBits) - 1;
    /** The tag field shifted into place -- the bits a way compare
     *  actually examines. */
    static constexpr Entry tagFieldMask = tagMask << PayloadBits;

    // The SWAR way-compare (matchWay4) packs two ways' masked tag
    // XORs into one 64-bit word, a 32-bit lane each; the layout
    // invariants it rides on are structural, so pin them at compile
    // time rather than trusting the prose above.
    static_assert(PayloadBits + tagBits == 32,
                  "tag+payload must fill the word's low half");
    static_assert((tagFieldMask >> 32) == 0,
                  "masked tag XOR must fit one 32-bit SWAR lane");
    static_assert((tagFieldMask & payloadMask) == 0,
                  "tag and payload fields must not overlap");

    /** See CacheArray: debug builds count tag-plane walks. */
#ifndef NDEBUG
    static constexpr bool walkCounting = true;
#else
    static constexpr bool walkCounting = false;
#endif

    /**
     * One set walk's result. `snapshot` holds the set's words at walk
     * time; fillAt() re-walks iff the live words differ (then a fresh
     * walk could choose differently). Associativity above maxWays
     * always re-walks at fill -- the L1/L2 geometries this class
     * exists for are 4-way.
     */
    struct Handle {
        static constexpr std::uint32_t wayNpos =
            std::numeric_limits<std::uint32_t>::max();
        /** 4 covers every real geometry (Table 4 caches, Table 3
         *  predictor tables); wider sets re-walk at fill. */
        static constexpr std::size_t maxWays = 4;

        std::uint64_t key = 0;
        std::uint32_t set = 0;
        std::uint32_t way = wayNpos;
        std::uint32_t victimWay = wayNpos;
        /** Deliberately uninitialized: probe() writes slots up to and
         *  including the matched way (all min(ways, maxWays) slots on
         *  a miss) and revalidation reads no more. */
        std::array<Entry, maxWays> snapshot;
        bool probed = false;

        bool hit() const { return way != wayNpos; }
        bool valid() const { return probed; }
    };

    /**
     * entries_ points into raw_, so the default copy/move would alias
     * (or dangle into) the source's storage: copies are forbidden and
     * moves re-derive the aligned view from the moved buffer.
     */
    PackedCacheArray(const PackedCacheArray &) = delete;
    PackedCacheArray &operator=(const PackedCacheArray &) = delete;

    PackedCacheArray(PackedCacheArray &&other) noexcept
        : sets_(other.sets_),
          ways_(other.ways_),
          setMask_(other.setMask_),
          log2Sets_(other.log2Sets_),
          valid_(other.valid_),
          useClock_(other.useClock_),
          renormEpochs_(other.renormEpochs_),
          walks_(other.walks_),
          rewalks_(other.rewalks_)
    {
        std::size_t offset = static_cast<std::size_t>(
            other.entries_ - other.raw_.data());
        raw_ = std::move(other.raw_);
        entries_ = raw_.data() + offset;
        other.entries_ = nullptr;
    }

    PackedCacheArray &operator=(PackedCacheArray &&) = delete;

    PackedCacheArray(std::size_t sets, std::size_t ways)
        : sets_(sets), ways_(ways)
    {
        dsp_assert(sets > 0 && ways > 0,
                   "cache geometry %zux%zu invalid", sets, ways);
        if ((sets & (sets - 1)) == 0) {
            setMask_ = sets - 1;
            while ((std::size_t{1} << log2Sets_) < sets)
                ++log2Sets_;
        }
        // 64-byte-aligned storage so a power-of-two set never
        // straddles a host cache line (4-way = 32 B = half a line).
        std::size_t lines = sets * ways;
        raw_.resize(lines + 7);
        auto addr = reinterpret_cast<std::uintptr_t>(raw_.data());
        entries_ = reinterpret_cast<Entry *>((addr + 63) & ~std::uintptr_t{63});
        std::fill(entries_, entries_ + lines, Entry{0});
    }

    std::size_t sets() const { return sets_; }
    std::size_t ways() const { return ways_; }
    std::size_t capacity() const { return sets_ * ways_; }
    std::size_t size() const { return valid_; }

    static std::uint32_t
    payloadOf(Entry entry)
    {
        return static_cast<std::uint32_t>(entry & payloadMask);
    }

    /** Replace the payload bits of a line word in place (no LRU
     *  effect beyond the find() that produced the pointer). */
    static void
    setPayload(Entry &entry, std::uint32_t payload)
    {
        entry = (entry & ~payloadMask) | payload;
    }

    /**
     * Look up a key; returns the line word (read payloadOf(), mutate
     * via setPayload()) and refreshes LRU on a hit, nullptr on a miss.
     */
    Entry *
    find(std::uint64_t key)
    {
        countWalk();
        Entry *set_base = entries_ + setOf(key) * ways_;
        std::size_t w = matchWay(set_base, tagFieldOf(key));
        if (w == ways_)
            return nullptr;
        touch(set_base[w]);
        return set_base + w;
    }

    /** Issue a host prefetch for the key's set (a 4-way set is one
     *  32-byte aligned run). Semantically a no-op. */
    void
    prefetchSet(std::uint64_t key) const
    {
        __builtin_prefetch(entries_ + setOf(key) * ways_, 1, 3);
    }

    /** Sentinel for scanLine(): no line holds the key. */
    static constexpr std::size_t lineNpos =
        std::numeric_limits<std::size_t>::max();

    /**
     * Position-of-match lookup with no LRU effect and no handle
     * machinery: the line index holding `key`, or lineNpos. This is
     * the staged pipeline's hit-path walk -- the commit stage touches
     * the returned line directly (touchLine), so the common L1 hit
     * never pays for a snapshot it will not use.
     */
    std::size_t
    scanLine(std::uint64_t key) const
    {
        countWalk();
        std::size_t set = setOf(key);
        const Entry *set_base = entries_ + set * ways_;
        std::size_t w = matchWay(set_base, tagFieldOf(key));
        return w == ways_ ? lineNpos : set * ways_ + w;
    }

    /** Look up without disturbing LRU state; 0-stamp lines are
     *  invalid. Returns the payload, or nullopt on miss. */
    std::optional<std::uint32_t>
    peek(std::uint64_t key) const
    {
        const Entry *set_base = entries_ + setOf(key) * ways_;
        std::size_t w = matchWay(set_base, tagFieldOf(key));
        if (w == ways_)
            return std::nullopt;
        return payloadOf(set_base[w]);
    }

    /**
     * Walk the key's set once, recording the match (if any), the
     * victim insert() would pick, and the set's words. No LRU effect;
     * pair with touchAt()/fillAt().
     */
    Handle
    probe(std::uint64_t key) const
    {
        countWalk();
        Handle h;
        h.key = key;
        std::size_t set = setOf(key);
        h.set = static_cast<std::uint32_t>(set);
        h.probed = true;

        const Entry *set_base = entries_ + set * ways_;
        std::size_t match = matchWay(set_base, tagFieldOf(key));
        if (match != ways_) {
            // Snapshot up to and including the match: exactly what
            // the per-way walk recorded before stopping, and all
            // revalidation reads on a hit.
            for (std::size_t w = 0; w <= match && w < Handle::maxWays;
                 ++w)
                h.snapshot[w] = set_base[w];
            h.way = static_cast<std::uint32_t>(match);
            return h;
        }
        std::uint32_t victim_use = 0;
        for (std::size_t w = 0; w < ways_; ++w) {
            Entry entry = set_base[w];
            if (w < Handle::maxWays)
                h.snapshot[w] = entry;
            std::uint32_t use = static_cast<std::uint32_t>(entry >> 32);
            // First way seeds the victim unconditionally (a stamp can
            // legitimately be UINT32_MAX right before renormalization);
            // free ways (use 0) always win thereafter.
            if (h.victimWay == Handle::wayNpos || use < victim_use) {
                h.victimWay = static_cast<std::uint32_t>(w);
                victim_use = use;
            }
        }
        return h;
    }

    /** Payload of a hit handle's line (no LRU refresh, no walk). */
    std::uint32_t
    at(const Handle &h) const
    {
        dsp_assert(h.valid() && h.hit(), "at() needs a hit handle");
        return payloadOf(entries_[h.set * ways_ + h.way]);
    }

    /**
     * LRU-refresh a hit handle's line, exactly like a find() hit.
     * Contract: call only while the handle is fresh (every call site
     * touches immediately after probing); debug builds verify.
     */
    void
    touchAt(Handle &h)
    {
        dsp_assert(h.valid() && h.hit(),
                   "touchAt() needs a hit handle");
        Entry &entry = entries_[h.set * ways_ + h.way];
        if constexpr (walkCounting) {
            dsp_assert(h.way >= Handle::maxWays ||
                           entry == h.snapshot[h.way],
                       "touchAt() on a stale handle");
        }
        touch(entry);
        if (h.way < Handle::maxWays)
            h.snapshot[h.way] = entry;  // our own touch; stay fresh
    }

    /**
     * Install (or overwrite) the handle's key exactly as
     * insert(h.key, payload) would, with zero walks when the set is
     * unchanged since the probe. The freshness proof is the snapshot:
     * if the set's words are bit-identical, a fresh probe would
     * return this very handle. Stale handles transparently re-walk.
     */
    std::optional<PackedEviction>
    fillAt(Handle &h, std::uint32_t payload)
    {
        dsp_assert(h.valid(), "fillAt() on an unprobed handle");
        revalidate(h);

        std::optional<PackedEviction> evicted;
        Entry *set_base = entries_ + h.set * ways_;
        std::size_t way;
        if (h.hit()) {
            way = h.way;
        } else {
            way = h.victimWay;
            Entry old = set_base[way];
            if ((old >> 32) != 0) {
                evicted = PackedEviction{keyAt(h.set, old),
                                         payloadOf(old)};
            } else {
                ++valid_;
            }
            h.way = h.victimWay;
        }
        Entry entry = tagFieldOf(h.key) | payload;
        touch(entry);
        set_base[way] = entry;
        if (way < Handle::maxWays)
            h.snapshot[way] = entry;  // fresh after our own mutation
        return evicted;
    }

    /**
     * Insert (or overwrite) key -> payload; evicts the set's LRU line
     * if the set is full. Fused walk (see CacheArray::insert).
     */
    std::optional<PackedEviction>
    insert(std::uint64_t key, std::uint32_t payload)
    {
        std::optional<PackedEviction> evicted;
        insertLine(key, payload, evicted);
        return evicted;
    }

    /**
     * insert() with the written line's index reported back: the
     * staged pipeline's L1 install on an L2 hit, where the caller
     * records the line in its L0 filter. Identical walk, LRU, and
     * eviction behaviour to insert().
     */
    std::size_t
    insertLine(std::uint64_t key, std::uint32_t payload,
               std::optional<PackedEviction> &evicted)
    {
        countWalk();
        std::size_t set = setOf(key);
        Entry *set_base = entries_ + set * ways_;
        std::size_t match = matchWay(set_base, tagFieldOf(key));
        std::size_t victim = ways_;
        std::uint32_t victim_use = 0;
        if (match == ways_) {
            for (std::size_t w = 0; w < ways_; ++w) {
                std::uint32_t use =
                    static_cast<std::uint32_t>(set_base[w] >> 32);
                if (victim == ways_ || use < victim_use) {
                    victim = w;
                    victim_use = use;
                }
            }
        }

        std::size_t way;
        if (match != ways_) {
            way = match;
        } else {
            way = victim;
            if (victim_use != 0) {
                evicted = PackedEviction{keyAt(set, set_base[way]),
                                         payloadOf(set_base[way])};
            } else {
                ++valid_;
            }
        }
        Entry entry = tagFieldOf(key) | payload;
        touch(entry);
        set_base[way] = entry;
        return set * ways_ + way;
    }

    /** Remove a key if present; returns its payload. */
    std::optional<std::uint32_t>
    erase(std::uint64_t key)
    {
        countWalk();
        Entry *set_base = entries_ + setOf(key) * ways_;
        std::size_t w = matchWay(set_base, tagFieldOf(key));
        if (w == ways_)
            return std::nullopt;
        std::uint32_t payload = payloadOf(set_base[w]);
        set_base[w] = 0;
        --valid_;
        return payload;
    }

    /** Drop all lines. */
    void
    clear()
    {
        std::fill(entries_, entries_ + sets_ * ways_, Entry{0});
        valid_ = 0;
    }

    /**
     * The line index (set * ways + way) of a hit handle: a direct
     * cursor to the line's word that callers may retain across
     * operations that provably leave the line in place (see
     * NodeCaches' L0 filter for the staleness discipline).
     */
    std::size_t
    lineOf(const Handle &h) const
    {
        dsp_assert(h.valid() && h.hit(), "lineOf() needs a hit handle");
        return static_cast<std::size_t>(h.set) * ways_ + h.way;
    }

    /** The raw word of a line (debug cross-checks; no LRU effect). */
    Entry wordAt(std::size_t line) const { return entries_[line]; }

    /** Does `line` currently hold `key`? (debug cross-checks; kept
     *  division-free -- it runs on every L0 hit in assert builds) */
    bool
    lineHolds(std::size_t line, std::uint64_t key) const
    {
        std::size_t base = setOf(key) * ways_;
        if (line < base || line >= base + ways_)
            return false;
        Entry entry = entries_[line];
        return (entry >> 32) != 0 &&
               ((entry ^ tagFieldOf(key)) &
                (tagMask << PayloadBits)) == 0;
    }

    /**
     * LRU-refresh a line by its index, touching exactly one word and
     * walking nothing. The caller must know the line still holds the
     * key it cached the index for (the L0 filter's invalidation hooks
     * provide that proof); debug builds verify via lineHolds().
     */
    void
    touchLine(std::size_t line)
    {
        dsp_assert(line < sets_ * ways_, "touchLine out of range");
        dsp_assert((entries_[line] >> 32) != 0,
                   "touchLine() on an invalid line");
        touch(entries_[line]);
    }

    /**
     * The LRU clock's current value: the stamp most recently written
     * into any line. A line whose stamp equals this (same renorm
     * epoch) is provably the globally most-recently-used line, so a
     * re-touch cannot change any set's LRU order.
     */
    std::uint32_t useClock() const { return useClock_; }

    /** Times the stamp plane has been renormalized. Stamps from a
     *  different epoch are incomparable with the current clock. */
    std::uint32_t renormEpochs() const { return renormEpochs_; }

    /** Tag-plane walks performed (debug builds only; 0 in release). */
    std::uint64_t walks() const { return walks_; }

    /** fillAt() revalidations that had to re-walk. */
    std::uint64_t rewalks() const { return rewalks_; }

    /**
     * Largest key this geometry can store: the compressed tag
     * (key / sets) must fit the word's 32-PayloadBits tag field, and
     * tagFieldOf() panics (always-on) beyond it. Callers sizing a
     * simulated address space check against this ceiling -- the
     * Table-4 L1/L2 geometries clear every workload's top block by
     * orders of magnitude at any supported node count (pinned by
     * test_cache_array's tag-ceiling regression).
     */
    std::uint64_t
    maxKey() const
    {
        if (setMask_ != 0 || sets_ == 1)
            return ((static_cast<std::uint64_t>(tagMask) + 1)
                    << log2Sets_) - 1;
        return tagMask * sets_ + (sets_ - 1);
    }

    /** Test hook: advance the LRU clock toward renormalization. */
    void
    debugSetUseClock(std::uint32_t value)
    {
        dsp_assert(value >= useClock_,
                   "use clock may only move forward");
        useClock_ = value;
    }

    /**
     * Checkpoint the raw line words plus the LRU clock/epoch and the
     * debug walk counters; geometry is rebuilt from parameters, so the
     * loader's array must already have this array's sets x ways.
     */
    template <typename W>
    void
    ckptSave(W &w) const
    {
        std::size_t lines = sets_ * ways_;
        w.u64(lines);
        w.bytes(entries_, lines * sizeof(Entry));
        w.u64(valid_);
        w.u32(useClock_);
        w.u32(renormEpochs_);
        w.u64(walks_);
        w.u64(rewalks_);
    }

    template <typename R>
    void
    ckptLoad(R &r)
    {
        std::size_t lines = sets_ * ways_;
        std::uint64_t saved = r.u64();
        dsp_assert(saved == lines,
                   "checkpointed cache plane has %llu lines, machine "
                   "has %zu (configuration mismatch)",
                   static_cast<unsigned long long>(saved), lines);
        r.bytes(entries_, lines * sizeof(Entry));
        valid_ = r.u64();
        useClock_ = r.u32();
        renormEpochs_ = r.u32();
        walks_ = r.u64();
        rewalks_ = r.u64();
    }

  private:
    /**
     * SWAR compare of a 4-way set against one tag probe: two packed
     * haszero tests instead of four compare-and-branch way checks.
     *
     * Per way, x = (word ^ probe) & tagFieldMask is zero exactly on a
     * tag match and fits one 32-bit lane (static_asserts above), so
     * two ways pack into one 64-bit word and HZ(v) = (v - lane ones)
     * & ~v & lane signs flags the zero lanes. The subtraction can
     * borrow into the *upper* lane only, and only when the lower lane
     * is zero -- so testing lanes low-to-high and stopping at the
     * first flag never reads a borrow artifact: the lowest flagged
     * lane is always a true zero.
     *
     * Validity needs no lane of its own: the caller guarantees
     * probe != 0, an invalid line's word is all-zero (every write is
     * either a full word with a fresh nonzero stamp or plain zero),
     * and a match forces the word's tag field equal to the nonzero
     * probe -- so any flagged lane is a live line.
     *
     * @return the matching way, or 4 if none.
     */
    static std::size_t
    matchWay4(const Entry *set_base, Entry tag_probe)
    {
        constexpr std::uint64_t laneOnes = 0x0000000100000001ull;
        constexpr std::uint64_t laneSigns = 0x8000000080000000ull;
        std::uint64_t x0 = (set_base[0] ^ tag_probe) & tagFieldMask;
        std::uint64_t x1 = (set_base[1] ^ tag_probe) & tagFieldMask;
        std::uint64_t x2 = (set_base[2] ^ tag_probe) & tagFieldMask;
        std::uint64_t x3 = (set_base[3] ^ tag_probe) & tagFieldMask;
        std::uint64_t pair01 = x0 | (x1 << 32);
        std::uint64_t pair23 = x2 | (x3 << 32);
        std::uint64_t hz01 = (pair01 - laneOnes) & ~pair01 & laneSigns;
        std::uint64_t hz23 = (pair23 - laneOnes) & ~pair23 & laneSigns;
        if (hz01 != 0)
            return (hz01 & 0x80000000ull) != 0 ? 0 : 1;
        if (hz23 != 0)
            return (hz23 & 0x80000000ull) != 0 ? 2 : 3;
        return 4;
    }

    /**
     * The way of `set_base` holding `tag_probe`, or ways() if none --
     * the one tag walk every lookup shape shares. 4-way sets (every
     * real geometry) take the SWAR compare; other widths, an all-zero
     * probe (whose lanes could falsely match an invalid line), and
     * -DDSP_NO_SWAR builds take the scalar reference walk.
     */
    std::size_t
    matchWay(const Entry *set_base, Entry tag_probe) const
    {
#ifndef DSP_NO_SWAR
        if (ways_ == 4 && tag_probe != 0)
            return matchWay4(set_base, tag_probe);
#endif
        for (std::size_t w = 0; w < ways_; ++w) {
            Entry entry = set_base[w];
            if (((entry ^ tag_probe) & tagFieldMask) == 0 &&
                (entry >> 32) != 0) {
                return w;
            }
        }
        return ways_;
    }

    std::size_t
    setOf(std::uint64_t key) const
    {
        if (setMask_ != 0 || sets_ == 1)
            return static_cast<std::size_t>(key) & setMask_;
        return static_cast<std::size_t>(key % sets_);
    }

    /** The key's compressed tag, already shifted into its field. */
    Entry
    tagFieldOf(std::uint64_t key) const
    {
        std::uint64_t quotient =
            setMask_ != 0 || sets_ == 1 ? key >> log2Sets_
                                        : key / sets_;
        dsp_assert(quotient <= tagMask,
                   "key %llu exceeds this array's %u tag bits",
                   static_cast<unsigned long long>(key), tagBits);
        return quotient << PayloadBits;
    }

    /** Reconstruct a line's key from its word and set index. */
    std::uint64_t
    keyAt(std::size_t set, Entry entry) const
    {
        std::uint64_t quotient = (entry >> PayloadBits) & tagMask;
        if (setMask_ != 0 || sets_ == 1)
            return (quotient << log2Sets_) | set;
        return quotient * sets_ + set;
    }

    void
    countWalk() const
    {
        if constexpr (walkCounting)
            ++walks_;
    }

    /**
     * Re-walk a handle whose set changed since the probe. Word-exact
     * snapshot comparison: if the words match, a fresh probe would
     * reproduce this handle, so it is fresh by construction (this
     * subsumes tag changes, validity changes, LRU touches, and even
     * stamp renormalization). A hit handle needs only its own way's
     * word -- the overwrite-in-place outcome depends on nothing else,
     * and probe() stops recording at the match -- while a miss handle
     * needs the whole vector (an erase elsewhere frees a way the fill
     * must prefer; an install may consume the victim).
     */
    void
    revalidate(Handle &h) const
    {
        bool fresh;
        const Entry *set_base = entries_ + h.set * ways_;
        if (h.hit()) {
            fresh = h.way < Handle::maxWays &&
                    set_base[h.way] == h.snapshot[h.way];
        } else if (ways_ <= Handle::maxWays) {
            fresh = true;
            for (std::size_t w = 0; w < ways_; ++w)
                fresh &= set_base[w] == h.snapshot[w];
        } else {
            fresh = false;  // wide sets always re-walk
        }
        if (!fresh) {
            ++rewalks_;
            h = probe(h.key);
        }
    }

    /** Write a fresh LRU stamp into a line word. */
    void
    touch(Entry &entry)
    {
        if (useClock_ == std::numeric_limits<std::uint32_t>::max())
            renormalizeUse();
        entry = (entry & 0xffffffffull) |
                (static_cast<Entry>(++useClock_) << 32);
    }

    /**
     * Compress all stamps into [1, lines] preserving order so the
     * 32-bit clock can wrap without disturbing LRU. Runs once every
     * ~4 billion touches.
     */
    void
    renormalizeUse()
    {
        std::vector<std::size_t> valid_lines;
        valid_lines.reserve(valid_);
        std::size_t lines = sets_ * ways_;
        for (std::size_t line = 0; line < lines; ++line)
            if ((entries_[line] >> 32) != 0)
                valid_lines.push_back(line);
        std::sort(valid_lines.begin(), valid_lines.end(),
                  [this](std::size_t a, std::size_t b) {
                      return (entries_[a] >> 32) < (entries_[b] >> 32);
                  });
        std::uint32_t next = 0;
        for (std::size_t line : valid_lines) {
            entries_[line] = (entries_[line] & 0xffffffffull) |
                             (static_cast<Entry>(++next) << 32);
        }
        useClock_ = next;
        // The compressed clock can coincide with a stale recorded
        // stamp; the epoch makes cross-renormalization comparisons
        // fail safe instead of falsely proving MRU-ness.
        ++renormEpochs_;
    }

    std::size_t sets_;
    std::size_t ways_;
    std::size_t setMask_ = 0;
    std::size_t log2Sets_ = 0;

    /** Backing store; entries_ is its 64-byte-aligned view. */
    std::vector<Entry> raw_;
    Entry *entries_ = nullptr;

    std::size_t valid_ = 0;
    std::uint32_t useClock_ = 0;
    std::uint32_t renormEpochs_ = 0;

    mutable std::uint64_t walks_ = 0;    ///< debug builds only
    mutable std::uint64_t rewalks_ = 0;  ///< stale-handle re-walks
};

} // namespace dsp

#endif // DSP_MEM_PACKED_CACHE_ARRAY_HH
