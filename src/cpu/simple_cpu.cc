#include "cpu/simple_cpu.hh"

#include "sim/logging.hh"

namespace dsp {

SimpleCpu::SimpleCpu(DomainPort queue, Workload &workload, NodeId node,
                     MemoryPort &port, const CpuParams &params)
    : Cpu(queue, workload, node, port, params)
{
    instrTick_ =
        nsToTicks(1.0 / (params.clock_ghz * params.base_ipc));
    l1Tick_ = nsToTicks(params.l1_ns);
    l2Tick_ = nsToTicks(params.l2_ns);
    quantum_ = nsToTicks(params.quantum_ns);
}

SimpleCpu::~SimpleCpu()
{
    if (resumeEvent_.scheduled())
        queue_.deschedule(resumeEvent_);
}

void
SimpleCpu::runFor(std::uint64_t instructions,
                  std::function<void()> on_done)
{
    dsp_assert(!onDone_, "cpu %u already has a pending target", node_);
    target_ = retired_ + instructions;
    onDone_ = std::move(on_done);
    if (!blocked_)
        execute(std::max(queue_.now(), localTime_));
}

void
SimpleCpu::onMissComplete(Tick tick)
{
    blocked_ = false;
    execute(tick);
}

void
SimpleCpu::execute(Tick local)
{
    Tick horizon = queue_.now() + quantum_;

    while (true) {
        localTime_ = local;
        if (retired_ >= target_) {
            reachTarget(local);
            return;
        }
        if (local > horizon) {
            // Yield so other nodes' events interleave; resume at the
            // accumulated local time.
            resumeEvent_.at = local;
            queue_.schedule(resumeEvent_, local, EventPriority::Cpu);
            return;
        }

        MemRef ref = workload_.next(node_);
        // Non-memory work plus the memory instruction itself issue at
        // the base rate; the L1 hit latency is already covered by it.
        local += (ref.work + 1) * instrTick_;
        retired_ += ref.work + 1;

        const MemRef *ahead = workload_.peek(node_);
        AccessReply reply =
            port_.access(ref.addr, ref.pc, ref.write, local, missDone_,
                         ahead != nullptr ? ahead->addr : 0);

        switch (reply) {
          case AccessReply::L1Hit:
            break;
          case AccessReply::L2Hit:
            local += l2Tick_;
            break;
          case AccessReply::Miss:
            // Blocking model: stall until the miss returns.
            blocked_ = true;
            return;
        }
    }
}

void
SimpleCpu::ckptSave(ckpt::Writer &w) const
{
    Cpu::ckptSave(w);
    w.u64(localTime_);
    w.b(blocked_);
}

void
SimpleCpu::ckptLoad(ckpt::Reader &r)
{
    Cpu::ckptLoad(r);
    localTime_ = r.u64();
    blocked_ = r.b();
}

MemoryPort::Completion
SimpleCpu::ckptCompletion(std::uint64_t /* token */)
{
    return missDone_;
}

Event &
SimpleCpu::ckptRestoreEvent(ckpt::EventTag tag, ckpt::Reader &r)
{
    dsp_assert(tag == ckpt::EventTag::CpuResume,
               "simple cpu %u asked to restore event tag %u", node_,
               static_cast<unsigned>(tag));
    resumeEvent_.at = r.u64();
    return resumeEvent_;
}

} // namespace dsp
