/**
 * @file
 * Dynamically-scheduled processor model (Section 5.2): a ROB-window
 * interval model. Instructions are fetched 4-wide into a 64-entry
 * window, independent misses inside the window overlap (memory-level
 * parallelism), and retirement is in order at 4 instructions per
 * cycle. This captures the first-order effects TFsim models -- miss
 * overlap and speculative request issue -- without per-cycle pipeline
 * simulation.
 */

#ifndef DSP_CPU_DETAILED_CPU_HH
#define DSP_CPU_DETAILED_CPU_HH

#include <vector>

#include "cpu/cpu.hh"

namespace dsp {

class DetailedCpu : public Cpu
{
  public:
    DetailedCpu(DomainPort queue, Workload &workload, NodeId node,
                MemoryPort &port,
                const CpuParams &params = CpuParams{});
    ~DetailedCpu() override;

    void runFor(std::uint64_t instructions,
                std::function<void()> on_done) override;

    /** Peak outstanding misses observed (for MLP reporting). */
    unsigned peakOutstanding() const { return peakOutstanding_; }

    void ckptSave(ckpt::Writer &w) const override;
    void ckptLoad(ckpt::Reader &r) override;
    MemoryPort::Completion ckptCompletion(std::uint64_t token) override;
    Event &ckptRestoreEvent(ckpt::EventTag tag,
                            ckpt::Reader &r) override;

  private:
    struct WindowRef {
        std::uint64_t instrEnd;  ///< cumulative instr number (inclusive)
        Tick fetch = 0;
        Tick complete = 0;
        bool done = false;
        bool isMiss = false;
    };

    /**
     * Fetch continuation. At most one fetch wakeup is outstanding
     * (scheduleFetch() is a no-op while it is pending), so a member
     * event keeps the fetch path off the event pools entirely.
     */
    struct FetchEvent final : Event {
        explicit FetchEvent(DetailedCpu &c) : cpu(c) {}
        void process() override { cpu.fetchLoop(); }

        void
        ckptSave(ckpt::Writer &w) const override
        {
            w.u8(static_cast<std::uint8_t>(ckpt::EventTag::CpuFetch));
            w.u16(static_cast<std::uint16_t>(cpu.node()));
        }

        DetailedCpu &cpu;
    };

    void fetchLoop();
    void scheduleFetch(Tick when);
    void retireSweep();
    void onAccessComplete(std::uint64_t seq, Tick tick);

    /** Per-access completion: the window sequence number rides in the
     *  POD Completion's token, so issuing an access builds no closure
     *  and a miss's MSHR copy is a trivial 24-byte struct. */
    static void
    accessDoneTrampoline(void *ctx, std::uint64_t seq, Tick tick)
    {
        static_cast<DetailedCpu *>(ctx)->onAccessComplete(seq, tick);
    }

    /** Approximate retire tick of an already-retired instruction. */
    Tick backProject(std::uint64_t instr_no) const;

    Tick fetchTick_;   ///< per-instruction fetch time (width-wide)
    Tick retireTick_;  ///< per-instruction retire time
    Tick l1Tick_;
    Tick l2Tick_;
    Tick quantum_;

    /**
     * The in-flight reference window as a power-of-two ring (replaced
     * a std::deque: the replay path indexes it on every completion,
     * which cost the deque's two-level block lookup, and fetch paid
     * its block bookkeeping -- the profiled top mechanical cost of
     * the ROB model). Capacity covers the ROB: every reference
     * retires at least one instruction, so at most `rob` + 1 refs are
     * ever in flight.
     */
    std::vector<WindowRef> window_;
    std::size_t windowMask_ = 0;
    std::size_t windowHead_ = 0;   ///< ring slot of the oldest ref
    std::size_t windowCount_ = 0;
    std::uint64_t windowBaseSeq_ = 0;  ///< seq of the oldest ref
    std::uint64_t nextSeq_ = 0;

    WindowRef &
    windowAt(std::uint64_t seq)
    {
        return window_[(windowHead_ + (seq - windowBaseSeq_)) &
                       windowMask_];
    }

    std::uint64_t fetchedInstrs_ = 0;
    Tick fetchTime_ = 0;
    Tick lastRetire_ = 0;
    std::uint64_t lastRetireInstr_ = 0;

    unsigned outstanding_ = 0;
    unsigned peakOutstanding_ = 0;

    bool stalledOnMshr_ = false;
    std::uint64_t stalledOnRetire_ = 0;  ///< instr that must retire

    bool havePending_ = false;
    MemRef pending_{};
    FetchEvent fetchEvent_{*this};
};

} // namespace dsp

#endif // DSP_CPU_DETAILED_CPU_HH
