/**
 * @file
 * Dynamically-scheduled processor model (Section 5.2): a ROB-window
 * interval model. Instructions are fetched 4-wide into a 64-entry
 * window, independent misses inside the window overlap (memory-level
 * parallelism), and retirement is in order at 4 instructions per
 * cycle. This captures the first-order effects TFsim models -- miss
 * overlap and speculative request issue -- without per-cycle pipeline
 * simulation.
 */

#ifndef DSP_CPU_DETAILED_CPU_HH
#define DSP_CPU_DETAILED_CPU_HH

#include <deque>

#include "cpu/cpu.hh"

namespace dsp {

class DetailedCpu : public Cpu
{
  public:
    DetailedCpu(DomainPort queue, Workload &workload, NodeId node,
                MemoryPort &port,
                const CpuParams &params = CpuParams{});
    ~DetailedCpu() override;

    void runFor(std::uint64_t instructions,
                std::function<void()> on_done) override;

    /** Peak outstanding misses observed (for MLP reporting). */
    unsigned peakOutstanding() const { return peakOutstanding_; }

  private:
    struct WindowRef {
        std::uint64_t instrEnd;  ///< cumulative instr number (inclusive)
        Tick fetch = 0;
        Tick complete = 0;
        bool done = false;
        bool isMiss = false;
    };

    /**
     * Fetch continuation. At most one fetch wakeup is outstanding
     * (scheduleFetch() is a no-op while it is pending), so a member
     * event keeps the fetch path off the event pools entirely.
     */
    struct FetchEvent final : Event {
        explicit FetchEvent(DetailedCpu &c) : cpu(c) {}
        void process() override { cpu.fetchLoop(); }
        DetailedCpu &cpu;
    };

    void fetchLoop();
    void scheduleFetch(Tick when);
    void retireSweep();
    void onAccessComplete(std::uint64_t seq, Tick tick);

    /** Approximate retire tick of an already-retired instruction. */
    Tick backProject(std::uint64_t instr_no) const;

    Tick fetchTick_;   ///< per-instruction fetch time (width-wide)
    Tick retireTick_;  ///< per-instruction retire time
    Tick l1Tick_;
    Tick l2Tick_;
    Tick quantum_;

    std::deque<WindowRef> window_;
    std::uint64_t windowBaseSeq_ = 0;  ///< seq of window_.front()
    std::uint64_t nextSeq_ = 0;

    std::uint64_t fetchedInstrs_ = 0;
    Tick fetchTime_ = 0;
    Tick lastRetire_ = 0;
    std::uint64_t lastRetireInstr_ = 0;

    unsigned outstanding_ = 0;
    unsigned peakOutstanding_ = 0;

    bool stalledOnMshr_ = false;
    std::uint64_t stalledOnRetire_ = 0;  ///< instr that must retire

    bool havePending_ = false;
    MemRef pending_{};
    FetchEvent fetchEvent_{*this};
};

} // namespace dsp

#endif // DSP_CPU_DETAILED_CPU_HH
