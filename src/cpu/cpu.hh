/**
 * @file
 * Processor model interface for the execution-driven simulator
 * (Section 5.2). Two models are provided, matching the paper:
 *
 *  - SimpleCpu: in-order, blocking, one outstanding miss, 2 IPC at
 *    2 GHz ("four billion instructions per second if the L1 caches
 *    were perfect");
 *  - DetailedCpu: dynamically-scheduled window model (64-entry ROB,
 *    4-wide), overlapping independent misses (memory-level
 *    parallelism), approximating TFsim's aggressive sequential
 *    consistency.
 */

#ifndef DSP_CPU_CPU_HH
#define DSP_CPU_CPU_HH

#include <cstdint>
#include <functional>

#include "checkpoint/checkpoint.hh"
#include "mem/types.hh"
#include "sim/sharded_kernel.hh"
#include "workload/workload.hh"

namespace dsp {

/** What the cache hierarchy answered for one access. */
enum class AccessReply : std::uint8_t {
    L1Hit,
    L2Hit,
    Miss,  ///< completion callback will fire later
};

/**
 * The CPU-facing port of a node's cache controller.
 */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /**
     * Miss-completion callback: invoked with the completion tick when
     * the coherence round-trip finishes. Deliberately a POD (function
     * pointer + context + a caller token) rather than std::function:
     * the CPU models issue one of these per access, and the detailed
     * CPU needs a distinct token (its window sequence number) per
     * outstanding miss -- with type erasure that meant constructing a
     * std::function on every single access. A POD costs nothing to
     * build and is trivially copyable into MSHR waiter lists.
     */
    struct Completion {
        using Fn = void (*)(void *ctx, std::uint64_t token, Tick tick);

        Fn fn = nullptr;
        void *ctx = nullptr;
        std::uint64_t token = 0;

        void
        operator()(Tick tick) const
        {
            fn(ctx, token, tick);
        }

        explicit operator bool() const { return fn != nullptr; }
    };

    /**
     * Issue one access. `when` (>= now) is the tick at which the
     * access logically executes; on a miss the coherence request
     * enters the network at that tick. The completion is only copied
     * on a miss.
     *
     * `next_hint`, when non-zero, is the address the caller expects
     * to access next (CPU models read it from the workload's refill
     * buffer). A timing no-op: implementations may only use it to
     * warm host caches for the upcoming access -- the simulated L2
     * planes dwarf the host's caches, so the next set's line touch is
     * the dominant irreducible cost and one access of lookahead hides
     * most of it.
     */
    virtual AccessReply
    access(Addr addr, Addr pc, bool is_write, Tick when,
           const Completion &on_complete, Addr next_hint = 0) = 0;
};

/** CPU timing parameters (Table 4). */
struct CpuParams {
    double clock_ghz = 2.0;
    double base_ipc = 2.0;   ///< simple model: sustained non-miss IPC
    double l1_ns = 1.0;      ///< L1 hit (2 cycles)
    double l2_ns = 12.0;     ///< L2 hit
    unsigned rob = 64;       ///< detailed model window
    unsigned width = 4;      ///< detailed model fetch/retire width
    unsigned mshrs = 16;     ///< detailed model outstanding misses
    double quantum_ns = 500; ///< hit-batching quantum
};

/**
 * Abstract processor: pulls its reference stream from the workload
 * and issues accesses through the memory port.
 */
class Cpu
{
  public:
    Cpu(DomainPort queue, Workload &workload, NodeId node,
        MemoryPort &port, const CpuParams &params)
        : queue_(queue),
          workload_(workload),
          node_(node),
          port_(port),
          params_(params)
    {
    }

    virtual ~Cpu() = default;

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /**
     * Run until `instructions` more have been retired, then invoke
     * on_done (once) and stop issuing. Can be called again afterwards
     * to continue (warmup then measurement).
     */
    virtual void
    runFor(std::uint64_t instructions, std::function<void()> on_done)
        = 0;

    /** Instructions retired since construction. */
    std::uint64_t retired() const { return retired_; }

    /** True once the current phase target has been reached (the
     *  phase-done callback fired); a restore only re-arms CPUs for
     *  which this is false. */
    bool targetReached() const { return retired_ >= target_; }

    /** Tick at which the last target was reached. */
    Tick finishTick() const { return finishTick_; }

    NodeId node() const { return node_; }

    /**
     * Checkpoint architectural + timing state. Whether a member
     * continuation event is scheduled (and when) is captured by the
     * kernel's pending-event enumeration, not here; `onDone_` is
     * re-supplied by the orchestrator via ckptRearm().
     */
    virtual void
    ckptSave(ckpt::Writer &w) const
    {
        w.u64(retired_);
        w.u64(target_);
        w.u64(finishTick_);
    }

    virtual void
    ckptLoad(ckpt::Reader &r)
    {
        retired_ = r.u64();
        target_ = r.u64();
        finishTick_ = r.u64();
    }

    /**
     * Rebuild the POD completion this CPU hands to the memory port
     * from the token an MSHR-resident copy carried at save time.
     */
    virtual MemoryPort::Completion ckptCompletion(std::uint64_t token)
        = 0;

    /**
     * Restore one of this CPU's member continuation events: consume
     * the event's payload from `r` and return the member event for
     * the kernel to re-schedule.
     */
    virtual Event &ckptRestoreEvent(ckpt::EventTag tag,
                                    ckpt::Reader &r) = 0;

    /**
     * Re-arm the end-of-phase callback after a restore. runFor() was
     * called in the original run (its counters were checkpointed);
     * the restored run re-supplies only the callback.
     */
    void
    ckptRearm(std::function<void()> on_done)
    {
        onDone_ = std::move(on_done);
    }

  protected:
    DomainPort queue_;
    Workload &workload_;
    NodeId node_;
    MemoryPort &port_;
    CpuParams params_;

    std::uint64_t retired_ = 0;
    std::uint64_t target_ = 0;
    Tick finishTick_ = 0;
    std::function<void()> onDone_;

    void
    reachTarget(Tick tick)
    {
        finishTick_ = tick;
        if (onDone_) {
            auto done = std::move(onDone_);
            onDone_ = nullptr;
            done();
        }
    }
};

} // namespace dsp

#endif // DSP_CPU_CPU_HH
