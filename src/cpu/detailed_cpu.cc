#include "cpu/detailed_cpu.hh"

#include "sim/logging.hh"

namespace dsp {

DetailedCpu::DetailedCpu(DomainPort queue, Workload &workload,
                         NodeId node, MemoryPort &port,
                         const CpuParams &params)
    : Cpu(queue, workload, node, port, params)
{
    double per_instr_ns = 1.0 / (params.clock_ghz * params.width);
    fetchTick_ = nsToTicks(per_instr_ns);
    retireTick_ = nsToTicks(per_instr_ns);
    if (fetchTick_ == 0)
        fetchTick_ = 1;
    if (retireTick_ == 0)
        retireTick_ = 1;
    l1Tick_ = nsToTicks(params.l1_ns);
    l2Tick_ = nsToTicks(params.l2_ns);
    quantum_ = nsToTicks(params.quantum_ns);

    // Ring capacity: >= rob + 2 in-flight refs (see window_'s doc).
    std::size_t cap = 1;
    while (cap < static_cast<std::size_t>(params.rob) + 2)
        cap <<= 1;
    window_.resize(cap);
    windowMask_ = cap - 1;
}

DetailedCpu::~DetailedCpu()
{
    if (fetchEvent_.scheduled())
        queue_.deschedule(fetchEvent_);
}

void
DetailedCpu::runFor(std::uint64_t instructions,
                    std::function<void()> on_done)
{
    dsp_assert(!onDone_, "cpu %u already has a pending target", node_);
    target_ = retired_ + instructions;
    onDone_ = std::move(on_done);
    if (fetchTime_ < queue_.now())
        fetchTime_ = queue_.now();
    if (!fetchEvent_.scheduled() && !stalledOnMshr_ &&
        stalledOnRetire_ == 0) {
        fetchLoop();
    }
}

Tick
DetailedCpu::backProject(std::uint64_t instr_no) const
{
    std::uint64_t behind = lastRetireInstr_ - instr_no;
    Tick delta = behind * retireTick_;
    return lastRetire_ > delta ? lastRetire_ - delta : 0;
}

void
DetailedCpu::scheduleFetch(Tick when)
{
    if (fetchEvent_.scheduled())
        return;
    if (when < queue_.now())
        when = queue_.now();
    queue_.schedule(fetchEvent_, when, EventPriority::Cpu);
}

void
DetailedCpu::fetchLoop()
{
    Tick horizon = queue_.now() + quantum_;

    while (fetchedInstrs_ < target_) {
        if (outstanding_ >= params_.mshrs) {
            stalledOnMshr_ = true;  // completion wakes us
            return;
        }
        if (!havePending_) {
            pending_ = workload_.next(node_);
            havePending_ = true;
        }
        std::uint64_t instrs = pending_.work + 1;
        std::uint64_t end = fetchedInstrs_ + instrs;

        // ROB constraint: instruction (end - rob) must have retired
        // before this reference can occupy the window. A reference
        // preceded by more work than the window holds can require at
        // most a full drain (everything fetched so far) -- without
        // the clamp it would wait for an instruction that can never
        // exist and wedge the core.
        if (end > params_.rob) {
            std::uint64_t must_retire = end - params_.rob;
            if (must_retire > fetchedInstrs_)
                must_retire = fetchedInstrs_;
            if (must_retire > lastRetireInstr_) {
                stalledOnRetire_ = must_retire;  // retire wakes us
                return;
            }
            Tick rob_ready = backProject(must_retire);
            if (rob_ready > fetchTime_)
                fetchTime_ = rob_ready;
        }

        Tick fetch = fetchTime_ + instrs * fetchTick_;
        if (fetch > horizon) {
            scheduleFetch(fetch);
            return;
        }

        fetchTime_ = fetch;
        fetchedInstrs_ = end;
        havePending_ = false;

        std::uint64_t seq = nextSeq_++;
        dsp_assert(windowCount_ <= windowMask_, "window ring full");
        window_[(windowHead_ + windowCount_) & windowMask_] =
            WindowRef{end, fetch, 0, false};
        ++windowCount_;

        const MemRef *ahead = workload_.peek(node_);
        AccessReply reply = port_.access(
            pending_.addr, pending_.pc, pending_.write, fetch,
            MemoryPort::Completion{&accessDoneTrampoline, this, seq},
            ahead != nullptr ? ahead->addr : 0);

        switch (reply) {
          case AccessReply::L1Hit:
            onAccessComplete(seq, fetch + l1Tick_);
            break;
          case AccessReply::L2Hit:
            onAccessComplete(seq, fetch + l2Tick_);
            break;
          case AccessReply::Miss: {
            windowAt(seq).isMiss = true;
            ++outstanding_;
            if (outstanding_ > peakOutstanding_)
                peakOutstanding_ = outstanding_;
            break;
          }
        }
    }
}

void
DetailedCpu::onAccessComplete(std::uint64_t seq, Tick tick)
{
    dsp_assert(seq >= windowBaseSeq_, "completion for retired ref");
    dsp_assert(seq - windowBaseSeq_ < windowCount_,
               "completion out of window");

    WindowRef &ref = windowAt(seq);
    if (!ref.done) {
        ref.done = true;
        ref.complete = tick;
        if (ref.isMiss) {
            dsp_assert(outstanding_ > 0, "mshr underflow");
            --outstanding_;
        }
    }
    retireSweep();

    if (stalledOnMshr_ && outstanding_ < params_.mshrs) {
        stalledOnMshr_ = false;
        scheduleFetch(queue_.now());
    }
}

void
DetailedCpu::retireSweep()
{
    while (windowCount_ != 0 && window_[windowHead_].done) {
        WindowRef &head = window_[windowHead_];
        Tick drain =
            (head.instrEnd - lastRetireInstr_) * retireTick_;
        Tick retire = std::max(head.complete, lastRetire_ + drain);
        lastRetire_ = retire;
        lastRetireInstr_ = head.instrEnd;
        retired_ = head.instrEnd;
        windowHead_ = (windowHead_ + 1) & windowMask_;
        --windowCount_;
        ++windowBaseSeq_;

        if (retired_ >= target_ && onDone_)
            reachTarget(retire);
    }

    if (stalledOnRetire_ != 0 &&
        lastRetireInstr_ >= stalledOnRetire_) {
        stalledOnRetire_ = 0;
        scheduleFetch(queue_.now());
    }
}

void
DetailedCpu::ckptSave(ckpt::Writer &w) const
{
    Cpu::ckptSave(w);
    // The whole ring is saved verbatim (stale slots included) so the
    // restored ring is bit-identical, not merely behaviourally equal.
    w.podVec(window_);
    w.u64(windowHead_);
    w.u64(windowCount_);
    w.u64(windowBaseSeq_);
    w.u64(nextSeq_);
    w.u64(fetchedInstrs_);
    w.u64(fetchTime_);
    w.u64(lastRetire_);
    w.u64(lastRetireInstr_);
    w.u32(outstanding_);
    w.u32(peakOutstanding_);
    w.b(stalledOnMshr_);
    w.u64(stalledOnRetire_);
    w.b(havePending_);
    w.pod(pending_);
}

void
DetailedCpu::ckptLoad(ckpt::Reader &r)
{
    Cpu::ckptLoad(r);
    auto ring = r.podVec<WindowRef>();
    dsp_assert(ring.size() == window_.size(),
               "cpu %u window ring size mismatch (rob changed?)",
               node_);
    window_ = std::move(ring);
    windowHead_ = static_cast<std::size_t>(r.u64());
    windowCount_ = static_cast<std::size_t>(r.u64());
    windowBaseSeq_ = r.u64();
    nextSeq_ = r.u64();
    fetchedInstrs_ = r.u64();
    fetchTime_ = r.u64();
    lastRetire_ = r.u64();
    lastRetireInstr_ = r.u64();
    outstanding_ = r.u32();
    peakOutstanding_ = r.u32();
    stalledOnMshr_ = r.b();
    stalledOnRetire_ = r.u64();
    havePending_ = r.b();
    pending_ = r.pod<MemRef>();
}

MemoryPort::Completion
DetailedCpu::ckptCompletion(std::uint64_t token)
{
    return MemoryPort::Completion{&accessDoneTrampoline, this, token};
}

Event &
DetailedCpu::ckptRestoreEvent(ckpt::EventTag tag, ckpt::Reader &)
{
    dsp_assert(tag == ckpt::EventTag::CpuFetch,
               "detailed cpu %u asked to restore event tag %u", node_,
               static_cast<unsigned>(tag));
    return fetchEvent_;
}

} // namespace dsp
