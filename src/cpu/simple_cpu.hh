/**
 * @file
 * The simple in-order blocking processor model (Section 5.2): one
 * outstanding miss, 2 sustained IPC at 2 GHz between misses (4 BIPS
 * with perfect L1s). Used for the Figure 7 runs, where its 10x
 * simulation speed lets all workloads run to completion.
 */

#ifndef DSP_CPU_SIMPLE_CPU_HH
#define DSP_CPU_SIMPLE_CPU_HH

#include "cpu/cpu.hh"

namespace dsp {

class SimpleCpu : public Cpu
{
  public:
    SimpleCpu(DomainPort queue, Workload &workload, NodeId node,
              MemoryPort &port, const CpuParams &params = CpuParams{});
    ~SimpleCpu() override;

    void runFor(std::uint64_t instructions,
                std::function<void()> on_done) override;

    void ckptSave(ckpt::Writer &w) const override;
    void ckptLoad(ckpt::Reader &r) override;
    MemoryPort::Completion ckptCompletion(std::uint64_t token) override;
    Event &ckptRestoreEvent(ckpt::EventTag tag,
                            ckpt::Reader &r) override;

  private:
    /**
     * Quantum-yield continuation. A blocking CPU has at most one
     * resume pending, so a single member event suffices and the resume
     * path never touches the event pools.
     */
    struct ResumeEvent final : Event {
        explicit ResumeEvent(SimpleCpu &c) : cpu(c) {}
        void process() override { cpu.execute(at); }

        void
        ckptSave(ckpt::Writer &w) const override
        {
            w.u8(static_cast<std::uint8_t>(ckpt::EventTag::CpuResume));
            w.u16(static_cast<std::uint16_t>(cpu.node()));
            w.u64(at);
        }

        SimpleCpu &cpu;
        Tick at = 0;
    };

    /**
     * Execute references inline starting at `local` (>= now) until a
     * miss blocks, the hit-batching quantum expires, or the target is
     * reached.
     */
    void execute(Tick local);

    /** Resume after a miss completes at `tick`. */
    void onMissComplete(Tick tick);

    static void
    missDoneTrampoline(void *ctx, std::uint64_t /* token */, Tick tick)
    {
        static_cast<SimpleCpu *>(ctx)->onMissComplete(tick);
    }

    Tick instrTick_;  ///< ticks per instruction at base IPC
    Tick l1Tick_;
    Tick l2Tick_;
    Tick quantum_;
    Tick localTime_ = 0;  ///< CPU-local clock (can run ahead of now)
    bool blocked_ = false;
    ResumeEvent resumeEvent_{*this};

    /** Reused across all accesses; never rebuilt on the hot path. */
    MemoryPort::Completion missDone_{&missDoneTrampoline, this, 0};
};

} // namespace dsp

#endif // DSP_CPU_SIMPLE_CPU_HH
