/**
 * @file
 * The simple in-order blocking processor model (Section 5.2): one
 * outstanding miss, 2 sustained IPC at 2 GHz between misses (4 BIPS
 * with perfect L1s). Used for the Figure 7 runs, where its 10x
 * simulation speed lets all workloads run to completion.
 */

#ifndef DSP_CPU_SIMPLE_CPU_HH
#define DSP_CPU_SIMPLE_CPU_HH

#include "cpu/cpu.hh"

namespace dsp {

class SimpleCpu : public Cpu
{
  public:
    SimpleCpu(EventQueue &queue, Workload &workload, NodeId node,
              MemoryPort &port, const CpuParams &params = CpuParams{});

    void runFor(std::uint64_t instructions,
                std::function<void()> on_done) override;

  private:
    /**
     * Execute references inline starting at `local` (>= now) until a
     * miss blocks, the hit-batching quantum expires, or the target is
     * reached.
     */
    void execute(Tick local);

    /** Resume after a miss completes at `tick`. */
    void onMissComplete(Tick tick);

    Tick instrTick_;  ///< ticks per instruction at base IPC
    Tick l1Tick_;
    Tick l2Tick_;
    Tick quantum_;
    Tick localTime_ = 0;  ///< CPU-local clock (can run ahead of now)
    bool blocked_ = false;
};

} // namespace dsp

#endif // DSP_CPU_SIMPLE_CPU_HH
