/**
 * @file
 * Execution-driven timing simulation of the full 16-node system
 * (Section 5): CPUs, two-level caches with MSHRs, destination-set
 * predictors, a totally-ordered crossbar, directory/memory
 * controllers, and the three coherence protocols.
 *
 * Functional/timing split: coherence transactions are applied to the
 * global SharingTracker at the crossbar's ordering point (the
 * serialization point all three protocols rely on); message timing,
 * link contention, and data-availability chaining are layered on top.
 * Multicast sufficiency is also evaluated at the ordering point, so
 * the window-of-vulnerability race between a retry's issue and its
 * ordering (Section 4.1) arises naturally and the third attempt falls
 * back to broadcast.
 */

#ifndef DSP_SYSTEM_SYSTEM_HH
#define DSP_SYSTEM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "coherence/latency.hh"
#include "coherence/sharing_tracker.hh"
#include "core/factory.hh"
#include "cpu/cpu.hh"
#include "interconnect/crossbar.hh"
#include "mem/node_caches.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "workload/workload.hh"

namespace dsp {

class System;

/** Which coherence protocol the system runs. */
enum class ProtocolKind : std::uint8_t {
    Snooping,   ///< broadcast snooping (destination set = all)
    Directory,  ///< GS320-style directory (destination set = home)
    Multicast,  ///< multicast snooping with destination-set prediction
};

/** Printable name. */
std::string toString(ProtocolKind kind);

/** Which processor model drives the system. */
enum class CpuModel : std::uint8_t {
    Simple,    ///< in-order blocking (Figure 7)
    Detailed,  ///< ROB-window out-of-order (Figure 8)
};

/** Full system configuration (Table 4 defaults). */
struct SystemParams {
    NodeId nodes = 16;
    ProtocolKind protocol = ProtocolKind::Multicast;
    PredictorPolicy policy = PredictorPolicy::OwnerGroup;
    PredictorConfig predictor;  ///< numNodes is overridden with nodes
    CacheParams caches;
    LatencyParams latency;
    CrossbarParams crossbar;
    CpuParams cpu;
    CpuModel cpuModel = CpuModel::Simple;

    /**
     * Functional (trace-style) warmup misses before any timing: fills
     * caches and trains predictors at trace-replay speed, exactly as
     * the paper warms its timing runs from traces (Section 5.2).
     */
    std::uint64_t functionalWarmupMisses = 0;

    std::uint64_t warmupInstrPerCpu = 1000000;
    std::uint64_t measureInstrPerCpu = 2000000;
};

/** Results of one execution-driven run (measured phase only). */
struct SystemStats {
    Tick runtimeTicks = 0;       ///< first measure start to last finish
    std::uint64_t instructions = 0;
    std::uint64_t misses = 0;
    std::uint64_t indirections = 0;  ///< retried / 3-hop misses
    std::uint64_t retries = 0;
    /** Misses retried more than once: the retry itself lost the
     *  window-of-vulnerability race (Section 4.1). */
    std::uint64_t doubleRetries = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t cacheToCache = 0;
    std::uint64_t requestMessages = 0;  ///< requests+retries+fwd+inval
    std::uint64_t writebacks = 0;       ///< dirty evictions to memory
    std::uint64_t trafficBytes = 0;
    /** Kernel events executed during the measured phase (simulator
     *  throughput is events/sec over this count). */
    std::uint64_t eventsExecuted = 0;
    /** Host wall-clock seconds spent in the measured phase. */
    double wallSeconds = 0.0;
    double avgMissLatencyNs = 0.0;

    double
    trafficPerMiss() const
    {
        return misses ? static_cast<double>(trafficBytes) /
                            static_cast<double>(misses)
                      : 0.0;
    }

    double
    runtimeMs() const
    {
        return ticksToNs(runtimeTicks) / 1e6;
    }
};

/** One in-flight coherence transaction. */
struct CoherenceTxn {
    NodeId requester = 0;
    Addr addr = 0;
    Addr pc = 0;
    RequestType type = RequestType::GetShared;
    Tick issued = 0;
    std::uint8_t attempts = 0;       ///< orderings so far
    bool resolved = false;
    std::uint8_t resolvedAttempt = 0;
    NodeId responder = invalidNode;
    DestinationSet required;
    MosiState granted = MosiState::Invalid;
    std::uint32_t retries = 0;
};

/**
 * Per-node cache controller: the CPU-facing MemoryPort, the MSHR
 * file, the node's two cache levels, and the snooping-side request /
 * data handlers.
 */
class CacheController : public MemoryPort
{
  public:
    CacheController(System &system, NodeId node);

    // MemoryPort
    AccessReply access(Addr addr, Addr pc, bool is_write, Tick when,
                       const Completion &on_complete) override;

    /** Ordered request delivered to this node (snoop side). `txn` is
     *  the in-flight transaction (already looked up by the caller). */
    void onSnoop(const Message &msg, CoherenceTxn &txn, Tick tick);

    /** Directory-protocol forward: supply data to the requester. */
    void onForward(const Message &msg, Tick tick);

    /** Directory-protocol invalidation. */
    void onInvalidate(const Message &msg, Tick tick);

    /** Data response / upgrade grant for this node's own miss. */
    void onData(const Message &msg, Tick tick);

    NodeCaches &caches() { return caches_; }
    std::size_t outstandingMshrs() const { return mshrs_.size(); }

  private:
    struct Mshr {
        TxnId txn = 0;
        RequestType type = RequestType::GetShared;
        bool invalidateAfterFill = false;
        std::vector<Completion> waiters;
        /** Accesses that arrived while the miss was outstanding. */
        struct Queued {
            Addr addr;
            Addr pc;
            bool write;
            Completion done;
        };
        std::vector<Queued> queued;
    };

    /** Issue the coherence request for a new miss at tick `when`. */
    void issueRequest(BlockId block, Addr addr, Addr pc,
                      RequestType type, Tick when);

    /** Complete the miss: fill, train, wake waiters, replay queue.
     *  Ignores completions whose txn no longer matches the MSHR. */
    void complete(BlockId block, TxnId txn, Tick tick);

    /** Invalidate local state, honouring in-flight misses. */
    void invalidateLocal(BlockId block);

    System &sys_;
    NodeId node_;
    NodeCaches caches_;
    FlatMap<BlockId, Mshr> mshrs_;
};

/**
 * Per-node memory/directory controller: home-side duties (memory data
 * responses, directory forwarding, multicast retry re-issue).
 */
class MemoryController
{
  public:
    MemoryController(System &system, NodeId node);

    /** Ordered request delivered to (or self-observed at) the home.
     *  `txn` is the in-flight transaction (caller already found it). */
    void onHomeRequest(const Message &msg, CoherenceTxn &txn,
                       Tick tick);

  private:
    void handleDirectory(const Message &msg, const CoherenceTxn &txn,
                         Tick tick);
    void handleMulticastHome(const Message &msg, CoherenceTxn &txn,
                             Tick tick);

    System &sys_;
    NodeId node_;
};

/**
 * The complete target machine. Owns the event queue, the crossbar,
 * the functional sharing state, predictors, and all per-node
 * components; runs the warmup + measured phases.
 */
class System
{
  public:
    System(Workload &workload, const SystemParams &params);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run warmup then the measured phase; returns measured stats. */
    SystemStats run();

    const SystemParams &params() const { return params_; }

  private:
    friend class CacheController;
    friend class MemoryController;

    using Txn = CoherenceTxn;

    /** Pooled event: deliver a shared payload to `dest` without the
     *  network (self-observation of ordered requests, node-local
     *  transfers). Shares the payload instead of copying it. */
    struct LocalDeliverEvent;

    /** Pooled event: hand `msg` to sendOrLocal() at its tick. */
    struct SendEvent;

    // -- crossbar callbacks
    void onOrder(const MessageRef &msg, Tick tick);
    void onDeliver(const Message &msg, NodeId dest, Tick tick);

    /** Point-to-point send that short-circuits node-local traffic. */
    void sendOrLocal(Message msg);

    /** Schedule sendOrLocal(msg) at tick `when` (controller action). */
    void sendLater(Message msg, Tick when);

    /** Destination set for a new request, per protocol. */
    DestinationSet destinationsFor(BlockId block, Addr addr, Addr pc,
                                   RequestType type, NodeId requester);

    /** Record a completed miss in the measured statistics. */
    void recordCompletion(const Txn &txn, Tick tick);

    /** Train the requester's predictor at completion time. */
    void trainRequester(const Txn &txn);

    NodeId homeOf_(BlockId block) const
    {
        // Power-of-two node counts (the common case, incl. the
        // paper's 16) take the mask path: this runs per delivery and
        // a hardware divide is ~30 cycles.
        if (homeMask_ != 0)
            return static_cast<NodeId>(block & homeMask_);
        return homeOf(block, params_.nodes);
    }

    // -- run-phase plumbing
    void startPhase(std::uint64_t instructions);

    /** Event-free cache/predictor warming (Section 5.2). */
    void functionalWarmup(std::uint64_t misses);

    Workload &workload_;
    SystemParams params_;
    /** nodes-1 when nodes is a power of two, else 0 (slow path). */
    BlockId homeMask_ = 0;

    EventQueue queue_;
    OrderedCrossbar crossbar_;
    SharingTracker tracker_;

    std::vector<std::unique_ptr<Predictor>> predictors_;
    std::vector<std::unique_ptr<CacheController>> cacheCtrls_;
    std::vector<std::unique_ptr<MemoryController>> memCtrls_;
    std::vector<std::unique_ptr<Cpu>> cpus_;

    FlatMap<TxnId, Txn> txns_;
    TxnId nextTxn_ = 1;

    // Earlier revisions kept per-block "data ready" / "memory ready"
    // tick maps to chain dependent misses. Every value they stored was
    // the tick of an already-executed event, and every reader max()ed
    // it against the current tick at a later simulation time, so the
    // maps provably never changed an outcome -- they only cost a
    // cache-missing hash write per miss. Real data-availability
    // chaining needs expected-completion (future) ticks recorded at
    // issue time; see ROADMAP "Open items".

    // -- phase / stats state
    bool measuring_ = false;
    Tick measureStart_ = 0;
    NodeId cpusDone_ = 0;
    bool phaseDone_ = false;

    std::uint64_t misses_ = 0;
    std::uint64_t indirections_ = 0;
    std::uint64_t retriesTotal_ = 0;
    std::uint64_t doubleRetries_ = 0;
    std::uint64_t upgrades_ = 0;
    std::uint64_t c2c_ = 0;
    Tick latencySum_ = 0;
};

} // namespace dsp

#endif // DSP_SYSTEM_SYSTEM_HH
