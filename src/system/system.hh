/**
 * @file
 * Execution-driven timing simulation of the full 16-node system
 * (Section 5): CPUs, two-level caches with MSHRs, destination-set
 * predictors, a totally-ordered crossbar, directory/memory
 * controllers, and the three coherence protocols.
 *
 * Functional/timing split: coherence transactions are applied to the
 * global SharingTracker at the crossbar's ordering point (the
 * serialization point all three protocols rely on); message timing,
 * link contention, and data-availability chaining are layered on top.
 * Multicast sufficiency is also evaluated at the ordering point, so
 * the window-of-vulnerability race between a retry's issue and its
 * ordering (Section 4.1) arises naturally and the third attempt falls
 * back to broadcast.
 *
 * Shard discipline (see sim/sharded_kernel.hh): every simulated node
 * is one kernel domain owning its CPU, caches, MSHRs, predictor, and
 * completion statistics; each ordering point plus its slice of the
 * sharing tracker forms one hub domain (block b is ordered at hub
 * b mod H, so per-block functional state never spans hubs). Handlers
 * never read another domain's state -- the ordering point's verdict
 * travels inside the messages (TxnEcho), and cache evictions reach
 * the tracker as hub-bound notices one link hop later. A run with K
 * shards is therefore bit-identical to a single-shard run in every
 * emitted statistic, at every node count and hub count.
 */

#ifndef DSP_SYSTEM_SYSTEM_HH
#define DSP_SYSTEM_SYSTEM_HH

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.hh"
#include "coherence/latency.hh"
#include "coherence/sharing_tracker.hh"
#include "core/factory.hh"
#include "cpu/cpu.hh"
#include "interconnect/crossbar.hh"
#include "mem/node_caches.hh"
#include "sim/flat_map.hh"
#include "sim/sharded_kernel.hh"
#include "verify/violation.hh"
#include "workload/workload.hh"

namespace dsp {

class System;

namespace verify {
class Oracle;
}

/** Runtime-verification knobs (see src/verify/ and docs/verify.md). */
struct VerifyParams {
    /** Shadow the run with the coherence oracle. Off by default; the
     *  hooks additionally compile to nothing under DSP_DISABLE_VERIFY
     *  regardless of this flag. */
    bool oracle = false;

    /** Deliberate protocol mutation for the oracle self-tests; only
     *  honoured while the oracle is armed. */
    verify::Mutation mutation = verify::Mutation::None;

    /** Stop the run once the hub reaches this tick (0 = never). Used
     *  by violation repro bundles to halt just past the violation. */
    Tick stopAtTick = 0;
};

/** Checkpoint/restore control (src/checkpoint/, docs/checkpoint.md).
 *  Checkpoints are written at the first quiescent kernel barrier at
 *  or after each `every`-tick boundary, so the snapshot (and the set
 *  of snapshot ticks) is identical at every shard count. */
struct CheckpointControl {
    /** Simulated ticks between checkpoints; 0 disables. */
    std::uint64_t every = 0;
    /** Directory checkpoints are written to / restored from. */
    std::string dir;
    /** Resume from the newest valid checkpoint in `dir` (or from
     *  `restorePath`) instead of starting fresh; falls back to a
     *  fresh run when none validates. */
    bool restore = false;
    /** Explicit checkpoint file to restore (overrides the
     *  newest-in-dir scan); used by violation replay. */
    std::string restorePath;
    /** After each successful write, prune all but the newest `keep`
     *  valid snapshots in the directory (0 = unlimited). Long sweeps
     *  with frequent checkpoints otherwise accumulate gigabytes of
     *  stale restore points that will never be chosen. */
    unsigned keep = 0;
};

/** Which coherence protocol the system runs. */
enum class ProtocolKind : std::uint8_t {
    Snooping,   ///< broadcast snooping (destination set = all)
    Directory,  ///< GS320-style directory (destination set = home)
    Multicast,  ///< multicast snooping with destination-set prediction
};

/** Printable name. */
std::string toString(ProtocolKind kind);

/** Which processor model drives the system. */
enum class CpuModel : std::uint8_t {
    Simple,    ///< in-order blocking (Figure 7)
    Detailed,  ///< ROB-window out-of-order (Figure 8)
};

/** Full system configuration (Table 4 defaults). Larger machines
 *  (up to maxNodes) and hierarchical interconnects are configured
 *  through `crossbar.topology` (see interconnect/topology.hh and
 *  docs/machine_topology.md). */
struct SystemParams {
    NodeId nodes = 16;
    ProtocolKind protocol = ProtocolKind::Multicast;
    PredictorPolicy policy = PredictorPolicy::OwnerGroup;
    PredictorConfig predictor;  ///< numNodes is overridden with nodes
    CacheParams caches;
    LatencyParams latency;
    CrossbarParams crossbar;
    CpuParams cpu;
    CpuModel cpuModel = CpuModel::Simple;

    /**
     * Kernel shards (host threads). The node set is partitioned into
     * contiguous groups, one per shard; the ordering point rides with
     * shard 0. Any value produces bit-identical statistics; values
     * above 1 use host cores. Clamped to [1, nodes].
     */
    unsigned shards = 1;

    /**
     * At shards >= 3, give the ordering-point hub a dedicated shard
     * (shard 0) and spread the nodes over the remaining shards. The
     * hub carries the tracker, the chaining books, and every ordered
     * message, making the default hub-plus-node-group shard 0 the
     * ~10-15% heaviest; a dedicated hub shard lifts that ceiling on
     * hosts with cores to spare. Pure placement: statistics are
     * bit-identical either way (carried-key determinism contract).
     * Ignored below 3 shards.
     */
    bool hubShard = false;

    /**
     * Data-availability chaining: an owner cannot supply a block
     * before its own fill lands, and memory cannot supply before an
     * in-flight writeback arrives. Expected-completion ticks are
     * recorded at the ordering point when the transfer is issued.
     */
    bool dataChaining = true;

    /**
     * Functional (trace-style) warmup misses before any timing: fills
     * caches and trains predictors at trace-replay speed, exactly as
     * the paper warms its timing runs from traces (Section 5.2).
     */
    std::uint64_t functionalWarmupMisses = 0;

    std::uint64_t warmupInstrPerCpu = 1000000;
    std::uint64_t measureInstrPerCpu = 2000000;

    VerifyParams verify;
    CheckpointControl checkpoint;
};

/** Results of one execution-driven run (measured phase only). */
struct SystemStats {
    Tick runtimeTicks = 0;       ///< first measure start to last finish
    std::uint64_t instructions = 0;
    std::uint64_t misses = 0;
    std::uint64_t indirections = 0;  ///< retried / 3-hop misses
    std::uint64_t retries = 0;
    /** Misses retried more than once: the retry itself lost the
     *  window-of-vulnerability race (Section 4.1). */
    std::uint64_t doubleRetries = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t cacheToCache = 0;
    std::uint64_t requestMessages = 0;  ///< requests+retries+fwd+inval
    std::uint64_t writebacks = 0;       ///< dirty evictions to memory
    std::uint64_t trafficBytes = 0;
    /** Kernel events executed during the measured phase (simulator
     *  throughput is events/sec over this count). */
    std::uint64_t eventsExecuted = 0;
    /** Kernel barrier crossings / lookahead windows in the measured
     *  phase. With single-crossing windows their ratio is ~1.0; quiet
     *  -window batching can push it below. */
    std::uint64_t barrierCrossings = 0;
    std::uint64_t windowsRun = 0;
    /** Host wall-clock seconds spent in the measured phase. */
    double wallSeconds = 0.0;
    double avgMissLatencyNs = 0.0;

    /** The run halted before its instruction targets (a stop-at tick
     *  from a repro bundle); figures from it are partial. */
    bool stoppedEarly = false;

    /** Cache accesses issued in the measured phase (all nodes), and
     *  how many the L0 block-result filter resolved without an L1/L2
     *  walk (l0Absorbed additionally touched zero packed words). All
     *  three are deterministic figure-adjacent statistics: identical
     *  at every shard count (covered by the check.sh cross-check). */
    std::uint64_t cacheAccesses = 0;
    std::uint64_t l0Hits = 0;
    std::uint64_t l0Absorbed = 0;
    /** Packed-array words attributed to measured-phase set walks plus
     *  L0 refresh touches (upper bound: a walk may early-exit). From
     *  the debug walk counters: 0 when built with NDEBUG. */
    std::uint64_t wordTouches = 0;

    /** Calendar insertions + pops in the measured phase. Fused hop
     *  chains execute their intermediate hops without re-entering the
     *  calendar, so this (divided by misses) is the figure of merit
     *  the fusion optimisation moves. Partition-dependent: a chain
     *  advance can be refused near a shard-window boundary and fall
     *  back to a real insert, so the count may differ across shard
     *  counts -- a host performance counter, never a figure
     *  statistic. */
    std::uint64_t calendarOps = 0;
    /** Host-side prefetch hints issued in the measured phase (tracker
     *  buckets and predictor sets at request send, MSHR bucket + L2
     *  sets at data send). Cross-domain hints only fire when issuer
     *  and target share a shard, so this too is partition-dependent
     *  and excluded from the determinism cross-checks. */
    std::uint64_t prefetchIssued = 0;

    double
    calendarOpsPerMiss() const
    {
        return misses ? static_cast<double>(calendarOps) /
                            static_cast<double>(misses)
                      : 0.0;
    }

    double
    l0HitRate() const
    {
        return cacheAccesses
                   ? static_cast<double>(l0Hits) /
                         static_cast<double>(cacheAccesses)
                   : 0.0;
    }

    double
    touchedWordsPerAccess() const
    {
        return cacheAccesses
                   ? static_cast<double>(wordTouches) /
                         static_cast<double>(cacheAccesses)
                   : 0.0;
    }

    double
    trafficPerMiss() const
    {
        return misses ? static_cast<double>(trafficBytes) /
                            static_cast<double>(misses)
                      : 0.0;
    }

    double
    runtimeMs() const
    {
        return ticksToNs(runtimeTicks) / 1e6;
    }
};

/**
 * Per-node cache controller: the CPU-facing MemoryPort, the MSHR
 * file, the node's two cache levels, and the snooping-side request /
 * data handlers. Runs entirely in its node's kernel domain.
 */
class CacheController : public MemoryPort
{
  public:
    CacheController(System &system, NodeId node, DomainPort port);

    // MemoryPort
    AccessReply access(Addr addr, Addr pc, bool is_write, Tick when,
                       const Completion &on_complete,
                       Addr next_hint = 0) override;

    /** Ordered request delivered to this node (snoop side); the
     *  ordering point's verdict rides in msg.echo. */
    void onSnoop(const Message &msg, Tick tick);

    /** Directory-protocol forward: supply data to the requester. */
    void onForward(const Message &msg, Tick tick);

    /** Directory-protocol invalidation. */
    void onInvalidate(const Message &msg, Tick tick);

    /** Data response / upgrade grant for this node's own miss. */
    void onData(const Message &msg, Tick tick);

    NodeCaches &caches() { return caches_; }
    std::size_t outstandingMshrs() const { return mshrs_.size(); }

    /** Host-cache hint on the completion path: warm the MSHR bucket
     *  and the cache sets the imminent fill will walk. */
    void
    prefetchFill(BlockId block)
    {
        mshrs_.prefetch(block);
        caches_.prefetchSets(block);
    }

    /** Checkpoint caches, the MSHR file (waiter completions are saved
     *  as tokens and rebuilt through the owning CPU), and the txn-id
     *  generator. In-flight IssueEvents are captured separately by
     *  the kernel's pending-event enumeration. */
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);

    /** Rebuild one in-flight request-issue event from its saved
     *  payload (tag and node already consumed). */
    Event &ckptRestoreIssue(ckpt::Reader &r);

  private:
    /** Pooled event: issue the coherence request for a freshly opened
     *  miss at its access tick (was an allocating lambda; a named
     *  event checkpoints itself and keeps the hot path heap-free). */
    struct IssueEvent;

    struct Mshr {
        TxnId txn = 0;
        RequestType type = RequestType::GetShared;
        bool invalidateAfterFill = false;
        /** Set-walk handles from the access that opened this miss;
         *  complete() installs the grant through them so the fill
         *  never re-walks the tag planes. */
        NodeCaches::FillHandle handle;
        std::vector<Completion> waiters;
        /** Accesses that arrived while the miss was outstanding. */
        struct Queued {
            Addr addr;
            Addr pc;
            bool write;
            Completion done;
        };
        std::vector<Queued> queued;
    };

    /** Issue the coherence request for a new miss at tick `when`. */
    void issueRequest(BlockId block, Addr addr, Addr pc,
                      RequestType type, Tick when);

    /** Complete the miss: fill, train, wake waiters, replay queue.
     *  Ignores completions whose txn no longer matches the MSHR. */
    void complete(const Message &msg, Tick tick);

    /** Invalidate local state, honouring in-flight misses. */
    void invalidateLocal(BlockId block);

    System &sys_;
    NodeId node_;
    DomainPort port_;
    NodeCaches caches_;
    FlatMap<BlockId, Mshr> mshrs_;
    /** Node-local transaction id generator: ids are (seq << 16) | node
     *  (16 bits comfortably covers maxNodes), so allocation never
     *  crosses a shard boundary. */
    std::uint64_t nextTxnSeq_ = 1;
};

/**
 * Per-node memory/directory controller: home-side duties (memory data
 * responses, directory forwarding, multicast retry re-issue). Runs in
 * its node's kernel domain.
 */
class MemoryController
{
  public:
    MemoryController(System &system, NodeId node, DomainPort port);

    /** Ordered request delivered to (or self-observed at) the home;
     *  the ordering point's verdict rides in msg.echo. */
    void onHomeRequest(const Message &msg, Tick tick);

    /** Rebuild one in-flight home-side event (directory continuation
     *  or retry re-issue) from its saved payload (tag and node
     *  already consumed). The controller itself is stateless, so
     *  these events are its entire checkpoint surface. */
    Event &ckptRestoreEvent(ckpt::EventTag tag, ckpt::Reader &r);

  private:
    /** Pooled event: the directory-access continuation (invalidation
     *  fan-out + data/grant/forward) one memory latency after the
     *  ordered delivery reached the home. */
    struct DirContinueEvent;

    /** Pooled event: hand a home-built Retry to the ordered network
     *  after the directory access that composed it. */
    struct RetryEvent;

    void handleDirectory(const Message &msg, Tick tick);
    void handleMulticastHome(const Message &msg, Tick tick);

    /** Body of the directory continuation (shared by the timed path
     *  and checkpoint-restored events). */
    void directoryContinue(const Message &msg);

    System &sys_;
    NodeId node_;
    DomainPort port_;
};

/**
 * The complete target machine. Owns the sharded kernel, the crossbar,
 * the functional sharing state, predictors, and all per-node
 * components; runs the warmup + measured phases.
 */
class System
{
  public:
    System(Workload &workload, const SystemParams &params);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run warmup then the measured phase; returns measured stats. */
    SystemStats run();

    const SystemParams &params() const { return params_; }

    /** The coherence oracle shadowing this run, or nullptr. Hook call
     *  sites gate on verify::armed(oracle()). */
    verify::Oracle *oracle() { return oracle_.get(); }

    /** True once run() resumed from a checkpoint instead of starting
     *  fresh. Tests gate on this so a silently failed restore (which
     *  would rerun from scratch and still match, by determinism)
     *  cannot masquerade as a restore round-trip. */
    bool restoredFromCheckpoint() const { return restoredFromCkpt_; }

  private:
    friend class CacheController;
    friend class MemoryController;

    /** Pooled event: deliver a shared payload to `dest` without the
     *  network (self-observation of ordered requests, node-local
     *  transfers). Shares the payload instead of copying it. */
    struct LocalDeliverEvent;

    /** Pooled event: hand `msg` to sendOrLocal() at its tick. */
    struct SendEvent;

    /** Pooled event: a cache eviction reaching the hub's sharing
     *  tracker one link hop after it happened at the node. */
    struct EvictEvent;

    /** Per-node completion statistics, single-writer per domain. */
    struct alignas(64) NodeAccum {
        std::uint64_t misses = 0;
        std::uint64_t indirections = 0;
        std::uint64_t retries = 0;
        std::uint64_t doubleRetries = 0;
        std::uint64_t upgrades = 0;
        std::uint64_t cacheToCache = 0;
        Tick latencySum = 0;
        std::uint64_t prefetches = 0;  ///< host-side hints issued
    };

    // -- crossbar callbacks
    void onOrder(const MessageRef &msg, Tick tick);
    void onDeliver(const Message &msg, NodeId dest, Tick tick);

    /** ReorderHubGrants mutation: maybe stash this GETX's tracker
     *  apply (or retro-apply a stashed one). True = order handled. */
    bool orderWithReorderMutation(Message &msg, BlockId block,
                                  Tick tick);

    /** The oracle found a violation: publish it, then either throw
     *  (panic-throws-for-test) or print the report + repro bundle and
     *  exit with verify::violationExitCode. */
    [[noreturn]] void raiseOracleViolation();

    /** DSP-REPRO machine line: everything needed to replay this run
     *  deterministically up to just past the violation. */
    void printReproBundle(std::FILE *out) const;

    /** Point-to-point send that short-circuits node-local traffic. */
    void sendOrLocal(Message msg);

    /** Schedule sendOrLocal(msg) at tick `when` (controller action). */
    void sendLater(Message msg, Tick when);

    /** Route an eviction to its block's hub tracker (one hop away). */
    void notifyEviction(BlockId block, bool owned, NodeId node,
                        Tick tick);

    /** Destination set for a new request, per protocol. */
    DestinationSet destinationsFor(BlockId block, Addr addr, Addr pc,
                                   RequestType type, NodeId requester);

    /** Record a completed miss in the requester's statistics. */
    void recordCompletion(const Message &msg, Tick tick);

    /** Train the requester's predictor at completion time. */
    void trainRequester(const Message &msg);

    // -- host-side prefetch hints (semantic no-ops; see
    // docs/access_pipeline.md). Cross-domain hints are legal only
    // within one shard: another shard's worker thread may be mutating
    // the target structure, and even a speculative read of its table
    // geometry would race.
    /** True when both domains run on one shard (one worker thread). */
    bool sameShard(std::uint16_t a, std::uint16_t b) const;

    /** Warm the hub's tracker bucket for `block` at request send, one
     *  hop before the ordering point applies the request. */
    void prefetchTracker(BlockId block, NodeId issuer);

    /** Warm the issuing node's own predictor-table set ahead of the
     *  issue event's destinationsFor() walk. */
    void prefetchPredictor(NodeId node, Addr addr, Addr pc);

    /** Warm the requester's MSHR bucket and cache sets when its data
     *  (or grant) goes on the wire, ~one hop before complete(). */
    void prefetchCompletion(NodeId requester, BlockId block,
                            std::uint16_t from_domain);

    // -- ordering-point (hub domain) helpers
    /** Fill the echo's supplyEarliest and update the expected
     *  data-arrival books for a freshly resolved transaction. */
    void chainResolved(BlockId block, Message &msg, Tick order);

    /** Earliest tick `responder` can start supplying `block` (0 when
     *  unconstrained); prunes stale book entries. */
    Tick supplyBound(BlockId block, NodeId responder, NodeId requester,
                     Tick order);

    NodeId homeOf_(BlockId block) const
    {
        // Power-of-two node counts (the common case, incl. the
        // paper's 16) take the mask path: this runs per delivery and
        // a hardware divide is ~30 cycles.
        if (homeMask_ != 0)
            return static_cast<NodeId>(block & homeMask_);
        return homeOf(block, params_.nodes);
    }

    DomainPort &nodePort(NodeId n) { return nodePorts_[n]; }

    /** Point-in-time sums of the per-node cache counters; run() diffs
     *  two of these around the measured phase. */
    struct CacheCounters {
        std::uint64_t accesses = 0;
        std::uint64_t l0Hits = 0;
        std::uint64_t l0Absorbed = 0;
        std::uint64_t wordTouches = 0;
    };
    CacheCounters cacheCounters() const;

    // -- run-phase plumbing
    void startPhase(std::uint64_t instructions);

    /** The per-CPU phase-completion callback startPhase installs and
     *  a checkpoint restore re-arms on unfinished CPUs. */
    std::function<void()> cpuDoneCallback();

    /** Enter the measured phase: reset stats, record the measure
     *  baselines, and (unless stopped early) start the phase. */
    void beginMeasure();

    /** Event-free cache/predictor warming (Section 5.2). */
    void functionalWarmup(std::uint64_t misses);

    /** Run kernel windows until all CPUs reached their target,
     *  writing checkpoints at the due barriers along the way. */
    void runUntilPhaseDone(const char *phase);

    // -- checkpoint/restore (src/checkpoint/, docs/checkpoint.md)
    bool ckptEnabled() const
    {
        return params_.checkpoint.every != 0 &&
               !params_.checkpoint.dir.empty();
    }

    /** Serialize/restore the complete quiescent simulation state:
     *  config identity, phase bookkeeping, kernel counters, workload,
     *  per-node controllers + CPUs + predictors, per-hub trackers +
     *  chain books, crossbar, stats accumulators, the oracle (when
     *  armed), and every pending event with its (when, key, domain)
     *  coordinates. */
    void ckptSaveState(ckpt::Writer &w) const;
    void ckptLoadState(ckpt::Reader &r);

    /** Dispatch one saved pending event to its owning subsystem by
     *  tag; returns the reconstructed (pooled or member) event. */
    Event &restoreOneEvent(ckpt::Reader &r);

    /** Write a checkpoint at the current quiescent barrier (advances
     *  the next-due tick first so the schedule is restore-stable),
     *  then honour any DSP_CKPT_KILL_AFTER preemption hook. */
    void writeCheckpoint();

    /** Restore from params_.checkpoint (newest valid in dir, or the
     *  explicit restorePath); false = start fresh. */
    bool restoreIfRequested();

    // -- static construction helpers (domain/shard geometry)
    static unsigned shardCountFor(const SystemParams &params);
    static std::vector<unsigned> domainMapFor(const SystemParams &p);

    /**
     * The resolved machine topology: the single source of truth for
     * both the kernel's lookahead (its minHop) and every hop-latency
     * computation in this class. Every cross-domain interaction is
     * >= minHop, so deriving both from here keeps the conservative-
     * lookahead invariant true by construction (the crossbar computes
     * the same topology from the same parameters).
     */
    static Topology
    topologyFor(const SystemParams &p)
    {
        return Topology(p.nodes, p.crossbar.topology,
                        p.crossbar.traversal_ns);
    }

    /** Kernel-domain layout: node n -> n + 1, hub h -> nodes + 1 + h. */
    static std::uint16_t
    hubDomainFor(const SystemParams &p, unsigned hub)
    {
        return static_cast<std::uint16_t>(p.nodes + 1 + hub);
    }

    Workload &workload_;
    SystemParams params_;
    /** nodes-1 when nodes is a power of two, else 0 (slow path). */
    BlockId homeMask_ = 0;

    ShardedKernel kernel_;
    std::vector<DomainPort> hubPorts_;  ///< one per ordering point
    std::vector<DomainPort> nodePorts_;
    OrderedCrossbar crossbar_;
    /** Resolved geometry + hop latencies (== crossbar_.topology()). */
    Topology topo_;
    /** Functional sharing state, one slice per ordering hub; block b
     *  lives in trackers_[topo_.hubOf(b)] and is only touched from
     *  that hub's domain. */
    std::vector<SharingTracker> trackers_;

    SharingTracker &
    trackerFor(BlockId block)
    {
        return trackers_[topo_.hubOf(block)];
    }

    std::vector<std::unique_ptr<Predictor>> predictors_;
    std::vector<std::unique_ptr<CacheController>> cacheCtrls_;
    std::vector<std::unique_ptr<MemoryController>> memCtrls_;
    std::vector<std::unique_ptr<Cpu>> cpus_;

    /** Coherence oracle (params_.verify.oracle); see src/verify/. */
    std::unique_ptr<verify::Oracle> oracle_;

    /** ReorderHubGrants mutation state (per hub domain): one GETX
     *  whose tracker apply is withheld until the block's next
     *  resolved order. A stash only ever matches its own block, and a
     *  block always orders at one hub, so per-hub stashes partition
     *  the mutation exactly like the tracker slices. */
    struct ReorderStash {
        bool armed = false;
        BlockId block = 0;
        NodeId requester = 0;
        RequestType type = RequestType::GetExclusive;
    };
    std::vector<ReorderStash> reorderStash_;

    // -- data-availability chaining books (one pair per hub domain;
    // block b uses index topo_.hubOf(b)). The maps record
    // *expected-completion* (future) ticks at the instant the
    // transfer is issued at the ordering point; readers prune entries
    // once they fall into the past.
    std::vector<FlatMap<BlockId, Tick>> ownerDataAt_;  ///< owner fill
    std::vector<FlatMap<BlockId, Tick>> memReadyAt_;   ///< in-flight WB

    // -- phase / stats state
    bool measuring_ = false;
    /** A stop predicate fired before the phase targets (verify
     *  stop-at); remaining phases are skipped. Main thread only. */
    bool stopEarly_ = false;
    Tick measureStart_ = 0;
    std::atomic<NodeId> cpusDone_{0};
    std::atomic<bool> phaseDone_{false};

    /** Which phase runUntilPhaseDone is (or will next be) driving.
     *  Members, not run() locals, so a checkpoint can capture and a
     *  restore re-enter mid-phase. */
    static constexpr std::uint8_t phaseWarmup = 0;
    static constexpr std::uint8_t phaseMeasure = 1;
    std::uint8_t phaseIndex_ = phaseWarmup;

    /** Measure baselines (diffed against end-of-run totals); members
     *  for the same reason as phaseIndex_. */
    std::uint64_t eventsBefore_ = 0;
    std::uint64_t crossingsBefore_ = 0;
    std::uint64_t windowsBefore_ = 0;
    std::uint64_t calOpsBefore_ = 0;
    CacheCounters cachesBefore_;

    // -- checkpoint state (main thread only; see docs/checkpoint.md)
    Tick nextCkptTick_ = 0;        ///< next due boundary
    bool ckptStop_ = false;        ///< predicate stopped for a write
    bool finalCkptWritten_ = false;  ///< interrupt checkpoint guard
    unsigned ckptsWritten_ = 0;
    bool restoredFromCkpt_ = false;
    unsigned killAfter_ = 0;       ///< DSP_CKPT_KILL_AFTER hook
    std::string lastCkptPath_;     ///< newest written/restored file
    Tick lastCkptTick_ = 0;

    std::vector<NodeAccum> nodeStats_;
};

} // namespace dsp

#endif // DSP_SYSTEM_SYSTEM_HH
