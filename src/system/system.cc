#include "system/system.hh"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <stdexcept>

#include "cpu/detailed_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "sim/interrupt.hh"
#include "sim/logging.hh"
#include "sim/panic_hooks.hh"
#include "verify/oracle.hh"

namespace dsp {

std::string
toString(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Snooping:
        return "snooping";
      case ProtocolKind::Directory:
        return "directory";
      case ProtocolKind::Multicast:
        return "multicast";
    }
    return "?";
}

unsigned
System::shardCountFor(const SystemParams &params)
{
    unsigned shards = params.shards == 0 ? 1 : params.shards;
    if (shards > params.nodes)
        shards = params.nodes;
    return shards;
}

std::vector<unsigned>
System::domainMapFor(const SystemParams &params)
{
    // Domains: node n -> n + 1, ordering hub h -> nodes + 1 + h.
    // Contiguous node groups, one per shard. By default the hubs ride
    // with shard 0 (the calling thread); with hubShard (and >= 3
    // shards) they get shard 0 to themselves and the nodes spread
    // over the rest. The partition is free to change: the determinism
    // contract makes every choice produce identical statistics.
    unsigned shards = shardCountFor(params);
    unsigned hubs = params.crossbar.topology.hubs;
    std::vector<unsigned> map(params.nodes + 1 + hubs, 0);
    bool dedicated = params.hubShard && shards >= 3;
    unsigned node_shards = dedicated ? shards - 1 : shards;
    unsigned first = dedicated ? 1 : 0;
    for (NodeId n = 0; n < params.nodes; ++n)
        map[n + 1] = first + static_cast<unsigned>(
            (static_cast<std::uint64_t>(n) * node_shards) /
            params.nodes);
    // Hub domains stay on shard 0 (already zero-initialized).
    return map;
}

namespace {

std::vector<DomainPort>
nodePortsFor(ShardedKernel &kernel, NodeId nodes)
{
    std::vector<DomainPort> ports;
    ports.reserve(nodes);
    for (NodeId n = 0; n < nodes; ++n)
        ports.push_back(
            kernel.port(static_cast<std::uint16_t>(n + 1)));
    return ports;
}

std::vector<DomainPort>
hubPortsFor(ShardedKernel &kernel, const SystemParams &params)
{
    std::vector<DomainPort> ports;
    unsigned hubs = params.crossbar.topology.hubs;
    ports.reserve(hubs);
    for (unsigned h = 0; h < hubs; ++h)
        ports.push_back(kernel.port(
            static_cast<std::uint16_t>(params.nodes + 1 + h)));
    return ports;
}

} // namespace

System::System(Workload &workload, const SystemParams &params)
    : workload_(workload),
      params_(params),
      kernel_(shardCountFor(params), domainMapFor(params),
              topologyFor(params).minHop()),
      hubPorts_(hubPortsFor(kernel_, params)),
      nodePorts_(nodePortsFor(kernel_, params.nodes)),
      crossbar_(hubPorts_, nodePorts_, params.crossbar),
      topo_(crossbar_.topology()),
      reorderStash_(topo_.hubs()),
      ownerDataAt_(topo_.hubs()),
      memReadyAt_(topo_.hubs()),
      nodeStats_(params.nodes)
{
    dsp_assert(workload.numNodes() == params.nodes,
               "workload built for %u nodes, system has %u",
               workload.numNodes(), params.nodes);

    if ((params_.nodes & (params_.nodes - 1)) == 0)
        homeMask_ = params_.nodes - 1;

    // Pre-size the hot tables: the tracker slices and the chaining
    // books can hold at most one entry per footprint block, spread
    // over the hubs by address interleaving.
    std::size_t blocks = static_cast<std::size_t>(
        workload_.totalFootprint() / blockBytes);
    std::size_t blocks_per_hub = blocks / topo_.hubs() + 1;
    trackers_.reserve(topo_.hubs());
    for (unsigned h = 0; h < topo_.hubs(); ++h) {
        trackers_.emplace_back(params_.nodes);
        trackers_[h].reserve(blocks_per_hub);
        ownerDataAt_[h].reserve(blocks_per_hub / 4);
        memReadyAt_[h].reserve(blocks_per_hub / 4);
    }

    params_.predictor.numNodes = params_.nodes;
    params_.cpu.l1_ns = params_.latency.l1_ns;
    params_.cpu.l2_ns = params_.latency.l2_ns;

    if (params_.protocol == ProtocolKind::Multicast) {
        predictors_ =
            makePredictorsPerNode(params_.policy, params_.predictor);
    }

    if (params_.verify.oracle) {
        if (verify::compiledIn) {
            verify::Oracle::Config cfg;
            cfg.nodes = params_.nodes;
            cfg.directory =
                params_.protocol == ProtocolKind::Directory;
            cfg.dataChaining = params_.dataChaining;
            cfg.topo = topo_;
            cfg.l2_ns = params_.latency.l2_ns;
            cfg.memory_ns = params_.latency.memory_ns;
            oracle_ = std::make_unique<verify::Oracle>(cfg);
        } else {
            dsp_warn("verify.oracle requested but the library was "
                     "built with DSP_DISABLE_VERIFY; running "
                     "unchecked");
        }
    }

    for (NodeId n = 0; n < params_.nodes; ++n) {
        cacheCtrls_.push_back(std::make_unique<CacheController>(
            *this, n, nodePorts_[n]));
        memCtrls_.push_back(std::make_unique<MemoryController>(
            *this, n, nodePorts_[n]));
        if (params_.cpuModel == CpuModel::Simple) {
            cpus_.push_back(std::make_unique<SimpleCpu>(
                nodePorts_[n], workload_, n, *cacheCtrls_[n],
                params_.cpu));
        } else {
            cpus_.push_back(std::make_unique<DetailedCpu>(
                nodePorts_[n], workload_, n, *cacheCtrls_[n],
                params_.cpu));
        }
    }

    crossbar_.setOrderHandler(
        [this](const MessageRef &msg, Tick tick) {
            onOrder(msg, tick);
        });
    crossbar_.setDeliverHandler(
        [this](const Message &msg, NodeId dest, Tick tick) {
            onDeliver(msg, dest, tick);
        });
}

System::~System() = default;

struct System::LocalDeliverEvent final : Event {
    LocalDeliverEvent(System &s, MessageRef m, NodeId d, Tick t)
        : sys(s), msg(std::move(m)), dest(d), at(t)
    {
    }

    void process() override { sys.onDeliver(*msg, dest, at); }

    void
    release() override
    {
        EventPool<LocalDeliverEvent>::instance().release(this);
    }

    void
    ckptSave(ckpt::Writer &w) const override
    {
        w.u8(static_cast<std::uint8_t>(
            ckpt::EventTag::SysLocalDeliver));
        w.pod(*msg);
        w.u32(dest);
        w.u64(at);
    }

    System &sys;
    MessageRef msg;
    NodeId dest;
    Tick at;
};

struct System::SendEvent final : Event {
    SendEvent(System &s, Message m) : sys(s), msg(std::move(m)) {}

    void process() override { sys.sendOrLocal(std::move(msg)); }

    void
    release() override
    {
        EventPool<SendEvent>::instance().release(this);
    }

    void
    ckptSave(ckpt::Writer &w) const override
    {
        w.u8(static_cast<std::uint8_t>(ckpt::EventTag::SysSend));
        w.pod(msg);
    }

    System &sys;
    Message msg;
};

struct System::EvictEvent final : Event {
    EvictEvent(System &s, BlockId b, NodeId n, bool o, Tick evict,
               Tick wb)
        : sys(s), block(b), node(n), owned(o), evictTick(evict),
          wbArrive(wb)
    {
    }

    void
    process() override
    {
        // Hub domain: the tracker learns of the eviction one link hop
        // after it happened, exactly like a real ordering point would.
        // A request for the victim ordered during that flight (at or
        // after the eviction instant) supersedes the notice: applying
        // it anyway would clear a just-granted ownership (tripping
        // evictOwned's owner assertion when the grant went elsewhere)
        // or delete a just-re-established sharer registration.
        // Hardware drops a writeback that lost this race the same
        // way. The guard is conservative -- an unrelated request in
        // the window also drops the notice -- but every error it can
        // make leaves a *stale registration* (spurious snoops or
        // invalidations of an absent line, no-ops at the node) and
        // heals at the block's next ownership transfer; it is
        // deterministic and shard-count independent either way.
        SharingTracker &tracker = sys.trackerFor(block);
        unsigned hub = sys.topo_.hubOf(block);
        if (tracker.lastOrderedAt(block) >= evictTick)
            return;
        if (owned) {
            if (tracker.ownerOf(block) != node)
                return;  // ownership moved before the notice landed
            tracker.evictOwned(block, node);
            if (sys.params_.dataChaining) {
                // The dirty data is on the wire: memory cannot supply
                // this block before the writeback lands at the home.
                sys.ownerDataAt_[hub].erase(block);
                sys.memReadyAt_[hub][block] = wbArrive;
            }
        } else {
            tracker.evictShared(block, node);
        }
        // Post-guard: only accepted notices reach the oracle, so its
        // shadow books replay the tracker's exact update sequence.
        if (verify::armed(sys.oracle_.get())) {
            sys.oracle_->recordEvict(block, node, owned, wbArrive,
                                     sys.hubPorts_[hub].now());
        }
    }

    void
    release() override
    {
        EventPool<EvictEvent>::instance().release(this);
    }

    void
    ckptSave(ckpt::Writer &w) const override
    {
        w.u8(static_cast<std::uint8_t>(ckpt::EventTag::SysEvict));
        w.u64(block);
        w.u32(node);
        w.b(owned);
        w.u64(evictTick);
        w.u64(wbArrive);
    }

    System &sys;
    BlockId block;
    NodeId node;
    bool owned;
    Tick evictTick;
    Tick wbArrive;
};

void
System::sendLater(Message msg, Tick when)
{
    nodePort(msg.src).schedule(
        *EventPool<SendEvent>::instance().acquire(*this,
                                                  std::move(msg)),
        when, EventPriority::Controller);
}

void
System::notifyEviction(BlockId block, bool owned, NodeId node,
                       Tick tick)
{
    // Uncontended estimate of the writeback's arrival at the home;
    // the chaining bound needs only a deterministic expected tick.
    Tick wb_arrive = tick + topo_.directHop(node, homeOf_(block));
    hubPorts_[topo_.hubOf(block)].schedule(
        *EventPool<EvictEvent>::instance().acquire(
            *this, block, node, owned, tick, wb_arrive),
        tick + topo_.hubHop(), EventPriority::Controller);
}

DestinationSet
System::destinationsFor(BlockId block, Addr addr, Addr pc,
                        RequestType type, NodeId requester)
{
    switch (params_.protocol) {
      case ProtocolKind::Snooping:
        return DestinationSet::all(params_.nodes);
      case ProtocolKind::Directory:
        return DestinationSet::of(homeOf_(block));
      case ProtocolKind::Multicast: {
        DestinationSet predicted = predictors_[requester]->predict(
            addr, pc, type, requester, homeOf_(block));
        dsp_assert(predicted.contains(requester) &&
                       predicted.contains(homeOf_(block)),
                   "prediction violates the minimal-set contract");
        return predicted;
      }
    }
    return DestinationSet::all(params_.nodes);
}

Tick
System::supplyBound(BlockId block, NodeId responder, NodeId requester,
                    Tick order)
{
    if (!params_.dataChaining || responder == requester)
        return 0;  // upgrade: the requester already holds the data
    unsigned hub = topo_.hubOf(block);
    FlatMap<BlockId, Tick> &book = responder == invalidNode
                                       ? memReadyAt_[hub]
                                       : ownerDataAt_[hub];
    auto it = book.find(block);
    if (it == book.end())
        return 0;
    if (it->second <= order) {
        book.erase(it);  // already landed; prune the book
        return 0;
    }
    return it->second;
}

void
System::chainResolved(BlockId block, Message &msg, Tick order)
{
    TxnEcho &echo = msg.echo;
    echo.supplyEarliest =
        supplyBound(block, echo.responder, echo.requester, order);
    if (!params_.dataChaining || msg.type != RequestType::GetExclusive)
        return;

    // Ownership moves to the requester: record when its data is
    // expected to land, so a back-to-back request that picks it as
    // responder cannot be served before the fill exists.
    unsigned hub = topo_.hubOf(block);
    if (echo.responder == echo.requester) {
        ownerDataAt_[hub].erase(block);  // upgrade: data present
        return;
    }
    Tick deliver = order + topo_.hubHop();
    Tick start = std::max(deliver, echo.supplyEarliest);
    NodeId supplier = echo.responder == invalidNode
                          ? homeOf_(block)
                          : echo.responder;
    Tick supply_ns = echo.responder == invalidNode
                         ? params_.latency.memory_ns
                         : params_.latency.l2_ns;
    Tick arrive = start + nsToTicks(supply_ns) +
                  topo_.directHop(supplier, echo.requester);
    if (params_.protocol == ProtocolKind::Directory &&
        echo.responder != invalidNode) {
        // 3-hop: home directory access plus the forward hop precede
        // the owner's L2 read.
        arrive += nsToTicks(params_.latency.memory_ns) +
                  topo_.directHop(homeOf_(block), echo.responder);
    }
    ownerDataAt_[hub][block] = arrive;
    // Memory is no longer the owner; any writeback bound is obsolete.
    memReadyAt_[hub].erase(block);
}

void
System::onOrder(const MessageRef &msgref, Tick tick)
{
    // The payload is still exclusively ours (fan-out happens after the
    // order handler), so the serialization verdict is stamped straight
    // into it and every delivery sees it without sharing any state.
    Message &msg = msgref.exclusive();
    TxnEcho &echo = msg.echo;
    BlockId block = msg.block();

    if (params_.protocol == ProtocolKind::Directory) {
        auto result = trackerFor(block).apply(block, echo.requester,
                                              msg.type, tick);
        echo.resolved = true;
        echo.resolvedAttempt = msg.attempt;
        echo.responder = result.responder;
        echo.required = result.required;
        echo.granted = result.grantedState;
        chainResolved(block, msg, tick);
    } else if (verify::armed(oracle_.get()) &&
               params_.verify.mutation ==
                   verify::Mutation::ReorderHubGrants &&
               orderWithReorderMutation(msg, block, tick)) {
        // Mutation handled the tracker interaction (a GETX's apply is
        // stashed or retro-applied out of order).
    } else {
        bool sufficient = false;
        auto result = trackerFor(block).applyIfSufficient(
            block, echo.requester, msg.type, msg.dests, sufficient,
            tick);
        echo.responder = result.responder;
        echo.required = result.required;
        if (sufficient) {
            // Mutation: the tracker applied the request, but the
            // verdict is never stamped into the echo -- the requester
            // retries a transaction that actually succeeded.
            bool skip_stamp =
                verify::armed(oracle_.get()) &&
                params_.verify.mutation ==
                    verify::Mutation::SkipVerdictStamp;
            if (!skip_stamp) {
                echo.resolved = true;
                echo.resolvedAttempt = msg.attempt;
                echo.granted = result.grantedState;
                chainResolved(block, msg, tick);
            }
        }
        // Insufficient requests change no state: the home re-issues
        // them with an improved destination set (Section 4.1). The
        // echoed `required` set -- as of *this* ordering -- seeds that
        // set, preserving the window of vulnerability until the
        // retry's own ordering.
    }

    // Mutation: silently drop one required destination from the
    // resolved fan-out -- that sharer keeps a stale readable copy.
    if (verify::armed(oracle_.get()) &&
        params_.verify.mutation == verify::Mutation::SubsetDelivery &&
        params_.protocol != ProtocolKind::Directory &&
        msg.type == RequestType::GetExclusive && echo.resolved &&
        echo.resolvedAttempt == msg.attempt) {
        NodeId victim = invalidNode;
        NodeId home = homeOf_(block);
        echo.required.forEach([&](NodeId q) {
            if (q != echo.responder && q != echo.requester &&
                q != home) {
                victim = q;  // ascending iteration: keeps the highest
            }
        });
        if (victim != invalidNode)
            msg.dests.remove(victim);
    }

    // Oracle witness of the verdict (post-mutation, pre-fan-out).
    if (verify::armed(oracle_.get()))
        oracle_->recordOrder(msg, tick);

    // The crossbar does not deliver to the source; when the source is
    // a destination (snooping/multicast requester, or a request whose
    // requester is the home), observe it via a free self-delivery
    // that shares the ordered message's pooled payload.
    if (msg.dests.contains(msg.src)) {
        Tick when = tick + topo_.hubHop();
        nodePort(msg.src).schedule(
            *EventPool<LocalDeliverEvent>::instance().acquire(
                *this, msgref, msg.src, when),
            when, EventPriority::Delivery);
    }
}

bool
System::orderWithReorderMutation(Message &msg, BlockId block,
                                 Tick tick)
{
    TxnEcho &echo = msg.echo;
    SharingTracker &tracker = trackerFor(block);
    ReorderStash &stash = reorderStash_[topo_.hubOf(block)];
    if (!stash.armed) {
        // Stash the first eligible GETX: stamp its verdict from a
        // peek (so its data path proceeds normally) but withhold the
        // tracker apply until the block's next resolved order -- the
        // two grants swap places in the serialized history.
        auto probe = tracker.inspect(block, echo.requester, msg.type);
        if (msg.type == RequestType::GetExclusive &&
            !probe.required.empty() &&
            msg.dests.containsAll(probe.required)) {
            echo.resolved = true;
            echo.resolvedAttempt = msg.attempt;
            echo.responder = probe.responder;
            echo.required = probe.required;
            echo.granted = probe.grantedState;
            chainResolved(block, msg, tick);
            stash.armed = true;
            stash.block = block;
            stash.requester = echo.requester;
            stash.type = msg.type;
            return true;
        }
        return false;  // not eligible: normal ordering path
    }
    if (block != stash.block)
        return false;  // unrelated block: normal ordering path

    // Same block: order this request against the pre-stash state,
    // then retro-apply the stashed grant behind it.
    bool sufficient = false;
    auto result = tracker.applyIfSufficient(
        block, echo.requester, msg.type, msg.dests, sufficient, tick);
    echo.responder = result.responder;
    echo.required = result.required;
    if (sufficient) {
        echo.resolved = true;
        echo.resolvedAttempt = msg.attempt;
        echo.granted = result.grantedState;
        chainResolved(block, msg, tick);
        tracker.apply(block, stash.requester, stash.type, tick);
        stash.armed = false;
    }
    return true;
}

void
System::onDeliver(const Message &msg, NodeId dest, Tick tick)
{
    switch (msg.kind) {
      case MessageKind::Request:
      case MessageKind::Retry: {
        const TxnEcho &echo = msg.echo;

        // Oracle witness: this delivery obliges `dest` to invalidate
        // (resolved GETX snoop naming it in the required set).
        // Recorded at the dispatcher -- independent of the controller
        // that must act -- so a controller that drops the
        // invalidation is caught, not believed.
        if (verify::armed(oracle_.get()) &&
            params_.protocol != ProtocolKind::Directory &&
            msg.type == RequestType::GetExclusive && echo.resolved &&
            echo.resolvedAttempt == msg.attempt &&
            echo.required.contains(dest) && dest != echo.requester) {
            oracle_->recordInvalDue(dest, msg.block(), msg.txn, tick);
        }

        // External requests are a predictor training cue (Sec. 3.2).
        if (params_.protocol == ProtocolKind::Multicast &&
            dest != echo.requester) {
            predictors_[dest]->trainExternalRequest(
                msg.addr, msg.pc, msg.type, echo.requester);
        }

        if (dest == homeOf_(msg.block()))
            memCtrls_[dest]->onHomeRequest(msg, tick);

        if (params_.protocol != ProtocolKind::Directory)
            cacheCtrls_[dest]->onSnoop(msg, tick);

        // Upgrades complete when the requester observes its own
        // ordered request.
        if (dest == echo.requester && echo.resolved &&
            echo.resolvedAttempt == msg.attempt &&
            echo.responder == echo.requester) {
            cacheCtrls_[dest]->onData(msg, tick);
        }
        break;
      }
      case MessageKind::Forward:
        if (verify::armed(oracle_.get()) &&
            msg.type == RequestType::GetExclusive) {
            oracle_->recordInvalDue(dest, msg.block(), msg.txn, tick);
        }
        cacheCtrls_[dest]->onForward(msg, tick);
        break;
      case MessageKind::Invalidate:
        if (verify::armed(oracle_.get()))
            oracle_->recordInvalDue(dest, msg.block(), msg.txn, tick);
        cacheCtrls_[dest]->onInvalidate(msg, tick);
        break;
      case MessageKind::Data:
      case MessageKind::Grant:
        cacheCtrls_[dest]->onData(msg, tick);
        break;
      case MessageKind::Writeback:
        // Functional state already moved to memory at the eviction;
        // the message only models link traffic and delivery timing.
        break;
    }
}

void
System::sendOrLocal(Message msg)
{
    if (msg.dest == msg.src) {
        // Node-local transfer: no network traversal, no traffic.
        NodeId dest = msg.dest;
        DomainPort &port = nodePort(dest);
        Tick now = port.now();
        port.schedule(
            *EventPool<LocalDeliverEvent>::instance().acquire(
                *this, MessageRef(std::move(msg)), dest, now),
            now, EventPriority::Delivery);
        return;
    }
    crossbar_.sendDirect(std::move(msg));
}

void
System::trainRequester(const Message &msg)
{
    if (params_.protocol != ProtocolKind::Multicast)
        return;
    const TxnEcho &echo = msg.echo;
    Predictor &pred = *predictors_[echo.requester];
    if (echo.resolvedAttempt > 0)
        pred.trainRetry(msg.addr, msg.pc, echo.required);
    if (echo.responder != echo.requester) {
        pred.trainResponse(msg.addr, msg.pc, echo.responder,
                           !echo.required.empty());
    }
}

void
System::recordCompletion(const Message &msg, Tick tick)
{
    if (!measuring_)
        return;
    const TxnEcho &echo = msg.echo;
    NodeAccum &acc = nodeStats_[echo.requester];
    ++acc.misses;
    acc.latencySum += tick > echo.issued ? tick - echo.issued : 0;
    acc.retries += echo.resolvedAttempt;
    if (echo.resolvedAttempt >= 2)
        ++acc.doubleRetries;
    if (echo.responder == echo.requester)
        ++acc.upgrades;
    if (echo.responder != invalidNode &&
        echo.responder != echo.requester) {
        ++acc.cacheToCache;
    }
    const bool indirect = params_.protocol == ProtocolKind::Directory
                              ? !echo.required.empty()
                              : echo.resolvedAttempt > 0;
    if (indirect)
        ++acc.indirections;
}

bool
System::sameShard(std::uint16_t a, std::uint16_t b) const
{
    return kernel_.shardOf(a) == kernel_.shardOf(b);
}

void
System::prefetchTracker(BlockId block, NodeId issuer)
{
    unsigned hub = topo_.hubOf(block);
    // Node n lives in domain n + 1 (see hubDomainFor's layout note).
    if (!sameShard(static_cast<std::uint16_t>(issuer + 1),
                   hubDomainFor(params_, hub)))
        return;
    trackers_[hub].prefetch(block);
    if (measuring_)
        ++nodeStats_[issuer].prefetches;
}

void
System::prefetchPredictor(NodeId node, Addr addr, Addr pc)
{
    if (params_.protocol != ProtocolKind::Multicast)
        return;
    unsigned warmed = predictors_[node]->prefetchTables(addr, pc);
    if (measuring_)
        nodeStats_[node].prefetches += warmed;
}

void
System::prefetchCompletion(NodeId requester, BlockId block,
                           std::uint16_t from_domain)
{
    if (!sameShard(from_domain,
                   static_cast<std::uint16_t>(requester + 1)))
        return;
    cacheCtrls_[requester]->prefetchFill(block);
    // Single-writer: the gate above means this runs on the shard (and
    // thus the worker thread) that owns the requester's accumulator.
    if (measuring_)
        ++nodeStats_[requester].prefetches;
}

std::function<void()>
System::cpuDoneCallback()
{
    return [this]() {
        // Counting-only: the final value (and hence the window in
        // which the flag flips) is independent of thread timing.
        if (cpusDone_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            params_.nodes) {
            phaseDone_.store(true, std::memory_order_release);
        }
    };
}

void
System::startPhase(std::uint64_t instructions)
{
    phaseDone_.store(false, std::memory_order_relaxed);
    cpusDone_.store(0, std::memory_order_relaxed);
    for (auto &cpu : cpus_)
        cpu->runFor(instructions, cpuDoneCallback());
}

void
System::runUntilPhaseDone(const char *phase)
{
    // interruptRequested() unwinds a SIGINT/SIGTERM'd run at the next
    // window boundary: the caller sees partial (but well-formed)
    // statistics and is responsible for flushing them as partial
    // output. The flag is never set in normal runs, so checking it
    // here cannot perturb the determinism contract.
    //
    // The predicate runs with every shard quiescent at a barrier, so
    // it is also where the oracle reconciles its staged records: the
    // merge consumes only ticks every domain has advanced past, and
    // the stop-at tick from a repro bundle halts the run here.
    for (;;) {
        ckptStop_ = false;
        bool stopped = kernel_.run([this] {
            if (phaseDone_.load(std::memory_order_acquire) ||
                interruptRequested()) {
                return true;
            }
            if (params_.verify.stopAtTick != 0 &&
                hubPorts_[0].now() >= params_.verify.stopAtTick) {
                stopEarly_ = true;
                return true;
            }
            if (verify::armed(oracle_.get())) {
                Tick safe = hubPorts_[0].now();
                for (const DomainPort &p : hubPorts_)
                    safe = std::min(safe, p.now());
                for (const DomainPort &p : nodePorts_)
                    safe = std::min(safe, p.now());
                if (oracle_->reconcile(safe))
                    return true;
            }
            // Checkpoint leg last: a violation found at the same
            // barrier wins over the snapshot (checkpoints only ever
            // capture a violation-free prefix).
            if (ckptEnabled() &&
                hubPorts_[0].now() >= nextCkptTick_) {
                ckptStop_ = true;
                return true;
            }
            return false;
        });
        dsp_assert(stopped,
                   "%s wedged: event queues drained with CPUs still "
                   "running",
                   phase);
        if (!ckptStop_)
            break;
        // Quiescent barrier at (or just past) a due boundary: snap
        // the whole machine, then keep running the same phase.
        writeCheckpoint();
    }

    // A preempted run (SIGTERM/SIGINT) leaves one final checkpoint so
    // a resumed attempt loses no progress; guarded so the phases
    // unwinding behind this one do not each write another.
    if (interruptRequested() && ckptEnabled() && !finalCkptWritten_) {
        finalCkptWritten_ = true;
        writeCheckpoint();
    }

    // Phase boundary: every appended record is final (events executed
    // so far all precede the barrier tick), so the merge can drain
    // the buffers completely and flush unacknowledged invalidations.
    if (verify::armed(oracle_.get()) && oracle_->reconcile(maxTick))
        raiseOracleViolation();
}

void
System::functionalWarmup(std::uint64_t misses)
{
    std::vector<std::uint64_t> icount(params_.nodes, 0);
    std::uint64_t done = 0;

    while (done < misses) {
        // Least-advanced processor issues next (same interleaving as
        // the trace collector).
        NodeId p = 0;
        for (NodeId n = 1; n < params_.nodes; ++n)
            if (icount[n] < icount[p])
                p = n;

        MemRef ref = workload_.next(p);
        icount[p] += ref.work + 1;

        NodeCaches &caches = cacheCtrls_[p]->caches();
        NodeCaches::StagedAccess staged =
            caches.probeAccess(ref.addr, ref.write);
        caches.commitAccess(staged);
        if (staged.result.need == CoherenceNeed::None)
            continue;

        RequestType type =
            staged.result.need == CoherenceNeed::GetExclusive
                ? RequestType::GetExclusive
                : RequestType::GetShared;
        BlockId block = blockOf(ref.addr);
        auto txn = trackerFor(block).apply(block, p, type);
        // Shadow the warmup synchronously: same states, same write
        // seqnos, no checks (there is no timed history to check).
        if (verify::armed(oracle_.get()))
            oracle_->warmupApply(block, p, type, txn.required,
                                 txn.responder);

        // Coherence fan-in (warmup flavour): peer-cache downgrades
        // and invalidations pair with their l0Invalidate() hooks
        // exactly like the timed paths in CacheController.
        if (type == RequestType::GetShared) {
            if (txn.cacheToCache) {
                NodeCaches &owner = cacheCtrls_[txn.responder]->caches();
                owner.l0Invalidate(block);
                owner.downgrade(block);
            }
        } else {
            txn.required.forEach([&](NodeId q) {
                NodeCaches &peer = cacheCtrls_[q]->caches();
                peer.l0Invalidate(block);
                peer.invalidate(block);
            });
        }

        // The staged result carries this miss's fill cursors; no
        // mutable-latch re-fetch that a peer access could clobber.
        NodeCaches::FillHandle handle = staged.fillHandle();
        auto fill = caches.fill(ref.addr, txn.grantedState, &handle);
        if (fill.evicted) {
            if (isOwnerState(fill.victimState)) {
                trackerFor(fill.victim).evictOwned(fill.victim, p);
                if (verify::armed(oracle_.get()))
                    oracle_->warmupEvict(fill.victim, p, true);
            } else if (fill.victimState == MosiState::Shared) {
                trackerFor(fill.victim).evictShared(fill.victim, p);
                if (verify::armed(oracle_.get()))
                    oracle_->warmupEvict(fill.victim, p, false);
            }
        }
        ++done;

        if (params_.protocol != ProtocolKind::Multicast)
            continue;

        // Train predictors exactly as a trace replay would.
        NodeId home = homeOf_(block);
        DestinationSet predicted = predictors_[p]->predict(
            ref.addr, ref.pc, type, p, home);
        if (!predicted.containsAll(txn.required))
            predictors_[p]->trainRetry(ref.addr, ref.pc,
                                       txn.required);
        if (txn.responder != p) {
            predictors_[p]->trainResponse(ref.addr, ref.pc,
                                          txn.responder,
                                          !txn.required.empty());
        }
        DestinationSet observers = predicted | txn.required;
        observers.forEach([&](NodeId q) {
            if (q != p) {
                predictors_[q]->trainExternalRequest(
                    ref.addr, ref.pc, type, p);
            }
        });
    }
}

System::CacheCounters
System::cacheCounters() const
{
    CacheCounters sums;
    for (const auto &ctrl : cacheCtrls_) {
        const NodeCaches &caches = ctrl->caches();
        sums.accesses += caches.accesses();
        sums.l0Hits += caches.l0Hits();
        sums.l0Absorbed += caches.l0Absorbed();
        // Word attribution: a set walk reads up to `ways` words (it
        // may early-exit at a match), an L0 refresh touches exactly
        // one. Upper bound, from the debug walk counters (0 under
        // NDEBUG); deterministic and shard-count independent.
        sums.wordTouches +=
            caches.l1TagWalks() * params_.caches.l1.ways +
            caches.l2TagWalks() * params_.caches.l2.ways +
            (caches.l0Hits() - caches.l0Absorbed());
    }
    return sums;
}

void
System::beginMeasure()
{
    crossbar_.resetStats();
    for (NodeAccum &acc : nodeStats_)
        acc = NodeAccum{};
    measuring_ = true;
    // Every shard's clock sits at the same window boundary between
    // phases, so this read is identical for every shard count.
    measureStart_ = hubPorts_[0].now();
    eventsBefore_ = kernel_.executed();
    crossingsBefore_ = kernel_.barrierCrossings();
    windowsBefore_ = kernel_.windowsRun();
    calOpsBefore_ = kernel_.calendarOps();
    cachesBefore_ = cacheCounters();
    phaseIndex_ = phaseMeasure;
    if (!stopEarly_)
        startPhase(params_.measureInstrPerCpu);
}

SystemStats
System::run()
{
    killAfter_ = ckpt::killAfterFromEnv();
    restoredFromCkpt_ = restoreIfRequested();

    if (!restoredFromCkpt_) {
        nextCkptTick_ = params_.checkpoint.every;

        if (params_.functionalWarmupMisses > 0)
            functionalWarmup(params_.functionalWarmupMisses);

        // Timing warmup: fill caches and train predictors, stats
        // discarded.
        if (params_.warmupInstrPerCpu > 0 && !stopEarly_) {
            phaseIndex_ = phaseWarmup;
            startPhase(params_.warmupInstrPerCpu);
        } else {
            beginMeasure();
        }
    }

    if (phaseIndex_ == phaseWarmup) {
        runUntilPhaseDone("warmup");
        beginMeasure();
    }

    auto wall_start = std::chrono::steady_clock::now();

    if (!stopEarly_ &&
        !phaseDone_.load(std::memory_order_acquire)) {
        runUntilPhaseDone("measured phase");
    }

    double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    Tick last_finish = measureStart_;
    for (const auto &cpu : cpus_)
        last_finish = std::max(last_finish, cpu->finishTick());

    SystemStats stats;
    stats.runtimeTicks = last_finish - measureStart_;
    stats.instructions =
        std::uint64_t{params_.measureInstrPerCpu} * params_.nodes;
    for (const NodeAccum &acc : nodeStats_) {
        stats.misses += acc.misses;
        stats.indirections += acc.indirections;
        stats.retries += acc.retries;
        stats.doubleRetries += acc.doubleRetries;
        stats.upgrades += acc.upgrades;
        stats.cacheToCache += acc.cacheToCache;
        stats.prefetchIssued += acc.prefetches;
    }
    stats.requestMessages =
        crossbar_.traffic(MessageKind::Request).messages +
        crossbar_.traffic(MessageKind::Retry).messages +
        crossbar_.traffic(MessageKind::Forward).messages +
        crossbar_.traffic(MessageKind::Invalidate).messages;
    stats.writebacks =
        crossbar_.traffic(MessageKind::Writeback).messages;
    stats.trafficBytes = crossbar_.totalBytes();
    stats.eventsExecuted = kernel_.executed() - eventsBefore_;
    stats.barrierCrossings =
        kernel_.barrierCrossings() - crossingsBefore_;
    stats.windowsRun = kernel_.windowsRun() - windowsBefore_;
    stats.calendarOps = kernel_.calendarOps() - calOpsBefore_;
    CacheCounters caches_after = cacheCounters();
    stats.cacheAccesses =
        caches_after.accesses - cachesBefore_.accesses;
    stats.l0Hits = caches_after.l0Hits - cachesBefore_.l0Hits;
    stats.l0Absorbed =
        caches_after.l0Absorbed - cachesBefore_.l0Absorbed;
    stats.wordTouches =
        caches_after.wordTouches - cachesBefore_.wordTouches;
    stats.wallSeconds = wall_seconds;
    stats.stoppedEarly = stopEarly_;
    Tick latency_sum = 0;
    for (const NodeAccum &acc : nodeStats_)
        latency_sum += acc.latencySum;
    stats.avgMissLatencyNs =
        stats.misses ? ticksToNs(latency_sum) /
                           static_cast<double>(stats.misses)
                     : 0.0;
    return stats;
}

void
System::ckptSaveState(ckpt::Writer &w) const
{
    // META: config identity (restore asserts an identical machine)
    // plus the run-phase bookkeeping.
    w.section(0x4d455441u);  // "META"
    w.str(workload_.name());
    w.u32(params_.nodes);
    w.u8(static_cast<std::uint8_t>(params_.protocol));
    w.u8(static_cast<std::uint8_t>(params_.policy));
    w.u8(static_cast<std::uint8_t>(params_.cpuModel));
    w.u32(topo_.hubs());
    w.b(params_.dataChaining);
    w.u64(params_.functionalWarmupMisses);
    w.u64(params_.warmupInstrPerCpu);
    w.u64(params_.measureInstrPerCpu);
    w.b(verify::armed(oracle_.get()));
    w.u64(kernel_.ckptNow());
    w.u8(phaseIndex_);
    w.b(measuring_);
    w.b(stopEarly_);
    w.u64(measureStart_);
    w.u32(cpusDone_.load(std::memory_order_acquire));
    w.u64(eventsBefore_);
    w.u64(crossingsBefore_);
    w.u64(windowsBefore_);
    w.u64(calOpsBefore_);
    w.pod(cachesBefore_);
    w.u64(nextCkptTick_);

    kernel_.ckptSaveCounters(w);
    workload_.ckptSave(w);

    w.section(0x4e4f4445u);  // "NODE"
    for (NodeId n = 0; n < params_.nodes; ++n) {
        cacheCtrls_[n]->ckptSave(w);
        cpus_[n]->ckptSave(w);
        if (params_.protocol == ProtocolKind::Multicast)
            predictors_[n]->ckptSave(w);
    }

    w.section(0x48554253u);  // "HUBS"
    for (unsigned h = 0; h < topo_.hubs(); ++h) {
        trackers_[h].ckptSave(w);
        ownerDataAt_[h].ckptSave(w);
        memReadyAt_[h].ckptSave(w);
        w.pod(reorderStash_[h]);
    }

    crossbar_.ckptSave(w);

    w.section(0x53544154u);  // "STAT"
    w.podVec(nodeStats_);

    if (verify::armed(oracle_.get()))
        oracle_->ckptSave(w);

    // Every in-flight event, in the canonical (when, key) order the
    // kernel exposes -- identical at every shard count.
    w.section(0x45565453u);  // "EVTS"
    std::vector<ShardedKernel::CkptPending> pending =
        kernel_.ckptCollectPending();
    w.u64(pending.size());
    for (const ShardedKernel::CkptPending &p : pending) {
        w.u64(p.when);
        w.u64(p.key);
        w.u16(p.domain);
        p.ev->ckptSave(w);
    }
}

void
System::ckptLoadState(ckpt::Reader &r)
{
    r.section(0x4d455441u);  // "META"
    std::string wl = r.str();
    std::uint32_t nodes = r.u32();
    auto protocol = static_cast<ProtocolKind>(r.u8());
    auto policy = static_cast<PredictorPolicy>(r.u8());
    auto cpu_model = static_cast<CpuModel>(r.u8());
    std::uint32_t hubs = r.u32();
    bool chaining = r.b();
    std::uint64_t fw_misses = r.u64();
    std::uint64_t warmup_instr = r.u64();
    std::uint64_t measure_instr = r.u64();
    bool armed = r.b();
    dsp_assert(wl == workload_.name(),
               "checkpoint taken of workload '%s', this run drives "
               "'%s'",
               wl.c_str(), workload_.name().c_str());
    dsp_assert(nodes == params_.nodes && hubs == topo_.hubs(),
               "checkpoint machine is %u nodes / %u hubs, this run "
               "is %u / %u",
               nodes, hubs, params_.nodes, topo_.hubs());
    dsp_assert(protocol == params_.protocol &&
                   policy == params_.policy &&
                   cpu_model == params_.cpuModel &&
                   chaining == params_.dataChaining,
               "checkpoint protocol/policy/cpu/chaining configuration "
               "differs from this run's");
    dsp_assert(fw_misses == params_.functionalWarmupMisses &&
                   warmup_instr == params_.warmupInstrPerCpu &&
                   measure_instr == params_.measureInstrPerCpu,
               "checkpoint warmup/measure lengths differ from this "
               "run's");
    dsp_assert(armed == verify::armed(oracle_.get()),
               "checkpoint %s the oracle armed, this run %s",
               armed ? "had" : "did not have",
               verify::armed(oracle_.get()) ? "does" : "does not");

    Tick now = r.u64();
    phaseIndex_ = r.u8();
    measuring_ = r.b();
    stopEarly_ = r.b();
    measureStart_ = r.u64();
    std::uint32_t cpus_done = r.u32();
    eventsBefore_ = r.u64();
    crossingsBefore_ = r.u64();
    windowsBefore_ = r.u64();
    calOpsBefore_ = r.u64();
    cachesBefore_ = r.pod<CacheCounters>();
    nextCkptTick_ = r.u64();

    // Queues must sit at the checkpointed clock before any event is
    // re-inserted (calendar-window positioning).
    kernel_.ckptAdvanceTo(now);
    kernel_.ckptLoadCounters(r);
    workload_.ckptLoad(r);

    r.section(0x4e4f4445u);  // "NODE"
    for (NodeId n = 0; n < params_.nodes; ++n) {
        cacheCtrls_[n]->ckptLoad(r);
        cpus_[n]->ckptLoad(r);
        if (params_.protocol == ProtocolKind::Multicast)
            predictors_[n]->ckptLoad(r);
    }

    r.section(0x48554253u);  // "HUBS"
    for (unsigned h = 0; h < topo_.hubs(); ++h) {
        trackers_[h].ckptLoad(r);
        ownerDataAt_[h].ckptLoad(r);
        memReadyAt_[h].ckptLoad(r);
        reorderStash_[h] = r.pod<ReorderStash>();
    }

    crossbar_.ckptLoad(r);

    r.section(0x53544154u);  // "STAT"
    nodeStats_ = r.podVec<NodeAccum>();
    dsp_assert(nodeStats_.size() == params_.nodes,
               "checkpoint carries %zu node accumulators for %u nodes",
               nodeStats_.size(), params_.nodes);

    if (verify::armed(oracle_.get()))
        oracle_->ckptLoad(r);

    r.section(0x45565453u);  // "EVTS"
    std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        Tick when = r.u64();
        std::uint64_t key = r.u64();
        std::uint16_t domain = r.u16();
        kernel_.ckptSchedule(restoreOneEvent(r), domain, when, key);
    }

    cpusDone_.store(cpus_done, std::memory_order_relaxed);
    phaseDone_.store(cpus_done == params_.nodes,
                     std::memory_order_relaxed);
    // runFor() ran in the original process (its counters were just
    // restored); only the end-of-phase callback needs re-supplying,
    // and only on CPUs that had not finished the phase.
    for (auto &cpu : cpus_) {
        if (!cpu->targetReached())
            cpu->ckptRearm(cpuDoneCallback());
    }
}

Event &
System::restoreOneEvent(ckpt::Reader &r)
{
    auto tag = static_cast<ckpt::EventTag>(r.u8());
    switch (tag) {
      case ckpt::EventTag::SysLocalDeliver: {
        Message m = r.pod<Message>();
        NodeId dest = r.u32();
        Tick at = r.u64();
        return *EventPool<LocalDeliverEvent>::instance().acquire(
            *this, MessageRef(std::move(m)), dest, at);
      }
      case ckpt::EventTag::SysSend: {
        Message m = r.pod<Message>();
        return *EventPool<SendEvent>::instance().acquire(
            *this, std::move(m));
      }
      case ckpt::EventTag::SysEvict: {
        BlockId block = r.u64();
        NodeId node = r.u32();
        bool owned = r.b();
        Tick evict_tick = r.u64();
        Tick wb_arrive = r.u64();
        return *EventPool<EvictEvent>::instance().acquire(
            *this, block, node, owned, evict_tick, wb_arrive);
      }
      case ckpt::EventTag::XbarOrder:
        return crossbar_.ckptRestoreOrder(r);
      case ckpt::EventTag::XbarDeliver:
        return crossbar_.ckptRestoreDeliver(r);
      case ckpt::EventTag::XbarChain:
        return crossbar_.ckptRestoreChain(r, kernel_);
      case ckpt::EventTag::CacheIssue: {
        NodeId n = r.u16();
        return cacheCtrls_[n]->ckptRestoreIssue(r);
      }
      case ckpt::EventTag::MemDirContinue:
      case ckpt::EventTag::MemRetry: {
        NodeId n = r.u16();
        return memCtrls_[n]->ckptRestoreEvent(tag, r);
      }
      case ckpt::EventTag::CpuResume:
      case ckpt::EventTag::CpuFetch: {
        NodeId n = r.u16();
        return cpus_[n]->ckptRestoreEvent(tag, r);
      }
    }
    dsp_panic("checkpoint event tag %u unknown",
              static_cast<unsigned>(tag));
}

void
System::writeCheckpoint()
{
    Tick now = kernel_.ckptNow();
    // Advance the due boundary past `now` before serializing: the
    // snapshot then carries the same forward schedule an
    // uninterrupted run would follow, so a restored run writes its
    // later checkpoints at exactly the same ticks.
    while (nextCkptTick_ <= now)
        nextCkptTick_ += params_.checkpoint.every;

    ckpt::Writer w;
    ckptSaveState(w);
    std::string path =
        ckpt::checkpointPath(params_.checkpoint.dir, now);
    if (ckpt::writeCheckpointFile(path, w.buffer())) {
        lastCkptPath_ = path;
        lastCkptTick_ = now;
        ++ckptsWritten_;
        std::fprintf(stderr,
                     "DSP-CKPT {\"op\":\"write\",\"tick\":%llu,"
                     "\"path\":\"%s\"}\n",
                     static_cast<unsigned long long>(now),
                     path.c_str());
        // Compact only after a *successful* write: a failed write
        // must never shrink the set of restore points.
        ckpt::pruneCheckpoints(params_.checkpoint.dir,
                               params_.checkpoint.keep);
    }

    if (killAfter_ != 0 && !restoredFromCkpt_ &&
        ckptsWritten_ >= killAfter_) {
        // Deterministic preemption: die exactly after the Nth write,
        // like a batch job SIGKILL'd mid-flight (killAfterFromEnv()).
        std::fflush(nullptr);
        std::raise(SIGKILL);
    }
}

bool
System::restoreIfRequested()
{
    const CheckpointControl &ctl = params_.checkpoint;
    if (!ctl.restore && ctl.restorePath.empty())
        return false;
    std::string path = ctl.restorePath;
    if (path.empty() && !ctl.dir.empty())
        path = ckpt::newestValidCheckpoint(ctl.dir);
    if (path.empty())
        return false;
    std::string payload;
    if (!ckpt::readCheckpointFile(path, payload)) {
        dsp_warn("checkpoint %s failed validation; starting fresh",
                 path.c_str());
        return false;
    }
    ckpt::Reader r(payload);
    ckptLoadState(r);
    dsp_assert(r.atEnd(),
               "checkpoint %s has trailing bytes past the event list",
               path.c_str());
    lastCkptPath_ = path;
    lastCkptTick_ = kernel_.ckptNow();
    std::fprintf(stderr,
                 "DSP-CKPT {\"op\":\"restore\",\"tick\":%llu,"
                 "\"path\":\"%s\"}\n",
                 static_cast<unsigned long long>(lastCkptTick_),
                 path.c_str());
    return true;
}

void
System::printReproBundle(std::FILE *out) const
{
    const verify::Violation &v = oracle_->violation();
    std::fprintf(
        out,
        "DSP-REPRO {\"workload\":\"%s\",\"nodes\":%u,"
        "\"protocol\":\"%s\",\"policy\":\"%s\",\"cpu\":\"%s\","
        "\"shards\":%u,\"hubs\":%u,\"cluster\":%u,"
        "\"hub_shard\":%s,\"data_chaining\":%s,"
        "\"functional_warmup\":%llu,\"warmup_instr\":%llu,"
        "\"measure_instr\":%llu,\"mutation\":\"%s\","
        "\"stop_at\":%llu,\"checkpoint\":\"%s\","
        "\"checkpoint_tick\":%llu,\"violation_tick\":%llu,"
        "\"violation_kind\":\"%s\",\"draws\":[",
        workload_.name().c_str(), params_.nodes,
        toString(params_.protocol).c_str(),
        toString(params_.policy).c_str(),
        params_.cpuModel == CpuModel::Simple ? "simple" : "detailed",
        params_.shards, params_.crossbar.topology.hubs,
        params_.crossbar.topology.cluster_size,
        params_.hubShard ? "true" : "false",
        params_.dataChaining ? "true" : "false",
        static_cast<unsigned long long>(
            params_.functionalWarmupMisses),
        static_cast<unsigned long long>(params_.warmupInstrPerCpu),
        static_cast<unsigned long long>(params_.measureInstrPerCpu),
        verify::toString(params_.verify.mutation).c_str(),
        static_cast<unsigned long long>(v.tick + 1),
        lastCkptPath_.c_str(),
        static_cast<unsigned long long>(lastCkptTick_),
        static_cast<unsigned long long>(v.tick),
        verify::toString(v.kind).c_str());
    for (NodeId p = 0; p < params_.nodes; ++p) {
        std::fprintf(out, "%s%llu", p == 0 ? "" : ",",
                     static_cast<unsigned long long>(
                         workload_.consumed(p)));
    }
    std::fprintf(out, "]}\n");
}

void
System::raiseOracleViolation()
{
    const verify::Violation &v = oracle_->violation();
    // Publish before any unwind path: death-style tests catch the
    // throw and assert on lastViolation()'s (kind, block, tick).
    verify::setLastViolation(v);
    if (panicThrowsForTest()) {
        throw std::runtime_error("coherence violation: " +
                                 verify::toString(v.kind));
    }
    oracle_->printReport(stderr);
    printReproBundle(stderr);
    runPanicHooks();
    std::exit(verify::violationExitCode);
}

} // namespace dsp
