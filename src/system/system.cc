#include "system/system.hh"

#include <chrono>

#include "cpu/detailed_cpu.hh"
#include "cpu/simple_cpu.hh"
#include "sim/logging.hh"

namespace dsp {

std::string
toString(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Snooping:
        return "snooping";
      case ProtocolKind::Directory:
        return "directory";
      case ProtocolKind::Multicast:
        return "multicast";
    }
    return "?";
}

System::System(Workload &workload, const SystemParams &params)
    : workload_(workload),
      params_(params),
      crossbar_(queue_, params.nodes, params.crossbar),
      tracker_(params.nodes)
{
    dsp_assert(workload.numNodes() == params.nodes,
               "workload built for %u nodes, system has %u",
               workload.numNodes(), params.nodes);

    if ((params_.nodes & (params_.nodes - 1)) == 0)
        homeMask_ = params_.nodes - 1;

    // Pre-size the hot tables: the tracker can hold at most one entry
    // per footprint block, and in-flight transactions are bounded by
    // one blocking miss per node (plus slack for completion races).
    tracker_.reserve(static_cast<std::size_t>(
        workload_.totalFootprint() / blockBytes));
    txns_.reserve(4 * params_.nodes);

    params_.predictor.numNodes = params_.nodes;
    params_.cpu.l1_ns = params_.latency.l1_ns;
    params_.cpu.l2_ns = params_.latency.l2_ns;

    if (params_.protocol == ProtocolKind::Multicast) {
        predictors_ =
            makePredictorsPerNode(params_.policy, params_.predictor);
    }

    for (NodeId n = 0; n < params_.nodes; ++n) {
        cacheCtrls_.push_back(
            std::make_unique<CacheController>(*this, n));
        memCtrls_.push_back(
            std::make_unique<MemoryController>(*this, n));
        if (params_.cpuModel == CpuModel::Simple) {
            cpus_.push_back(std::make_unique<SimpleCpu>(
                queue_, workload_, n, *cacheCtrls_[n], params_.cpu));
        } else {
            cpus_.push_back(std::make_unique<DetailedCpu>(
                queue_, workload_, n, *cacheCtrls_[n], params_.cpu));
        }
    }

    crossbar_.setOrderHandler(
        [this](const MessageRef &msg, Tick tick) {
            onOrder(msg, tick);
        });
    crossbar_.setDeliverHandler(
        [this](const Message &msg, NodeId dest, Tick tick) {
            onDeliver(msg, dest, tick);
        });
}

System::~System() = default;

struct System::LocalDeliverEvent final : Event {
    LocalDeliverEvent(System &s, MessageRef m, NodeId d, Tick t)
        : sys(s), msg(std::move(m)), dest(d), at(t)
    {
    }

    void process() override { sys.onDeliver(*msg, dest, at); }

    void
    release() override
    {
        EventPool<LocalDeliverEvent>::instance().release(this);
    }

    System &sys;
    MessageRef msg;
    NodeId dest;
    Tick at;
};

struct System::SendEvent final : Event {
    SendEvent(System &s, Message m) : sys(s), msg(std::move(m)) {}

    void process() override { sys.sendOrLocal(std::move(msg)); }

    void
    release() override
    {
        EventPool<SendEvent>::instance().release(this);
    }

    System &sys;
    Message msg;
};

void
System::sendLater(Message msg, Tick when)
{
    queue_.schedule(
        *EventPool<SendEvent>::instance().acquire(*this,
                                                  std::move(msg)),
        when, EventPriority::Controller);
}

DestinationSet
System::destinationsFor(BlockId block, Addr addr, Addr pc,
                        RequestType type, NodeId requester)
{
    switch (params_.protocol) {
      case ProtocolKind::Snooping:
        return DestinationSet::all(params_.nodes);
      case ProtocolKind::Directory:
        return DestinationSet::of(homeOf_(block));
      case ProtocolKind::Multicast: {
        DestinationSet predicted = predictors_[requester]->predict(
            addr, pc, type, requester, homeOf_(block));
        dsp_assert(predicted.contains(requester) &&
                       predicted.contains(homeOf_(block)),
                   "prediction violates the minimal-set contract");
        return predicted;
      }
    }
    return DestinationSet::all(params_.nodes);
}

void
System::onOrder(const MessageRef &msgref, Tick tick)
{
    const Message &msg = *msgref;
    auto it = txns_.find(msg.txn);
    dsp_assert(it != txns_.end(), "ordered message without txn");
    Txn &txn = it->second;
    ++txn.attempts;

    BlockId block = msg.block();

    if (params_.protocol == ProtocolKind::Directory) {
        auto result = tracker_.apply(block, txn.requester, msg.type);
        txn.resolved = true;
        txn.resolvedAttempt = msg.attempt;
        txn.responder = result.responder;
        txn.required = result.required;
        txn.granted = result.grantedState;
    } else {
        bool sufficient = false;
        auto result = tracker_.applyIfSufficient(
            block, txn.requester, msg.type, msg.dests, sufficient);
        if (sufficient) {
            txn.resolved = true;
            txn.resolvedAttempt = msg.attempt;
            txn.responder = result.responder;
            txn.required = result.required;
            txn.granted = result.grantedState;
            txn.retries = msg.attempt;
        }
        // Insufficient requests change no state: the home re-issues
        // them with an improved destination set (Section 4.1).
    }

    // The crossbar does not deliver to the source; when the source is
    // a destination (snooping/multicast requester, or a request whose
    // requester is the home), observe it via a free self-delivery
    // that shares the ordered message's pooled payload.
    if (msg.dests.contains(msg.src)) {
        Tick when = tick + nsToTicks(params_.crossbar.traversal_ns / 2);
        queue_.schedule(*EventPool<LocalDeliverEvent>::instance()
                             .acquire(*this, msgref, msg.src, when),
                        when, EventPriority::Delivery);
    }
}

void
System::onDeliver(const Message &msg, NodeId dest, Tick tick)
{
    switch (msg.kind) {
      case MessageKind::Request:
      case MessageKind::Retry: {
        auto it = txns_.find(msg.txn);
        if (it == txns_.end())
            return;  // transaction already completed
        Txn &txn = it->second;

        // External requests are a predictor training cue (Sec. 3.2).
        if (params_.protocol == ProtocolKind::Multicast &&
            dest != txn.requester) {
            predictors_[dest]->trainExternalRequest(
                msg.addr, msg.pc, msg.type, txn.requester);
        }

        if (dest == homeOf_(msg.block()))
            memCtrls_[dest]->onHomeRequest(msg, txn, tick);

        if (params_.protocol != ProtocolKind::Directory)
            cacheCtrls_[dest]->onSnoop(msg, txn, tick);

        // Upgrades complete when the requester observes its own
        // ordered request.
        if (dest == txn.requester && txn.resolved &&
            txn.resolvedAttempt == msg.attempt &&
            txn.responder == txn.requester) {
            cacheCtrls_[dest]->onData(msg, tick);
        }
        break;
      }
      case MessageKind::Forward:
        cacheCtrls_[dest]->onForward(msg, tick);
        break;
      case MessageKind::Invalidate:
        cacheCtrls_[dest]->onInvalidate(msg, tick);
        break;
      case MessageKind::Data:
      case MessageKind::Grant:
        cacheCtrls_[dest]->onData(msg, tick);
        break;
      case MessageKind::Writeback:
        // Functional state already moved to memory at the eviction;
        // the message only models link traffic and delivery timing.
        break;
    }
}

void
System::sendOrLocal(Message msg)
{
    if (msg.dest == msg.src) {
        // Node-local transfer: no network traversal, no traffic.
        Tick now = queue_.now();
        NodeId dest = msg.dest;
        queue_.schedule(
            *EventPool<LocalDeliverEvent>::instance().acquire(
                *this, MessageRef(std::move(msg)), dest, now),
            now, EventPriority::Delivery);
        return;
    }
    crossbar_.sendDirect(std::move(msg));
}

void
System::trainRequester(const Txn &txn)
{
    if (params_.protocol != ProtocolKind::Multicast)
        return;
    Predictor &pred = *predictors_[txn.requester];
    if (txn.retries > 0)
        pred.trainRetry(txn.addr, txn.pc, txn.required);
    if (txn.responder != txn.requester) {
        pred.trainResponse(txn.addr, txn.pc, txn.responder,
                           !txn.required.empty());
    }
}

void
System::recordCompletion(const Txn &txn, Tick tick)
{
    if (!measuring_)
        return;
    ++misses_;
    latencySum_ += tick > txn.issued ? tick - txn.issued : 0;
    retriesTotal_ += txn.retries;
    if (txn.retries >= 2)
        ++doubleRetries_;
    if (txn.responder == txn.requester)
        ++upgrades_;
    if (txn.responder != invalidNode &&
        txn.responder != txn.requester) {
        ++c2c_;
    }
    const bool indirect = params_.protocol == ProtocolKind::Directory
                              ? !txn.required.empty()
                              : txn.retries > 0;
    if (indirect)
        ++indirections_;
}

void
System::startPhase(std::uint64_t instructions)
{
    phaseDone_ = false;
    cpusDone_ = 0;
    for (auto &cpu : cpus_) {
        cpu->runFor(instructions, [this]() {
            if (++cpusDone_ == params_.nodes)
                phaseDone_ = true;
        });
    }
}

void
System::functionalWarmup(std::uint64_t misses)
{
    std::vector<std::uint64_t> icount(params_.nodes, 0);
    std::uint64_t done = 0;

    while (done < misses) {
        // Least-advanced processor issues next (same interleaving as
        // the trace collector).
        NodeId p = 0;
        for (NodeId n = 1; n < params_.nodes; ++n)
            if (icount[n] < icount[p])
                p = n;

        MemRef ref = workload_.next(p);
        icount[p] += ref.work + 1;

        NodeCaches &caches = cacheCtrls_[p]->caches();
        auto result = caches.access(ref.addr, ref.write);
        if (result.need == CoherenceNeed::None)
            continue;

        RequestType type = result.need == CoherenceNeed::GetExclusive
                               ? RequestType::GetExclusive
                               : RequestType::GetShared;
        BlockId block = blockOf(ref.addr);
        auto txn = tracker_.apply(block, p, type);

        if (type == RequestType::GetShared) {
            if (txn.cacheToCache)
                cacheCtrls_[txn.responder]->caches().downgrade(block);
        } else {
            txn.required.forEach([&](NodeId q) {
                cacheCtrls_[q]->caches().invalidate(block);
            });
        }

        auto fill = caches.fill(ref.addr, txn.grantedState);
        if (fill.evicted) {
            if (isOwnerState(fill.victimState))
                tracker_.evictOwned(fill.victim, p);
            else if (fill.victimState == MosiState::Shared)
                tracker_.evictShared(fill.victim, p);
        }
        ++done;

        if (params_.protocol != ProtocolKind::Multicast)
            continue;

        // Train predictors exactly as a trace replay would.
        NodeId home = homeOf_(block);
        DestinationSet predicted = predictors_[p]->predict(
            ref.addr, ref.pc, type, p, home);
        if (!predicted.containsAll(txn.required))
            predictors_[p]->trainRetry(ref.addr, ref.pc,
                                       txn.required);
        if (txn.responder != p) {
            predictors_[p]->trainResponse(ref.addr, ref.pc,
                                          txn.responder,
                                          !txn.required.empty());
        }
        DestinationSet observers = predicted | txn.required;
        observers.forEach([&](NodeId q) {
            if (q != p) {
                predictors_[q]->trainExternalRequest(
                    ref.addr, ref.pc, type, p);
            }
        });
    }
}

SystemStats
System::run()
{
    if (params_.functionalWarmupMisses > 0)
        functionalWarmup(params_.functionalWarmupMisses);

    // Timing warmup: fill caches and train predictors, stats
    // discarded.
    if (params_.warmupInstrPerCpu > 0) {
        startPhase(params_.warmupInstrPerCpu);
        while (!phaseDone_ && !queue_.empty())
            queue_.step();
        dsp_assert(phaseDone_, "warmup wedged: event queue drained "
                               "with CPUs still running");
    }

    crossbar_.resetStats();
    misses_ = indirections_ = retriesTotal_ = upgrades_ = c2c_ = 0;
    doubleRetries_ = 0;
    latencySum_ = 0;
    measuring_ = true;
    measureStart_ = queue_.now();
    std::uint64_t events_before = queue_.executed();
    auto wall_start = std::chrono::steady_clock::now();

    startPhase(params_.measureInstrPerCpu);
    while (!phaseDone_ && !queue_.empty())
        queue_.step();
    dsp_assert(phaseDone_, "measured phase wedged");

    double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    Tick last_finish = measureStart_;
    for (const auto &cpu : cpus_)
        last_finish = std::max(last_finish, cpu->finishTick());

    SystemStats stats;
    stats.runtimeTicks = last_finish - measureStart_;
    stats.instructions =
        std::uint64_t{params_.measureInstrPerCpu} * params_.nodes;
    stats.misses = misses_;
    stats.indirections = indirections_;
    stats.retries = retriesTotal_;
    stats.doubleRetries = doubleRetries_;
    stats.upgrades = upgrades_;
    stats.cacheToCache = c2c_;
    stats.requestMessages =
        crossbar_.traffic(MessageKind::Request).messages +
        crossbar_.traffic(MessageKind::Retry).messages +
        crossbar_.traffic(MessageKind::Forward).messages +
        crossbar_.traffic(MessageKind::Invalidate).messages;
    stats.writebacks =
        crossbar_.traffic(MessageKind::Writeback).messages;
    stats.trafficBytes = crossbar_.totalBytes();
    stats.eventsExecuted = queue_.executed() - events_before;
    stats.wallSeconds = wall_seconds;
    stats.avgMissLatencyNs =
        misses_ ? ticksToNs(latencySum_) / static_cast<double>(misses_)
                : 0.0;
    return stats;
}

} // namespace dsp
