#include "sim/logging.hh"
#include "system/system.hh"
#include "verify/oracle.hh"

namespace dsp {

MemoryController::MemoryController(System &system, NodeId node,
                                   DomainPort port)
    : sys_(system), node_(node), port_(port)
{
}

struct MemoryController::DirContinueEvent final : Event {
    DirContinueEvent(MemoryController &c, Message m)
        : ctrl(c), msg(std::move(m))
    {
    }

    void process() override { ctrl.directoryContinue(msg); }

    void
    release() override
    {
        EventPool<DirContinueEvent>::instance().release(this);
    }

    void
    ckptSave(ckpt::Writer &w) const override
    {
        w.u8(static_cast<std::uint8_t>(
            ckpt::EventTag::MemDirContinue));
        w.u16(static_cast<std::uint16_t>(ctrl.node_));
        w.pod(msg);
    }

    MemoryController &ctrl;
    Message msg;
};

struct MemoryController::RetryEvent final : Event {
    RetryEvent(MemoryController &c, Message m)
        : ctrl(c), msg(std::move(m))
    {
    }

    void
    process() override
    {
        ctrl.sys_.crossbar_.sendOrdered(std::move(msg));
    }

    void
    release() override
    {
        EventPool<RetryEvent>::instance().release(this);
    }

    void
    ckptSave(ckpt::Writer &w) const override
    {
        w.u8(static_cast<std::uint8_t>(ckpt::EventTag::MemRetry));
        w.u16(static_cast<std::uint16_t>(ctrl.node_));
        w.pod(msg);
    }

    MemoryController &ctrl;
    Message msg;
};

Event &
MemoryController::ckptRestoreEvent(ckpt::EventTag tag,
                                   ckpt::Reader &r)
{
    Message m = r.pod<Message>();
    if (tag == ckpt::EventTag::MemDirContinue) {
        return *EventPool<DirContinueEvent>::instance().acquire(
            *this, std::move(m));
    }
    dsp_assert(tag == ckpt::EventTag::MemRetry,
               "memory controller %u asked to restore event tag %u",
               node_, static_cast<unsigned>(tag));
    return *EventPool<RetryEvent>::instance().acquire(*this,
                                                      std::move(m));
}

void
MemoryController::onHomeRequest(const Message &msg, Tick tick)
{
    if (sys_.params().protocol == ProtocolKind::Directory)
        handleDirectory(msg, tick);
    else
        handleMulticastHome(msg, tick);
}

void
MemoryController::handleDirectory(const Message &msg, Tick tick)
{
    Tick memory = nsToTicks(sys_.params().latency.memory_ns);

    // Directory access (co-located with memory, 80 ns) precedes any
    // response or forward. The echo carries everything the response
    // needs, so the scheduled continuation copies only the message.
    Tick done = tick + memory;

    port_.schedule(
        *EventPool<DirContinueEvent>::instance().acquire(*this, msg),
        done, EventPriority::Controller);
}

void
MemoryController::directoryContinue(const Message &msg)
{
    Tick memory = nsToTicks(sys_.params().latency.memory_ns);
    const TxnEcho &echo = msg.echo;
    // Invalidate every sharer (GS320: the totally-ordered
    // interconnect removes the need for acks).
    if (msg.type == RequestType::GetExclusive) {
        echo.required.forEach([&](NodeId q) {
            if (q == echo.responder)
                return;  // the owner learns via the forward
            Message inval;
            inval.kind = MessageKind::Invalidate;
            inval.txn = msg.txn;
            inval.addr = msg.addr;
            inval.type = msg.type;
            inval.src = node_;
            inval.dest = q;
            inval.echo = echo;
            sys_.sendOrLocal(inval);
        });
    }

    if (echo.responder == invalidNode) {
        // Memory supplies the data -- the read itself (one memory
        // latency, already elapsed since the delivery) cannot *start*
        // before an in-flight writeback for the block has landed,
        // same as the multicast home's chaining below.
        Tick now = port_.now();
        Tick start = std::max(now, echo.supplyEarliest + memory);
        // Read-start semantics: the memory read ran over the
        // directory-access latency that just elapsed (or is
        // re-issued at the chained bound).
        if (verify::armed(sys_.oracle())) {
            sys_.oracle()->recordSupply(
                node_, invalidNode, msg.block(), msg.txn,
                std::max(now - memory, echo.supplyEarliest), now);
        }
        Message data;
        data.kind = MessageKind::Data;
        data.txn = msg.txn;
        data.addr = msg.addr;
        data.pc = msg.pc;
        data.type = msg.type;
        data.src = node_;
        data.dest = echo.requester;
        data.echo = echo;
        sys_.prefetchCompletion(echo.requester, msg.block(),
                                port_.domain());
        if (start > now)
            sys_.sendLater(std::move(data), start);
        else
            sys_.sendOrLocal(std::move(data));
    } else if (echo.responder == echo.requester) {
        // Upgrade: dataless grant back to the requester.
        Message grant;
        grant.kind = MessageKind::Grant;
        grant.txn = msg.txn;
        grant.addr = msg.addr;
        grant.type = msg.type;
        grant.src = node_;
        grant.dest = echo.requester;
        grant.echo = echo;
        sys_.prefetchCompletion(echo.requester, msg.block(),
                                port_.domain());
        sys_.sendOrLocal(std::move(grant));
    } else {
        // 3-hop: forward to the owner.
        Message fwd;
        fwd.kind = MessageKind::Forward;
        fwd.txn = msg.txn;
        fwd.addr = msg.addr;
        fwd.pc = msg.pc;
        fwd.type = msg.type;
        fwd.src = node_;
        fwd.dest = echo.responder;
        fwd.echo = echo;
        sys_.sendOrLocal(std::move(fwd));
    }
}

void
MemoryController::handleMulticastHome(const Message &msg, Tick tick)
{
    const TxnEcho &echo = msg.echo;
    Tick memory = nsToTicks(sys_.params().latency.memory_ns);

    if (!echo.resolved) {
        // Insufficient destination set: the directory re-issues the
        // request with an improved set after its access latency.
        // Attempts are strictly sequential -- the home only issues
        // attempt a+1 from attempt a's own delivery, and a resolved
        // attempt never reaches this branch -- so this unresolved
        // echo is necessarily the transaction's latest ordering and
        // exactly one retry is issued per failed attempt. (The old
        // shared transaction table re-checked this against a live
        // attempts counter; the echo design makes the check
        // unexpressible, and the invariant holds structurally.)
        std::uint8_t next_attempt =
            static_cast<std::uint8_t>(msg.attempt + 1);

        // Mutation: the home re-issues the retry with the *same*
        // attempt number -- the predictor-learning invariant (retries
        // must make monotone forward progress) breaks and the oracle
        // flags a retry-regression at the next window boundary.
        if (verify::armed(sys_.oracle()) &&
            sys_.params().verify.mutation ==
                verify::Mutation::DuplicateRetry) {
            next_attempt = msg.attempt;
        }

        Message retry;
        retry.kind = MessageKind::Retry;
        retry.txn = msg.txn;
        retry.addr = msg.addr;
        retry.pc = msg.pc;
        retry.type = msg.type;
        retry.src = node_;
        retry.attempt = next_attempt;
        retry.echo.issued = echo.issued;
        retry.echo.requester = echo.requester;

        if (next_attempt >= 2) {
            // Third attempt: broadcast, guaranteed to succeed
            // (Section 4.1).
            retry.dests = DestinationSet::all(sys_.params().nodes);
        } else {
            // Improved set: the observers the ordering point saw this
            // attempt miss, plus the requester and the home. A racing
            // request can still invalidate this between that ordering
            // and the retry's own ordering (the window of
            // vulnerability).
            retry.dests = echo.required;
            retry.dests.add(echo.requester);
            retry.dests.add(node_);
        }
        port_.schedule(*EventPool<RetryEvent>::instance().acquire(
                           *this, std::move(retry)),
                       tick + memory, EventPriority::Controller);
        return;
    }

    // Resolved transaction: the home only acts when memory is the
    // responder (and only for the resolving attempt).
    if (echo.resolvedAttempt != msg.attempt)
        return;
    if (echo.responder != invalidNode) {
        // Mutation: the home supplies from memory although a cache
        // owns the block -- the requester fills with data that misses
        // every write since the owner's. Recorded honestly (the data
        // really does come from memory).
        if (verify::armed(sys_.oracle()) &&
            sys_.params().verify.mutation ==
                verify::Mutation::StaleOwnerSupply &&
            echo.responder != echo.requester) {
            Tick start = std::max(tick, echo.supplyEarliest);
            sys_.oracle()->recordSupply(node_, invalidNode,
                                        msg.block(), msg.txn, start,
                                        tick);
            Message data;
            data.kind = MessageKind::Data;
            data.txn = msg.txn;
            data.addr = msg.addr;
            data.pc = msg.pc;
            data.type = msg.type;
            data.src = node_;
            data.dest = echo.requester;
            data.echo = echo;
            sys_.sendLater(std::move(data), start + memory);
        }
        return;
    }

    // Memory read -- chained behind an in-flight writeback when the
    // ordering point recorded one.
    Tick start = std::max(tick, echo.supplyEarliest);
    if (verify::armed(sys_.oracle())) {
        sys_.oracle()->recordSupply(node_, invalidNode, msg.block(),
                                    msg.txn, start, tick);
    }
    Message data;
    data.kind = MessageKind::Data;
    data.txn = msg.txn;
    data.addr = msg.addr;
    data.pc = msg.pc;
    data.type = msg.type;
    data.src = node_;
    data.dest = echo.requester;
    data.echo = echo;
    // Warm the requester's MSHR bucket and fill sets while the memory
    // data is in flight (same-shard gated inside).
    sys_.prefetchCompletion(echo.requester, msg.block(),
                            port_.domain());
    sys_.sendLater(std::move(data), start + memory);
}

} // namespace dsp
