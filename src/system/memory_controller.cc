#include "sim/logging.hh"
#include "system/system.hh"

namespace dsp {

MemoryController::MemoryController(System &system, NodeId node)
    : sys_(system), node_(node)
{
}

void
MemoryController::onHomeRequest(const Message &msg, CoherenceTxn &txn,
                                Tick tick)
{
    if (sys_.params().protocol == ProtocolKind::Directory)
        handleDirectory(msg, txn, tick);
    else
        handleMulticastHome(msg, txn, tick);
}

void
MemoryController::handleDirectory(const Message &msg,
                                  const CoherenceTxn &txn_ref,
                                  Tick tick)
{
    // Copy: the scheduled response runs after the reference may die.
    const System::Txn txn = txn_ref;
    Tick memory = nsToTicks(sys_.params().latency.memory_ns);

    // Directory access (co-located with memory, 80 ns) precedes any
    // response or forward.
    Tick done = tick + memory;

    sys_.queue_.schedule(
        done,
        [this, msg, txn]() {
            // Invalidate every sharer (GS320: the totally-ordered
            // interconnect removes the need for acks).
            if (msg.type == RequestType::GetExclusive) {
                txn.required.forEach([&](NodeId q) {
                    if (q == txn.responder)
                        return;  // the owner learns via the forward
                    Message inval;
                    inval.kind = MessageKind::Invalidate;
                    inval.txn = msg.txn;
                    inval.addr = msg.addr;
                    inval.type = msg.type;
                    inval.src = node_;
                    inval.dest = q;
                    sys_.sendOrLocal(inval);
                });
            }

            if (txn.responder == invalidNode) {
                // Memory supplies the data.
                Message data;
                data.kind = MessageKind::Data;
                data.txn = msg.txn;
                data.addr = msg.addr;
                data.pc = msg.pc;
                data.type = msg.type;
                data.src = node_;
                data.dest = txn.requester;
                sys_.sendOrLocal(data);
            } else if (txn.responder == txn.requester) {
                // Upgrade: dataless grant back to the requester.
                Message grant;
                grant.kind = MessageKind::Grant;
                grant.txn = msg.txn;
                grant.addr = msg.addr;
                grant.type = msg.type;
                grant.src = node_;
                grant.dest = txn.requester;
                sys_.sendOrLocal(grant);
            } else {
                // 3-hop: forward to the owner.
                Message fwd;
                fwd.kind = MessageKind::Forward;
                fwd.txn = msg.txn;
                fwd.addr = msg.addr;
                fwd.pc = msg.pc;
                fwd.type = msg.type;
                fwd.src = node_;
                fwd.dest = txn.responder;
                sys_.sendOrLocal(fwd);
            }
        },
        EventPriority::Controller);
}

void
MemoryController::handleMulticastHome(const Message &msg,
                                      CoherenceTxn &txn, Tick tick)
{
    Tick memory = nsToTicks(sys_.params().latency.memory_ns);

    if (!txn.resolved) {
        // Insufficient destination set: the directory re-issues the
        // request with an improved set after its access latency. Only
        // the latest attempt's delivery triggers a retry.
        if (msg.attempt + 1 != txn.attempts)
            return;
        std::uint8_t next_attempt = msg.attempt + 1;
        Addr addr = msg.addr;
        sys_.queue_.schedule(
            tick + memory,
            [this, msg, addr, next_attempt]() {
                auto txn_it = sys_.txns_.find(msg.txn);
                if (txn_it == sys_.txns_.end() ||
                    txn_it->second.resolved) {
                    return;
                }
                System::Txn &t = txn_it->second;

                Message retry;
                retry.kind = MessageKind::Retry;
                retry.txn = msg.txn;
                retry.addr = addr;
                retry.pc = msg.pc;
                retry.type = msg.type;
                retry.src = node_;
                retry.attempt = next_attempt;

                if (next_attempt >= 2) {
                    // Third attempt: broadcast, guaranteed to succeed
                    // (Section 4.1).
                    retry.dests =
                        DestinationSet::all(sys_.params().nodes);
                } else {
                    // Improved set: current owner + sharers, plus the
                    // requester and the home. A racing request can
                    // still invalidate this between now and the
                    // retry's ordering (the window of vulnerability).
                    auto insp = sys_.tracker_.inspect(
                        blockOf(addr), t.requester, msg.type);
                    retry.dests = insp.required;
                    retry.dests.add(t.requester);
                    retry.dests.add(node_);
                }
                sys_.crossbar_.sendOrdered(std::move(retry));
            },
            EventPriority::Controller);
        return;
    }

    // Resolved transaction: the home only acts when memory is the
    // responder (and only for the resolving attempt).
    if (txn.resolvedAttempt != msg.attempt)
        return;
    if (txn.responder != invalidNode)
        return;

    Message data;
    data.kind = MessageKind::Data;
    data.txn = msg.txn;
    data.addr = msg.addr;
    data.pc = msg.pc;
    data.type = msg.type;
    data.src = node_;
    data.dest = txn.requester;
    sys_.sendLater(std::move(data), tick + memory);
}

} // namespace dsp
