#include "sim/logging.hh"
#include "system/system.hh"
#include "verify/oracle.hh"

namespace dsp {

CacheController::CacheController(System &system, NodeId node,
                                 DomainPort port)
    : sys_(system), node_(node), port_(port),
      caches_(system.params().caches)
{
}

struct CacheController::IssueEvent final : Event {
    IssueEvent(CacheController &c, BlockId b, Addr a, Addr p,
               RequestType t, Tick w)
        : ctrl(c), block(b), addr(a), pc(p), type(t), when(w)
    {
    }

    void
    process() override
    {
        ctrl.issueRequest(block, addr, pc, type, when);
    }

    void
    release() override
    {
        EventPool<IssueEvent>::instance().release(this);
    }

    void
    ckptSave(ckpt::Writer &w) const override
    {
        w.u8(static_cast<std::uint8_t>(ckpt::EventTag::CacheIssue));
        w.u16(static_cast<std::uint16_t>(ctrl.node_));
        w.u64(block);
        w.u64(addr);
        w.u64(pc);
        w.u8(static_cast<std::uint8_t>(type));
        w.u64(when);
    }

    CacheController &ctrl;
    BlockId block;
    Addr addr;
    Addr pc;
    RequestType type;
    Tick when;
};

AccessReply
CacheController::access(Addr addr, Addr pc, bool is_write, Tick when,
                        const Completion &on_complete, Addr next_hint)
{
    // Warm the host cache for the *next* access's L2 set while this
    // one executes -- the CPU models pass the upcoming address from
    // the workload refill buffer. Purely a host-side hint; simulated
    // state and timing are untouched.
    if (next_hint != 0)
        caches_.prefetchSets(blockOf(next_hint));

    BlockId block = blockOf(addr);

    // Secondary access to an in-flight block: coalesce into the MSHR
    // and replay once the primary fill returns. The MSHR file is
    // empty for the vast majority of accesses (L1/L2 hits with no
    // outstanding miss), so skip the hash probe outright then.
    if (!mshrs_.empty()) {
        if (auto it = mshrs_.find(block); it != mshrs_.end()) {
            it->second.queued.push_back(
                Mshr::Queued{addr, pc, is_write, on_complete});
            return AccessReply::Miss;
        }
    }

    // Staged pipeline: the probe classifies (and, for repeats, the L0
    // filter answers without walking L1/L2); the commit applies the
    // LRU/state effects and, on a miss, hands back the FillHandle --
    // no re-fetch through a mutable latch, so a second access can
    // never clobber this miss's walk cursors.
    NodeCaches::StagedAccess staged =
        caches_.probeAccess(addr, is_write);
    caches_.commitAccess(staged);
    if (staged.result.need == CoherenceNeed::None) {
        return staged.result.l1Hit ? AccessReply::L1Hit
                                   : AccessReply::L2Hit;
    }

    RequestType type = staged.result.need == CoherenceNeed::GetExclusive
                           ? RequestType::GetExclusive
                           : RequestType::GetShared;

    Mshr &mshr = mshrs_[block];
    mshr.type = type;
    mshr.handle = staged.fillHandle();
    mshr.waiters.push_back(on_complete);

    // The issue event (at least one calendar hop away) reads this
    // node's predictor table in destinationsFor(); warm its set now.
    sys_.prefetchPredictor(node_, addr, pc);

    if (when < port_.now())
        when = port_.now();
    port_.schedule(
        *EventPool<IssueEvent>::instance().acquire(*this, block, addr,
                                                   pc, type, when),
        when, EventPriority::Controller);
    return AccessReply::Miss;
}

void
CacheController::issueRequest(BlockId block, Addr addr, Addr pc,
                              RequestType type, Tick when)
{
    auto it = mshrs_.find(block);
    dsp_assert(it != mshrs_.end(), "issue without mshr");

    // Node-local id: unique across the system without any shared
    // counter, and identical for every shard count. 16 node bits so
    // ids stay collision-free up to maxNodes (8 overflowed at 256+).
    TxnId id = (nextTxnSeq_++ << 16) | node_;
    it->second.txn = id;

    Message msg;
    msg.kind = MessageKind::Request;
    msg.txn = id;
    msg.addr = addr;
    msg.pc = pc;
    msg.type = type;
    msg.src = node_;
    msg.dests = sys_.destinationsFor(block, addr, pc, type, node_);
    msg.echo.issued = when;
    msg.echo.requester = node_;
    // The ordering point applies this request to the hub's sharing
    // tracker one hop from now; warm that bucket while the request is
    // in flight (gated to same-shard inside).
    sys_.prefetchTracker(block, node_);
    sys_.crossbar_.sendOrdered(std::move(msg));
}

void
CacheController::invalidateLocal(BlockId block)
{
    if (auto it = mshrs_.find(block); it != mshrs_.end()) {
        // The block is in flight; drop it right after the fill so the
        // waiting access still completes (it held permission at its
        // serialization point).
        it->second.invalidateAfterFill = true;
        return;
    }
    // Coherence fan-in: every invalidation reaching this node's
    // caches goes through here, so this is the one l0Invalidate()
    // call site for them (see docs/access_pipeline.md).
    caches_.l0Invalidate(block);
    caches_.invalidate(block);
}

void
CacheController::onSnoop(const Message &msg, Tick tick)
{
    // Only the resolving attempt's deliveries carry snoop duties;
    // earlier (insufficient) attempts are ignored by the caches.
    const TxnEcho &echo = msg.echo;
    if (!echo.resolved || echo.resolvedAttempt != msg.attempt)
        return;

    BlockId block = msg.block();

    if (echo.responder == node_ && echo.responder != echo.requester) {
        // We own the block: supply data after the L2 access -- but no
        // earlier than our own fill's expected arrival, if the
        // ordering point chained this transfer behind it.
        Tick start = std::max(tick, echo.supplyEarliest);
        // Mutation: read the L2 immediately, ignoring the chained
        // bound -- stale bytes go on the wire when the bound was the
        // constraint. Recorded honestly below; the oracle compares
        // the actual start against the transaction's bound.
        if (verify::armed(sys_.oracle()) &&
            sys_.params().verify.mutation ==
                verify::Mutation::StaleDataSupply) {
            start = tick;
        }
        Tick send = start + nsToTicks(sys_.params().latency.l2_ns);

        if (msg.type == RequestType::GetExclusive) {
            invalidateLocal(block);
            if (verify::armed(sys_.oracle())) {
                sys_.oracle()->recordInvalDone(node_, block, msg.txn,
                                               tick);
            }
        } else {
            // Downgrade stales any L0 writable result for the block.
            caches_.l0Invalidate(block);
            caches_.downgrade(block);
        }

        if (verify::armed(sys_.oracle())) {
            sys_.oracle()->recordSupply(node_, node_, block, msg.txn,
                                        start, tick);
        }

        Message data;
        data.kind = MessageKind::Data;
        data.txn = msg.txn;
        data.addr = msg.addr;
        data.pc = msg.pc;
        data.type = msg.type;
        data.src = node_;
        data.dest = echo.requester;
        data.echo = echo;
        // The requester's complete() probes its MSHR file and fills
        // its cache sets when this data lands; warm those lines now.
        sys_.prefetchCompletion(echo.requester, block, port_.domain());
        sys_.sendLater(std::move(data), send);
        return;
    }

    // A sharer (or stale owner) observing a GETX drops its copy.
    if (msg.type == RequestType::GetExclusive &&
        echo.required.contains(node_)) {
        // Mutation: the invalidation is silently dropped -- this node
        // keeps a readable copy the new owner will write over. The
        // InvalDue witnessed at delivery goes unacknowledged.
        if (verify::armed(sys_.oracle()) &&
            sys_.params().verify.mutation ==
                verify::Mutation::DropInvalidation) {
            return;
        }
        invalidateLocal(block);
        if (verify::armed(sys_.oracle()))
            sys_.oracle()->recordInvalDone(node_, block, msg.txn, tick);
    }
}

void
CacheController::onForward(const Message &msg, Tick tick)
{
    // Directory protocol: we are (were) the owner; supply the data.
    BlockId block = msg.block();
    const TxnEcho &echo = msg.echo;
    Tick start = std::max(tick, echo.supplyEarliest);
    Tick send = start + nsToTicks(sys_.params().latency.l2_ns);

    if (msg.type == RequestType::GetExclusive) {
        invalidateLocal(block);
        if (verify::armed(sys_.oracle()))
            sys_.oracle()->recordInvalDone(node_, block, msg.txn, tick);
    } else {
        // Downgrade stales any L0 writable result for the block.
        caches_.l0Invalidate(block);
        caches_.downgrade(block);
    }

    if (verify::armed(sys_.oracle())) {
        sys_.oracle()->recordSupply(node_, node_, block, msg.txn,
                                    start, tick);
    }

    Message data;
    data.kind = MessageKind::Data;
    data.txn = msg.txn;
    data.addr = msg.addr;
    data.pc = msg.pc;
    data.type = msg.type;
    data.src = node_;
    data.dest = echo.requester;
    data.echo = echo;
    sys_.prefetchCompletion(echo.requester, block, port_.domain());
    sys_.sendLater(std::move(data), send);
}

void
CacheController::onInvalidate(const Message &msg, Tick tick)
{
    invalidateLocal(msg.block());
    if (verify::armed(sys_.oracle())) {
        sys_.oracle()->recordInvalDone(node_, msg.block(), msg.txn,
                                       tick);
    }
}

void
CacheController::onData(const Message &msg, Tick tick)
{
    complete(msg, tick);
}

void
CacheController::complete(const Message &msg, Tick tick)
{
    BlockId block = msg.block();
    auto it = mshrs_.find(block);
    if (it == mshrs_.end() || it->second.txn != msg.txn)
        return;  // stale or duplicate completion
    Mshr mshr = std::move(it->second);
    mshrs_.erase(it);

    // Install the granted state; reflect any L2 eviction into the
    // global sharing state (one hop away, at the hub) and, for dirty
    // victims, the network. The MSHR's handles make the install
    // walk-free: the set walks happened once, at the access.
    NodeCaches::FillResult fill =
        caches_.fill(msg.addr, msg.echo.granted, &mshr.handle);
    if (verify::armed(sys_.oracle())) {
        sys_.oracle()->recordFill(node_, msg, mshr.invalidateAfterFill,
                                  tick);
    }
    if (fill.evicted) {
        if (isOwnerState(fill.victimState)) {
            sys_.notifyEviction(fill.victim, true, node_, tick);
            Message wb;
            wb.kind = MessageKind::Writeback;
            wb.addr = blockBase(fill.victim);
            wb.src = node_;
            wb.dest = sys_.homeOf_(fill.victim);
            sys_.sendOrLocal(wb);
        } else if (fill.victimState == MosiState::Shared) {
            sys_.notifyEviction(fill.victim, false, node_, tick);
        }
    }

    if (mshr.invalidateAfterFill) {
        // A racing GETX serialized after our miss; honour it now that
        // our access has (logically) completed. The fill above just
        // recorded the block in the L0 -- drop that too.
        caches_.l0Invalidate(block);
        caches_.invalidate(block);
    }

    sys_.trainRequester(msg);
    sys_.recordCompletion(msg, tick);

    for (Completion &waiter : mshr.waiters)
        waiter(tick);

    // Replay coalesced accesses; they may hit now or start new
    // misses. Unlike CPU-initiated accesses (whose hit latency the
    // CPU charges inline), replayed waiters always expect their
    // completion callback.
    for (Mshr::Queued &queued : mshr.queued) {
        AccessReply reply = access(queued.addr, queued.pc,
                                   queued.write, tick, queued.done);
        if (reply == AccessReply::L1Hit) {
            queued.done(tick + nsToTicks(sys_.params().latency.l1_ns));
        } else if (reply == AccessReply::L2Hit) {
            queued.done(tick + nsToTicks(sys_.params().latency.l2_ns));
        }
    }
}

void
CacheController::ckptSave(ckpt::Writer &w) const
{
    caches_.ckptSave(w);
    // Completions are {trampoline, cpu, token} PODs: only the token
    // survives serialization; the fn/ctx pair is rebuilt through the
    // owning CPU at load (host pointers never enter the file).
    mshrs_.ckptSave(w, [](ckpt::Writer &out, const Mshr &m) {
        out.u64(m.txn);
        out.u8(static_cast<std::uint8_t>(m.type));
        out.b(m.invalidateAfterFill);
        out.pod(m.handle);
        out.u64(m.waiters.size());
        for (const Completion &c : m.waiters)
            out.u64(c.token);
        out.u64(m.queued.size());
        for (const Mshr::Queued &q : m.queued) {
            out.u64(q.addr);
            out.u64(q.pc);
            out.b(q.write);
            out.u64(q.done.token);
        }
    });
    w.u64(nextTxnSeq_);
}

void
CacheController::ckptLoad(ckpt::Reader &r)
{
    caches_.ckptLoad(r);
    Cpu &cpu = *sys_.cpus_[node_];
    mshrs_.ckptLoad(r, [&cpu](ckpt::Reader &in, Mshr &m) {
        m.txn = in.u64();
        m.type = static_cast<RequestType>(in.u8());
        m.invalidateAfterFill = in.b();
        m.handle = in.pod<NodeCaches::FillHandle>();
        m.waiters.resize(static_cast<std::size_t>(in.u64()));
        for (Completion &c : m.waiters)
            c = cpu.ckptCompletion(in.u64());
        m.queued.resize(static_cast<std::size_t>(in.u64()));
        for (Mshr::Queued &q : m.queued) {
            q.addr = in.u64();
            q.pc = in.u64();
            q.write = in.b();
            q.done = cpu.ckptCompletion(in.u64());
        }
    });
    nextTxnSeq_ = r.u64();
}

Event &
CacheController::ckptRestoreIssue(ckpt::Reader &r)
{
    BlockId block = r.u64();
    Addr addr = r.u64();
    Addr pc = r.u64();
    auto type = static_cast<RequestType>(r.u8());
    Tick when = r.u64();
    return *EventPool<IssueEvent>::instance().acquire(
        *this, block, addr, pc, type, when);
}

} // namespace dsp
