#include "sweep/fault_inject.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace dsp {
namespace sweep {

const char *
toString(FaultAction action)
{
    switch (action) {
      case FaultAction::None:
        return "none";
      case FaultAction::Crash:
        return "crash";
      case FaultAction::Hang:
        return "hang";
      case FaultAction::Garbage:
        return "garbage";
    }
    return "?";
}

FaultPlan
FaultPlan::fromSpec(const std::string &spec)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            dsp_fatal("bad SWEEP_FAULT_INJECT item '%s' (want "
                      "key=value)",
                      item.c_str());
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);
        char *end = nullptr;
        if (key == "seed") {
            plan.seed = std::strtoull(value.c_str(), &end, 10);
        } else {
            double p = std::strtod(value.c_str(), &end);
            if (p < 0.0 || p > 1.0)
                dsp_fatal("SWEEP_FAULT_INJECT %s=%s out of [0,1]",
                          key.c_str(), value.c_str());
            if (key == "crash")
                plan.crash = p;
            else if (key == "hang")
                plan.hang = p;
            else if (key == "garbage")
                plan.garbage = p;
            else
                dsp_fatal("unknown SWEEP_FAULT_INJECT key '%s'",
                          key.c_str());
        }
        if (end == nullptr || *end != '\0')
            dsp_fatal("bad SWEEP_FAULT_INJECT value '%s'",
                      item.c_str());
    }
    if (plan.crash + plan.hang + plan.garbage > 1.0)
        dsp_fatal("SWEEP_FAULT_INJECT probabilities sum past 1.0");
    return plan;
}

FaultPlan
FaultPlan::fromEnv()
{
    const char *spec = std::getenv("SWEEP_FAULT_INJECT");
    if (spec == nullptr || spec[0] == '\0')
        return FaultPlan{};
    return fromSpec(spec);
}

FaultAction
FaultPlan::decide(std::uint64_t job_hash, unsigned attempt) const
{
    if (!enabled())
        return FaultAction::None;
    // splitmix64 over (job, attempt, seed): independent draws per
    // attempt, so retries of a crashing job eventually pass (unless
    // the probability is 1, which tests use for budget exhaustion).
    std::uint64_t x = job_hash ^ (seed * 0x9E3779B97F4A7C15ull) ^
                      (std::uint64_t{attempt} << 32);
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    double u = static_cast<double>(x >> 11) * 0x1.0p-53;
    if (u < crash)
        return FaultAction::Crash;
    if (u < crash + hang)
        return FaultAction::Hang;
    if (u < crash + hang + garbage)
        return FaultAction::Garbage;
    return FaultAction::None;
}

} // namespace sweep
} // namespace dsp
