#include "sweep/journal.hh"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace dsp {
namespace sweep {

std::uint32_t
crc32(const std::string &text)
{
    static std::uint32_t table[256];
    static bool built = false;
    if (!built) {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        built = true;
    }
    std::uint32_t crc = 0xFFFFFFFFu;
    for (char ch : text) {
        crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^
              (crc >> 8);
    }
    return crc ^ 0xFFFFFFFFu;
}

bool
jsonField(const std::string &object, const std::string &key,
          std::string &out)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = object.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    while (pos < object.size() && object[pos] == ' ')
        ++pos;
    if (pos >= object.size())
        return false;
    if (object[pos] == '"') {
        std::size_t close = object.find('"', pos + 1);
        if (close == std::string::npos)
            return false;
        out = object.substr(pos + 1, close - pos - 1);
        return true;
    }
    std::size_t end = object.find_first_of(",}", pos);
    if (end == std::string::npos)
        return false;
    out = object.substr(pos, end - pos);
    return !out.empty();
}

bool
validRowPayload(const std::string &object)
{
    if (object.size() < 2 || object.front() != '{' ||
        object.back() != '}')
        return false;
    // Flat object: no interior braces and exactly one line.
    if (object.find('{', 1) != std::string::npos ||
        object.find('}') != object.size() - 1 ||
        object.find('\n') != std::string::npos)
        return false;
    std::string job;
    std::string status;
    return jsonField(object, "job", job) && !job.empty() &&
           jsonField(object, "status", status) &&
           (status == "done" || status == "failed");
}

namespace {

constexpr const char *crcPrefix = ",\"crc\":\"";

/** Validate one physical line; payload (crc stripped) on success. */
bool
validateLine(const std::string &line, std::string &payload)
{
    // The line ends ,"crc":"xxxxxxxx"} -- an 18-byte suffix.
    const std::size_t suffix = std::strlen(crcPrefix) + 10;
    if (line.size() < suffix + 2)
        return false;
    std::size_t tail = line.size() - suffix;
    if (line.compare(tail, std::strlen(crcPrefix), crcPrefix) != 0 ||
        line.back() != '}' || line[line.size() - 2] != '"')
        return false;
    std::uint32_t stored = 0;
    for (std::size_t i = tail + std::strlen(crcPrefix);
         i < line.size() - 2; ++i) {
        char c = line[i];
        std::uint32_t digit = 0;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint32_t>(c - 'a' + 10);
        else
            return false;
        stored = (stored << 4) | digit;
    }
    payload = line.substr(0, tail) + "}";
    return crc32(payload) == stored && validRowPayload(payload);
}

} // namespace

std::vector<JournalRow>
readJournal(const std::string &path, JournalRecovery &recovery)
{
    recovery = JournalRecovery{};
    std::vector<JournalRow> rows;

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return rows;
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();  // truncated tail: no newline
        if (eol > pos)
            lines.push_back(text.substr(pos, eol - pos));
        pos = eol + 1;
    }
    recovery.lines = lines.size();

    for (std::size_t i = 0; i < lines.size(); ++i) {
        JournalRow row;
        if (!validateLine(lines[i], row.payload)) {
            if (i + 1 == lines.size()) {
                // The expected crash artifact: a row the dying writer
                // never finished. Losing it is the "at most one row"
                // contract working as intended.
                ++recovery.droppedTail;
            } else {
                ++recovery.droppedCorrupt;
                dsp_warn("journal %s: dropping corrupt row %zu of %zu",
                         path.c_str(), i + 1, lines.size());
            }
            continue;
        }
        jsonField(row.payload, "job", row.job);
        jsonField(row.payload, "status", row.status);
        rows.push_back(std::move(row));
    }

    // Per job id: the first "done" row wins; "failed" survives only
    // when no "done" row ever landed (a later resume may complete a
    // previously failed job -- its fresh "done" row supersedes).
    std::vector<JournalRow> resolved;
    for (JournalRow &row : rows) {
        JournalRow *existing = nullptr;
        for (JournalRow &r : resolved) {
            if (r.job == row.job) {
                existing = &r;
                break;
            }
        }
        if (existing == nullptr) {
            resolved.push_back(std::move(row));
            continue;
        }
        ++recovery.duplicates;
        if (existing->status != "done" && row.status == "done")
            *existing = std::move(row);
    }
    recovery.rows = resolved.size();
    return resolved;
}

Journal::Journal(const std::string &path, bool fsyncRows)
    : path_(path), fsyncRows_(fsyncRows)
{
    // Crash repair before appending: a writer that died mid-row left
    // an unterminated tail line. Appending onto it would glue the next
    // row into the garbage and corrupt BOTH rows, so chop the file
    // back to its last complete line first (readJournal would have
    // dropped the partial tail anyway -- this just keeps it from
    // poisoning a fresh row).
    if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
        std::string text;
        char buf[4096];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
        if (!text.empty() && text.back() != '\n') {
            std::size_t keep = text.rfind('\n');
            keep = keep == std::string::npos ? 0 : keep + 1;
            dsp_warn("journal %s: truncating %zu-byte partial tail "
                     "row left by a dead writer",
                     path.c_str(), text.size() - keep);
            if (truncate(path.c_str(),
                         static_cast<off_t>(keep)) != 0) {
                dsp_fatal("journal '%s': cannot truncate partial "
                          "tail",
                          path.c_str());
            }
        }
    }

    file_ = std::fopen(path.c_str(), "ab");
    if (!file_)
        dsp_fatal("cannot open journal '%s' for append", path.c_str());
}

Journal::~Journal()
{
    if (file_)
        std::fclose(file_);
}

void
Journal::append(const std::string &payload)
{
    dsp_assert(validRowPayload(payload),
               "journal row is not a valid flat JSON object: %.120s",
               payload.c_str());
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x", crc32(payload));
    std::string line = payload.substr(0, payload.size() - 1);
    line += crcPrefix;
    line += crc;
    line += "\"}\n";
    if (std::fwrite(line.data(), 1, line.size(), file_) !=
            line.size() ||
        std::fflush(file_) != 0) {
        dsp_fatal("journal '%s': write failed", path_.c_str());
    }
    if (fsyncRows_)
        fsync(fileno(file_));
}

std::string
aggregateTable(const std::vector<JournalRow> &rows)
{
    // The deterministic figure statistics a row may carry; host-side
    // fields (wall_ms, attempt, exit/term bookkeeping) are excluded
    // by not being listed.
    static const char *fields[] = {
        "instructions", "misses",     "retries",
        "upgrades",     "cache_to_cache", "traffic_bytes",
        "avg_miss_latency_ns", "runtime_ms",
    };

    std::vector<const JournalRow *> sorted;
    sorted.reserve(rows.size());
    for (const JournalRow &row : rows)
        sorted.push_back(&row);
    std::sort(sorted.begin(), sorted.end(),
              [](const JournalRow *a, const JournalRow *b) {
                  return a->job < b->job;
              });

    std::string out = "# sweep aggregate v1\n";
    std::size_t done = 0;
    std::size_t failed = 0;
    unsigned long long sumMisses = 0;
    unsigned long long sumTraffic = 0;
    for (const JournalRow *row : sorted) {
        out += row->status == "done" ? "done   " : "FAILED ";
        out += row->job;
        if (row->status == "done") {
            ++done;
            for (const char *field : fields) {
                std::string v;
                if (jsonField(row->payload, field, v)) {
                    out += " ";
                    out += field;
                    out += "=";
                    out += v;
                }
            }
            std::string v;
            if (jsonField(row->payload, "misses", v))
                sumMisses += std::strtoull(v.c_str(), nullptr, 10);
            if (jsonField(row->payload, "traffic_bytes", v))
                sumTraffic += std::strtoull(v.c_str(), nullptr, 10);
        } else {
            ++failed;
        }
        out += "\n";
    }
    char totals[160];
    std::snprintf(totals, sizeof(totals),
                  "totals jobs=%zu done=%zu failed=%zu misses=%llu "
                  "traffic_bytes=%llu\n",
                  sorted.size(), done, failed, sumMisses, sumTraffic);
    out += totals;
    return out;
}

} // namespace sweep
} // namespace dsp
