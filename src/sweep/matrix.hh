/**
 * @file
 * Sweep job matrix: the cross-product of a config's axis lists,
 * expanded into one JobSpec per point with a stable canonical id.
 *
 * Axis keys (each may be a list): workload, protocol, policy, nodes,
 * seed, scale, cpu, threads, verify, hubs, cluster, switch_ns.
 * Scalar keys (shared by every job): warmup_misses, warmup_instr,
 * measure_instr. Expansion order is the fixed axis order above,
 * innermost last, so job ids and matrix order are independent of the
 * order keys appear in the file.
 */

#ifndef DSP_SWEEP_MATRIX_HH
#define DSP_SWEEP_MATRIX_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/config.hh"

namespace dsp {
namespace sweep {

/** One fully resolved simulation job. */
struct JobSpec {
    std::string workload = "barnes";
    std::string protocol = "multicast";  ///< snooping|directory|multicast
    std::string policy = "owner-group";
    std::string cpu = "simple";          ///< simple|detailed
    std::string verify = "off";          ///< on: coherence oracle armed
    std::uint32_t nodes = 16;
    std::uint64_t seed = 1;
    double scale = 0.25;
    std::uint32_t threads = 1;           ///< kernel shards per job
    std::uint32_t hubs = 1;              ///< address-interleaved hubs
    std::uint32_t cluster = 0;           ///< nodes/cluster (0 = flat)
    double switchNs = 0.0;               ///< switch<->global leg (ns)
    std::uint64_t warmupMisses = 10000;
    std::uint64_t warmupInstr = 10000;
    std::uint64_t measureInstr = 100000;

    /** Checkpoint cadence in simulated ticks (0 = off) and the sweep's
     *  checkpoint root; each job writes under its own subdirectory and
     *  a retried attempt resumes from its newest valid snapshot.
     *  Deliberately NOT part of id(): checkpointing changes no figure
     *  statistic, so rows from checkpointed and plain sweeps aggregate
     *  interchangeably. */
    std::uint64_t checkpointEvery = 0;
    std::string checkpointDir;

    /**
     * Canonical identity: every axis value in fixed order. This is
     * the journal's resume key, so it must be a pure function of the
     * simulation-relevant parameters (scalar run-length keys included:
     * changing them invalidates old rows). The verify axis appears
     * only when armed, and the topology axes (hubs, cluster,
     * switch_ns) only when they differ from the flat single-hub
     * default, so every pre-existing journal (and anything keyed on
     * the ids, e.g. fault plans) resumes unchanged.
     */
    std::string id() const;

    /** FNV-1a of id(): the fault-injection and shard keys. */
    std::uint64_t idHash() const;

    /** The job's private checkpoint directory under `root`: the
     *  canonical id with every non-filename character flattened to
     *  '_'. A pure function of the id, so a retried (or resumed)
     *  attempt lands in the same directory and finds the earlier
     *  attempt's snapshots. */
    std::string checkpointSubdir(const std::string &root) const;
};

/** Expand the config's cross-product (fatal on invalid axis values). */
std::vector<JobSpec> expandMatrix(const SweepConfig &config);

} // namespace sweep
} // namespace dsp

#endif // DSP_SWEEP_MATRIX_HH
