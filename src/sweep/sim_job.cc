#include "sweep/sim_job.hh"

#include <cstdio>

#include "checkpoint/checkpoint.hh"
#include "core/factory.hh"
#include "sim/logging.hh"
#include "system/system.hh"
#include "workload/presets.hh"

namespace dsp {
namespace sweep {

namespace {

ProtocolKind
parseProtocol(const std::string &name)
{
    if (name == "snooping")
        return ProtocolKind::Snooping;
    if (name == "directory")
        return ProtocolKind::Directory;
    if (name == "multicast")
        return ProtocolKind::Multicast;
    dsp_fatal("unknown protocol '%s'", name.c_str());
}

} // namespace

std::string
runSimJob(const JobSpec &spec)
{
    auto workload = makeWorkload(spec.workload, spec.nodes, spec.seed,
                                 spec.scale);

    SystemParams params;
    params.nodes = spec.nodes;
    params.protocol = parseProtocol(spec.protocol);
    params.policy = parsePredictorPolicy(spec.policy);
    params.cpuModel = spec.cpu == "detailed" ? CpuModel::Detailed
                                             : CpuModel::Simple;
    params.shards = spec.threads;
    params.crossbar.topology.hubs = spec.hubs;
    params.crossbar.topology.cluster_size = spec.cluster;
    params.crossbar.topology.switch_link_ns = spec.switchNs;
    params.functionalWarmupMisses = spec.warmupMisses;
    params.warmupInstrPerCpu = spec.warmupInstr;
    params.measureInstrPerCpu = spec.measureInstr;
    // verify=on arms the coherence oracle; a violation exits the
    // worker with verify::violationExitCode, which the supervisor
    // journals immediately instead of retrying.
    params.verify.oracle = spec.verify == "on";

    // Checkpointing (docs/checkpoint.md): each job snapshots into its
    // own subdirectory, and restore is unconditionally on -- a first
    // attempt finds no checkpoint and starts fresh, while a retry
    // after a crash or watchdog kill resumes from the newest valid
    // snapshot instead of repaying the whole run.
    if (spec.checkpointEvery != 0 && !spec.checkpointDir.empty()) {
        std::string dir =
            spec.checkpointSubdir(spec.checkpointDir);
        ckpt::makeDirs(dir);
        params.checkpoint.every = spec.checkpointEvery;
        params.checkpoint.dir = dir;
        params.checkpoint.restore = true;
    }

    System system(*workload, params);
    SystemStats stats = system.run();

    char row[768];
    std::snprintf(
        row, sizeof(row),
        "{\"job\":\"%s\",\"status\":\"done\","
        "\"instructions\":%llu,\"misses\":%llu,\"retries\":%llu,"
        "\"upgrades\":%llu,\"cache_to_cache\":%llu,"
        "\"traffic_bytes\":%llu,\"avg_miss_latency_ns\":%.6f,"
        "\"runtime_ms\":%.3f,\"wall_ms\":%.1f}",
        spec.id().c_str(),
        static_cast<unsigned long long>(stats.instructions),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.retries),
        static_cast<unsigned long long>(stats.upgrades),
        static_cast<unsigned long long>(stats.cacheToCache),
        static_cast<unsigned long long>(stats.trafficBytes),
        stats.avgMissLatencyNs, stats.runtimeMs(),
        stats.wallSeconds * 1000.0);
    return row;
}

} // namespace sweep
} // namespace dsp
