/**
 * @file
 * Deterministic fault injection for the sweep supervisor -- the hook
 * that makes the robustness machinery testable instead of
 * aspirational.
 *
 * SWEEP_FAULT_INJECT="crash=0.2,hang=0.1,garbage=0.1,seed=7" gives
 * each (job, attempt) pair an independent pseudo-random draw, hashed
 * from the job id, the attempt number, and the plan seed -- fully
 * deterministic: the same config and seed produce the same faults in
 * every run, on every host, at any pool concurrency.
 *
 * Faults are enacted *in the worker child* before any real work:
 *   crash   -> abort() (dies by SIGABRT, like a real simulator bug)
 *   hang    -> sleep forever (the parent watchdog SIGKILLs it)
 *   garbage -> emit a torn, checksum-less result row and exit 0
 *              (exercises the parent's row validation path)
 */

#ifndef DSP_SWEEP_FAULT_INJECT_HH
#define DSP_SWEEP_FAULT_INJECT_HH

#include <cstdint>
#include <string>

namespace dsp {
namespace sweep {

enum class FaultAction : std::uint8_t {
    None,
    Crash,
    Hang,
    Garbage,
};

const char *toString(FaultAction action);

struct FaultPlan {
    double crash = 0.0;
    double hang = 0.0;
    double garbage = 0.0;
    std::uint64_t seed = 1;

    bool
    enabled() const
    {
        return crash > 0.0 || hang > 0.0 || garbage > 0.0;
    }

    /** Parse "crash=P,hang=P,garbage=P,seed=N" (fatal on bad spec;
     *  empty string = no faults). */
    static FaultPlan fromSpec(const std::string &spec);

    /** Plan from $SWEEP_FAULT_INJECT (unset = no faults). */
    static FaultPlan fromEnv();

    /** The fault (if any) for attempt `attempt` of the job whose
     *  canonical-id hash is `job_hash`. Pure function. */
    FaultAction decide(std::uint64_t job_hash,
                       unsigned attempt) const;
};

} // namespace sweep
} // namespace dsp

#endif // DSP_SWEEP_FAULT_INJECT_HH
