#include "sweep/supervisor.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>

#include "sim/interrupt.hh"
#include "sim/logging.hh"
#include "verify/violation.hh"

namespace dsp {
namespace sweep {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsUntil(Clock::time_point t)
{
    return std::chrono::duration<double>(t - Clock::now()).count();
}

/** One queued attempt. */
struct PendingAttempt {
    std::size_t jobIndex;
    unsigned attempt;
    Clock::time_point notBefore;
};

/** One live worker. */
struct Worker {
    pid_t pid = -1;
    std::size_t jobIndex = 0;
    unsigned attempt = 1;
    int pipeFd = -1;
    std::string output;
    Clock::time_point deadline;
    bool timedOut = false;
};

/**
 * Worker-child main: enact the planned fault or run the body, write
 * the result row to `fd`, and _exit without touching parent state
 * (no atexit handlers, no stdio flush of inherited buffers).
 */
[[noreturn]] void
workerChild(const JobSpec &spec, const JobBody &body,
            FaultAction fault, int fd)
{
    signal(SIGINT, SIG_DFL);
    signal(SIGTERM, SIG_DFL);

    switch (fault) {
      case FaultAction::Crash:
        std::abort();
      case FaultAction::Hang:
        for (;;)
            sleep(1);  // the parent watchdog SIGKILLs us
      case FaultAction::Garbage: {
        // A torn row: syntactically broken, no terminator. The parent
        // must reject it and count a failed attempt.
        const char torn[] = "{\"job\":\"gar";
        (void)!write(fd, torn, sizeof(torn) - 1);
        _exit(0);
      }
      case FaultAction::None:
        break;
    }

    std::string row;
    try {
        row = body(spec);
    } catch (...) {
        _exit(3);
    }
    std::size_t off = 0;
    while (off < row.size()) {
        ssize_t n = write(fd, row.data() + off, row.size() - off);
        if (n <= 0)
            _exit(4);
        off += static_cast<std::size_t>(n);
    }
    _exit(0);
}

} // namespace

Supervisor::Supervisor(const std::string &journal_path,
                       const SupervisorOptions &options)
    : journalPath_(journal_path), options_(options)
{
    dsp_assert(options_.concurrency >= 1 && options_.maxAttempts >= 1,
               "bad supervisor options");
}

SweepSummary
Supervisor::run(const std::vector<JobSpec> &jobs, const JobBody &body,
                const FaultPlan &faults)
{
    SweepSummary summary;
    summary.jobs = jobs.size();

    // Resume: a winning "done" row settles its job for good.
    JournalRecovery recovery;
    std::vector<JournalRow> rows = readJournal(journalPath_, recovery);
    if (recovery.droppedTail + recovery.droppedCorrupt > 0) {
        dsp_warn("journal %s: dropped %zu corrupt row(s) (%zu at the "
                 "tail) during recovery",
                 journalPath_.c_str(),
                 recovery.droppedTail + recovery.droppedCorrupt,
                 recovery.droppedTail);
    }

    std::deque<PendingAttempt> pending;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        bool done = false;
        for (const JournalRow &row : rows) {
            if (row.job == jobs[i].id() && row.status == "done") {
                done = true;
                break;
            }
        }
        if (done)
            ++summary.skipped;
        else
            pending.push_back({i, 1, Clock::now()});
    }

    Journal journal(journalPath_, options_.fsyncRows);
    std::vector<Worker> running;
    unsigned concurrency = options_.concurrency;
    unsigned faultStreak = 0;

    auto journalFailure = [&](const Worker &w, int status,
                              const char *reason) {
        const JobSpec &spec = jobs[w.jobIndex];
        char row[640];
        std::snprintf(
            row, sizeof(row),
            "{\"job\":\"%s\",\"status\":\"failed\",\"attempts\":%u,"
            "\"reason\":\"%s\",\"exit_code\":%d,\"term_signal\":%d}",
            spec.id().c_str(), w.attempt, reason,
            WIFEXITED(status) ? WEXITSTATUS(status) : -1,
            WIFSIGNALED(status) ? WTERMSIG(status) : 0);
        journal.append(row);
        ++summary.failed;
        dsp_warn("sweep job failed permanently after %u attempt(s) "
                 "(%s): %s",
                 w.attempt, reason, spec.id().c_str());
    };

    auto spawn = [&](const PendingAttempt &att) -> bool {
        const JobSpec &spec = jobs[att.jobIndex];
        FaultAction fault =
            faults.decide(spec.idHash(), att.attempt);
        int fds[2];
        if (pipe(fds) != 0) {
            dsp_warn("sweep: pipe() failed (%s)",
                     std::strerror(errno));
            return false;
        }
        pid_t pid = fork();
        if (pid < 0) {
            dsp_warn("sweep: fork() failed (%s)",
                     std::strerror(errno));
            close(fds[0]);
            close(fds[1]);
            return false;
        }
        if (pid == 0) {
            close(fds[0]);
            workerChild(spec, body, fault, fds[1]);
        }
        close(fds[1]);
        // Non-blocking reads: the drain loops stop at EAGAIN instead
        // of ever waiting on a live-but-quiet worker.
        fcntl(fds[0], F_SETFL, O_NONBLOCK);
        Worker w;
        w.pid = pid;
        w.jobIndex = att.jobIndex;
        w.attempt = att.attempt;
        w.pipeFd = fds[0];
        w.deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options_.timeoutSeconds));
        running.push_back(std::move(w));
        ++summary.launched;
        if (att.attempt > 1)
            ++summary.retries;
        return true;
    };

    auto killAll = [&]() {
        for (Worker &w : running) {
            kill(w.pid, SIGKILL);
            int status = 0;
            waitpid(w.pid, &status, 0);
            close(w.pipeFd);
        }
        running.clear();
    };

    while (!pending.empty() || !running.empty()) {
        if (interruptRequested()) {
            // Flushed rows are already durable; in-flight workers are
            // the "at most one row each" loss the journal tolerates.
            dsp_warn("sweep interrupted (signal %d): killing %zu "
                     "worker(s), journal retained at %s",
                     interruptSignal(), running.size(),
                     journalPath_.c_str());
            killAll();
            summary.interrupted = true;
            break;
        }

        // Launch while the pool has room and a backoff has expired.
        Clock::time_point next_launch = Clock::time_point::max();
        for (std::size_t scan = 0;
             running.size() < concurrency && scan < pending.size();) {
            PendingAttempt att = pending[scan];
            if (att.notBefore > Clock::now()) {
                next_launch = std::min(next_launch, att.notBefore);
                ++scan;
                continue;
            }
            pending.erase(pending.begin() +
                          static_cast<std::ptrdiff_t>(scan));
            if (!spawn(att)) {
                // Pool-level fault (fork/pipe exhaustion): degrade --
                // shrink the pool and back the job off without
                // charging an attempt.
                if (concurrency > 1) {
                    --concurrency;
                    dsp_warn("sweep: degrading pool to %u worker(s)",
                             concurrency);
                }
                att.notBefore =
                    Clock::now() +
                    std::chrono::milliseconds(
                        static_cast<long>(1000 *
                                          options_.backoffSeconds));
                pending.push_back(att);
                break;
            }
        }

        if (running.empty()) {
            if (pending.empty())
                break;
            // Every queued attempt is inside its backoff window.
            double wait = next_launch == Clock::time_point::max()
                              ? 0.01
                              : secondsUntil(next_launch);
            poll(nullptr, 0,
                 std::max(1, static_cast<int>(wait * 1000)));
            continue;
        }

        // Wait for output, a death, a deadline, or an interrupt
        // (bounded so the flag is polled at least every 200 ms).
        std::vector<pollfd> fds;
        fds.reserve(running.size());
        for (Worker &w : running)
            fds.push_back(pollfd{w.pipeFd, POLLIN, 0});
        int timeout_ms = 200;
        for (Worker &w : running) {
            double until = secondsUntil(w.deadline);
            timeout_ms = std::min(
                timeout_ms,
                std::max(1, static_cast<int>(until * 1000)));
        }
        poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);

        for (std::size_t i = 0; i < running.size(); ++i) {
            if (fds[i].revents & (POLLIN | POLLHUP)) {
                char buf[4096];
                ssize_t n = 0;
                while ((n = read(running[i].pipeFd, buf,
                                 sizeof(buf))) > 0) {
                    running[i].output.append(
                        buf, static_cast<std::size_t>(n));
                    if (n < static_cast<ssize_t>(sizeof(buf)))
                        break;
                }
            }
        }

        // Watchdog: SIGKILL anything past its wall-clock budget.
        for (Worker &w : running) {
            if (!w.timedOut && Clock::now() > w.deadline) {
                dsp_warn("sweep watchdog: job exceeded %.1fs, "
                         "killing pid %d (attempt %u): %s",
                         options_.timeoutSeconds,
                         static_cast<int>(w.pid), w.attempt,
                         jobs[w.jobIndex].id().c_str());
                kill(w.pid, SIGKILL);
                w.timedOut = true;
                ++summary.timeouts;
            }
        }

        // Reap and evaluate.
        for (std::size_t i = 0; i < running.size();) {
            Worker &w = running[i];
            int status = 0;
            pid_t reaped = waitpid(w.pid, &status, WNOHANG);
            if (reaped == 0) {
                ++i;
                continue;
            }
            // Drain anything written between the last poll and death.
            char buf[4096];
            ssize_t n = 0;
            while ((n = read(w.pipeFd, buf, sizeof(buf))) > 0)
                w.output.append(buf, static_cast<std::size_t>(n));
            close(w.pipeFd);

            const JobSpec &spec = jobs[w.jobIndex];
            std::string job_field;
            std::string status_field;
            bool clean = WIFEXITED(status) &&
                         WEXITSTATUS(status) == 0 && !w.timedOut;
            bool valid =
                clean && validRowPayload(w.output) &&
                jsonField(w.output, "job", job_field) &&
                job_field == spec.id() &&
                jsonField(w.output, "status", status_field) &&
                status_field == "done";
            if (valid) {
                // The parent owns attempt bookkeeping; inject it so
                // the journal tells the retry story per row.
                char attempt[32];
                std::snprintf(attempt, sizeof(attempt),
                              ",\"attempt\":%u}", w.attempt);
                std::string row =
                    w.output.substr(0, w.output.size() - 1) + attempt;
                journal.append(row);
                ++summary.completed;
                faultStreak = 0;
            } else if (!w.timedOut && WIFEXITED(status) &&
                       WEXITSTATUS(status) ==
                           verify::violationExitCode) {
                // The job's coherence oracle found a protocol
                // violation. That is deterministic -- the same binary
                // and seed re-fail identically -- so retrying burns
                // budget to learn nothing: journal it on the spot.
                // It is evidence about the simulator, not the pool,
                // so the degrade streak is left alone too. The repro
                // bundle is on the worker's stderr (shared with ours).
                journalFailure(w, status, "violation");
                ++summary.violations;
            } else {
                const char *reason =
                    w.timedOut ? "timeout"
                    : !clean   ? (WIFSIGNALED(status) ? "signal"
                                                      : "exit")
                               : "invalid-row";
                if (clean && !valid)
                    ++summary.invalidRows;
                ++faultStreak;
                if (faultStreak >= options_.degradeStreak &&
                    concurrency > 1) {
                    --concurrency;
                    faultStreak = 0;
                    dsp_warn("sweep: repeated faults, degrading pool "
                             "to %u worker(s)",
                             concurrency);
                }
                if (w.attempt < options_.maxAttempts) {
                    double backoff =
                        options_.backoffSeconds *
                        static_cast<double>(1u << (w.attempt - 1));
                    pending.push_back(
                        {w.jobIndex, w.attempt + 1,
                         Clock::now() +
                             std::chrono::duration_cast<
                                 Clock::duration>(
                                 std::chrono::duration<double>(
                                     backoff))});
                    dsp_warn("sweep: attempt %u failed (%s), retrying "
                             "in %.2fs: %s",
                             w.attempt, reason, backoff,
                             spec.id().c_str());
                } else {
                    journalFailure(w, status, reason);
                }
            }
            running.erase(running.begin() +
                          static_cast<std::ptrdiff_t>(i));
        }
    }

    summary.finalConcurrency = concurrency;
    return summary;
}

} // namespace sweep
} // namespace dsp
