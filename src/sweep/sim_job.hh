/**
 * @file
 * The production job body: run one System simulation for a JobSpec
 * and serialize its deterministic figure statistics as a journal row.
 */

#ifndef DSP_SWEEP_SIM_JOB_HH
#define DSP_SWEEP_SIM_JOB_HH

#include <string>

#include "sweep/matrix.hh"

namespace dsp {
namespace sweep {

/**
 * Build the workload and System described by `spec`, run it, and
 * return the result row (flat JSON, "status":"done"). Every
 * aggregated field is bit-deterministic for a given spec -- the
 * simulator's determinism contract -- which is what makes fresh and
 * crash-resumed sweeps aggregate identically. Host-dependent wall
 * time is included as wall_ms but excluded from aggregation.
 *
 * Runs in the worker child; fatal errors become nonzero child exits.
 */
std::string runSimJob(const JobSpec &spec);

} // namespace sweep
} // namespace dsp

#endif // DSP_SWEEP_SIM_JOB_HH
