#include "sweep/config.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace dsp {
namespace sweep {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Recursive-descent arithmetic over doubles. */
class ArithParser
{
  public:
    explicit ArithParser(const std::string &text) : text_(text) {}

    bool
    parse(double &out)
    {
        pos_ = 0;
        ok_ = true;
        double v = expr();
        skipSpace();
        if (!ok_ || pos_ != text_.size())
            return false;
        out = v;
        return true;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    eat(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    double
    expr()
    {
        double v = term();
        while (ok_) {
            if (eat('+'))
                v += term();
            else if (eat('-'))
                v -= term();
            else
                break;
        }
        return v;
    }

    double
    term()
    {
        double v = factor();
        while (ok_) {
            if (eat('*')) {
                v *= factor();
            } else if (eat('/')) {
                double d = factor();
                if (ok_ && d == 0.0)
                    dsp_fatal("division by zero in expression '%s'",
                              text_.c_str());
                v /= d;
            } else {
                break;
            }
        }
        return v;
    }

    double
    factor()
    {
        skipSpace();
        if (eat('(')) {
            double v = expr();
            if (!eat(')'))
                ok_ = false;
            return v;
        }
        if (eat('-'))
            return -factor();
        // A number: digits with optional fraction/exponent. strtod
        // would also accept "inf"/"nan"/hex; require a leading digit
        // or '.' so workload names never half-parse.
        if (pos_ >= text_.size() ||
            (!std::isdigit(static_cast<unsigned char>(text_[pos_])) &&
             text_[pos_] != '.')) {
            ok_ = false;
            return 0.0;
        }
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start || !std::isfinite(v)) {
            ok_ = false;
            return 0.0;
        }
        pos_ += static_cast<std::size_t>(end - start);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** Expand one element: `lo..hi` integer range or a single value. */
void
expandElement(const std::string &elem, std::vector<std::string> &out)
{
    std::size_t dots = elem.find("..");
    if (dots != std::string::npos) {
        double lo = 0.0;
        double hi = 0.0;
        if (evalArithmetic(elem.substr(0, dots), lo) &&
            evalArithmetic(elem.substr(dots + 2), hi) &&
            lo == std::floor(lo) && hi == std::floor(hi) &&
            lo <= hi && hi - lo < 100000.0) {
            for (double v = lo; v <= hi; v += 1.0)
                out.push_back(canonicalNumber(v));
            return;
        }
        dsp_fatal("bad range '%s' (want integer lo..hi, lo <= hi)",
                  elem.c_str());
    }
    double v = 0.0;
    if (evalArithmetic(elem, v)) {
        out.push_back(canonicalNumber(v));
        return;
    }
    out.push_back(elem);
}

} // namespace

bool
evalArithmetic(const std::string &text, double &out)
{
    std::string t = trim(text);
    if (t.empty())
        return false;
    return ArithParser(t).parse(out);
}

std::string
canonicalNumber(double v)
{
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

SweepConfig
SweepConfig::fromString(const std::string &text,
                        const std::string &where)
{
    SweepConfig cfg;
    cfg.where_ = where;
    std::size_t lineno = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++lineno;

        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;

        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            dsp_fatal("%s:%zu: expected 'key = value', got '%s'",
                      where.c_str(), lineno, line.c_str());
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            dsp_fatal("%s:%zu: empty key", where.c_str(), lineno);
        for (char c : key) {
            if (!std::isalnum(static_cast<unsigned char>(c)) &&
                c != '_' && c != '-' && c != '.') {
                dsp_fatal("%s:%zu: bad character '%c' in key '%s'",
                          where.c_str(), lineno, c, key.c_str());
            }
        }

        bool found = false;
        for (std::size_t i = 0; i < cfg.keys_.size(); ++i) {
            if (cfg.keys_[i] == key) {
                cfg.raw_[i] = value;  // last assignment wins
                found = true;
                break;
            }
        }
        if (!found) {
            cfg.order_.push_back(key);
            cfg.keys_.push_back(key);
            cfg.raw_.push_back(value);
        }
    }
    return cfg;
}

SweepConfig
SweepConfig::fromFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        dsp_fatal("cannot open sweep config '%s'", path.c_str());
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return fromString(text, path);
}

bool
SweepConfig::has(const std::string &key) const
{
    for (const std::string &k : keys_) {
        if (k == key)
            return true;
    }
    return false;
}

std::string
SweepConfig::rawFor(const std::string &key) const
{
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] == key)
            return raw_[i];
    }
    dsp_fatal("%s: missing required config key '%s'", where_.c_str(),
              key.c_str());
}

std::string
SweepConfig::substitute(const std::string &value, unsigned depth) const
{
    if (depth > 32)
        dsp_fatal("%s: $(...) reference cycle while expanding '%s'",
                  where_.c_str(), value.c_str());
    std::string out;
    out.reserve(value.size());
    for (std::size_t i = 0; i < value.size();) {
        if (value[i] == '$' && i + 1 < value.size() &&
            value[i + 1] == '(') {
            std::size_t close = value.find(')', i + 2);
            if (close == std::string::npos)
                dsp_fatal("%s: unterminated $( in '%s'",
                          where_.c_str(), value.c_str());
            std::string ref = trim(value.substr(i + 2, close - i - 2));
            out += substitute(rawFor(ref), depth + 1);
            i = close + 1;
        } else {
            out += value[i++];
        }
    }
    return out;
}

std::vector<std::string>
SweepConfig::values(const std::string &key) const
{
    std::string expanded = substitute(rawFor(key), 0);
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (true) {
        std::size_t comma = expanded.find(',', pos);
        std::string elem = trim(
            comma == std::string::npos
                ? expanded.substr(pos)
                : expanded.substr(pos, comma - pos));
        if (elem.empty())
            dsp_fatal("%s: empty element in list for key '%s'",
                      where_.c_str(), key.c_str());
        expandElement(elem, out);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

std::vector<std::string>
SweepConfig::values(const std::string &key,
                    const std::string &fallback) const
{
    if (!has(key))
        return {fallback};
    return values(key);
}

std::string
SweepConfig::value(const std::string &key) const
{
    std::vector<std::string> list = values(key);
    if (list.size() != 1)
        dsp_fatal("%s: key '%s' is a %zu-element list where a scalar "
                  "is required",
                  where_.c_str(), key.c_str(), list.size());
    return list[0];
}

std::string
SweepConfig::value(const std::string &key,
                   const std::string &fallback) const
{
    if (!has(key))
        return fallback;
    return value(key);
}

std::uint64_t
SweepConfig::valueUnsigned(const std::string &key,
                           std::uint64_t fallback) const
{
    if (!has(key))
        return fallback;
    double v = 0.0;
    std::string s = value(key);
    if (!evalArithmetic(s, v) || v < 0.0 || v != std::floor(v))
        dsp_fatal("%s: key '%s' = '%s' is not a non-negative integer",
                  where_.c_str(), key.c_str(), s.c_str());
    return static_cast<std::uint64_t>(v);
}

double
SweepConfig::valueDouble(const std::string &key, double fallback) const
{
    if (!has(key))
        return fallback;
    double v = 0.0;
    std::string s = value(key);
    if (!evalArithmetic(s, v))
        dsp_fatal("%s: key '%s' = '%s' is not numeric", where_.c_str(),
                  key.c_str(), s.c_str());
    return v;
}

} // namespace sweep
} // namespace dsp
