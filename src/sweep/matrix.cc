#include "sweep/matrix.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace dsp {
namespace sweep {

std::string
JobSpec::id() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "workload=%s protocol=%s policy=%s cpu=%s nodes=%u seed=%llu "
        "scale=%.4f threads=%u warmup_misses=%llu warmup_instr=%llu "
        "measure_instr=%llu",
        workload.c_str(), protocol.c_str(), policy.c_str(),
        cpu.c_str(), nodes, static_cast<unsigned long long>(seed),
        scale, threads,
        static_cast<unsigned long long>(warmupMisses),
        static_cast<unsigned long long>(warmupInstr),
        static_cast<unsigned long long>(measureInstr));
    std::string id = buf;
    // Oracle-off flat-topology ids predate the verify and topology
    // axes; keeping them suffix-free lets old journals resume and
    // keeps fault-plan hashes stable.
    if (verify != "off")
        id += " verify=" + verify;
    if (hubs != 1) {
        std::snprintf(buf, sizeof(buf), " hubs=%u", hubs);
        id += buf;
    }
    if (cluster != 0) {
        std::snprintf(buf, sizeof(buf), " cluster=%u", cluster);
        id += buf;
    }
    if (switchNs != 0.0) {
        std::snprintf(buf, sizeof(buf), " switch_ns=%.4f", switchNs);
        id += buf;
    }
    return id;
}

std::uint64_t
JobSpec::idHash() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : id()) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
JobSpec::checkpointSubdir(const std::string &root) const
{
    std::string canonical = id();
    std::string name;
    name.reserve(canonical.size());
    for (char c : canonical) {
        bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
        name += keep ? c : '_';
    }
    return root + "/" + name;
}

namespace {

std::uint64_t
parseUnsigned(const std::string &key, const std::string &text,
              std::uint64_t lo, std::uint64_t hi)
{
    double v = 0.0;
    if (!evalArithmetic(text, v) || v != std::floor(v) ||
        v < static_cast<double>(lo) || v > static_cast<double>(hi)) {
        dsp_fatal("sweep axis %s: '%s' is not an integer in [%llu, "
                  "%llu]",
                  key.c_str(), text.c_str(),
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi));
    }
    return static_cast<std::uint64_t>(v);
}

void
checkOneOf(const std::string &key, const std::string &v,
           std::initializer_list<const char *> allowed)
{
    for (const char *a : allowed) {
        if (v == a)
            return;
    }
    std::string list;
    for (const char *a : allowed) {
        if (!list.empty())
            list += ", ";
        list += a;
    }
    dsp_fatal("sweep axis %s: '%s' (expected one of: %s)", key.c_str(),
              v.c_str(), list.c_str());
}

} // namespace

std::vector<JobSpec>
expandMatrix(const SweepConfig &config)
{
    JobSpec base;
    base.warmupMisses =
        config.valueUnsigned("warmup_misses", base.warmupMisses);
    base.warmupInstr =
        config.valueUnsigned("warmup_instr", base.warmupInstr);
    base.measureInstr =
        config.valueUnsigned("measure_instr", base.measureInstr);
    base.checkpointEvery =
        config.valueUnsigned("checkpoint_every", base.checkpointEvery);
    base.checkpointDir = config.value("checkpoint_dir", "");

    std::vector<std::string> workloads =
        config.values("workload", base.workload);
    std::vector<std::string> protocols =
        config.values("protocol", base.protocol);
    std::vector<std::string> policies =
        config.values("policy", base.policy);
    std::vector<std::string> cpus = config.values("cpu", base.cpu);
    std::vector<std::string> verifies =
        config.values("verify", base.verify);
    std::vector<std::string> nodes = config.values("nodes", "16");
    std::vector<std::string> seeds = config.values("seed", "1");
    std::vector<std::string> scales = config.values("scale", "0.25");
    std::vector<std::string> threads = config.values("threads", "1");
    std::vector<std::string> hubses = config.values("hubs", "1");
    std::vector<std::string> clusters = config.values("cluster", "0");
    std::vector<std::string> switchNss =
        config.values("switch_ns", "0");

    std::vector<JobSpec> jobs;
    for (const std::string &wl : workloads)
    for (const std::string &proto : protocols)
    for (const std::string &pol : policies)
    for (const std::string &cpu : cpus)
    for (const std::string &ver : verifies)
    for (const std::string &n : nodes)
    for (const std::string &seed : seeds)
    for (const std::string &scale : scales)
    for (const std::string &thr : threads)
    for (const std::string &hub : hubses)
    for (const std::string &clus : clusters)
    for (const std::string &sw : switchNss) {
        JobSpec job = base;
        job.workload = wl;
        job.protocol = proto;
        checkOneOf("protocol", proto,
                   {"snooping", "directory", "multicast"});
        job.policy = pol;
        job.cpu = cpu;
        checkOneOf("cpu", cpu, {"simple", "detailed"});
        job.verify = ver;
        checkOneOf("verify", ver, {"on", "off"});
        job.nodes = static_cast<std::uint32_t>(
            parseUnsigned("nodes", n, 2, 256));
        job.seed = parseUnsigned("seed", seed, 0, ~0ull);
        double sc = 0.0;
        if (!evalArithmetic(scale, sc) || sc <= 0.0)
            dsp_fatal("sweep axis scale: '%s' is not positive",
                      scale.c_str());
        job.scale = sc;
        job.threads = static_cast<std::uint32_t>(
            parseUnsigned("threads", thr, 1, 64));
        job.hubs = static_cast<std::uint32_t>(
            parseUnsigned("hubs", hub, 1, 64));
        job.cluster = static_cast<std::uint32_t>(
            parseUnsigned("cluster", clus, 0, 256));
        double swNs = 0.0;
        if (!evalArithmetic(sw, swNs) || swNs < 0.0)
            dsp_fatal("sweep axis switch_ns: '%s' is not a "
                      "non-negative number",
                      sw.c_str());
        job.switchNs = swNs;
        jobs.push_back(job);
    }
    return jobs;
}

} // namespace sweep
} // namespace dsp
