/**
 * @file
 * Crash-tolerant supervised job pool for simulation-farm sweeps.
 *
 * Each job runs in a fork()ed worker process (inheriting the parent's
 * read-only workload/config state for free) and reports its result
 * row through a pipe; the parent validates the row and appends it to
 * the journal. Robustness machinery, in order of escalation:
 *
 *  - watchdog: a worker exceeding the per-job wall-clock budget is
 *    SIGKILLed and the attempt counts as failed;
 *  - retry with exponential backoff: failed attempts are re-queued
 *    (backoff * 2^(attempt-1)) up to the attempt budget;
 *  - graceful degradation: a job that exhausts its budget is recorded
 *    as a "failed" journal row -- with its exit status or fatal
 *    signal -- and the sweep continues; a streak of pool-level faults
 *    shrinks the worker pool instead of aborting the sweep;
 *  - resume: jobs with a winning "done" row in the journal are
 *    skipped, so re-running the same config finishes the matrix.
 *
 * SIGINT/SIGTERM (via sim/interrupt.hh, polled between poll() waits):
 * running workers are killed, nothing further is launched, the journal
 * keeps every already-flushed row, and run() returns with
 * `interrupted` set so the driver can exit with interruptExitCode.
 */

#ifndef DSP_SWEEP_SUPERVISOR_HH
#define DSP_SWEEP_SUPERVISOR_HH

#include <functional>
#include <string>
#include <vector>

#include "sweep/fault_inject.hh"
#include "sweep/journal.hh"
#include "sweep/matrix.hh"

namespace dsp {
namespace sweep {

struct SupervisorOptions {
    unsigned concurrency = 4;      ///< worker pool size (>= 1)
    double timeoutSeconds = 300.0; ///< per-attempt wall-clock budget
    unsigned maxAttempts = 3;      ///< attempts before a failed row
    double backoffSeconds = 0.05;  ///< retry backoff base (doubles)
    /** Consecutive failed attempts (across jobs, no success between)
     *  that shrink the pool by one worker. */
    unsigned degradeStreak = 4;
    bool fsyncRows = true;         ///< fsync the journal per row
};

struct SweepSummary {
    std::size_t jobs = 0;       ///< matrix size handed to run()
    std::size_t skipped = 0;    ///< resumed: already done in journal
    std::size_t completed = 0;  ///< done rows appended by this run
    std::size_t failed = 0;     ///< failed rows appended by this run
    std::size_t launched = 0;   ///< worker processes forked
    std::size_t retries = 0;    ///< attempts after the first
    std::size_t timeouts = 0;   ///< watchdog SIGKILLs
    std::size_t invalidRows = 0;///< worker results failing validation
    /** Workers that exited with verify::violationExitCode: the job's
     *  coherence oracle found a protocol violation. Deterministic, so
     *  journaled as failed on the first attempt (no retries). Counted
     *  inside `failed` as well. */
    std::size_t violations = 0;
    unsigned finalConcurrency = 0;
    bool interrupted = false;

    bool
    allDone() const
    {
        return !interrupted && failed == 0 &&
               skipped + completed == jobs;
    }
};

/**
 * The job body, run *in the worker child*: returns the result row as
 * a flat JSON object that must carry "job": the spec's canonical id
 * and "status": "done" (see Journal). Exceptions and dsp_fatal in the
 * body become nonzero child exits, i.e. failed attempts.
 */
using JobBody = std::function<std::string(const JobSpec &)>;

class Supervisor
{
  public:
    Supervisor(const std::string &journal_path,
               const SupervisorOptions &options);

    /**
     * Run the matrix to completion (or interruption). Resumes from
     * the journal at `journal_path`; appends one row per job decided
     * this run. `faults` is consulted per (job, attempt) and enacted
     * in the child.
     */
    SweepSummary run(const std::vector<JobSpec> &jobs,
                     const JobBody &body, const FaultPlan &faults);

    const std::string &journalPath() const { return journalPath_; }

  private:
    std::string journalPath_;
    SupervisorOptions options_;
};

} // namespace sweep
} // namespace dsp

#endif // DSP_SWEEP_SUPERVISOR_HH
