/**
 * @file
 * Append-only JSON-lines result journal with per-row checksums.
 *
 * Each completed (or permanently failed) job appends exactly one line:
 * a flat JSON object whose last member is "crc", the CRC-32 (hex) of
 * the serialized object *without* the crc member. Rows are flushed and
 * fsync'd as they land, so a dying sweep loses at most the row being
 * written -- and a truncated or corrupt tail line fails its checksum
 * and is dropped on the next read instead of poisoning the resume.
 *
 * Resume contract: readJournal() returns the surviving rows plus a
 * recovery report; per job id the first "done" row wins (a "failed"
 * row is superseded by any "done" row from a later resume). A sweep
 * re-runs exactly the jobs without a winning "done" row, so a fresh
 * run and a crash+resume run of the same config end with identical
 * aggregate tables (the simulator is bit-deterministic per job).
 */

#ifndef DSP_SWEEP_JOURNAL_HH
#define DSP_SWEEP_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dsp {
namespace sweep {

/** CRC-32 (IEEE, reflected 0xEDB88320) of `text`. */
std::uint32_t crc32(const std::string &text);

/** One surviving journal row. */
struct JournalRow {
    std::string payload;  ///< the JSON object, crc member stripped
    std::string job;      ///< "job" field
    std::string status;   ///< "status" field ("done" | "failed")
};

/** What readJournal() recovered (and skipped). */
struct JournalRecovery {
    std::size_t lines = 0;          ///< physical lines seen
    std::size_t rows = 0;           ///< rows surviving validation
    std::size_t droppedTail = 0;    ///< truncated/corrupt final line
    std::size_t droppedCorrupt = 0; ///< bad-checksum interior lines
    std::size_t duplicates = 0;     ///< rows superseded per job id
};

/**
 * Extract a top-level string or raw-literal member from a flat JSON
 * object produced by this subsystem (no nested objects; strings have
 * no escaped quotes). Returns false if absent.
 */
bool jsonField(const std::string &object, const std::string &key,
               std::string &out);

/** True when `object` looks like exactly one flat JSON object with
 *  the required "job" and "status" string members. */
bool validRowPayload(const std::string &object);

/**
 * Read and validate a journal. Missing file = empty journal. Rows
 * failing checksum are dropped (tail rows silently -- that is the
 * normal crash artifact -- interior rows with a warning); duplicate
 * job ids are resolved done-first (see file comment).
 */
std::vector<JournalRow> readJournal(const std::string &path,
                                    JournalRecovery &recovery);

/** Append-side handle. */
class Journal
{
  public:
    /** Open for appending (creating the file if needed); fatal if the
     *  path is unwritable. `fsyncRows` trades row durability for
     *  speed (tests disable it). */
    explicit Journal(const std::string &path, bool fsyncRows = true);
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Append one row. `payload` must be a flat JSON object (validated
     * with validRowPayload); the crc member is added here. Flushes
     * (and fsyncs) before returning: once append() returns, the row
     * survives any parent crash.
     */
    void append(const std::string &payload);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    bool fsyncRows_ = true;
};

/**
 * The deterministic aggregate table over a journal's surviving rows:
 * one line per job in job-id order with the figure statistics copied
 * textually from the row (host-side fields like wall_ms are excluded),
 * plus integer totals. Two sweeps of the same config -- fresh or
 * crash+resumed, any concurrency -- produce byte-identical tables.
 */
std::string aggregateTable(const std::vector<JournalRow> &rows);

} // namespace sweep
} // namespace dsp

#endif // DSP_SWEEP_JOURNAL_HH
