/**
 * @file
 * sesc simu.conf-style key=value configuration frontend for the sweep
 * driver (see docs/sweep.md).
 *
 * Grammar, per line:
 *
 *   key = value            # trailing comment
 *
 * Values may reference earlier (or later) keys as $(key) -- references
 * are substituted textually, to any depth, with cycle detection -- and
 * may contain integer/float arithmetic (+ - * / and parentheses),
 * evaluated after substitution: `measure = 2000*$(nodes)`.
 *
 * A value is a comma-separated *list*; every element is one point of a
 * sweep axis. Integer elements may also be written as inclusive ranges
 * `lo..hi` (`seed = 1..4` is `1, 2, 3, 4`). Scalar lookups require the
 * list to have exactly one element.
 */

#ifndef DSP_SWEEP_CONFIG_HH
#define DSP_SWEEP_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dsp {
namespace sweep {

class SweepConfig
{
  public:
    /** Parse `text` (fatal on syntax errors; `where` names the source
     *  in diagnostics). Later assignments override earlier ones. */
    static SweepConfig fromString(const std::string &text,
                                  const std::string &where = "<string>");

    /** Parse a config file (fatal if unreadable). */
    static SweepConfig fromFile(const std::string &path);

    bool has(const std::string &key) const;

    /**
     * The fully expanded list for `key`: substituted, range-expanded,
     * arithmetic-evaluated. Numeric results are canonicalized (integer
     * results print without a decimal point), so job ids are stable
     * against cosmetic config edits. Fatal if the key is missing and
     * no default is given.
     */
    std::vector<std::string> values(const std::string &key) const;
    std::vector<std::string> values(const std::string &key,
                                    const std::string &fallback) const;

    /** Scalar accessors: fatal if the list has != 1 element. */
    std::string value(const std::string &key) const;
    std::string value(const std::string &key,
                      const std::string &fallback) const;
    std::uint64_t valueUnsigned(const std::string &key,
                                std::uint64_t fallback) const;
    double valueDouble(const std::string &key, double fallback) const;

    /** All keys, in first-assignment order (matrix axis order). */
    const std::vector<std::string> &keys() const { return order_; }

  private:
    std::string rawFor(const std::string &key) const;
    std::string substitute(const std::string &value,
                           unsigned depth) const;

    std::vector<std::string> order_;
    std::vector<std::string> keys_;
    std::vector<std::string> raw_;
    std::string where_;
};

/**
 * Evaluate an arithmetic expression over doubles (+ - * / unary-minus
 * parentheses). Returns false if `text` is not a well-formed
 * expression (e.g. it is a workload name); fatal only on division by
 * zero inside an otherwise well-formed expression.
 */
bool evalArithmetic(const std::string &text, double &out);

/** Canonical text for a numeric value: "%g"-style, integers without a
 *  decimal point ("16", not "16.000000"). */
std::string canonicalNumber(double v);

} // namespace sweep
} // namespace dsp

#endif // DSP_SWEEP_CONFIG_HH
