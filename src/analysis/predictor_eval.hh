/**
 * @file
 * Trace-driven predictor evaluation (Section 4): replays an annotated
 * miss trace through a protocol model with per-node predictors and
 * accumulates the latency/bandwidth statistics plotted in Figures 5
 * and 6 -- request messages per miss on one axis, percent of misses
 * requiring indirection on the other.
 */

#ifndef DSP_ANALYSIS_PREDICTOR_EVAL_HH
#define DSP_ANALYSIS_PREDICTOR_EVAL_HH

#include <memory>
#include <string>
#include <vector>

#include "coherence/trace_protocols.hh"
#include "core/factory.hh"
#include "trace/trace.hh"

namespace dsp {

/** One point in the latency/bandwidth plane. */
struct EvalResult {
    std::string protocol;
    std::string policy;          ///< predictor name or "-" for baselines
    std::uint64_t misses = 0;    ///< measured misses

    double requestMessagesPerMiss = 0.0;  ///< Fig 5/6 x-axis
    double indirectionPct = 0.0;          ///< Fig 5/6 y-axis
    double retriesPerMiss = 0.0;
    double trafficBytesPerMiss = 0.0;     ///< incl. data messages
    double cacheToCachePct = 0.0;

    /** Average size of the *initial* predicted destination set. */
    double predictedSetSize = 0.0;
};

/**
 * Replays traces. Stateless between calls; construct once per system
 * size.
 */
class PredictorEvaluator
{
  public:
    explicit PredictorEvaluator(NodeId num_nodes)
        : numNodes_(num_nodes)
    {
    }

    /**
     * Baseline protocols (snooping / directory): no predictors.
     * Warmup records are replayed (to nothing -- baselines are
     * stateless) but excluded from statistics.
     */
    EvalResult evaluateBaseline(const Trace &trace,
                                TraceProtocol &protocol) const;

    /**
     * Multicast snooping with one predictor per node. Predictors are
     * trained during the warmup prefix, then measured over the rest.
     */
    EvalResult
    evaluatePredictor(const Trace &trace, PredictorPolicy policy,
                      const PredictorConfig &config) const;

  private:
    EvalResult
    replay(const Trace &trace, TraceProtocol &protocol,
           std::vector<std::unique_ptr<Predictor>> *predictors) const;

    NodeId numNodes_;
};

} // namespace dsp

#endif // DSP_ANALYSIS_PREDICTOR_EVAL_HH
