#include "analysis/trace_collector.hh"

#include "sim/logging.hh"

namespace dsp {

TraceCollector::TraceCollector(Workload &workload,
                               const CacheParams &caches)
    : workload_(workload),
      numNodes_(workload.numNodes()),
      tracker_(workload.numNodes()),
      icount_(workload.numNodes(), 0)
{
    nodes_.reserve(numNodes_);
    for (NodeId n = 0; n < numNodes_; ++n)
        nodes_.emplace_back(caches);
}

void
TraceCollector::addRefObserver(RefObserver observer)
{
    refObservers_.push_back(std::move(observer));
}

void
TraceCollector::addMissObserver(MissObserver observer)
{
    missObservers_.push_back(std::move(observer));
}

std::uint64_t
TraceCollector::totalInstructions() const
{
    std::uint64_t total = 0;
    for (std::uint64_t count : icount_)
        total += count;
    return total;
}

void
TraceCollector::handleMiss(NodeId p, const MemRef &ref, bool is_write)
{
    BlockId block = blockOf(ref.addr);
    RequestType type = is_write ? RequestType::GetExclusive
                                : RequestType::GetShared;

    SharingTracker::Transaction txn = tracker_.apply(block, p, type);

    // Propagate the transaction's side effects into the peer caches,
    // pairing each coherence action with its l0Invalidate() hook
    // (this is the trace-replay flavour of the system fan-in; see
    // docs/access_pipeline.md).
    if (type == RequestType::GetShared) {
        if (txn.cacheToCache) {
            nodes_[txn.responder].l0Invalidate(block);
            nodes_[txn.responder].downgrade(block);
        }
    } else {
        txn.required.forEach([&](NodeId q) {
            nodes_[q].l0Invalidate(block);
            nodes_[q].invalidate(block);
        });
    }

    // Install at the requester, reflecting any L2 eviction back into
    // the global sharing state.
    NodeCaches::FillResult fill =
        nodes_[p].fill(ref.addr, txn.grantedState);
    if (fill.evicted) {
        if (isOwnerState(fill.victimState))
            tracker_.evictOwned(fill.victim, p);
        else if (fill.victimState == MosiState::Shared)
            tracker_.evictShared(fill.victim, p);
    }

    ++misses_;

    if (missObservers_.empty())
        return;
    TraceRecord record;
    record.addr = ref.addr;
    record.pc = ref.pc;
    record.requiredMask = txn.required.mask();
    record.requester = p;
    record.responder = txn.responder == invalidNode
                           ? TraceRecord::memoryResponder
                           : txn.responder;
    record.type = static_cast<std::uint8_t>(type);
    for (const MissObserver &observer : missObservers_)
        observer(record, txn);
}

void
TraceCollector::step()
{
    // The least-advanced processor (by instruction count) goes next.
    NodeId p = 0;
    for (NodeId n = 1; n < numNodes_; ++n)
        if (icount_[n] < icount_[p])
            p = n;

    MemRef ref = workload_.next(p);
    icount_[p] += ref.work + 1;
    ++references_;

    for (const RefObserver &observer : refObservers_)
        observer(p, ref);

    NodeCaches::AccessResult result =
        nodes_[p].access(ref.addr, ref.write);
    if (result.need != CoherenceNeed::None)
        handleMiss(p, ref, ref.write);
}

TraceCollector::RunStats
TraceCollector::run(std::uint64_t misses, std::uint64_t max_refs)
{
    RunStats stats;
    std::uint64_t start_refs = references_;
    std::uint64_t start_instr = totalInstructions();
    std::uint64_t start_misses = misses_;

    while (misses_ - start_misses < misses &&
           references_ - start_refs < max_refs) {
        step();
    }

    stats.references = references_ - start_refs;
    stats.instructions = totalInstructions() - start_instr;
    stats.misses = misses_ - start_misses;
    return stats;
}

Trace
TraceCollector::collect(std::uint64_t warmup, std::uint64_t measured)
{
    Trace trace;
    trace.workloadName = workload_.name();
    trace.numNodes = numNodes_;
    trace.records.reserve(warmup + measured);

    addMissObserver([&trace](const TraceRecord &record,
                             const SharingTracker::Transaction &) {
        trace.records.push_back(record);
    });

    run(warmup);
    trace.warmupRecords = trace.records.size();
    trace.warmupInstructions = totalInstructions();

    run(measured);
    trace.totalInstructions = totalInstructions();

    // Drop the collector-owned observer we just added; the trace
    // vector must not be appended to after we return it.
    missObservers_.pop_back();
    return trace;
}

} // namespace dsp
