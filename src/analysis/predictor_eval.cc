#include "analysis/predictor_eval.hh"

#include "sim/logging.hh"

namespace dsp {

EvalResult
PredictorEvaluator::replay(
    const Trace &trace, TraceProtocol &protocol,
    std::vector<std::unique_ptr<Predictor>> *predictors) const
{
    dsp_assert(trace.numNodes == numNodes_,
               "trace has %u nodes, evaluator expects %u",
               trace.numNodes, numNodes_);

    EvalResult result;
    result.protocol = protocol.name();
    result.policy = predictors ? (*predictors)[0]->name() : "-";

    std::uint64_t request_messages = 0;
    std::uint64_t indirections = 0;
    std::uint64_t retries = 0;
    std::uint64_t bytes = 0;
    std::uint64_t c2c = 0;
    std::uint64_t predicted_size_sum = 0;

    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        const TraceRecord &record = trace.records[i];
        const bool measured = i >= trace.warmupRecords;
        MissInfo miss = record.toMissInfo(numNodes_);

        DestinationSet predicted;
        if (predictors) {
            predicted = (*predictors)[miss.requester]->predict(
                miss.addr, miss.pc, miss.type, miss.requester,
                miss.home);
        } else {
            // Baselines ignore the prediction, but the multicast
            // model's contract requires requester + home.
            predicted.add(miss.requester);
            predicted.add(miss.home);
        }

        MissOutcome outcome = protocol.handleMiss(miss, predicted);

        if (predictors) {
            Predictor &own = *(*predictors)[miss.requester];
            const bool insufficient = !miss.required.empty();

            // Directory retry informs the requester of the true set
            // (only Sticky-Spatial listens).
            if (outcome.retries > 0)
                own.trainRetry(miss.addr, miss.pc, miss.required);

            // Data response (none for upgrades-in-place).
            if (miss.responder != miss.requester) {
                own.trainResponse(miss.addr, miss.pc, miss.responder,
                                  insufficient);
            }

            // Every node that observed the request trains on it.
            outcome.observers.forEach([&](NodeId q) {
                if (q != miss.requester) {
                    (*predictors)[q]->trainExternalRequest(
                        miss.addr, miss.pc, miss.type, miss.requester);
                }
            });
        }

        if (!measured)
            continue;
        ++result.misses;
        request_messages += outcome.requestMessages;
        indirections += outcome.indirection ? 1 : 0;
        retries += outcome.retries;
        bytes += outcome.totalBytes();
        c2c += outcome.cacheToCache ? 1 : 0;
        predicted_size_sum += predicted.count();
    }

    if (result.misses > 0) {
        double n = static_cast<double>(result.misses);
        result.requestMessagesPerMiss =
            static_cast<double>(request_messages) / n;
        result.indirectionPct =
            100.0 * static_cast<double>(indirections) / n;
        result.retriesPerMiss = static_cast<double>(retries) / n;
        result.trafficBytesPerMiss = static_cast<double>(bytes) / n;
        result.cacheToCachePct = 100.0 * static_cast<double>(c2c) / n;
        result.predictedSetSize =
            static_cast<double>(predicted_size_sum) / n;
    }
    return result;
}

EvalResult
PredictorEvaluator::evaluateBaseline(const Trace &trace,
                                     TraceProtocol &protocol) const
{
    return replay(trace, protocol, nullptr);
}

EvalResult
PredictorEvaluator::evaluatePredictor(const Trace &trace,
                                      PredictorPolicy policy,
                                      const PredictorConfig &config) const
{
    dsp_assert(config.numNodes == numNodes_,
               "predictor config node count mismatch");
    auto predictors = makePredictorsPerNode(policy, config);
    MulticastSnoopingModel protocol(numNodes_);
    EvalResult result = replay(trace, protocol, &predictors);
    result.policy = toString(policy);
    return result;
}

} // namespace dsp
