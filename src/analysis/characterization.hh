/**
 * @file
 * Workload characterization (Section 2): computes Table 2 and
 * Figures 2-4 from the reference and miss streams of a TraceCollector.
 */

#ifndef DSP_ANALYSIS_CHARACTERIZATION_HH
#define DSP_ANALYSIS_CHARACTERIZATION_HH

#include <cstdint>
#include <vector>

#include "analysis/trace_collector.hh"
#include "sim/flat_map.hh"
#include "stats/histogram.hh"
#include "trace/trace.hh"

namespace dsp {

/**
 * Streaming observer of references and misses.
 *
 * Attach with attach(); call beginMeasurement() after warmup so the
 * rate-based statistics (Table 2 columns 4-7, Figures 2 and 4) cover
 * only the measured interval. Footprints and per-block sharing masks
 * (Table 2 columns 2-3, Figure 3) accumulate over the whole run, like
 * the paper's whole-execution analysis.
 */
class WorkloadCharacterization
{
  public:
    explicit WorkloadCharacterization(NodeId num_nodes);

    /** Register this object's observers on a collector. */
    void attach(TraceCollector &collector);

    /** Mark the end of warmup. */
    void beginMeasurement(std::uint64_t instructions_so_far);

    // -- Raw event sinks (public so replays/tests can feed directly).
    void onReference(NodeId p, const MemRef &ref);
    void onMiss(const TraceRecord &record,
                const SharingTracker::Transaction &txn);

    /**
     * Rebuild all statistics from an annotated trace instead of a live
     * collection. Because caches start cold, every processor that ever
     * touches a block appears as the requester of at least one miss on
     * it, so footprints and touched-by masks are exact when recovered
     * from the full (warmup + measured) record stream.
     */
    void absorbTrace(const Trace &trace);

    /** Record-level sink used by absorbTrace. */
    void onMissRecord(const TraceRecord &record, bool measured);

    /** Table 2: one row of workload properties. */
    struct Table2Row {
        std::uint64_t touched64Bytes = 0;    ///< footprint in bytes
        std::uint64_t touched1024Bytes = 0;
        std::uint64_t staticMissPcs = 0;
        std::uint64_t totalMisses = 0;       ///< measured interval
        double missesPer1kInstr = 0.0;
        double directoryIndirectionPct = 0.0;
    };

    Table2Row table2(std::uint64_t total_instructions) const;

    /** Figure 2: required-observer histograms (bins 0,1,2,3+). */
    const stats::Histogram &sharingHistogramReads() const
    {
        return figure2Reads_;
    }
    const stats::Histogram &sharingHistogramWrites() const
    {
        return figure2Writes_;
    }

    /** Figure 3(a): blocks touched by n processors (bin = n). */
    stats::Histogram blocksTouchedBy() const;

    /** Figure 3(b): same histogram weighted by misses to the block. */
    stats::Histogram missesToBlocksTouchedBy() const;

    /** Figure 4 cumulative coverage (percent) of cache-to-cache misses
     *  by the hottest `points` 64 B blocks / 1 KB macroblocks / PCs. */
    std::vector<double>
    blockCoverage(const std::vector<std::size_t> &points) const;
    std::vector<double>
    macroblockCoverage(const std::vector<std::size_t> &points) const;
    std::vector<double>
    pcCoverage(const std::vector<std::size_t> &points) const;

    /** Total cache-to-cache misses in the measured interval. */
    std::uint64_t cacheToCacheMisses() const { return c2cMisses_; }

  private:
    NodeId numNodes_;
    bool measuring_ = false;
    std::uint64_t warmupInstructions_ = 0;

    /** Per-block: which processors ever touched it + measured misses. */
    struct BlockInfo {
        std::uint64_t touchedMask = 0;
        std::uint32_t misses = 0;
    };
    FlatMap<BlockId, BlockInfo> blocks_;
    FlatSet<std::uint64_t> macroblocks_;
    FlatSet<Addr> missPcs_;

    std::uint64_t measuredMisses_ = 0;
    std::uint64_t indirections_ = 0;
    std::uint64_t c2cMisses_ = 0;

    stats::Histogram figure2Reads_;
    stats::Histogram figure2Writes_;

    stats::HotSpotAccumulator c2cByBlock_;
    stats::HotSpotAccumulator c2cByMacroblock_;
    stats::HotSpotAccumulator c2cByPc_;
};

} // namespace dsp

#endif // DSP_ANALYSIS_CHARACTERIZATION_HH
