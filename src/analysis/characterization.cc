#include "analysis/characterization.hh"

#include <bit>

namespace dsp {

WorkloadCharacterization::WorkloadCharacterization(NodeId num_nodes)
    : numNodes_(num_nodes),
      figure2Reads_(4),   // 0, 1, 2, 3+
      figure2Writes_(4)
{
}

void
WorkloadCharacterization::attach(TraceCollector &collector)
{
    collector.addRefObserver(
        [this](NodeId p, const MemRef &ref) { onReference(p, ref); });
    collector.addMissObserver(
        [this](const TraceRecord &record,
               const SharingTracker::Transaction &txn) {
            onMiss(record, txn);
        });
}

void
WorkloadCharacterization::beginMeasurement(
    std::uint64_t instructions_so_far)
{
    measuring_ = true;
    warmupInstructions_ = instructions_so_far;
}

void
WorkloadCharacterization::onReference(NodeId p, const MemRef &ref)
{
    BlockInfo &info = blocks_[blockOf(ref.addr)];
    info.touchedMask |= std::uint64_t{1} << p;
    macroblocks_.insert(macroblockOf(ref.addr));
}

void
WorkloadCharacterization::onMiss(const TraceRecord &record,
                                 const SharingTracker::Transaction &txn)
{
    (void)txn;
    onMissRecord(record, measuring_);
}

void
WorkloadCharacterization::onMissRecord(const TraceRecord &record,
                                       bool measured)
{
    BlockInfo &info = blocks_[blockOf(record.addr)];
    info.touchedMask |= std::uint64_t{1} << record.requester;
    macroblocks_.insert(macroblockOf(record.addr));

    if (!measured)
        return;

    ++measuredMisses_;
    info.misses += 1;
    missPcs_.insert(record.pc);

    unsigned required = record.required().count();
    if (record.requestType() == RequestType::GetShared)
        figure2Reads_.record(required);
    else
        figure2Writes_.record(required);

    if (required > 0)
        ++indirections_;

    const bool cache_to_cache =
        record.responder != TraceRecord::memoryResponder &&
        record.responder != record.requester;
    if (cache_to_cache) {
        ++c2cMisses_;
        c2cByBlock_.record(blockOf(record.addr));
        c2cByMacroblock_.record(macroblockOf(record.addr));
        c2cByPc_.record(record.pc);
    }
}

void
WorkloadCharacterization::absorbTrace(const Trace &trace)
{
    for (std::size_t i = 0; i < trace.records.size(); ++i)
        onMissRecord(trace.records[i], i >= trace.warmupRecords);
}

WorkloadCharacterization::Table2Row
WorkloadCharacterization::table2(std::uint64_t total_instructions) const
{
    Table2Row row;
    row.touched64Bytes = blocks_.size() * blockBytes;
    row.touched1024Bytes = macroblocks_.size() * macroblockBytes;
    row.staticMissPcs = missPcs_.size();
    row.totalMisses = measuredMisses_;

    std::uint64_t measured_instr =
        total_instructions > warmupInstructions_
            ? total_instructions - warmupInstructions_
            : 0;
    if (measured_instr > 0) {
        row.missesPer1kInstr = 1000.0 *
                               static_cast<double>(measuredMisses_) /
                               static_cast<double>(measured_instr);
    }
    if (measuredMisses_ > 0) {
        row.directoryIndirectionPct =
            100.0 * static_cast<double>(indirections_) /
            static_cast<double>(measuredMisses_);
    }
    return row;
}

stats::Histogram
WorkloadCharacterization::blocksTouchedBy() const
{
    stats::Histogram hist(numNodes_ + 1);
    for (const auto &kv : blocks_)
        hist.record(std::popcount(kv.second.touchedMask));
    return hist;
}

stats::Histogram
WorkloadCharacterization::missesToBlocksTouchedBy() const
{
    stats::Histogram hist(numNodes_ + 1);
    for (const auto &kv : blocks_)
        if (kv.second.misses > 0)
            hist.record(std::popcount(kv.second.touchedMask),
                        kv.second.misses);
    return hist;
}

std::vector<double>
WorkloadCharacterization::blockCoverage(
    const std::vector<std::size_t> &points) const
{
    return c2cByBlock_.coverageAt(points);
}

std::vector<double>
WorkloadCharacterization::macroblockCoverage(
    const std::vector<std::size_t> &points) const
{
    return c2cByMacroblock_.coverageAt(points);
}

std::vector<double>
WorkloadCharacterization::pcCoverage(
    const std::vector<std::size_t> &points) const
{
    return c2cByPc_.coverageAt(points);
}

} // namespace dsp
