/**
 * @file
 * Trace collection (Section 2.1): drives a workload's reference
 * streams through the 16-node cache hierarchy under a MOSI protocol
 * and captures the stream of annotated L2 misses.
 *
 * Processor interleaving is instruction-count driven: at every step
 * the processor with the fewest executed instructions issues the next
 * reference, approximating lockstep parallel execution.
 */

#ifndef DSP_ANALYSIS_TRACE_COLLECTOR_HH
#define DSP_ANALYSIS_TRACE_COLLECTOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "coherence/sharing_tracker.hh"
#include "mem/node_caches.hh"
#include "trace/trace.hh"
#include "workload/workload.hh"

namespace dsp {

/** Drives workload -> caches -> sharing tracker -> trace records. */
class TraceCollector
{
  public:
    /** Observer of every memory reference (pre cache filtering). */
    using RefObserver =
        std::function<void(NodeId, const MemRef &)>;

    /** Observer of every L2 miss with its serialized transaction. */
    using MissObserver = std::function<void(
        const TraceRecord &, const SharingTracker::Transaction &)>;

    /**
     * @param workload reference generator (not owned; must outlive)
     * @param caches per-node cache geometry (Table 4 defaults)
     */
    TraceCollector(Workload &workload,
                   const CacheParams &caches = CacheParams{});

    void addRefObserver(RefObserver observer);
    void addMissObserver(MissObserver observer);

    /** Aggregate counts for one run() call. */
    struct RunStats {
        std::uint64_t references = 0;
        std::uint64_t instructions = 0;
        std::uint64_t misses = 0;
    };

    /**
     * Run until `misses` additional L2 misses occur (or `max_refs`
     * references, a safety valve for miss-starved configurations).
     */
    RunStats run(std::uint64_t misses,
                 std::uint64_t max_refs = ~std::uint64_t{0});

    /**
     * Convenience: produce a Trace with `warmup` + `measured` misses,
     * with warmup metadata filled in.
     */
    Trace collect(std::uint64_t warmup, std::uint64_t measured);

    /** Total instructions executed so far (all processors). */
    std::uint64_t totalInstructions() const;

    /** Total L2 misses so far. */
    std::uint64_t totalMisses() const { return misses_; }

    /** Functional sharing state (for invariant checks in tests). */
    const SharingTracker &tracker() const { return tracker_; }

    /** Per-node caches (for invariant checks in tests). */
    const NodeCaches &caches(NodeId node) const { return nodes_[node]; }

  private:
    /** Issue one reference on the least-advanced processor. */
    void step();

    /** Resolve an L2 miss through the sharing tracker. */
    void handleMiss(NodeId p, const MemRef &ref, bool is_write);

    Workload &workload_;
    NodeId numNodes_;
    SharingTracker tracker_;
    std::vector<NodeCaches> nodes_;
    std::vector<std::uint64_t> icount_;

    std::vector<RefObserver> refObservers_;
    std::vector<MissObserver> missObservers_;

    std::uint64_t references_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace dsp

#endif // DSP_ANALYSIS_TRACE_COLLECTOR_HH
