/**
 * @file
 * Light shared vocabulary of the coherence oracle (src/verify/): the
 * violation kinds the oracle can raise, the deliberate protocol
 * mutations the self-tests inject, and the process exit code a
 * violation terminates with.
 *
 * This header is deliberately tiny: SystemParams, the sweep
 * supervisor, and the bench drivers all need these names without
 * pulling in the oracle's shadow-state machinery (verify/oracle.hh).
 */

#ifndef DSP_VERIFY_VIOLATION_HH
#define DSP_VERIFY_VIOLATION_HH

#include <cstdint>
#include <string>

#include "mem/types.hh"
#include "sim/types.hh"

namespace dsp {
namespace verify {

/**
 * Exit status of a driver whose oracle detected a protocol violation.
 * Distinct from success (0), user error (1), failed sweep rows (2),
 * and interruption (75): a violation is *deterministic* -- the same
 * binary and seed re-fail identically -- so the sweep supervisor
 * journals it immediately instead of burning retry budget.
 */
constexpr int violationExitCode = 77;

/** What invariant a violation broke. */
enum class ViolationKind : std::uint8_t {
    None,
    /** The ordering point's stamped verdict (responder / required /
     *  granted) disagrees with the shadow MOSI state. */
    VerdictMismatch,
    /** Declared insufficient although the destination set covered
     *  every required observer (a lost grant: spurious retry). */
    FalseRetry,
    /** Resolved although the destination set missed a required
     *  observer (the single-writer invariant is now unenforceable). */
    InsufficientResolved,
    /** Data supplied by a node that is not the serialized responder
     *  (or for a transaction already completed / never resolved). */
    SupplyFromNonOwner,
    /** A supplier started its data read before the chained
     *  data-availability bound (its own fill / the in-flight
     *  writeback): it would put stale bytes on the wire. */
    StaleDataSupply,
    /** The stamped supplyEarliest differs from the shadow chain
     *  bound computed from the same serialized history. */
    ChainMismatch,
    /** A writable (M) fill completed while required invalidations
     *  were still unacknowledged: two writers are now possible. */
    InvalidationNotAcked,
    /** An upgrade granted over a version older than the last ordered
     *  write (the requester would keep stale data writable). */
    StaleUpgradeGrant,
    /** A block's serialization tick ran backwards. */
    OrderRegression,
    /** A transaction re-ordered with a non-increasing attempt number:
     *  a mispredicted destination set may only cost extra retries
     *  (strictly sequential attempts), never repeat or regress one --
     *  the predictor-learning invariant (Section 4.1). */
    RetryRegression,
};

std::string toString(ViolationKind kind);

/** First violation found, in the kernel's deterministic merge order:
 *  identical at every shard count. */
struct Violation {
    ViolationKind kind = ViolationKind::None;
    BlockId block = 0;
    Tick tick = 0;
    NodeId node = invalidNode;
    std::uint64_t txn = 0;
    std::string detail;
};

/**
 * Deliberate protocol mutations for the oracle self-tests: each one
 * breaks exactly one invariant, and the oracle must catch it with the
 * matching ViolationKind at every shard count.
 */
enum class Mutation : std::uint8_t {
    None,
    DropInvalidation,   ///< sharers skip the GETX invalidation
    StaleOwnerSupply,   ///< home supplies although a cache owns
    SkipVerdictStamp,   ///< tracker applied but echo left unresolved
    SubsetDelivery,     ///< fan-out drops one required destination
    ReorderHubGrants,   ///< a GETX's tracker apply swaps with the next
    StaleDataSupply,    ///< owner ignores the chained supply bound
    DuplicateRetry,     ///< home re-issues a retry without bumping attempt
};

std::string toString(Mutation m);

/** Parse a --mutate flag value ("drop-inval", "stale-owner-supply",
 *  ...); returns false on an unknown name. */
bool parseMutation(const std::string &name, Mutation &out);

/** The expected first violation kind for each mutation (self-tests
 *  and check.sh assert against this single source of truth). */
ViolationKind expectedKind(Mutation m);

/**
 * Process-global copy of the last violation reported by any oracle.
 * Written single-threaded (violations are raised on the main thread
 * with the kernel quiescent) just before the raise; panic hooks and
 * tests read it to compose dumps / assert identity across replays.
 */
const Violation &lastViolation();
void setLastViolation(const Violation &v);
void clearLastViolation();

} // namespace verify
} // namespace dsp

#endif // DSP_VERIFY_VIOLATION_HH
