#include "verify/violation.hh"

namespace dsp {
namespace verify {

std::string
toString(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::None:                 return "none";
      case ViolationKind::VerdictMismatch:      return "verdict-mismatch";
      case ViolationKind::FalseRetry:           return "false-retry";
      case ViolationKind::InsufficientResolved: return "insufficient-resolved";
      case ViolationKind::SupplyFromNonOwner:   return "supply-from-non-owner";
      case ViolationKind::StaleDataSupply:      return "stale-data-supply";
      case ViolationKind::ChainMismatch:        return "chain-mismatch";
      case ViolationKind::InvalidationNotAcked: return "invalidation-not-acked";
      case ViolationKind::StaleUpgradeGrant:    return "stale-upgrade-grant";
      case ViolationKind::OrderRegression:      return "order-regression";
      case ViolationKind::RetryRegression:      return "retry-regression";
    }
    return "unknown";
}

std::string
toString(Mutation m)
{
    switch (m) {
      case Mutation::None:             return "none";
      case Mutation::DropInvalidation: return "drop-inval";
      case Mutation::StaleOwnerSupply: return "stale-owner-supply";
      case Mutation::SkipVerdictStamp: return "skip-verdict";
      case Mutation::SubsetDelivery:   return "subset-delivery";
      case Mutation::ReorderHubGrants: return "reorder-grants";
      case Mutation::StaleDataSupply:  return "stale-data";
      case Mutation::DuplicateRetry:   return "duplicate-retry";
    }
    return "unknown";
}

bool
parseMutation(const std::string &name, Mutation &out)
{
    static const Mutation all[] = {
        Mutation::None,           Mutation::DropInvalidation,
        Mutation::StaleOwnerSupply, Mutation::SkipVerdictStamp,
        Mutation::SubsetDelivery, Mutation::ReorderHubGrants,
        Mutation::StaleDataSupply, Mutation::DuplicateRetry,
    };
    for (Mutation m : all) {
        if (name == toString(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

ViolationKind
expectedKind(Mutation m)
{
    switch (m) {
      case Mutation::None:             return ViolationKind::None;
      case Mutation::DropInvalidation: return ViolationKind::InvalidationNotAcked;
      case Mutation::StaleOwnerSupply: return ViolationKind::SupplyFromNonOwner;
      case Mutation::SkipVerdictStamp: return ViolationKind::FalseRetry;
      case Mutation::SubsetDelivery:   return ViolationKind::InsufficientResolved;
      case Mutation::ReorderHubGrants: return ViolationKind::VerdictMismatch;
      case Mutation::StaleDataSupply:  return ViolationKind::StaleDataSupply;
      case Mutation::DuplicateRetry:   return ViolationKind::RetryRegression;
    }
    return ViolationKind::None;
}

namespace {
Violation lastViolation_;
} // namespace

const Violation &
lastViolation()
{
    return lastViolation_;
}

void
setLastViolation(const Violation &v)
{
    lastViolation_ = v;
}

void
clearLastViolation()
{
    lastViolation_ = Violation{};
}

} // namespace verify
} // namespace dsp
