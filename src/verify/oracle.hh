/**
 * @file
 * Runtime coherence oracle: a shard-safe shadow of the protocol's
 * serialized history that checks every ordering verdict, data supply,
 * fill, invalidation, and eviction against the MOSI invariants the
 * paper's evaluation rests on -- single writer / multiple readers, no
 * supply from a non-owner, every invalidation acknowledged, and every
 * load observing the latest ordered write (a per-block monotone write
 * seqno).
 *
 * Shard safety (see docs/verify.md): hooks append fixed-size Records
 * to per-*domain* staging buffers -- one per node plus one per
 * ordering hub -- so every append happens on the single shard
 * thread that executes that domain and no lock or atomic is needed.
 * A domain executes its events in nondecreasing tick order, so each
 * buffer is sorted by (tick, append index); reconcile() k-way merges
 * the buffers by (tick, domain, append index) while all shards are
 * quiescent (the kernel's stop predicate / the end of a phase). That
 * merge order is a pure function of the simulated history, so K=1 and
 * K=4 runs report the identical first violation.
 *
 * Zero overhead when disabled: every hook call site is guarded by
 * verify::armed(oracle), which is a constant false when the library
 * is built with DSP_DISABLE_VERIFY (the whole call compiles away) and
 * a single expect-not-taken null check otherwise. check.sh's perf
 * guard runs oracle-off and holds the regression bar either way.
 */

#ifndef DSP_VERIFY_ORACLE_HH
#define DSP_VERIFY_ORACLE_HH

#include <array>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "interconnect/message.hh"
#include "interconnect/topology.hh"
#include "mem/destination_set.hh"
#include "mem/mosi.hh"
#include "mem/types.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"
#include "verify/violation.hh"

namespace dsp {

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

namespace verify {

/** False when the library is built with -DDSP_DISABLE_VERIFY: every
 *  hook site guarded by armed() compiles to nothing. */
#ifdef DSP_DISABLE_VERIFY
inline constexpr bool compiledIn = false;
#else
inline constexpr bool compiledIn = true;
#endif

class Oracle;

/** Hook gate: constant false when compiled out, else one
 *  expect-not-taken null test. Hot paths call this before building
 *  any record arguments. */
constexpr bool
armed(const Oracle *oracle)
{
    if constexpr (!compiledIn)
        return false;
    else
        return __builtin_expect(oracle != nullptr, false);
}

/** What a staged Record witnessed. */
enum class RecordKind : std::uint8_t {
    Order,      ///< ordering-point verdict (hub domain)
    Supply,     ///< a data response left a cache or memory
    Fill,       ///< a requester installed its granted state
    InvalDue,   ///< a delivery obliged `node` to invalidate
    InvalDone,  ///< `node` executed its invalidation
    Evict,      ///< the hub's tracker processed an eviction notice
};

std::string toString(RecordKind kind);

/**
 * One staged coherence event. POD, fixed size; appended by exactly
 * one shard thread, consumed by reconcile() with shards quiescent.
 * Field use varies by kind -- see the call-site table in
 * docs/verify.md. `aux` is the stamped supplyEarliest for Order, the
 * supplier's read-start tick for Supply, and the writeback's expected
 * home-arrival for Evict.
 */
struct Record {
    Tick tick = 0;
    BlockId block = 0;
    TxnId txn = 0;
    Tick aux = 0;
    DestinationSet dests;     ///< Order: post-fan-out dests
    DestinationSet required;  ///< Order: stamped required set
    RecordKind kind = RecordKind::Order;
    RequestType type = RequestType::GetShared;
    MosiState granted = MosiState::Invalid;
    std::uint8_t attempt = 0;
    bool resolved = false;
    /** Evict: owned (dirty) victim. Fill: invalidate-after-fill (a
     *  racing GETX serialized behind the miss). */
    bool flag = false;
    /** Order: requester. Supply: logical supplier (invalidNode =
     *  memory). Fill/InvalDue/InvalDone/Evict: the acting node. */
    NodeId node = invalidNode;
    NodeId responder = invalidNode;  ///< Order: stamped responder
};

/**
 * The oracle proper. One instance shadows one System for one run.
 * Hook methods are called from simulation handlers (each on its
 * domain's shard thread); reconcile(), the accessors, and the report
 * printer run with shards quiescent.
 */
class Oracle
{
  public:
    /** Everything the shadow needs to replicate the ordering point's
     *  verdict and data-availability chaining arithmetic. */
    struct Config {
        NodeId nodes = 16;
        bool directory = false;   ///< 3-hop forward latency in chains
        bool dataChaining = true;
        /** Resolved machine topology: hop latencies for the shadow
         *  chaining arithmetic and the hub map for record staging.
         *  Must equal the System's (same params, same ticks). */
        Topology topo;
        double l2_ns = 12.0;
        double memory_ns = 80.0;
    };

    explicit Oracle(const Config &config);

    // -- hooks: hub domain
    /** Ordering-point verdict, after any stamping (and after any
     *  injected mutation), before fan-out. */
    void recordOrder(const Message &msg, Tick tick);
    /** The hub's tracker accepted an eviction notice (post-guard). */
    void recordEvict(BlockId block, NodeId node, bool owned,
                     Tick wbArrive, Tick tick);

    // -- hooks: node domains (`atNode` = the executing domain)
    /** A data response was issued. `supplier` is the logical source
     *  (invalidNode = the home's memory); `startTick` is when the
     *  data read began (the chained-bound check reads it). */
    void recordSupply(NodeId atNode, NodeId supplier, BlockId block,
                      TxnId txn, Tick startTick, Tick tick);
    /** The requester installed the granted state for its miss. */
    void recordFill(NodeId atNode, const Message &msg,
                    bool invalidateAfterFill, Tick tick);
    /** A delivery obliged `atNode` to invalidate (witnessed at the
     *  delivery dispatcher, independent of the controller that must
     *  act on it). */
    void recordInvalDue(NodeId atNode, BlockId block, TxnId txn,
                        Tick tick);
    /** `atNode`'s controller executed (or MSHR-deferred) the
     *  invalidation. Pairs with the same-tick InvalDue. */
    void recordInvalDone(NodeId atNode, BlockId block, TxnId txn,
                         Tick tick);

    // -- functional warmup (single-threaded, trace-speed; applies
    //    shadow state and versions without running any check)
    void warmupApply(BlockId block, NodeId requester, RequestType type,
                     const DestinationSet &required, NodeId responder);
    void warmupEvict(BlockId block, NodeId node, bool owned);

    /**
     * Merge and check every staged record with tick < safeTick (pass
     * maxTick at a phase boundary, where every appended record is
     * final). Caller must have all shards quiescent. Returns true
     * once a violation has been found; the first violation is kept
     * and later records are not consumed.
     */
    bool reconcile(Tick safeTick);

    bool
    hasViolation() const
    {
        return violation_.kind != ViolationKind::None;
    }
    const Violation &violation() const { return violation_; }

    /** Records checked so far (tests assert the oracle actually ran). */
    std::uint64_t checksPerformed() const { return checksPerformed_; }

    /** DSP-VIOLATION machine line plus the block's forensic ring. */
    void printReport(std::FILE *out) const;

    /**
     * Checkpoint the complete shadow: staged (not-yet-reconciled)
     * per-domain record buffers, shadow blocks with their forensic
     * rings, per-node version books, in-flight shadow transactions,
     * chain books, retry-attempt books, and pending invalidation
     * obligations. Checkpoints are only written on a violation-free
     * prefix, so the violation itself is never serialized. Caller
     * must have all shards quiescent (same contract as reconcile()).
     */
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);

  private:
    /** Forensic depth: the last N records touching a block. */
    static constexpr unsigned ringDepth = 8;

    /** Shadow MOSI state plus write-seqno bookkeeping for one block.
     *  A default ShadowBlock is equivalent to an absent tracker entry
     *  (memory-owned, no sharers); unlike the tracker, the shadow
     *  never erases -- versions must outlive registration. */
    struct ShadowBlock {
        NodeId owner = invalidNode;
        DestinationSet sharers;
        Tick lastOrder = 0;
        /** Monotone write seqno: bumped at every resolved GETX. */
        std::uint64_t version = 0;
        /** Version memory holds (updated at owned evictions). */
        std::uint64_t memVersion = 0;
        /** Node n present: n holds a copy with a known version. */
        DestinationSet valid;
        std::array<Record, ringDepth> ring;
        std::uint8_t ringPos = 0;
        std::uint8_t ringCount = 0;
    };

    /** A resolved transaction between its order and its fill. */
    struct ShadowTxn {
        BlockId block = 0;
        NodeId requester = 0;
        NodeId responder = invalidNode;
        MosiState granted = MosiState::Invalid;
        RequestType type = RequestType::GetShared;
        Tick orderTick = 0;
        Tick supplyEarliest = 0;
        /** Version the responder must supply (pre-bump). */
        std::uint64_t supplyVersion = 0;
        /** Version the requester's copy carries after the fill. */
        std::uint64_t fillVersion = 0;
        bool supplied = false;
    };

    /** An invalidation obligation awaiting its same-tick InvalDone. */
    struct PendingDue {
        BlockId block;
        TxnId txn;
        NodeId node;
        Tick tick;
    };

    /** Staging buffer of the hub domain that orders `block`: mirrors
     *  the System's hub layout so each append still happens on the
     *  one shard thread executing that hub. */
    std::vector<Record> &
    hubBuffer(BlockId block)
    {
        return buffers_[config_.nodes + config_.topo.hubOf(block)];
    }

    // -- reconcile pipeline
    void process(const Record &r);
    void processOrder(const Record &r, ShadowBlock &sb);
    void processSupply(const Record &r, ShadowBlock &sb);
    void processFill(const Record &r, ShadowBlock &sb);
    void processInvalDone(const Record &r, ShadowBlock &sb);
    void processEvict(const Record &r, ShadowBlock &sb);

    /** Any obligation strictly older than `tick` is unacknowledged:
     *  the paired InvalDone is appended within the same event. */
    void flushDuesBefore(Tick tick);

    /** Replicate SharingTracker::makeTransaction on the shadow. */
    void expectedVerdict(const ShadowBlock &sb, NodeId requester,
                         RequestType type, DestinationSet &required,
                         NodeId &responder, MosiState &granted) const;

    /** Replicas of System::supplyBound / chainResolved over the
     *  shadow books (replayed in identical hub order). */
    Tick shadowSupplyBound(BlockId block, NodeId responder,
                           NodeId requester, Tick order);
    void shadowChainResolved(const Record &r, Tick bound);

    void raise(ViolationKind kind, const Record &r, std::string detail);

    void pushRing(ShadowBlock &sb, const Record &r);

    std::uint64_t
    versionKey(BlockId block, NodeId node) const
    {
        // 8 node bits; widen if maxNodes ever exceeds 256.
        static_assert(maxNodes <= 256, "versionKey node field");
        return (block << 8) | node;
    }
    void
    setValid(ShadowBlock &sb, BlockId block, NodeId node,
             std::uint64_t version)
    {
        sb.valid.add(node);
        nodeVersion_[versionKey(block, node)] = version;
    }
    void
    clearValid(ShadowBlock &sb, NodeId node)
    {
        sb.valid.remove(node);
    }

    Config config_;

    /** Per-domain staging: [0, nodes) = node domains, [nodes,
     *  nodes + hubs) = ordering hubs. Each inner vector is appended
     *  by exactly one shard thread and is sorted by (tick, append
     *  index) by construction. */
    std::vector<std::vector<Record>> buffers_;

    FlatMap<BlockId, ShadowBlock> shadow_;
    FlatMap<std::uint64_t, std::uint64_t> nodeVersion_;
    FlatMap<TxnId, ShadowTxn> txns_;
    FlatMap<BlockId, Tick> ownerDataAt_;
    FlatMap<BlockId, Tick> memReadyAt_;
    /** Last ordered attempt number per live transaction: attempts
     *  must be strictly increasing (a misprediction may only cost
     *  retries, never repeat one). Erased at the fill. */
    FlatMap<TxnId, std::uint8_t> retryAttempts_;
    std::vector<PendingDue> pendingDues_;

    Violation violation_;
    std::uint64_t checksPerformed_ = 0;
};

} // namespace verify
} // namespace dsp

#endif // DSP_VERIFY_ORACLE_HH
