#include "verify/oracle.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "checkpoint/checkpoint.hh"
#include "sim/logging.hh"

namespace dsp {
namespace verify {

namespace {

/** invalidNode doubles as "memory" in records; print it readably. */
std::string
nodeName(NodeId node)
{
    if (node == invalidNode)
        return "mem";
    return std::to_string(node);
}

} // namespace

std::string
toString(RecordKind kind)
{
    switch (kind) {
      case RecordKind::Order:     return "order";
      case RecordKind::Supply:    return "supply";
      case RecordKind::Fill:      return "fill";
      case RecordKind::InvalDue:  return "inval-due";
      case RecordKind::InvalDone: return "inval-done";
      case RecordKind::Evict:     return "evict";
    }
    return "unknown";
}

Oracle::Oracle(const Config &config) : config_(config)
{
    dsp_assert(config_.nodes > 0 && config_.nodes <= maxNodes,
               "oracle node count out of range");
    buffers_.resize(config_.nodes +
                    static_cast<std::size_t>(config_.topo.hubs()));
    for (auto &buf : buffers_)
        buf.reserve(4096);
    shadow_.reserve(1 << 14);
    nodeVersion_.reserve(1 << 15);
    txns_.reserve(1 << 10);
    ownerDataAt_.reserve(1 << 10);
    memReadyAt_.reserve(1 << 10);
    retryAttempts_.reserve(1 << 10);
}

// ---------------------------------------------------------------------
// Hooks: each appends to the buffer of the domain executing the call,
// so the append is single-threaded and lock-free by construction.
// ---------------------------------------------------------------------

void
Oracle::recordOrder(const Message &msg, Tick tick)
{
    Record r;
    r.kind = RecordKind::Order;
    r.tick = tick;
    r.block = msg.block();
    r.txn = msg.txn;
    r.aux = msg.echo.supplyEarliest;
    r.dests = msg.dests;
    r.required = msg.echo.required;
    r.type = msg.type;
    r.granted = msg.echo.granted;
    r.attempt = msg.attempt;
    r.resolved =
        msg.echo.resolved && msg.echo.resolvedAttempt == msg.attempt;
    r.node = msg.echo.requester;
    r.responder = msg.echo.responder;
    hubBuffer(r.block).push_back(r);
}

void
Oracle::recordEvict(BlockId block, NodeId node, bool owned,
                    Tick wbArrive, Tick tick)
{
    Record r;
    r.kind = RecordKind::Evict;
    r.tick = tick;
    r.block = block;
    r.aux = wbArrive;
    r.flag = owned;
    r.node = node;
    hubBuffer(block).push_back(r);
}

void
Oracle::recordSupply(NodeId atNode, NodeId supplier, BlockId block,
                     TxnId txn, Tick startTick, Tick tick)
{
    Record r;
    r.kind = RecordKind::Supply;
    r.tick = tick;
    r.block = block;
    r.txn = txn;
    r.aux = startTick;
    r.node = supplier;
    buffers_[atNode].push_back(r);
}

void
Oracle::recordFill(NodeId atNode, const Message &msg,
                   bool invalidateAfterFill, Tick tick)
{
    Record r;
    r.kind = RecordKind::Fill;
    r.tick = tick;
    r.block = msg.block();
    r.txn = msg.txn;
    r.type = msg.type;
    r.granted = msg.echo.granted;
    r.flag = invalidateAfterFill;
    r.node = atNode;
    r.responder = msg.echo.responder;
    buffers_[atNode].push_back(r);
}

void
Oracle::recordInvalDue(NodeId atNode, BlockId block, TxnId txn,
                       Tick tick)
{
    Record r;
    r.kind = RecordKind::InvalDue;
    r.tick = tick;
    r.block = block;
    r.txn = txn;
    r.node = atNode;
    buffers_[atNode].push_back(r);
}

void
Oracle::recordInvalDone(NodeId atNode, BlockId block, TxnId txn,
                        Tick tick)
{
    Record r;
    r.kind = RecordKind::InvalDone;
    r.tick = tick;
    r.block = block;
    r.txn = txn;
    r.node = atNode;
    buffers_[atNode].push_back(r);
}

// ---------------------------------------------------------------------
// Functional warmup: the trace-speed warmup applies tracker state and
// cache contents synchronously, so the shadow mirrors the same steps
// without timing or checks (there is no serialized timeline to check
// against -- lastOrder stays 0, no chain books, no transactions).
// ---------------------------------------------------------------------

void
Oracle::warmupApply(BlockId block, NodeId requester, RequestType type,
                    const DestinationSet &required, NodeId responder)
{
    (void)responder;
    ShadowBlock &sb = shadow_[block];
    if (type == RequestType::GetShared) {
        if (sb.owner != requester)
            sb.sharers.add(requester);
        setValid(sb, block, requester, sb.version);
        return;
    }
    required.forEach([&](NodeId q) { clearValid(sb, q); });
    sb.owner = requester;
    sb.sharers = DestinationSet{};
    sb.version += 1;
    setValid(sb, block, requester, sb.version);
}

void
Oracle::warmupEvict(BlockId block, NodeId node, bool owned)
{
    ShadowBlock &sb = shadow_[block];
    if (owned) {
        sb.owner = invalidNode;
        sb.memVersion = sb.version;
    } else {
        sb.sharers.remove(node);
    }
    clearValid(sb, node);
}

// ---------------------------------------------------------------------
// Reconcile: deterministic k-way merge and checking.
// ---------------------------------------------------------------------

bool
Oracle::reconcile(Tick safeTick)
{
    if (hasViolation())
        return true;

    const std::size_t nbuf = buffers_.size();
    // Consumable prefix per buffer: records with tick < safeTick are
    // final (a domain only appends at its current execution tick, and
    // every domain has advanced to at least safeTick).
    std::vector<std::size_t> end(nbuf), cur(nbuf, 0);
    for (std::size_t i = 0; i < nbuf; ++i) {
        const std::vector<Record> &buf = buffers_[i];
        std::size_t e = buf.size();
        while (e > 0 && buf[e - 1].tick >= safeTick)
            --e;
        end[i] = e;
    }

    while (!hasViolation()) {
        // Min over (tick, buffer index); append order breaks ties
        // within a buffer via the cursor. Node domains sort before
        // the hub at equal ticks, matching delivery-before-order
        // causal independence (no check is sensitive to this, but
        // the order must be *fixed* for shard independence).
        std::size_t best = nbuf;
        for (std::size_t i = 0; i < nbuf; ++i) {
            if (cur[i] >= end[i])
                continue;
            if (best == nbuf ||
                buffers_[i][cur[i]].tick < buffers_[best][cur[best]].tick)
                best = i;
        }
        if (best == nbuf)
            break;
        const Record &r = buffers_[best][cur[best]++];
        flushDuesBefore(r.tick);
        if (hasViolation())
            break;
        process(r);
    }

    if (!hasViolation() && safeTick == maxTick)
        flushDuesBefore(maxTick);

    // Drop the consumed prefixes so staging memory stays bounded by
    // one reconcile window, not the whole run.
    for (std::size_t i = 0; i < nbuf; ++i) {
        if (cur[i] > 0) {
            buffers_[i].erase(buffers_[i].begin(),
                              buffers_[i].begin() + cur[i]);
        }
    }
    return hasViolation();
}

void
Oracle::flushDuesBefore(Tick tick)
{
    // The InvalDone for an obligation is appended within the same
    // event execution (same tick, same domain buffer), so once the
    // merge has advanced past an obligation's tick the ack can no
    // longer arrive: the invalidation was dropped.
    for (const PendingDue &d : pendingDues_) {
        if (d.tick < tick) {
            Record synthetic;
            synthetic.kind = RecordKind::InvalDue;
            synthetic.tick = d.tick;
            synthetic.block = d.block;
            synthetic.txn = d.txn;
            synthetic.node = d.node;
            raise(ViolationKind::InvalidationNotAcked, synthetic,
                  "node " + nodeName(d.node) +
                      " never acknowledged the invalidation required "
                      "by txn 0x" +
                      std::to_string(d.txn));
            return;
        }
    }
}

void
Oracle::process(const Record &r)
{
    ++checksPerformed_;
    ShadowBlock &sb = shadow_[r.block];
    pushRing(sb, r);
    switch (r.kind) {
      case RecordKind::Order:
        processOrder(r, sb);
        break;
      case RecordKind::Supply:
        processSupply(r, sb);
        break;
      case RecordKind::Fill:
        processFill(r, sb);
        break;
      case RecordKind::InvalDue:
        pendingDues_.push_back(
            PendingDue{r.block, r.txn, r.node, r.tick});
        break;
      case RecordKind::InvalDone:
        processInvalDone(r, sb);
        break;
      case RecordKind::Evict:
        processEvict(r, sb);
        break;
    }
}

void
Oracle::expectedVerdict(const ShadowBlock &sb, NodeId requester,
                        RequestType type, DestinationSet &required,
                        NodeId &responder, MosiState &granted) const
{
    // Mirror of SharingTracker::makeTransaction over the shadow state
    // (a default ShadowBlock is an absent tracker entry).
    const bool cacheOwned = sb.owner != invalidNode;
    required = DestinationSet{};
    if (type == RequestType::GetShared) {
        granted = MosiState::Shared;
        if (cacheOwned && sb.owner != requester) {
            required.add(sb.owner);
            responder = sb.owner;
        } else if (cacheOwned) {
            responder = requester;
            granted = MosiState::Owned;
        } else {
            responder = invalidNode;
        }
        return;
    }
    granted = MosiState::Modified;
    required = sb.sharers;
    required.remove(requester);
    if (cacheOwned && sb.owner != requester)
        required.add(sb.owner);
    if (sb.owner == requester)
        responder = requester;
    else if (cacheOwned)
        responder = sb.owner;
    else if (sb.sharers.contains(requester))
        responder = requester;
    else
        responder = invalidNode;
}

Tick
Oracle::shadowSupplyBound(BlockId block, NodeId responder,
                          NodeId requester, Tick order)
{
    if (!config_.dataChaining || responder == requester)
        return 0;
    FlatMap<BlockId, Tick> &book =
        responder == invalidNode ? memReadyAt_ : ownerDataAt_;
    auto it = book.find(block);
    if (it == book.end())
        return 0;
    if (it->second <= order) {
        book.erase(it);
        return 0;
    }
    return it->second;
}

void
Oracle::shadowChainResolved(const Record &r, Tick bound)
{
    // Mirror of System::chainResolved: same topology hops, same home
    // computation, so the shadow books carry identical ticks.
    if (!config_.dataChaining || r.type != RequestType::GetExclusive)
        return;
    if (r.responder == r.node) {
        ownerDataAt_.erase(r.block);
        return;
    }
    const Topology &topo = config_.topo;
    NodeId home = homeOf(r.block, config_.nodes);
    Tick deliver = r.tick + topo.hubHop();
    Tick start = std::max(deliver, bound);
    NodeId supplier = r.responder == invalidNode ? home : r.responder;
    double supply_ns = r.responder == invalidNode ? config_.memory_ns
                                                  : config_.l2_ns;
    Tick arrive = start + nsToTicks(supply_ns) +
                  topo.directHop(supplier, r.node);
    if (config_.directory && r.responder != invalidNode) {
        arrive += nsToTicks(config_.memory_ns) +
                  topo.directHop(home, r.responder);
    }
    ownerDataAt_[r.block] = arrive;
    memReadyAt_.erase(r.block);
}

void
Oracle::processOrder(const Record &r, ShadowBlock &sb)
{
    // Predictor-learning invariant: a mispredicted destination set may
    // only cost extra retries -- attempts of one transaction serialize
    // strictly sequentially (the home issues attempt a+1 only from
    // attempt a's own delivery). A repeated or regressed attempt
    // number means the home duplicated a retry: two orderings of the
    // same attempt race, and a resolved verdict can be torn between
    // them.
    if (auto it = retryAttempts_.find(r.txn);
        it != retryAttempts_.end() && r.attempt <= it->second) {
        raise(ViolationKind::RetryRegression, r,
              "attempt " + std::to_string(r.attempt) +
                  " ordered after attempt " +
                  std::to_string(it->second) +
                  " of the same transaction");
        return;
    }
    retryAttempts_[r.txn] = r.attempt;

    DestinationSet expectedRequired;
    NodeId expectedResponder = invalidNode;
    MosiState expectedGranted = MosiState::Invalid;
    expectedVerdict(sb, r.node, r.type, expectedRequired,
                    expectedResponder, expectedGranted);
    const DestinationSet &dests = r.dests;

    if (!r.resolved) {
        // A retry is only honest if some required observer was
        // missing from the destination set.
        if (dests.containsAll(expectedRequired)) {
            raise(ViolationKind::FalseRetry, r,
                  "retry forced although dests covered the required "
                  "set (attempt " +
                      std::to_string(r.attempt) + ")");
        }
        return;  // insufficient orders change no state
    }

    if (r.responder != expectedResponder ||
        !(r.required == expectedRequired) ||
        r.granted != expectedGranted) {
        raise(ViolationKind::VerdictMismatch, r,
              "stamped responder=" + nodeName(r.responder) +
                  " granted=" + std::string(toString(r.granted)) +
                  ", shadow expects responder=" +
                  nodeName(expectedResponder) + " granted=" +
                  std::string(toString(expectedGranted)));
        return;
    }
    // Snooping/multicast resolve only when the requester's own
    // fan-out reaches every required observer. The directory resolves
    // with dests = {home} and reaches the required set through its
    // own Forward/Invalidate messages -- those are held to account by
    // the InvalDue/InvalDone pairing instead.
    if (!config_.directory && !dests.containsAll(expectedRequired)) {
        raise(ViolationKind::InsufficientResolved, r,
              "resolved without delivering to every required "
              "observer");
        return;
    }
    Tick bound =
        shadowSupplyBound(r.block, r.responder, r.node, r.tick);
    if (bound != r.aux) {
        raise(ViolationKind::ChainMismatch, r,
              "stamped supplyEarliest=" + std::to_string(r.aux) +
                  ", shadow chain bound=" + std::to_string(bound));
        return;
    }
    if (r.tick < sb.lastOrder) {
        raise(ViolationKind::OrderRegression, r,
              "ordered at " + std::to_string(r.tick) +
                  " after " + std::to_string(sb.lastOrder));
        return;
    }
    shadowChainResolved(r, bound);

    sb.lastOrder = r.tick;
    std::uint64_t supplyVersion = sb.version;
    if (r.type == RequestType::GetShared) {
        if (sb.owner != r.node)
            sb.sharers.add(r.node);
    } else {
        sb.owner = r.node;
        sb.sharers = DestinationSet{};
        sb.version += 1;
    }

    ShadowTxn txn;
    txn.block = r.block;
    txn.requester = r.node;
    txn.responder = r.responder;
    txn.granted = r.granted;
    txn.type = r.type;
    txn.orderTick = r.tick;
    txn.supplyEarliest = r.aux;
    txn.supplyVersion = supplyVersion;
    txn.fillVersion = sb.version;
    txns_[r.txn] = txn;
}

void
Oracle::processSupply(const Record &r, ShadowBlock &sb)
{
    auto it = txns_.find(r.txn);
    if (it == txns_.end()) {
        raise(ViolationKind::SupplyFromNonOwner, r,
              "data supplied for an unresolved or completed "
              "transaction");
        return;
    }
    ShadowTxn &txn = it->second;
    if (txn.supplied) {
        raise(ViolationKind::SupplyFromNonOwner, r,
              "second data response for one transaction");
        return;
    }
    if (r.node != txn.responder) {
        raise(ViolationKind::SupplyFromNonOwner, r,
              "supplied by " + nodeName(r.node) +
                  " but the serialized responder is " +
                  nodeName(txn.responder));
        return;
    }
    if (r.aux < txn.supplyEarliest) {
        raise(ViolationKind::StaleDataSupply, r,
              "read started at " + std::to_string(r.aux) +
                  " before the chained bound " +
                  std::to_string(txn.supplyEarliest));
        return;
    }
    if (txn.responder == invalidNode &&
        sb.memVersion != txn.supplyVersion) {
        raise(ViolationKind::StaleDataSupply, r,
              "memory holds write #" +
                  std::to_string(sb.memVersion) +
                  " but the transaction was serialized against #" +
                  std::to_string(txn.supplyVersion));
        return;
    }
    txn.supplied = true;
}

void
Oracle::processFill(const Record &r, ShadowBlock &sb)
{
    auto it = txns_.find(r.txn);
    if (it == txns_.end()) {
        raise(ViolationKind::SupplyFromNonOwner, r,
              "fill for an unknown transaction");
        return;
    }
    const ShadowTxn txn = it->second;
    if (r.granted != txn.granted) {
        raise(ViolationKind::VerdictMismatch, r,
              "filled " + std::string(toString(r.granted)) +
                  " but the order granted " +
                  std::string(toString(txn.granted)));
        return;
    }
    if (txn.responder == txn.requester) {
        // Upgrade: no data moved, the requester's held copy becomes
        // writable -- it must be the latest ordered write.
        if (sb.valid.contains(r.node)) {
            auto vit = nodeVersion_.find(versionKey(r.block, r.node));
            std::uint64_t held =
                vit == nodeVersion_.end() ? 0 : vit->second;
            if (held != txn.supplyVersion) {
                raise(ViolationKind::StaleUpgradeGrant, r,
                      "upgrade over write #" + std::to_string(held) +
                          ", latest ordered write is #" +
                          std::to_string(txn.supplyVersion));
                return;
            }
        }
    }
    if (r.flag) {
        // A GETX serialized behind this miss already claimed the
        // block; the fill is consumed once and discarded.
        clearValid(sb, r.node);
    } else {
        setValid(sb, r.block, r.node, txn.fillVersion);
    }
    txns_.erase(r.txn);
    retryAttempts_.erase(r.txn);
}

void
Oracle::processInvalDone(const Record &r, ShadowBlock &sb)
{
    for (auto it = pendingDues_.begin(); it != pendingDues_.end();
         ++it) {
        if (it->block == r.block && it->txn == r.txn &&
            it->node == r.node) {
            pendingDues_.erase(it);
            break;
        }
    }
    // Lenient on an unmatched Done: invalidating more than required
    // costs performance, never correctness.
    clearValid(sb, r.node);
}

void
Oracle::processEvict(const Record &r, ShadowBlock &sb)
{
    if (r.flag) {
        // Post-guard owned eviction: the hub verified this node was
        // still the registered owner, so it held write #version and
        // memory now does too.
        sb.owner = invalidNode;
        sb.memVersion = sb.version;
        if (config_.dataChaining) {
            ownerDataAt_.erase(r.block);
            memReadyAt_[r.block] = r.aux;
        }
    } else {
        sb.sharers.remove(r.node);
    }
    clearValid(sb, r.node);
}

void
Oracle::raise(ViolationKind kind, const Record &r, std::string detail)
{
    if (hasViolation())
        return;
    violation_.kind = kind;
    violation_.block = r.block;
    violation_.tick = r.tick;
    violation_.node = r.node;
    violation_.txn = r.txn;
    violation_.detail = std::move(detail);
}

void
Oracle::pushRing(ShadowBlock &sb, const Record &r)
{
    sb.ring[sb.ringPos] = r;
    sb.ringPos = static_cast<std::uint8_t>((sb.ringPos + 1) % ringDepth);
    if (sb.ringCount < ringDepth)
        ++sb.ringCount;
}

void
Oracle::ckptSave(ckpt::Writer &w) const
{
    dsp_assert(!hasViolation(),
               "checkpointing an oracle that already found a "
               "violation");
    w.section(0x4f52434cu);  // "ORCL"
    w.u64(buffers_.size());
    for (const std::vector<Record> &buf : buffers_)
        w.podVec(buf);
    shadow_.ckptSave(w);
    nodeVersion_.ckptSave(w);
    txns_.ckptSave(w);
    ownerDataAt_.ckptSave(w);
    memReadyAt_.ckptSave(w);
    retryAttempts_.ckptSave(w);
    w.podVec(pendingDues_);
    w.u64(checksPerformed_);
}

void
Oracle::ckptLoad(ckpt::Reader &r)
{
    r.section(0x4f52434cu);
    dsp_assert(r.u64() == buffers_.size(),
               "checkpoint oracle domain count mismatch");
    for (std::vector<Record> &buf : buffers_)
        buf = r.podVec<Record>();
    shadow_.ckptLoad(r);
    nodeVersion_.ckptLoad(r);
    txns_.ckptLoad(r);
    ownerDataAt_.ckptLoad(r);
    memReadyAt_.ckptLoad(r);
    retryAttempts_.ckptLoad(r);
    pendingDues_ = r.podVec<PendingDue>();
    checksPerformed_ = r.u64();
}

void
Oracle::printReport(std::FILE *out) const
{
    const Violation &v = violation_;
    std::fprintf(out,
                 "DSP-VIOLATION kind=%s block=0x%" PRIx64
                 " tick=%" PRIu64 " node=%s txn=0x%" PRIx64
                 " detail=\"%s\"\n",
                 toString(v.kind).c_str(),
                 static_cast<std::uint64_t>(v.block),
                 static_cast<std::uint64_t>(v.tick),
                 nodeName(v.node).c_str(),
                 static_cast<std::uint64_t>(v.txn),
                 v.detail.c_str());

    auto it = shadow_.find(v.block);
    if (it == shadow_.end())
        return;
    const ShadowBlock &sb = it->second;
    std::fprintf(out,
                 "DSP-FORENSIC block=0x%" PRIx64
                 " owner=%s sharers=%s version=%" PRIu64
                 " memVersion=%" PRIu64 " lastOrder=%" PRIu64
                 " (last %u events, oldest first)\n",
                 static_cast<std::uint64_t>(v.block),
                 nodeName(sb.owner).c_str(),
                 sb.sharers.toString().c_str(),
                 sb.version, sb.memVersion,
                 static_cast<std::uint64_t>(sb.lastOrder),
                 static_cast<unsigned>(sb.ringCount));
    for (unsigned i = 0; i < sb.ringCount; ++i) {
        unsigned idx =
            (sb.ringPos + ringDepth - sb.ringCount + i) % ringDepth;
        const Record &r = sb.ring[idx];
        std::fprintf(out,
                     "DSP-FORENSIC   [%u] %-10s tick=%" PRIu64
                     " node=%s txn=0x%" PRIx64 " type=%s"
                     " responder=%s granted=%s attempt=%u"
                     " resolved=%d flag=%d aux=%" PRIu64
                     " dests=%s required=%s\n",
                     i, toString(r.kind).c_str(),
                     static_cast<std::uint64_t>(r.tick),
                     nodeName(r.node).c_str(),
                     static_cast<std::uint64_t>(r.txn),
                     toString(r.type).c_str(),
                     nodeName(r.responder).c_str(),
                     toString(r.granted).c_str(),
                     static_cast<unsigned>(r.attempt),
                     r.resolved ? 1 : 0, r.flag ? 1 : 0,
                     static_cast<std::uint64_t>(r.aux),
                     r.dests.toString().c_str(),
                     r.required.toString().c_str());
    }
}

} // namespace verify
} // namespace dsp
