#include "core/factory.hh"

#include "core/baseline_predictors.hh"
#include "core/broadcast_if_shared.hh"
#include "core/group_predictor.hh"
#include "core/owner_group_predictor.hh"
#include "core/owner_predictor.hh"
#include "core/sticky_spatial.hh"
#include "sim/logging.hh"

namespace dsp {

std::string
toString(PredictorPolicy policy)
{
    switch (policy) {
      case PredictorPolicy::Owner:
        return "owner";
      case PredictorPolicy::BroadcastIfShared:
        return "bcast-if-shared";
      case PredictorPolicy::Group:
        return "group";
      case PredictorPolicy::OwnerGroup:
        return "owner-group";
      case PredictorPolicy::StickySpatial:
        return "sticky-spatial";
      case PredictorPolicy::AlwaysBroadcast:
        return "always-broadcast";
      case PredictorPolicy::AlwaysMinimal:
        return "always-minimal";
    }
    return "?";
}

PredictorPolicy
parsePredictorPolicy(const std::string &name)
{
    static const std::vector<PredictorPolicy> all = {
        PredictorPolicy::Owner,
        PredictorPolicy::BroadcastIfShared,
        PredictorPolicy::Group,
        PredictorPolicy::OwnerGroup,
        PredictorPolicy::StickySpatial,
        PredictorPolicy::AlwaysBroadcast,
        PredictorPolicy::AlwaysMinimal,
    };
    for (PredictorPolicy policy : all)
        if (toString(policy) == name)
            return policy;
    dsp_fatal("unknown predictor policy '%s'", name.c_str());
}

const std::vector<PredictorPolicy> &
proposedPolicies()
{
    static const std::vector<PredictorPolicy> policies = {
        PredictorPolicy::Owner,
        PredictorPolicy::BroadcastIfShared,
        PredictorPolicy::Group,
        PredictorPolicy::OwnerGroup,
    };
    return policies;
}

std::unique_ptr<Predictor>
makePredictor(PredictorPolicy policy, PredictorConfig config)
{
    switch (policy) {
      case PredictorPolicy::Owner:
        return std::make_unique<OwnerPredictor>(config);
      case PredictorPolicy::BroadcastIfShared:
        return std::make_unique<BroadcastIfSharedPredictor>(config);
      case PredictorPolicy::Group:
        return std::make_unique<GroupPredictor>(config);
      case PredictorPolicy::OwnerGroup:
        return std::make_unique<OwnerGroupPredictor>(config);
      case PredictorPolicy::StickySpatial:
        // Faithful reconstruction: direct-mapped, block indexed.
        config.indexing = IndexingMode::Block64;
        config.ways = 1;
        return std::make_unique<StickySpatialPredictor>(config, 1);
      case PredictorPolicy::AlwaysBroadcast:
        return std::make_unique<AlwaysBroadcastPredictor>(config);
      case PredictorPolicy::AlwaysMinimal:
        return std::make_unique<AlwaysMinimalPredictor>(config);
    }
    dsp_fatal("unhandled predictor policy %d",
              static_cast<int>(policy));
}

std::vector<std::unique_ptr<Predictor>>
makePredictorsPerNode(PredictorPolicy policy,
                      const PredictorConfig &config)
{
    std::vector<std::unique_ptr<Predictor>> predictors;
    predictors.reserve(config.numNodes);
    for (NodeId n = 0; n < config.numNodes; ++n)
        predictors.push_back(makePredictor(policy, config));
    return predictors;
}

} // namespace dsp
