/**
 * @file
 * The Group predictor (Table 3, column 3).
 *
 * Targets group sharing: one 2-bit saturating counter per processor
 * plus a 5-bit rollover counter per entry. Processors whose counters
 * exceed the threshold join the predicted set; the rollover counter
 * periodically decays every counter so inactive processors eventually
 * leave the destination set (explicit train-down, the key advance over
 * Sticky-Spatial noted in Section 3.5).
 */

#ifndef DSP_CORE_GROUP_PREDICTOR_HH
#define DSP_CORE_GROUP_PREDICTOR_HH

#include <array>

#include "core/predictor.hh"
#include "core/predictor_table.hh"

namespace dsp {

/** Per-entry state: N 2-bit counters + a 5-bit rollover counter. */
struct GroupEntry {
    std::array<std::uint8_t, maxNodes> counters{};
    std::uint8_t rollover = 0;  ///< 5-bit, wraps at 32

    /** Bump one processor's counter (saturating at 3). */
    void
    strengthen(NodeId node)
    {
        if (counters[node] < 3)
            ++counters[node];
    }

    /**
     * Advance the rollover counter; on wrap, decay every processor's
     * counter by one (Table 3 footnote).
     */
    void
    tickRollover(NodeId num_nodes)
    {
        rollover = static_cast<std::uint8_t>((rollover + 1) & 0x1f);
        if (rollover == 0)
            for (NodeId n = 0; n < num_nodes; ++n)
                if (counters[n] > 0)
                    --counters[n];
    }

    /** Processors currently predicted to need the block. */
    DestinationSet
    predictedSet(NodeId num_nodes) const
    {
        DestinationSet set;
        for (NodeId n = 0; n < num_nodes; ++n)
            if (counters[n] > 1)
                set.add(n);
        return set;
    }
};

class GroupPredictor : public Predictor
{
  public:
    explicit GroupPredictor(const PredictorConfig &config)
        : Predictor(config), table_(config.entries, config.ways)
    {
    }

    DestinationSet
    predict(Addr addr, Addr pc, RequestType type, NodeId requester,
            NodeId home) override;

    void trainResponse(Addr addr, Addr pc, NodeId responder,
                       bool insufficient) override;
    void trainExternalRequest(Addr addr, Addr pc, RequestType type,
                              NodeId requester) override;

    std::string name() const override { return "group"; }
    std::size_t entryCount() const override { return table_.size(); }

    unsigned
    entryBits() const override
    {
        return 2 * config_.numNodes + 5;
    }

    PredictorTable<GroupEntry> &table() { return table_; }

  private:
    PredictorTable<GroupEntry> table_;
};

} // namespace dsp

#endif // DSP_CORE_GROUP_PREDICTOR_HH
