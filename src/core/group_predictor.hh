/**
 * @file
 * The Group predictor (Table 3, column 3).
 *
 * Targets group sharing: one 2-bit saturating counter per processor
 * plus a 5-bit rollover counter per entry. Processors whose counters
 * exceed the threshold join the predicted set; the rollover counter
 * periodically decays every counter so inactive processors eventually
 * leave the destination set (explicit train-down, the key advance over
 * Sticky-Spatial noted in Section 3.5).
 */

#ifndef DSP_CORE_GROUP_PREDICTOR_HH
#define DSP_CORE_GROUP_PREDICTOR_HH

#include <array>

#include "checkpoint/checkpoint.hh"
#include "core/predictor.hh"
#include "core/predictor_table.hh"

namespace dsp {

/**
 * Per-entry state: N 2-bit counters + a 5-bit rollover counter.
 *
 * The counters are packed two bits per processor into uint64 words
 * (16 bytes for the full 64-node limit, vs. 64 bytes as a byte array)
 * so predictor table lines stay small, and decay/extract are SWAR
 * operations instead of per-node loops.
 */
struct GroupEntry {
    static constexpr unsigned fieldsPerWord = 32;  ///< 2 bits each

    std::array<std::uint64_t, maxNodes / fieldsPerWord> packed{};
    std::uint8_t rollover = 0;  ///< 5-bit, wraps at 32

    /** Current counter value for one processor (0..3). */
    unsigned
    counter(NodeId node) const
    {
        return (packed[node / fieldsPerWord] >>
                (2 * (node % fieldsPerWord))) &
               0x3;
    }

    /** Bump one processor's counter (saturating at 3). */
    void
    strengthen(NodeId node)
    {
        std::uint64_t &word = packed[node / fieldsPerWord];
        unsigned shift = 2 * (node % fieldsPerWord);
        if (((word >> shift) & 0x3) < 3)
            word += std::uint64_t{1} << shift;
    }

    /**
     * Advance the rollover counter; on wrap, decay every processor's
     * counter by one (Table 3 footnote).
     */
    void
    tickRollover(NodeId /* num_nodes */)
    {
        rollover = static_cast<std::uint8_t>((rollover + 1) & 0x1f);
        if (rollover != 0)
            return;
        for (std::uint64_t &word : packed) {
            // Subtract one from every non-zero 2-bit field: the low
            // bit of (v | v>>1) is set exactly when v > 0, and v > 0
            // fields never borrow.
            constexpr std::uint64_t low =
                0x5555555555555555ULL;
            word -= ((word >> 1) | word) & low;
        }
    }

    /** Processors currently predicted to need the block (counter > 1,
     *  i.e. the field's high bit is set). */
    DestinationSet
    predictedSet(NodeId /* num_nodes */) const
    {
        std::uint64_t mask = 0;
        for (unsigned w = 0; w < packed.size(); ++w) {
            std::uint64_t high =
                (packed[w] >> 1) & 0x5555555555555555ULL;
            while (high != 0) {
                unsigned bit = static_cast<unsigned>(
                    __builtin_ctzll(high));
                mask |= std::uint64_t{1}
                        << (w * fieldsPerWord + bit / 2);
                high &= high - 1;
            }
        }
        return DestinationSet::fromMask(mask);
    }
};

class GroupPredictor : public Predictor
{
  public:
    explicit GroupPredictor(const PredictorConfig &config)
        : Predictor(config), table_(config.entries, config.ways)
    {
    }

    DestinationSet
    predict(Addr addr, Addr pc, RequestType type, NodeId requester,
            NodeId home) override;

    void trainResponse(Addr addr, Addr pc, NodeId responder,
                       bool insufficient) override;
    void trainExternalRequest(Addr addr, Addr pc, RequestType type,
                              NodeId requester) override;

    unsigned
    prefetchTables(Addr addr, Addr pc) const override
    {
        table_.prefetch(indexKey(config_.indexing, addr, pc));
        return 1;
    }

    std::string name() const override { return "group"; }
    std::size_t entryCount() const override { return table_.size(); }

    unsigned
    entryBits() const override
    {
        return 2 * config_.numNodes + 5;
    }

    PredictorTable<GroupEntry> &table() { return table_; }

    void ckptSave(ckpt::Writer &w) const override { table_.ckptSave(w); }
    void ckptLoad(ckpt::Reader &r) override { table_.ckptLoad(r); }

  private:
    PredictorTable<GroupEntry> table_;
};

} // namespace dsp

#endif // DSP_CORE_GROUP_PREDICTOR_HH
