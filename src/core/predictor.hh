/**
 * @file
 * Destination-set predictor interface (Section 3 of the paper).
 *
 * One predictor instance lives beside each L2 cache controller. On an
 * L2 miss the controller asks for a predicted destination set; the
 * prediction is always a superset of the protocol's *minimal* set (the
 * requester plus the block's home). Predictors learn from two cues
 * (Section 3.2): data responses for the node's own misses (carrying the
 * responder's identity) and external coherence requests the node
 * observes (carrying the requester's identity).
 */

#ifndef DSP_CORE_PREDICTOR_HH
#define DSP_CORE_PREDICTOR_HH

#include <cstdint>
#include <string>

#include "core/indexing.hh"
#include "mem/destination_set.hh"
#include "mem/types.hh"

namespace dsp {

namespace ckpt {
class Writer;
class Reader;
} // namespace ckpt

/** Common predictor configuration. */
struct PredictorConfig {
    NodeId numNodes = 16;

    /** Indexing policy (Section 3.4). 1024 B macroblocks by default,
     *  the paper's standout configuration. */
    IndexingMode indexing = IndexingMode::Macroblock1024;

    /** Table entries; 0 means unbounded (infinite predictor). The
     *  paper's standout predictors use 8192 entries. */
    std::size_t entries = 8192;

    /** Associativity of finite tables. Our predictors are
     *  set-associative (Section 3.5 notes this as an advantage over
     *  Sticky-Spatial's direct-mapped constraint). */
    std::size_t ways = 4;

    /**
     * Section 3.1's capacity optimization: allocate entries only for
     * blocks whose minimal destination set proved insufficient.
     * Disable to measure the optimization's value (ablation).
     */
    bool allocationFilter = true;
};

/**
 * Abstract destination-set predictor.
 *
 * Implementations: OwnerPredictor, BroadcastIfSharedPredictor,
 * GroupPredictor, OwnerGroupPredictor (Table 3), StickySpatialPredictor
 * (prior work, Section 3.5), and the AlwaysBroadcast / AlwaysMinimal
 * degenerate baselines.
 */
class Predictor
{
  public:
    explicit Predictor(const PredictorConfig &config)
        : config_(config)
    {
    }

    virtual ~Predictor() = default;

    Predictor(const Predictor &) = delete;
    Predictor &operator=(const Predictor &) = delete;

    /**
     * Predict the destination set for this node's own miss.
     *
     * The result always includes the minimal destination set
     * {requester, home}: the protocol requires both (Section 4.1) and
     * predictors only ever *add* nodes to it.
     *
     * @param addr data byte address of the miss
     * @param pc   PC of the missing load/store (used when PC-indexed)
     * @param type request type (GETS or GETX)
     * @param requester this node's id
     * @param home home node of the block
     */
    virtual DestinationSet
    predict(Addr addr, Addr pc, RequestType type, NodeId requester,
            NodeId home) = 0;

    /**
     * Train on the data response for this node's own miss.
     *
     * @param addr / pc identify the miss
     * @param responder cache that supplied the data, or invalidNode
     *        when memory responded
     * @param insufficient true if the minimal destination set would
     *        not have sufficed (used for the allocation filter of
     *        Section 3.1: entries are only allocated for blocks whose
     *        minimal set proved insufficient)
     */
    virtual void
    trainResponse(Addr addr, Addr pc, NodeId responder,
                  bool insufficient) = 0;

    /**
     * Train on an external coherence request this node observed.
     * Per Table 3, requests for shared are ignored by all policies;
     * requests for exclusive train toward the requester.
     *
     * @param pc the *requester's* miss PC (requests carry the PC only
     *        to support PC indexing, Section 3.4)
     */
    virtual void
    trainExternalRequest(Addr addr, Addr pc, RequestType type,
                         NodeId requester) = 0;

    /**
     * Optional cue: the directory retried this node's request and the
     * retry carried the corrected destination set. Only Sticky-Spatial
     * uses this (it "trains up by observing responses and retries from
     * the memory controller", Section 3.5); Table 3 policies ignore it.
     */
    virtual void
    trainRetry(Addr addr, Addr pc, DestinationSet true_required)
    {
        (void)addr;
        (void)pc;
        (void)true_required;
    }

    /**
     * Host-prefetch the table set/slot a predict() or train call for
     * this access will walk -- issued at request send, one network hop
     * before the lookup runs, so the table line is warm by then.
     * Semantically a no-op; returns the number of prefetches issued
     * (0 for the stateless baselines) so the bench can report
     * prefetch coverage.
     */
    virtual unsigned
    prefetchTables(Addr addr, Addr pc) const
    {
        (void)addr;
        (void)pc;
        return 0;
    }

    /** Policy name for report tables. */
    virtual std::string name() const = 0;

    /** Currently-allocated entries (for capacity studies). */
    virtual std::size_t entryCount() const = 0;

    /** Modelled entry size in bits (Table 3 row 2), tag excluded. */
    virtual unsigned entryBits() const = 0;

    /**
     * Checkpoint the learned state (tables + counters). The defaults
     * cover the stateless baselines; every stateful predictor must
     * override both, symmetrically.
     */
    virtual void ckptSave(ckpt::Writer &w) const { (void)w; }
    virtual void ckptLoad(ckpt::Reader &r) { (void)r; }

    const PredictorConfig &config() const { return config_; }

  protected:
    /** The protocol's minimal destination set. */
    DestinationSet
    minimalSet(NodeId requester, NodeId home) const
    {
        DestinationSet s;
        s.add(requester);
        s.add(home);
        return s;
    }

    PredictorConfig config_;
};

} // namespace dsp

#endif // DSP_CORE_PREDICTOR_HH
