/**
 * @file
 * The Owner predictor (Table 3, column 1).
 *
 * Targets pairwise sharing and bandwidth-limited systems: it records
 * the last processor to invalidate or respond with a block and adds at
 * most that one node to the minimal destination set.
 */

#ifndef DSP_CORE_OWNER_PREDICTOR_HH
#define DSP_CORE_OWNER_PREDICTOR_HH

#include "checkpoint/checkpoint.hh"
#include "core/predictor.hh"
#include "core/predictor_table.hh"

namespace dsp {

/** Per-entry state: predicted owner id + valid bit. */
struct OwnerEntry {
    NodeId owner = invalidNode;
    bool valid = false;
};

class OwnerPredictor : public Predictor
{
  public:
    explicit OwnerPredictor(const PredictorConfig &config)
        : Predictor(config), table_(config.entries, config.ways)
    {
    }

    DestinationSet
    predict(Addr addr, Addr pc, RequestType type, NodeId requester,
            NodeId home) override;

    void trainResponse(Addr addr, Addr pc, NodeId responder,
                       bool insufficient) override;
    void trainExternalRequest(Addr addr, Addr pc, RequestType type,
                              NodeId requester) override;

    unsigned
    prefetchTables(Addr addr, Addr pc) const override
    {
        table_.prefetch(indexKey(config_.indexing, addr, pc));
        return 1;
    }

    std::string name() const override { return "owner"; }
    std::size_t entryCount() const override { return table_.size(); }

    unsigned
    entryBits() const override
    {
        // log2(N)-bit owner id + valid bit.
        unsigned bits = 1;
        while ((1u << bits) < config_.numNodes)
            ++bits;
        return bits + 1;
    }

    /** Expose the table for whitebox tests. */
    PredictorTable<OwnerEntry> &table() { return table_; }

    void ckptSave(ckpt::Writer &w) const override { table_.ckptSave(w); }
    void ckptLoad(ckpt::Reader &r) override { table_.ckptLoad(r); }

  private:
    PredictorTable<OwnerEntry> table_;
};

} // namespace dsp

#endif // DSP_CORE_OWNER_PREDICTOR_HH
