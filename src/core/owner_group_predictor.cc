#include "core/owner_group_predictor.hh"

namespace dsp {

DestinationSet
OwnerGroupPredictor::predict(Addr addr, Addr pc, RequestType type,
                             NodeId requester, NodeId home)
{
    DestinationSet set = minimalSet(requester, home);
    OwnerGroupEntry *entry =
        table_.find(indexKey(config_.indexing, addr, pc));
    if (!entry)
        return set;

    if (type == RequestType::GetShared) {
        // Reads only need the owner; keep the request narrow.
        if (entry->owner.valid)
            set.add(entry->owner.owner);
    } else {
        // Writes must reach every sharer to avoid a retry.
        set |= entry->group.predictedSet(config_.numNodes);
        if (entry->owner.valid)
            set.add(entry->owner.owner);
    }
    return set;
}

void
OwnerGroupPredictor::trainResponse(Addr addr, Addr pc, NodeId responder,
                                   bool insufficient)
{
    std::uint64_t key = indexKey(config_.indexing, addr, pc);
    if (responder == invalidNode) {
        OwnerGroupEntry *entry =
            table_.probeOrInsert(key, !config_.allocationFilter);
        if (entry) {
            entry->owner.valid = false;
            entry->group.tickRollover(config_.numNodes);
        }
        return;
    }
    OwnerGroupEntry *entry = table_.probeOrInsert(
        key, insufficient || !config_.allocationFilter);
    if (entry) {
        entry->owner.owner = responder;
        entry->owner.valid = true;
        entry->group.strengthen(responder);
        entry->group.tickRollover(config_.numNodes);
    }
}

void
OwnerGroupPredictor::trainExternalRequest(Addr addr, Addr pc,
                                          RequestType type,
                                          NodeId requester)
{
    if (type == RequestType::GetShared)
        return;
    OwnerGroupEntry &entry =
        table_.findOrAllocate(indexKey(config_.indexing, addr, pc));
    entry.owner.owner = requester;
    entry.owner.valid = true;
    entry.group.strengthen(requester);
    entry.group.tickRollover(config_.numNodes);
}

} // namespace dsp
