/**
 * @file
 * Sticky-Spatial(k): the original multicast snooping predictor of
 * Bilir et al., reconstructed from Section 3.5 of this paper and the
 * multicast snooping paper.
 *
 * Properties (and deliberate limitations, kept for fidelity):
 *  - direct-mapped; the tag is IGNORED on prediction, so aliased
 *    entries pollute each other;
 *  - "spatial": the prediction ORs the indexed entry's mask with its k
 *    neighbouring entries' masks;
 *  - "sticky": it only trains up (from data responses and directory
 *    retries); the destination set shrinks only when a tag replacement
 *    resets the entry.
 */

#ifndef DSP_CORE_STICKY_SPATIAL_HH
#define DSP_CORE_STICKY_SPATIAL_HH

#include <cstdint>
#include <vector>

#include "checkpoint/checkpoint.hh"
#include "core/predictor.hh"
#include "sim/flat_map.hh"

namespace dsp {

class StickySpatialPredictor : public Predictor
{
  public:
    /**
     * @param config common configuration; Block64 indexing is the
     *        historically faithful choice (set by the factory)
     * @param spatial_degree neighbours ORed on each side (k; the paper
     *        evaluates k = 1)
     */
    StickySpatialPredictor(const PredictorConfig &config,
                           unsigned spatial_degree = 1);

    DestinationSet
    predict(Addr addr, Addr pc, RequestType type, NodeId requester,
            NodeId home) override;

    void trainResponse(Addr addr, Addr pc, NodeId responder,
                       bool insufficient) override;
    void trainExternalRequest(Addr addr, Addr pc, RequestType type,
                              NodeId requester) override;
    void trainRetry(Addr addr, Addr pc,
                    DestinationSet true_required) override;

    unsigned
    prefetchTables(Addr addr, Addr pc) const override
    {
        std::uint64_t key = indexKey(config_.indexing, addr, pc);
        if (!finite_.empty())
            __builtin_prefetch(&finite_[key % finite_.size()], 0, 3);
        else
            unbounded_.prefetch(key);
        return 1;
    }

    std::string name() const override { return "sticky-spatial"; }
    std::size_t entryCount() const override;
    unsigned entryBits() const override { return config_.numNodes; }

    void
    ckptSave(ckpt::Writer &w) const override
    {
        w.podVec(finite_);
        unbounded_.ckptSave(w);
    }

    void
    ckptLoad(ckpt::Reader &r) override
    {
        finite_ = r.podVec<Entry>();
        unbounded_.ckptLoad(r);
    }

  private:
    struct Entry {
        std::uint64_t tag = 0;
        std::uint64_t mask = 0;
        bool valid = false;
    };

    /** OR `bits` into the entry for `key`, resetting on tag miss. */
    void trainUp(std::uint64_t key, std::uint64_t bits);

    /** Mask stored at table slot for key (0 if none). */
    std::uint64_t maskAt(std::uint64_t key) const;

    unsigned spatialDegree_;
    std::vector<Entry> finite_;                        ///< direct-mapped
    FlatMap<std::uint64_t, std::uint64_t> unbounded_;
};

} // namespace dsp

#endif // DSP_CORE_STICKY_SPATIAL_HH
