/**
 * @file
 * Degenerate "predictors" anchoring the two ends of the design space
 * (Section 3): AlwaysBroadcast makes multicast snooping behave like
 * broadcast snooping (perfect accuracy, maximal bandwidth);
 * AlwaysMinimal makes it behave like a directory protocol (minimal
 * bandwidth, every sharing miss indirects).
 */

#ifndef DSP_CORE_BASELINE_PREDICTORS_HH
#define DSP_CORE_BASELINE_PREDICTORS_HH

#include "core/predictor.hh"

namespace dsp {

/** Always predicts the full broadcast set. */
class AlwaysBroadcastPredictor : public Predictor
{
  public:
    explicit AlwaysBroadcastPredictor(const PredictorConfig &config)
        : Predictor(config)
    {
    }

    DestinationSet
    predict(Addr, Addr, RequestType, NodeId, NodeId) override
    {
        return DestinationSet::all(config_.numNodes);
    }

    void trainResponse(Addr, Addr, NodeId, bool) override {}
    void trainExternalRequest(Addr, Addr, RequestType, NodeId) override
    {
    }

    std::string name() const override { return "always-broadcast"; }
    std::size_t entryCount() const override { return 0; }
    unsigned entryBits() const override { return 0; }
};

/** Always predicts only the minimal destination set. */
class AlwaysMinimalPredictor : public Predictor
{
  public:
    explicit AlwaysMinimalPredictor(const PredictorConfig &config)
        : Predictor(config)
    {
    }

    DestinationSet
    predict(Addr, Addr, RequestType, NodeId requester,
            NodeId home) override
    {
        return minimalSet(requester, home);
    }

    void trainResponse(Addr, Addr, NodeId, bool) override {}
    void trainExternalRequest(Addr, Addr, RequestType, NodeId) override
    {
    }

    std::string name() const override { return "always-minimal"; }
    std::size_t entryCount() const override { return 0; }
    unsigned entryBits() const override { return 0; }
};

} // namespace dsp

#endif // DSP_CORE_BASELINE_PREDICTORS_HH
