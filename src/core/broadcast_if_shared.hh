/**
 * @file
 * The Broadcast-If-Shared predictor (Table 3, column 2).
 *
 * Targets latency over bandwidth: broadcast whenever the block appears
 * shared (2-bit saturating counter above threshold), otherwise send the
 * minimal set. Performs like snooping while filtering out requests to
 * unshared data.
 */

#ifndef DSP_CORE_BROADCAST_IF_SHARED_HH
#define DSP_CORE_BROADCAST_IF_SHARED_HH

#include "checkpoint/checkpoint.hh"
#include "core/predictor.hh"
#include "core/predictor_table.hh"

namespace dsp {

/** Per-entry state: one 2-bit saturating counter. */
struct SharedCounterEntry {
    std::uint8_t counter = 0;  ///< saturates at 3

    void
    increment()
    {
        if (counter < 3)
            ++counter;
    }

    void
    decrement()
    {
        if (counter > 0)
            --counter;
    }
};

class BroadcastIfSharedPredictor : public Predictor
{
  public:
    explicit BroadcastIfSharedPredictor(const PredictorConfig &config)
        : Predictor(config), table_(config.entries, config.ways)
    {
    }

    DestinationSet
    predict(Addr addr, Addr pc, RequestType type, NodeId requester,
            NodeId home) override;

    void trainResponse(Addr addr, Addr pc, NodeId responder,
                       bool insufficient) override;
    void trainExternalRequest(Addr addr, Addr pc, RequestType type,
                              NodeId requester) override;

    unsigned
    prefetchTables(Addr addr, Addr pc) const override
    {
        table_.prefetch(indexKey(config_.indexing, addr, pc));
        return 1;
    }

    std::string name() const override { return "bcast-if-shared"; }
    std::size_t entryCount() const override { return table_.size(); }
    unsigned entryBits() const override { return 2; }

    PredictorTable<SharedCounterEntry> &table() { return table_; }

    void ckptSave(ckpt::Writer &w) const override { table_.ckptSave(w); }
    void ckptLoad(ckpt::Reader &r) override { table_.ckptLoad(r); }

  private:
    PredictorTable<SharedCounterEntry> table_;
};

} // namespace dsp

#endif // DSP_CORE_BROADCAST_IF_SHARED_HH
