/**
 * @file
 * Predictor indexing policies (Section 3.4): data-block address,
 * coarse-grain macroblock address (256 B or 1024 B), or the program
 * counter of the missing instruction.
 */

#ifndef DSP_CORE_INDEXING_HH
#define DSP_CORE_INDEXING_HH

#include <cstdint>
#include <string>

#include "mem/types.hh"

namespace dsp {

/** How predictor tables are indexed. */
enum class IndexingMode : std::uint8_t {
    Block64,         ///< 64 B data-block address
    Macroblock256,   ///< 256 B macroblock address
    Macroblock1024,  ///< 1024 B macroblock address (default)
    ProgramCounter,  ///< PC of the missing load/store
};

/** Compute the table key for an access under an indexing mode. */
constexpr std::uint64_t
indexKey(IndexingMode mode, Addr addr, Addr pc)
{
    switch (mode) {
      case IndexingMode::Block64:
        return addr >> 6;
      case IndexingMode::Macroblock256:
        return addr >> 8;
      case IndexingMode::Macroblock1024:
        return addr >> 10;
      case IndexingMode::ProgramCounter:
        return pc >> 2;
    }
    return addr >> 6;
}

/** Printable name. */
inline std::string
toString(IndexingMode mode)
{
    switch (mode) {
      case IndexingMode::Block64:
        return "block64";
      case IndexingMode::Macroblock256:
        return "macro256";
      case IndexingMode::Macroblock1024:
        return "macro1024";
      case IndexingMode::ProgramCounter:
        return "pc";
    }
    return "?";
}

} // namespace dsp

#endif // DSP_CORE_INDEXING_HH
