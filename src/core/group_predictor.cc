#include "core/group_predictor.hh"

namespace dsp {

DestinationSet
GroupPredictor::predict(Addr addr, Addr pc, RequestType /* type */,
                        NodeId requester, NodeId home)
{
    DestinationSet set = minimalSet(requester, home);
    if (GroupEntry *entry =
            table_.find(indexKey(config_.indexing, addr, pc)))
        set |= entry->predictedSet(config_.numNodes);
    return set;
}

void
GroupPredictor::trainResponse(Addr addr, Addr pc, NodeId responder,
                              bool insufficient)
{
    std::uint64_t key = indexKey(config_.indexing, addr, pc);
    if (responder == invalidNode) {
        // Memory response: only the rollover advances, giving the
        // entry gentle train-down pressure. The allocation filter
        // keeps never-shared blocks out of the table entirely.
        GroupEntry *entry =
            table_.probeOrInsert(key, !config_.allocationFilter);
        if (entry)
            entry->tickRollover(config_.numNodes);
        return;
    }
    GroupEntry *entry = table_.probeOrInsert(
        key, insufficient || !config_.allocationFilter);
    if (entry) {
        entry->strengthen(responder);
        entry->tickRollover(config_.numNodes);
    }
}

void
GroupPredictor::trainExternalRequest(Addr addr, Addr pc,
                                     RequestType type, NodeId requester)
{
    if (type == RequestType::GetShared)
        return;
    GroupEntry &entry =
        table_.findOrAllocate(indexKey(config_.indexing, addr, pc));
    entry.strengthen(requester);
    entry.tickRollover(config_.numNodes);
}

} // namespace dsp
