/**
 * @file
 * Predictor policy enumeration and construction by name.
 */

#ifndef DSP_CORE_FACTORY_HH
#define DSP_CORE_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/predictor.hh"

namespace dsp {

/** The predictor policies of Section 3 (plus anchors). */
enum class PredictorPolicy : std::uint8_t {
    Owner,
    BroadcastIfShared,
    Group,
    OwnerGroup,
    StickySpatial,
    AlwaysBroadcast,
    AlwaysMinimal,
};

/** Printable name matching the paper's terminology. */
std::string toString(PredictorPolicy policy);

/** Parse a policy name; fatal on unknown names. */
PredictorPolicy parsePredictorPolicy(const std::string &name);

/** The four proposed policies, in the paper's order (Figure 5). */
const std::vector<PredictorPolicy> &proposedPolicies();

/**
 * Construct a predictor. Sticky-Spatial is forced to Block64 indexing
 * and direct-mapped geometry when built through this factory, matching
 * the original design it reproduces.
 */
std::unique_ptr<Predictor>
makePredictor(PredictorPolicy policy, PredictorConfig config);

/** Build one predictor per node (each node trains independently). */
std::vector<std::unique_ptr<Predictor>>
makePredictorsPerNode(PredictorPolicy policy,
                      const PredictorConfig &config);

} // namespace dsp

#endif // DSP_CORE_FACTORY_HH
