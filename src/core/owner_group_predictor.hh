/**
 * @file
 * The Owner/Group hybrid predictor (Section 3.3).
 *
 * Requests for shared use an Owner prediction (send only to the
 * predicted owner, saving bandwidth); requests for exclusive use a
 * Group prediction (reach the whole sharing set so the upgrade
 * succeeds directly). Works well for stable sharing patterns: every
 * sharer observes every GETX, so each can track the current owner.
 *
 * Both components are kept in one combined entry per table line
 * (~8 bytes modelled, Table 3).
 */

#ifndef DSP_CORE_OWNER_GROUP_PREDICTOR_HH
#define DSP_CORE_OWNER_GROUP_PREDICTOR_HH

#include "core/group_predictor.hh"
#include "core/owner_predictor.hh"
#include "core/predictor.hh"
#include "core/predictor_table.hh"

namespace dsp {

/** Combined Owner + Group state for one index. */
struct OwnerGroupEntry {
    OwnerEntry owner;
    GroupEntry group;
};

class OwnerGroupPredictor : public Predictor
{
  public:
    explicit OwnerGroupPredictor(const PredictorConfig &config)
        : Predictor(config), table_(config.entries, config.ways)
    {
    }

    DestinationSet
    predict(Addr addr, Addr pc, RequestType type, NodeId requester,
            NodeId home) override;

    void trainResponse(Addr addr, Addr pc, NodeId responder,
                       bool insufficient) override;
    void trainExternalRequest(Addr addr, Addr pc, RequestType type,
                              NodeId requester) override;

    unsigned
    prefetchTables(Addr addr, Addr pc) const override
    {
        table_.prefetch(indexKey(config_.indexing, addr, pc));
        return 1;
    }

    std::string name() const override { return "owner-group"; }
    std::size_t entryCount() const override { return table_.size(); }

    unsigned
    entryBits() const override
    {
        unsigned owner_bits = 1;
        while ((1u << owner_bits) < config_.numNodes)
            ++owner_bits;
        return owner_bits + 1 + 2 * config_.numNodes + 5;
    }

    PredictorTable<OwnerGroupEntry> &table() { return table_; }

    void ckptSave(ckpt::Writer &w) const override { table_.ckptSave(w); }
    void ckptLoad(ckpt::Reader &r) override { table_.ckptLoad(r); }

  private:
    PredictorTable<OwnerGroupEntry> table_;
};

} // namespace dsp

#endif // DSP_CORE_OWNER_GROUP_PREDICTOR_HH
