#include "core/broadcast_if_shared.hh"

namespace dsp {

DestinationSet
BroadcastIfSharedPredictor::predict(Addr addr, Addr pc,
                                    RequestType /* type */,
                                    NodeId requester, NodeId home)
{
    if (SharedCounterEntry *entry =
            table_.find(indexKey(config_.indexing, addr, pc))) {
        if (entry->counter > 1)
            return DestinationSet::all(config_.numNodes);
    }
    return minimalSet(requester, home);
}

void
BroadcastIfSharedPredictor::trainResponse(Addr addr, Addr pc,
                                          NodeId responder,
                                          bool insufficient)
{
    std::uint64_t key = indexKey(config_.indexing, addr, pc);
    if (responder == invalidNode) {
        // Memory supplied the data: looks unshared, train down. The
        // allocation filter keeps such blocks out of the table.
        SharedCounterEntry *entry =
            table_.probeOrInsert(key, !config_.allocationFilter);
        if (entry)
            entry->decrement();
        return;
    }
    SharedCounterEntry *entry = table_.probeOrInsert(
        key, insufficient || !config_.allocationFilter);
    if (entry)
        entry->increment();
}

void
BroadcastIfSharedPredictor::trainExternalRequest(Addr addr, Addr pc,
                                                 RequestType type,
                                                 NodeId /* requester */)
{
    if (type == RequestType::GetShared)
        return;
    table_.findOrAllocate(indexKey(config_.indexing, addr, pc))
        .increment();
}

} // namespace dsp
