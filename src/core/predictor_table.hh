/**
 * @file
 * Backing store for predictor entries: a tagged set-associative table
 * with LRU replacement (the paper's finite predictors) or an unbounded
 * hash map (the paper's "unbounded" sensitivity points, Figure 6c).
 */

#ifndef DSP_CORE_PREDICTOR_TABLE_HH
#define DSP_CORE_PREDICTOR_TABLE_HH

#include <cstdint>
#include <optional>

#include "mem/cache_array.hh"
#include "sim/flat_map.hh"
#include "sim/logging.hh"

namespace dsp {

/**
 * key -> Entry store. entries == 0 selects the unbounded variant.
 *
 * find() never allocates: per Section 3.1 predictors return the
 * minimal destination set on a table miss, and allocation is filtered
 * (only blocks whose minimal set proved insufficient get entries).
 */
template <typename Entry>
class PredictorTable
{
  public:
    PredictorTable(std::size_t entries, std::size_t ways)
    {
        if (entries > 0) {
            if (ways == 0 || ways > entries)
                ways = entries;
            // Round the set count up: flooring would silently build a
            // smaller table than requested whenever entries % ways != 0
            // (e.g. 10 entries 4-way used to yield capacity 8).
            std::size_t sets = (entries + ways - 1) / ways;
            finite_.emplace(sets, ways);
            dsp_assert(finite_->capacity() >= entries,
                       "predictor table capacity %zu below requested "
                       "%zu entries",
                       finite_->capacity(), entries);
        }
    }

    /** Look up without allocating; nullptr on miss. */
    Entry *
    find(std::uint64_t key)
    {
        ++lookups_;
        Entry *entry = nullptr;
        if (finite_) {
            entry = finite_->find(key);
        } else {
            auto it = unbounded_.find(key);
            entry = it == unbounded_.end() ? nullptr : &it->second;
        }
        if (entry)
            ++hits_;
        return entry;
    }

    /**
     * Look up, allocating a default entry (evicting LRU) on miss.
     * One set walk total: the probe's handle installs without
     * re-walking (the old find + insert + find needed three).
     */
    Entry &
    findOrAllocate(std::uint64_t key)
    {
        if (finite_) {
            auto handle = finite_->probe(key);
            if (handle.hit()) {
                finite_->touchAt(handle);
                return *finite_->at(handle);
            }
            ++allocations_;
            if (finite_->fillAt(handle, Entry{}))
                ++evictions_;
            return *finite_->at(handle);
        }
        auto [it, inserted] = unbounded_.try_emplace(key);
        if (inserted)
            ++allocations_;
        return it->second;
    }

    /**
     * The predictors' training probe: find(key), and on a miss
     * allocate only when `allocate` holds (the Section 3.1 allocation
     * filter decides). Collapses the find + findOrAllocate
     * double-walk every train path used to make into one walk, with
     * an identical counter trajectory: one lookup (hit counted), and
     * allocation/eviction accounting only when a miss allocates.
     * Returns nullptr on a non-allocating miss.
     */
    Entry *
    probeOrInsert(std::uint64_t key, bool allocate)
    {
        ++lookups_;
        if (finite_) {
            auto handle = finite_->probe(key);
            if (handle.hit()) {
                ++hits_;
                finite_->touchAt(handle);
                return finite_->at(handle);
            }
            if (!allocate)
                return nullptr;
            ++allocations_;
            if (finite_->fillAt(handle, Entry{}))
                ++evictions_;
            return finite_->at(handle);
        }
        if (auto it = unbounded_.find(key); it != unbounded_.end()) {
            ++hits_;
            return &it->second;
        }
        if (!allocate)
            return nullptr;
        ++allocations_;
        return &unbounded_.try_emplace(key).first->second;
    }

    /** Host-prefetch the planes a lookup of `key` will walk (the
     *  finite table's set, or the hash map's home slot). Semantically
     *  a no-op. */
    void
    prefetch(std::uint64_t key) const
    {
        if (finite_)
            finite_->prefetchSet(key);
        else
            unbounded_.prefetch(key);
    }

    /** Number of live entries. */
    std::size_t
    size() const
    {
        return finite_ ? finite_->size() : unbounded_.size();
    }

    bool unbounded() const { return !finite_.has_value(); }

    /** Constructed capacity (>= requested entries); 0 if unbounded. */
    std::size_t
    capacity() const
    {
        return finite_ ? finite_->capacity() : 0;
    }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t evictions() const { return evictions_; }

    /** Checkpoint the backing store (whichever variant) + counters. */
    template <typename W>
    void
    ckptSave(W &w) const
    {
        if (finite_)
            finite_->ckptSave(w);
        else
            unbounded_.ckptSave(w);
        w.u64(lookups_);
        w.u64(hits_);
        w.u64(allocations_);
        w.u64(evictions_);
    }

    template <typename R>
    void
    ckptLoad(R &r)
    {
        if (finite_)
            finite_->ckptLoad(r);
        else
            unbounded_.ckptLoad(r);
        lookups_ = r.u64();
        hits_ = r.u64();
        allocations_ = r.u64();
        evictions_ = r.u64();
    }

  private:
    /**
     * 32-bit compressed tags: predictor keys are block numbers,
     * macroblock numbers, or PCs (the synthetic text segment sits
     * just above 4 GB), so key/sets stays far below 2^32 -- and the
     * tag plane of an 8192-entry table drops from 64 kB to 32 kB per
     * node, half a host cache line per set walked on every probe.
     * CacheArray's insert-time assert guards the range.
     */
    std::optional<CacheArray<Entry, std::uint32_t>> finite_;
    FlatMap<std::uint64_t, Entry> unbounded_;

    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t allocations_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace dsp

#endif // DSP_CORE_PREDICTOR_TABLE_HH
