#include "core/sticky_spatial.hh"

namespace dsp {

StickySpatialPredictor::StickySpatialPredictor(
    const PredictorConfig &config, unsigned spatial_degree)
    : Predictor(config), spatialDegree_(spatial_degree)
{
    if (config.entries > 0)
        finite_.resize(config.entries);
}

std::uint64_t
StickySpatialPredictor::maskAt(std::uint64_t key) const
{
    if (!finite_.empty()) {
        const Entry &entry = finite_[key % finite_.size()];
        // Prediction deliberately ignores the tag (Section 3.5).
        return entry.valid ? entry.mask : 0;
    }
    auto it = unbounded_.find(key);
    return it == unbounded_.end() ? 0 : it->second;
}

DestinationSet
StickySpatialPredictor::predict(Addr addr, Addr pc,
                                RequestType /* type */,
                                NodeId requester, NodeId home)
{
    std::uint64_t key = indexKey(config_.indexing, addr, pc);
    std::uint64_t mask = maskAt(key);
    for (unsigned d = 1; d <= spatialDegree_; ++d) {
        mask |= maskAt(key + d);
        mask |= maskAt(key - d);  // unsigned wrap is harmless here
    }
    return DestinationSet::fromMask(mask)
         | minimalSet(requester, home);
}

void
StickySpatialPredictor::trainUp(std::uint64_t key, std::uint64_t bits)
{
    if (bits == 0)
        return;
    if (!finite_.empty()) {
        Entry &entry = finite_[key % finite_.size()];
        if (!entry.valid || entry.tag != key) {
            // Replacement is the only train-down mechanism.
            entry.valid = true;
            entry.tag = key;
            entry.mask = bits;
        } else {
            entry.mask |= bits;
        }
        return;
    }
    unbounded_[key] |= bits;
}

void
StickySpatialPredictor::trainResponse(Addr addr, Addr pc,
                                      NodeId responder,
                                      bool /* insufficient */)
{
    if (responder == invalidNode)
        return;  // sticky: memory responses teach nothing
    trainUp(indexKey(config_.indexing, addr, pc),
            DestinationSet::of(responder).mask());
}

void
StickySpatialPredictor::trainExternalRequest(Addr /* addr */,
                                             Addr /* pc */,
                                             RequestType /* type */,
                                             NodeId /* requester */)
{
    // Sticky-Spatial trains only on responses and directory retries
    // (Section 3.5); external requests are not a training cue.
}

void
StickySpatialPredictor::trainRetry(Addr addr, Addr pc,
                                   DestinationSet true_required)
{
    trainUp(indexKey(config_.indexing, addr, pc), true_required.mask());
}

std::size_t
StickySpatialPredictor::entryCount() const
{
    if (!finite_.empty()) {
        std::size_t n = 0;
        for (const Entry &entry : finite_)
            n += entry.valid ? 1 : 0;
        return n;
    }
    return unbounded_.size();
}

} // namespace dsp
