#include "core/owner_predictor.hh"

namespace dsp {

DestinationSet
OwnerPredictor::predict(Addr addr, Addr pc, RequestType /* type */,
                        NodeId requester, NodeId home)
{
    DestinationSet set = minimalSet(requester, home);
    if (OwnerEntry *entry =
            table_.find(indexKey(config_.indexing, addr, pc))) {
        if (entry->valid)
            set.add(entry->owner);
    }
    return set;
}

void
OwnerPredictor::trainResponse(Addr addr, Addr pc, NodeId responder,
                              bool insufficient)
{
    std::uint64_t key = indexKey(config_.indexing, addr, pc);
    if (responder == invalidNode) {
        // Response from memory: clear Valid (train down). With the
        // Section 3.1 allocation filter on (the default), memory
        // responses never allocate -- there is nothing to learn and
        // unshared blocks would crowd out sharing-miss entries.
        OwnerEntry *entry =
            table_.probeOrInsert(key, !config_.allocationFilter);
        if (entry)
            entry->valid = false;
        return;
    }

    // Response from another cache. Allocation filter (Section 3.1):
    // only allocate when the minimal set proved insufficient (always
    // true for cache responses, but kept explicit for clarity).
    OwnerEntry *entry = table_.probeOrInsert(
        key, insufficient || !config_.allocationFilter);
    if (entry) {
        entry->owner = responder;
        entry->valid = true;
    }
}

void
OwnerPredictor::trainExternalRequest(Addr addr, Addr pc,
                                     RequestType type, NodeId requester)
{
    if (type == RequestType::GetShared)
        return;  // Table 3: requests for shared are ignored
    // An external GETX proves the block is shared with `requester`,
    // which will own it once the request completes.
    OwnerEntry &entry =
        table_.findOrAllocate(indexKey(config_.indexing, addr, pc));
    entry.owner = requester;
    entry.valid = true;
}

} // namespace dsp
