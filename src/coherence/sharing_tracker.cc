#include "coherence/sharing_tracker.hh"

#include "sim/logging.hh"

namespace dsp {

SharingTracker::SharingTracker(NodeId num_nodes)
    : numNodes_(num_nodes)
{
    dsp_assert(num_nodes > 0 && num_nodes <= maxNodes,
               "node count %u out of range", num_nodes);
}

SharingTracker::Transaction
SharingTracker::makeTransaction(const BlockState &st, NodeId requester,
                                RequestType type) const
{
    Transaction t;
    const bool cache_owned = st.owner != invalidNode;

    if (type == RequestType::GetShared) {
        t.grantedState = MosiState::Shared;
        if (cache_owned && st.owner != requester) {
            t.required.add(st.owner);
            t.responder = st.owner;
            t.cacheToCache = true;
        } else if (cache_owned) {
            // Requester already owns the block; degenerate hit.
            t.responder = requester;
            t.grantedState = MosiState::Owned;
        } else {
            t.responder = invalidNode;  // memory supplies
        }
        return t;
    }

    // GetExclusive: owner and every sharer other than the requester
    // must observe the request.
    t.grantedState = MosiState::Modified;
    t.required = st.sharers;
    t.required.remove(requester);
    if (cache_owned && st.owner != requester)
        t.required.add(st.owner);

    if (st.owner == requester) {
        t.responder = requester;           // upgrade from O
    } else if (cache_owned) {
        t.responder = st.owner;            // cache-to-cache transfer
        t.cacheToCache = true;
    } else if (st.sharers.contains(requester)) {
        t.responder = requester;           // upgrade from S
    } else {
        t.responder = invalidNode;         // memory supplies
    }
    return t;
}

SharingTracker::Transaction
SharingTracker::inspect(BlockId block, NodeId requester,
                        RequestType type) const
{
    dsp_assert(requester < numNodes_, "requester %u out of range",
               requester);
    auto it = blocks_.find(block);
    static const BlockState memory_owned{};
    const BlockState &st = it == blocks_.end() ? memory_owned : it->second;
    return makeTransaction(st, requester, type);
}

void
SharingTracker::applyTo(BlockState &st, NodeId requester,
                        RequestType type, Tick now)
{
    st.lastOrder = now;
    if (type == RequestType::GetShared) {
        if (st.owner != requester)
            st.sharers.add(requester);
        // A cache owner stays owner (M -> O downgrade is local to it);
        // a memory owner stays memory.
    } else {
        st.owner = requester;
        st.sharers = DestinationSet{};
    }
}

SharingTracker::Transaction
SharingTracker::apply(BlockId block, NodeId requester, RequestType type,
                      Tick now)
{
    dsp_assert(requester < numNodes_, "requester %u out of range",
               requester);
    BlockState &st = blocks_[block];
    Transaction t = makeTransaction(st, requester, type);
    applyTo(st, requester, type, now);
    return t;
}

SharingTracker::Transaction
SharingTracker::applyIfSufficient(BlockId block, NodeId requester,
                                  RequestType type,
                                  const DestinationSet &dests,
                                  bool &sufficient, Tick now)
{
    dsp_assert(requester < numNodes_, "requester %u out of range",
               requester);
    BlockState &st = blocks_[block];
    Transaction t = makeTransaction(st, requester, type);
    // An absent/default entry requires no observers, so any dests is
    // sufficient there -- insufficiency implies real existing state.
    sufficient = dests.containsAll(t.required);
    if (sufficient)
        applyTo(st, requester, type, now);
    return t;
}

Tick
SharingTracker::lastOrderedAt(BlockId block) const
{
    auto it = blocks_.find(block);
    return it == blocks_.end() ? 0 : it->second.lastOrder;
}

void
SharingTracker::evictShared(BlockId block, NodeId node)
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return;
    it->second.sharers.remove(node);
    if (it->second.owner == invalidNode && it->second.sharers.empty())
        blocks_.erase(it);
}

void
SharingTracker::evictOwned(BlockId block, NodeId node)
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return;
    dsp_assert(it->second.owner == node,
               "writeback from node %u but owner is %u", node,
               it->second.owner);
    it->second.owner = invalidNode;
    if (it->second.sharers.empty())
        blocks_.erase(it);
}

NodeId
SharingTracker::ownerOf(BlockId block) const
{
    auto it = blocks_.find(block);
    return it == blocks_.end() ? invalidNode : it->second.owner;
}

DestinationSet
SharingTracker::sharersOf(BlockId block) const
{
    auto it = blocks_.find(block);
    return it == blocks_.end() ? DestinationSet{} : it->second.sharers;
}

DestinationSet
SharingTracker::holdersOf(BlockId block) const
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return DestinationSet{};
    DestinationSet holders = it->second.sharers;
    if (it->second.owner != invalidNode)
        holders.add(it->second.owner);
    return holders;
}

} // namespace dsp
