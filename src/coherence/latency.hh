/**
 * @file
 * Latency classes and the calibrated end-to-end miss latencies of the
 * target system (Section 5.1): 180 ns memory fetch, 112 ns direct
 * cache-to-cache transfer (snooping / successful multicast), 242 ns for
 * a directory 3-hop transfer or a retried multicast request.
 */

#ifndef DSP_COHERENCE_LATENCY_HH
#define DSP_COHERENCE_LATENCY_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace dsp {

/** Component latencies (Table 4). */
struct LatencyParams {
    double l1_ns = 1.0;            ///< 2 cycles at 2 GHz
    double l2_ns = 12.0;           ///< L2 / snoop tag access
    double memory_ns = 80.0;       ///< DRAM + directory access at home
    double interconnect_ns = 50.0; ///< one crossbar traversal

    /** Memory fetch: request hop + memory + data hop. */
    double memoryFetch() const
    {
        return interconnect_ns + memory_ns + interconnect_ns;
    }

    /** Direct cache-to-cache: request hop + snoop + data hop. */
    double directCacheToCache() const
    {
        return interconnect_ns + l2_ns + interconnect_ns;
    }

    /** 3-hop: hop + directory + hop + snoop + data hop. */
    double indirectCacheToCache() const
    {
        return 2 * interconnect_ns + memory_ns + l2_ns
             + interconnect_ns;
    }
};

/** Broad classification of how a miss was serviced. */
enum class LatencyClass : std::uint8_t {
    LocalUpgrade,   ///< data already present; ordering-only transaction
    DirectCache,    ///< cache-to-cache without indirection (112 ns)
    Memory,         ///< serviced by memory at the home (180 ns)
    Indirect,       ///< 3-hop / retried request (242 ns)
};

/** Printable name. */
inline std::string
toString(LatencyClass c)
{
    switch (c) {
      case LatencyClass::LocalUpgrade:
        return "upgrade";
      case LatencyClass::DirectCache:
        return "direct";
      case LatencyClass::Memory:
        return "memory";
      case LatencyClass::Indirect:
        return "indirect";
    }
    return "?";
}

} // namespace dsp

#endif // DSP_COHERENCE_LATENCY_HH
