/**
 * @file
 * Global MOSI sharing state: for every block, who owns it (a cache or
 * memory) and which caches hold read-only copies.
 *
 * This is the functional heart of all three protocols. In a system with
 * a totally-ordered interconnect, coherence transactions are logically
 * serialized at the ordering point; this class applies that serialized
 * order. Protocols differ only in *who gets told* about each request
 * (the destination set) and hence in latency and traffic -- never in the
 * resulting sharing state.
 */

#ifndef DSP_COHERENCE_SHARING_TRACKER_HH
#define DSP_COHERENCE_SHARING_TRACKER_HH

#include <cstdint>

#include "mem/destination_set.hh"
#include "mem/mosi.hh"
#include "mem/types.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace dsp {

/**
 * Tracks owner + sharers per block and serializes MOSI transactions.
 *
 * Owner semantics: `invalidNode` means memory (at the block's home node)
 * owns the block; otherwise the named cache is in M or O.
 */
class SharingTracker
{
  public:
    explicit SharingTracker(NodeId num_nodes);

    /** Result of serializing one coherence request. */
    struct Transaction {
        /**
         * Caches (other than the requester) that had to observe the
         * request for it to succeed: the owner for GETS; the owner and
         * all sharers for GETX. This is exactly the set whose size
         * Figure 2 histograms, and whose non-emptiness defines a
         * directory-protocol indirection (Table 2, rightmost column).
         */
        DestinationSet required;

        /**
         * Who supplies the data: a cache id, `invalidNode` for memory,
         * or the requester itself (upgrade: requester already holds
         * valid data, no data message needed).
         */
        NodeId responder = invalidNode;

        /** True if another cache supplies the data (3-hop in a
         *  directory protocol; a "cache-to-cache miss"). */
        bool cacheToCache = false;

        /** State the requester's L2 should install. */
        MosiState grantedState = MosiState::Invalid;
    };

    /**
     * Peek: what would this request require, without changing state?
     * Used by directories to build improved destination sets.
     */
    Transaction inspect(BlockId block, NodeId requester,
                        RequestType type) const;

    /**
     * Serialize a request: compute the transaction and update global
     * state (GETS: requester becomes sharer, M owner conceptually
     * downgrades to O; GETX: requester becomes sole M owner, sharers
     * are invalidated).
     */
    Transaction apply(BlockId block, NodeId requester, RequestType type,
                      Tick now = 0);

    /**
     * Snooping/multicast ordering point: serialize the request only if
     * `dests` covers the required observers (Section 4.1), with a
     * single state lookup. Returns the transaction and sets
     * `sufficient`; when insufficient, no state changes and the
     * transaction reflects what *would* be required.
     */
    Transaction applyIfSufficient(BlockId block, NodeId requester,
                                  RequestType type,
                                  const DestinationSet &dests,
                                  bool &sufficient, Tick now = 0);

    /**
     * Tick of the last applied (state-changing) ordering for `block`;
     * 0 if none since tracking began. Lets a delayed eviction notice
     * detect that a later ordering superseded it.
     */
    Tick lastOrderedAt(BlockId block) const;

    /** A sharer dropped its S copy (clean eviction). */
    void evictShared(BlockId block, NodeId node);

    /** The owner wrote the block back; memory becomes owner. */
    void evictOwned(BlockId block, NodeId node);

    /** Current owner (invalidNode = memory). */
    NodeId ownerOf(BlockId block) const;

    /** Current sharers (read-only copy holders, owner not included). */
    DestinationSet sharersOf(BlockId block) const;

    /** All caches holding the block: sharers plus cache owner. */
    DestinationSet holdersOf(BlockId block) const;

    /** Number of nodes in the system. */
    NodeId numNodes() const { return numNodes_; }

    /** Number of blocks with any non-default state. */
    std::size_t trackedBlocks() const { return blocks_.size(); }

    /**
     * Pre-size the block table for `blocks` entries (e.g. the
     * workload's whole footprint), so the hot ordering-point path
     * never pays an incremental rehash.
     */
    void reserve(std::size_t blocks) { blocks_.reserve(blocks); }

    /** Host-prefetch `block`'s table slot: issued at request send so
     *  the line is warm when the ordering point applies the request a
     *  hop later. Semantically a no-op. */
    void prefetch(BlockId block) const { blocks_.prefetch(block); }

    /**
     * Checkpoint the whole block table. BlockState is trivially
     * copyable, so the FlatMap raw-layout path captures it verbatim
     * (including probe/iteration order).
     */
    template <typename W>
    void
    ckptSave(W &w) const
    {
        w.u64(numNodes_);
        blocks_.ckptSave(w);
    }

    template <typename R>
    void
    ckptLoad(R &r)
    {
        std::uint64_t nodes = r.u64();
        dsp_assert(nodes == numNodes_,
                   "checkpoint sharing tracker built for %llu nodes, "
                   "this machine has %u",
                   static_cast<unsigned long long>(nodes), numNodes_);
        blocks_.ckptLoad(r);
    }

  private:
    struct BlockState {
        NodeId owner = invalidNode;  ///< invalidNode = memory owns
        DestinationSet sharers;      ///< S-state holders
        /** Serialization tick of the last applied request (0 for
         *  functional/trace use, which passes no clock). */
        Tick lastOrder = 0;
    };

    NodeId numNodes_;
    FlatMap<BlockId, BlockState> blocks_;

    Transaction
    makeTransaction(const BlockState &st, NodeId requester,
                    RequestType type) const;

    /** Mutate `st` as the serialized request dictates. */
    static void applyTo(BlockState &st, NodeId requester,
                        RequestType type, Tick now);
};

} // namespace dsp

#endif // DSP_COHERENCE_SHARING_TRACKER_HH
