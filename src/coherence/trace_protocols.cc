#include "coherence/trace_protocols.hh"

#include "sim/logging.hh"

namespace dsp {

namespace {

/** Latency class for a request serviced without indirection. */
LatencyClass
directClassFor(const MissInfo &miss)
{
    if (miss.responder == miss.requester)
        return LatencyClass::LocalUpgrade;
    if (miss.responder == invalidNode)
        return LatencyClass::Memory;
    return LatencyClass::DirectCache;
}

/** Charge the data (or upgrade-grant) message for a miss. */
void
chargeResponse(const MissInfo &miss, bool via_directory_grant,
               MissOutcome &out)
{
    if (miss.responder == miss.requester) {
        // Upgrade in place: no data moves. Directory protocols send an
        // explicit grant; snooping-style protocols complete when the
        // requester observes its own ordered request.
        if (via_directory_grant && miss.home != miss.requester)
            ++out.controlMessages;
        return;
    }
    ++out.dataMessages;
    out.cacheToCache = miss.responder != invalidNode;
}

} // namespace

MissOutcome
BroadcastSnoopingModel::handleMiss(const MissInfo &miss,
                                   DestinationSet /* predicted */)
{
    MissOutcome out;
    out.responder = miss.responder;

    DestinationSet everyone = DestinationSet::all(numNodes_);
    everyone.remove(miss.requester);
    out.observers = everyone;
    out.requestMessages = everyone.count();

    out.indirection = false;  // the owner always hears a broadcast
    chargeResponse(miss, false, out);
    out.latency = directClassFor(miss);
    return out;
}

MissOutcome
DirectoryModel::handleMiss(const MissInfo &miss,
                           DestinationSet /* predicted */)
{
    MissOutcome out;
    out.responder = miss.responder;

    // Request to the home (free if the requester is the home node).
    if (miss.home != miss.requester)
        ++out.requestMessages;

    // Forward to the owner and/or invalidate sharers.
    out.requestMessages += miss.required.count();
    out.observers = miss.required;

    out.indirection = !miss.required.empty();
    chargeResponse(miss, true, out);
    if (out.indirection) {
        out.latency = LatencyClass::Indirect;
    } else if (miss.responder == miss.requester) {
        // Upgrades still take the grant round trip through the home.
        out.latency = LatencyClass::Memory;
    } else {
        out.latency = directClassFor(miss);
    }
    return out;
}

MissOutcome
MulticastSnoopingModel::handleMiss(const MissInfo &miss,
                                   DestinationSet predicted)
{
    dsp_assert(predicted.contains(miss.requester),
               "multicast destination set must include the requester");
    dsp_assert(predicted.contains(miss.home),
               "multicast destination set must include the home node");

    MissOutcome out;
    out.responder = miss.responder;

    DestinationSet initial = predicted;
    initial.remove(miss.requester);
    out.requestMessages = initial.count();
    out.observers = initial;

    const bool sufficient = predicted.containsAll(miss.required);
    if (sufficient) {
        out.indirection = false;
        chargeResponse(miss, false, out);
        out.latency = directClassFor(miss);
        return out;
    }

    // Insufficient: the home's directory re-issues the request with an
    // improved destination set (current owner + sharers + requester).
    // In trace replay no racing request can intervene, so one retry
    // always suffices; the timing simulator models the window of
    // vulnerability (Section 4.1).
    out.indirection = true;
    out.retries = 1;

    DestinationSet retry = miss.required;
    retry.add(miss.requester);
    retry.remove(miss.home);  // home re-issues; self-delivery is free
    out.requestMessages += retry.count();
    out.observers |= miss.required;

    chargeResponse(miss, false, out);
    out.latency = LatencyClass::Indirect;
    return out;
}

} // namespace dsp
