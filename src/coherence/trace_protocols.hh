/**
 * @file
 * Trace-level models of the three protocols (Section 4): broadcast
 * snooping, a GS320-style directory protocol, and multicast snooping
 * with directory-assisted retries.
 *
 * These models consume pre-serialized misses -- the requester, the
 * ground-truth required observer set, and the responder, all captured at
 * trace-collection time -- and charge messages/latency according to each
 * protocol's rules. Because destination sets never change MOSI state
 * evolution (only who hears about it), replaying the same miss order
 * through different protocols is exact, which is what makes the paper's
 * trace-driven methodology valid.
 */

#ifndef DSP_COHERENCE_TRACE_PROTOCOLS_HH
#define DSP_COHERENCE_TRACE_PROTOCOLS_HH

#include <cstdint>

#include "coherence/miss_outcome.hh"
#include "mem/destination_set.hh"
#include "mem/types.hh"

namespace dsp {

/** One serialized miss, with ground truth from trace collection. */
struct MissInfo {
    Addr addr = 0;
    Addr pc = 0;
    NodeId requester = 0;
    RequestType type = RequestType::GetShared;

    /** Caches (excluding requester) that must observe the request. */
    DestinationSet required;

    /** Data source: cache, invalidNode (memory), or requester
     *  (upgrade in place). */
    NodeId responder = invalidNode;

    /** Home node of the block (directory location). */
    NodeId home = 0;
};

/**
 * Common interface: given a miss and (for multicast) a predicted
 * destination set, produce the protocol's outcome.
 */
class TraceProtocol
{
  public:
    virtual ~TraceProtocol() = default;

    /**
     * Process one miss.
     *
     * @param miss the serialized miss with ground truth
     * @param predicted the predicted destination set (ignored by the
     *        snooping and directory baselines); must include the
     *        requester and the home node
     */
    virtual MissOutcome
    handleMiss(const MissInfo &miss,
               DestinationSet predicted = DestinationSet{}) = 0;

    /** Protocol name for report tables. */
    virtual const char *name() const = 0;
};

/**
 * Broadcast snooping: every request goes to all nodes. Never indirect
 * (the owner always observes the request).
 */
class BroadcastSnoopingModel : public TraceProtocol
{
  public:
    explicit BroadcastSnoopingModel(NodeId num_nodes)
        : numNodes_(num_nodes)
    {
    }

    MissOutcome
    handleMiss(const MissInfo &miss,
               DestinationSet predicted = DestinationSet{}) override;
    const char *name() const override { return "snooping"; }

  private:
    NodeId numNodes_;
};

/**
 * Directory protocol in the AlphaServer GS320 style: requests go to the
 * home; the directory forwards to the owner and/or sharers when the
 * home cannot satisfy the request alone. The totally-ordered
 * interconnect removes the need for invalidation acknowledgements.
 */
class DirectoryModel : public TraceProtocol
{
  public:
    explicit DirectoryModel(NodeId num_nodes)
        : numNodes_(num_nodes)
    {
    }

    MissOutcome
    handleMiss(const MissInfo &miss,
               DestinationSet predicted = DestinationSet{}) override;
    const char *name() const override { return "directory"; }

  private:
    NodeId numNodes_;
};

/**
 * Multicast snooping (Bilir et al. / Sorin et al.): the request is
 * multicast to the predicted destination set; the home's directory
 * checks sufficiency and, when the set is insufficient, re-issues the
 * request with an improved destination set (latency comparable to a
 * directory 3-hop). In trace replay the retry always succeeds -- the
 * window-of-vulnerability race needs timing and is modelled by the
 * execution-driven simulator in src/system.
 */
class MulticastSnoopingModel : public TraceProtocol
{
  public:
    explicit MulticastSnoopingModel(NodeId num_nodes)
        : numNodes_(num_nodes)
    {
    }

    MissOutcome
    handleMiss(const MissInfo &miss,
               DestinationSet predicted = DestinationSet{}) override;
    const char *name() const override { return "multicast"; }

  private:
    NodeId numNodes_;
};

} // namespace dsp

#endif // DSP_COHERENCE_TRACE_PROTOCOLS_HH
