/**
 * @file
 * Per-miss protocol outcome: message counts, bytes, latency class, and
 * which nodes observed the request. This is the quantity plotted on
 * both axes of Figures 5-8.
 */

#ifndef DSP_COHERENCE_MISS_OUTCOME_HH
#define DSP_COHERENCE_MISS_OUTCOME_HH

#include <cstdint>

#include "coherence/latency.hh"
#include "mem/destination_set.hh"
#include "mem/types.hh"

namespace dsp {

/**
 * Everything a protocol engine decides about one miss.
 */
struct MissOutcome {
    /** The request needed help beyond its initial destination set:
     *  a directory forward (3-hop) or a multicast retry. */
    bool indirection = false;

    /** Request-class messages: initial requests + forwards + retries.
     *  This is the x-axis of Figures 5 and 6. */
    std::uint32_t requestMessages = 0;

    /** Data-carrying messages (64 B + header). */
    std::uint32_t dataMessages = 0;

    /** Control messages (grants/acks) that carry no data. */
    std::uint32_t controlMessages = 0;

    /** Multicast snooping: number of directory-issued retries. */
    std::uint32_t retries = 0;

    /** Nodes other than the requester that observed the request (and
     *  can therefore train their predictors, Section 3.2). */
    DestinationSet observers;

    /** Data source: cache id, invalidNode for memory, or the requester
     *  itself for an upgrade (no data transfer). */
    NodeId responder = invalidNode;

    /** True when another cache supplied the data. */
    bool cacheToCache = false;

    /** How the miss was serviced, for latency reporting. */
    LatencyClass latency = LatencyClass::Memory;

    /** Total bytes moved on the interconnect for this miss. */
    std::uint64_t
    totalBytes() const
    {
        return std::uint64_t{requestMessages} * requestMessageBytes
             + std::uint64_t{controlMessages} * requestMessageBytes
             + std::uint64_t{dataMessages} * dataMessageBytes;
    }
};

} // namespace dsp

#endif // DSP_COHERENCE_MISS_OUTCOME_HH
