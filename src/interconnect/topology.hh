/**
 * @file
 * Machine topology: node clustering, per-level hop latencies, and the
 * address-interleaved ordering-point map (see docs/machine_topology.md).
 *
 * Two-level model in the style of the sesc memory-hierarchy configs:
 * nodes sit in equal-size clusters behind local switches; a global
 * tier (carrying the ordering hubs) connects the switches. Every
 * message pays one node<->switch leg per endpoint, plus one
 * switch<->global leg per endpoint whenever it leaves its cluster.
 * Ordered traffic always transits the global tier (the ordering hubs
 * live there), so a node's distance to any hub is uniform:
 * cluster geometry shows up only in point-to-point (data) latency.
 *
 * The flat single-hop crossbar of the paper's Table 4 is the
 * degenerate case -- one cluster, node leg = traversal/2, switch leg
 * = 0 -- and reproduces its timing bit-for-bit.
 *
 * Ordering points: H hubs, block address b ordered at hub b mod H.
 * Per-block state (sharing tracker, chaining books, order spacing)
 * partitions cleanly by hub, so hubs never race and the carried-key
 * determinism contract is untouched.
 */

#ifndef DSP_INTERCONNECT_TOPOLOGY_HH
#define DSP_INTERCONNECT_TOPOLOGY_HH

#include <algorithm>
#include <cstdint>

#include "mem/types.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace dsp {

/** Hierarchical interconnect knobs (flat crossbar by default). */
struct TopologyParams {
    /** Nodes per cluster; 0 = one cluster spanning the machine (the
     *  flat crossbar). Must divide the node count when set. */
    NodeId cluster_size = 0;

    /** Node <-> local-switch leg latency; 0 = traversal_ns / 2 (the
     *  flat crossbar's half-traversal, keeping 16-node timing
     *  bit-identical). */
    double cluster_link_ns = 0.0;

    /** Local-switch <-> global-tier leg latency (0 in the flat
     *  machine; the cross-cluster penalty when hierarchical). */
    double switch_link_ns = 0.0;

    /** Address-interleaved ordering points (block b -> hub b mod H). */
    unsigned hubs = 1;
};

/** Resolved topology: geometry plus per-level hop latencies in ticks. */
class Topology
{
  public:
    Topology() = default;

    Topology(NodeId nodes, const TopologyParams &params,
             double traversal_ns)
        : nodes_(nodes), hubs_(params.hubs)
    {
        dsp_assert(nodes_ > 0 && nodes_ <= maxNodes,
                   "bad node count %u", nodes_);
        dsp_assert(hubs_ >= 1 && hubs_ <= maxHubs,
                   "bad hub count %u", hubs_);
        clusterSize_ =
            params.cluster_size == 0 ? nodes_ : params.cluster_size;
        dsp_assert(clusterSize_ >= 1 && nodes_ % clusterSize_ == 0,
                   "cluster size %u does not divide %u nodes",
                   clusterSize_, nodes_);
        legNode_ = params.cluster_link_ns > 0.0
                       ? nsToTicks(params.cluster_link_ns)
                       : nsToTicks(traversal_ns / 2.0);
        legSwitch_ = nsToTicks(params.switch_link_ns);
        dsp_assert(legNode_ > 0, "node link latency must be positive");
    }

    /** More ordering points than any sane machine needs; bounds the
     *  kernel-domain budget (nodes + hubs + boot <= maxDomains). */
    static constexpr unsigned maxHubs = 64;

    NodeId nodes() const { return nodes_; }
    unsigned hubs() const { return hubs_; }
    NodeId clusterSize() const { return clusterSize_; }
    NodeId numClusters() const { return nodes_ / clusterSize_; }
    bool flat() const
    {
        return clusterSize_ == nodes_ && legSwitch_ == 0;
    }

    NodeId clusterOf(NodeId n) const { return n / clusterSize_; }

    bool
    sameCluster(NodeId a, NodeId b) const
    {
        return clusterOf(a) == clusterOf(b);
    }

    /** Node <-> local switch leg, in ticks. */
    Tick nodeLeg() const { return legNode_; }

    /** Local switch <-> global tier leg, in ticks. */
    Tick switchLeg() const { return legSwitch_; }

    /** One-way node <-> ordering hub: up through the local switch to
     *  the global tier (uniform over nodes -- the hubs sit above every
     *  cluster). The flat machine's half-traversal. */
    Tick hubHop() const { return legNode_ + legSwitch_; }

    /** One-way point-to-point latency between two nodes: through the
     *  shared local switch inside a cluster, via the global tier
     *  across clusters. */
    Tick
    directHop(NodeId src, NodeId dst) const
    {
        return sameCluster(src, dst) ? 2 * legNode_
                                     : 2 * (legNode_ + legSwitch_);
    }

    /**
     * The minimum latency of any cross-domain interaction: the
     * sharded kernel's conservative lookahead. Candidates are the
     * intra-cluster direct hop (2 node legs) and the node <-> hub hop
     * (every other path is at least as long).
     */
    Tick
    minHop() const
    {
        return std::min(2 * legNode_, hubHop());
    }

    /** Address-interleaved ordering-point map. */
    unsigned
    hubOf(BlockId block) const
    {
        if ((hubs_ & (hubs_ - 1)) == 0)
            return static_cast<unsigned>(block) & (hubs_ - 1);
        return static_cast<unsigned>(block % hubs_);
    }

  private:
    NodeId nodes_ = 1;
    NodeId clusterSize_ = 1;
    unsigned hubs_ = 1;
    Tick legNode_ = 1;
    Tick legSwitch_ = 0;
};

} // namespace dsp

#endif // DSP_INTERCONNECT_TOPOLOGY_HH
