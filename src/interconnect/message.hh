/**
 * @file
 * Network message taxonomy for the timing-level simulator.
 *
 * Sizes follow Section 5.1: requests, forwards, retries, invalidations
 * and grants are 8-byte control messages; data responses and
 * writebacks carry 64 B of data plus an 8 B header (72 B).
 */

#ifndef DSP_INTERCONNECT_MESSAGE_HH
#define DSP_INTERCONNECT_MESSAGE_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "mem/destination_set.hh"
#include "mem/types.hh"
#include "sim/logging.hh"

namespace dsp {

/** Unique id of one coherence transaction (miss). */
using TxnId = std::uint64_t;

/** Kinds of messages that cross the interconnect. */
enum class MessageKind : std::uint8_t {
    Request,     ///< coherence request (multicast via ordering point)
    Retry,       ///< directory-reissued request (ordered multicast)
    Forward,     ///< directory-protocol forward to the owner
    Invalidate,  ///< directory-protocol invalidation to a sharer
    Data,        ///< data response (72 B)
    Grant,       ///< dataless upgrade grant (directory protocol)
    Writeback,   ///< dirty eviction to the home (72 B)
};

/** True for kinds that flow through the total-order point. */
constexpr bool
isOrdered(MessageKind kind)
{
    return kind == MessageKind::Request || kind == MessageKind::Retry;
}

/** Wire size in bytes. */
constexpr std::uint32_t
messageBytes(MessageKind kind)
{
    switch (kind) {
      case MessageKind::Data:
      case MessageKind::Writeback:
        return static_cast<std::uint32_t>(dataMessageBytes);
      default:
        return static_cast<std::uint32_t>(requestMessageBytes);
    }
}

/** One network message. */
struct Message {
    MessageKind kind = MessageKind::Request;
    TxnId txn = 0;
    Addr addr = 0;
    Addr pc = 0;
    RequestType type = RequestType::GetShared;
    NodeId src = 0;

    /** Ordered multicasts use `dests`; point-to-point uses `dest`. */
    DestinationSet dests;
    NodeId dest = 0;

    /** Retry attempt (0 = original request). */
    std::uint8_t attempt = 0;

    std::uint32_t
    bytes() const
    {
        return messageBytes(kind);
    }

    BlockId
    block() const
    {
        return blockOf(addr);
    }
};

/** Aggregate counters for the shared-payload pool. */
struct MessagePoolStats {
    std::uint64_t acquires = 0;    ///< payloads moved into the pool
    std::uint64_t releases = 0;    ///< payloads whose last ref dropped
    std::uint64_t refsShared = 0;  ///< extra refs taken (copies avoided)
    std::uint64_t slabAllocations = 0;  ///< backing-store mallocs
    std::uint64_t slabBytes = 0;        ///< backing-store footprint

    /** Payloads currently alive (some handle still references them). */
    std::uint64_t live() const { return acquires - releases; }
};

/**
 * Refcounted handle to an immutable pooled Message payload.
 *
 * A multicast fan-out used to copy the full Message into every
 * per-destination delivery event; with MessageRef the payload is moved
 * into a slab-pooled slot exactly once and every delivery shares it,
 * carrying only (handle, destination, tick). Handles give const-only
 * access, so sharing is safe by construction. Single-threaded, like
 * the rest of the kernel: refcounts are plain integers.
 */
class MessageRef
{
  public:
    MessageRef() = default;

    /** Move a message into a pooled slot; the handle owns one ref. */
    explicit MessageRef(Message &&msg) : slot_(acquireSlot())
    {
        slot_->msg = std::move(msg);
        slot_->refs = 1;
        ++poolStats().acquires;
    }

    MessageRef(const MessageRef &other) : slot_(other.slot_)
    {
        if (slot_ != nullptr) {
            ++slot_->refs;
            ++poolStats().refsShared;
        }
    }

    MessageRef(MessageRef &&other) noexcept : slot_(other.slot_)
    {
        other.slot_ = nullptr;
    }

    MessageRef &
    operator=(const MessageRef &other)
    {
        MessageRef copy(other);
        std::swap(slot_, copy.slot_);
        return *this;
    }

    MessageRef &
    operator=(MessageRef &&other) noexcept
    {
        std::swap(slot_, other.slot_);
        return *this;
    }

    ~MessageRef() { reset(); }

    /** Drop this handle's reference. */
    void
    reset()
    {
        if (slot_ != nullptr && --slot_->refs == 0)
            releaseSlot(slot_);
        slot_ = nullptr;
    }

    explicit operator bool() const { return slot_ != nullptr; }

    const Message &operator*() const { return slot_->msg; }
    const Message *operator->() const { return &slot_->msg; }
    const Message *get() const { return slot_ ? &slot_->msg : nullptr; }

    /** Number of handles sharing this payload (0 for empty handles). */
    std::uint32_t refCount() const { return slot_ ? slot_->refs : 0; }

    /** Process-wide pool counters (tests assert copy-freedom here). */
    static const MessagePoolStats &stats() { return poolStats(); }

  private:
    /** A pooled payload slot; `next` threads the free list when the
     *  slot is vacant. */
    struct Slot {
        Message msg;
        std::uint32_t refs = 0;
        Slot *next = nullptr;
    };

    static constexpr std::size_t slabSlots = 256;

    struct Pool {
        std::vector<std::unique_ptr<Slot[]>> slabs;
        Slot *freeList = nullptr;
        MessagePoolStats stats;
    };

    /** Function-local static so the pool outlives every simulator
     *  object; handles pending at teardown always release safely. */
    static Pool &
    pool()
    {
        static Pool p;
        return p;
    }

    static MessagePoolStats &poolStats() { return pool().stats; }

    static Slot *
    acquireSlot()
    {
        Pool &p = pool();
        if (p.freeList == nullptr) {
            p.slabs.push_back(std::make_unique<Slot[]>(slabSlots));
            ++p.stats.slabAllocations;
            p.stats.slabBytes += slabSlots * sizeof(Slot);
            Slot *slab = p.slabs.back().get();
            for (std::size_t i = slabSlots; i-- > 0;) {
                slab[i].next = p.freeList;
                p.freeList = &slab[i];
            }
        }
        Slot *slot = p.freeList;
        p.freeList = slot->next;
        return slot;
    }

    static void
    releaseSlot(Slot *slot)
    {
        Pool &p = pool();
        slot->next = p.freeList;
        p.freeList = slot;
        ++p.stats.releases;
    }

    Slot *slot_ = nullptr;
};

} // namespace dsp

#endif // DSP_INTERCONNECT_MESSAGE_HH
