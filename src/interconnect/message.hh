/**
 * @file
 * Network message taxonomy for the timing-level simulator.
 *
 * Sizes follow Section 5.1: requests, forwards, retries, invalidations
 * and grants are 8-byte control messages; data responses and
 * writebacks carry 64 B of data plus an 8 B header (72 B).
 */

#ifndef DSP_INTERCONNECT_MESSAGE_HH
#define DSP_INTERCONNECT_MESSAGE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "mem/destination_set.hh"
#include "mem/mosi.hh"
#include "mem/types.hh"
#include "sim/logging.hh"
#include "sim/pool_registry.hh"
#include "sim/slab_pool.hh"
#include "sim/types.hh"

namespace dsp {

/** Unique id of one coherence transaction (miss). */
using TxnId = std::uint64_t;

/** Kinds of messages that cross the interconnect. */
enum class MessageKind : std::uint8_t {
    Request,     ///< coherence request (multicast via ordering point)
    Retry,       ///< directory-reissued request (ordered multicast)
    Forward,     ///< directory-protocol forward to the owner
    Invalidate,  ///< directory-protocol invalidation to a sharer
    Data,        ///< data response (72 B)
    Grant,       ///< dataless upgrade grant (directory protocol)
    Writeback,   ///< dirty eviction to the home (72 B)
};

/** True for kinds that flow through the total-order point. */
constexpr bool
isOrdered(MessageKind kind)
{
    return kind == MessageKind::Request || kind == MessageKind::Retry;
}

/** Wire size in bytes. */
constexpr std::uint32_t
messageBytes(MessageKind kind)
{
    switch (kind) {
      case MessageKind::Data:
      case MessageKind::Writeback:
        return static_cast<std::uint32_t>(dataMessageBytes);
      default:
        return static_cast<std::uint32_t>(requestMessageBytes);
    }
}

/**
 * Transaction state echoed through the network instead of shared in
 * memory.
 *
 * Under the sharded kernel, per-node handlers run on different host
 * threads than the ordering point, so they can no longer peek at a
 * live transaction table. Instead the ordering point stamps its
 * serialization verdict into the ordered payload before fan-out
 * (while it still holds the only reference), and responses copy the
 * echo forward, making every delivery self-contained -- the same way
 * real coherence messages carry their outcome on the wire.
 */
struct TxnEcho {
    /** Tick the original request issued at (latency accounting). */
    Tick issued = 0;

    /**
     * Data-availability chaining: the earliest tick the responder can
     * start supplying data. Non-zero when the ordering point knows the
     * responder's own fill (or the in-flight writeback that made
     * memory the owner) has not landed yet.
     */
    Tick supplyEarliest = 0;

    /** Observers the request needed (resolving attempt) or would have
     *  needed (insufficient attempt; seeds the retry's set). */
    DestinationSet required;

    NodeId requester = 0;
    NodeId responder = invalidNode;
    MosiState granted = MosiState::Invalid;

    std::uint8_t resolvedAttempt = 0;
    bool resolved = false;
};

/** One network message. */
struct Message {
    MessageKind kind = MessageKind::Request;
    TxnId txn = 0;
    Addr addr = 0;
    Addr pc = 0;
    RequestType type = RequestType::GetShared;
    NodeId src = 0;

    /** Ordered multicasts use `dests`; point-to-point uses `dest`. */
    DestinationSet dests;
    NodeId dest = 0;

    /** Retry attempt (0 = original request). */
    std::uint8_t attempt = 0;

    /** Ordering-point verdict carried with the message (see TxnEcho).
     *  Bookkeeping only -- not part of the modeled wire size. */
    TxnEcho echo;

    std::uint32_t
    bytes() const
    {
        return messageBytes(kind);
    }

    BlockId
    block() const
    {
        return blockOf(addr);
    }
};

/** Aggregate counters for the shared-payload pool. */
struct MessagePoolStats {
    std::uint64_t acquires = 0;    ///< payloads moved into the pool
    std::uint64_t releases = 0;    ///< payloads whose last ref dropped
    std::uint64_t refsShared = 0;  ///< extra refs taken (copies avoided)
    std::uint64_t slabAllocations = 0;  ///< backing-store mallocs
    std::uint64_t slabBytes = 0;        ///< backing-store footprint

    /** Payloads currently alive (some handle still references them). */
    std::uint64_t live() const { return acquires - releases; }
};

/**
 * Refcounted handle to an immutable pooled Message payload.
 *
 * A multicast fan-out used to copy the full Message into every
 * per-destination delivery event; with MessageRef the payload is moved
 * into a slab-pooled slot exactly once and every delivery shares it,
 * carrying only (handle, destination, tick). Handles give const-only
 * access, so sharing is safe by construction. Under the sharded
 * kernel one payload's deliveries execute on several shard threads,
 * so the refcount is atomic and slots are recycled through per-thread
 * free lists (a slot may be released on a different thread than the
 * one whose slab produced it; pools are leaked so slabs outlive every
 * thread).
 */
class MessageRef
{
  public:
    MessageRef() = default;

    /** Move a message into a pooled slot; the handle owns one ref. */
    explicit MessageRef(Message &&msg) : slot_(acquireSlot())
    {
        slot_->msg = std::move(msg);
        slot_->refs.store(1, std::memory_order_relaxed);
        ++localPool().stats.acquires;
    }

    MessageRef(const MessageRef &other) : slot_(other.slot_)
    {
        if (slot_ != nullptr) {
            slot_->refs.fetch_add(1, std::memory_order_relaxed);
            ++localPool().stats.refsShared;
        }
    }

    MessageRef(MessageRef &&other) noexcept : slot_(other.slot_)
    {
        other.slot_ = nullptr;
    }

    MessageRef &
    operator=(const MessageRef &other)
    {
        MessageRef copy(other);
        std::swap(slot_, copy.slot_);
        return *this;
    }

    MessageRef &
    operator=(MessageRef &&other) noexcept
    {
        std::swap(slot_, other.slot_);
        return *this;
    }

    ~MessageRef() { reset(); }

    /** Drop this handle's reference. */
    void
    reset()
    {
        if (slot_ != nullptr &&
            slot_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            releaseSlot(slot_);
        }
        slot_ = nullptr;
    }

    explicit operator bool() const { return slot_ != nullptr; }

    const Message &operator*() const { return slot_->msg; }
    const Message *operator->() const { return &slot_->msg; }
    const Message *get() const { return slot_ ? &slot_->msg : nullptr; }

    /**
     * Mutable access while this handle is the payload's only owner --
     * the ordering point uses it to stamp the TxnEcho into an ordered
     * payload *before* fan-out shares it.
     */
    Message &
    exclusive() const
    {
        dsp_assert(refCount() == 1,
                   "exclusive() on a shared payload (%u refs)",
                   refCount());
        return slot_->msg;
    }

    /** Number of handles sharing this payload (0 for empty handles). */
    std::uint32_t
    refCount() const
    {
        return slot_ ? slot_->refs.load(std::memory_order_relaxed) : 0;
    }

    /** Process-wide pool counters, summed over all threads' pools
     *  (tests assert copy-freedom here). Only meaningful while shard
     *  workers are quiescent. */
    static MessagePoolStats stats();

  private:
    /** A pooled payload slot; `next`/`home` serve the arena while
     *  the slot is vacant (sim/slab_pool.hh). */
    struct Slot {
        Message msg;
        std::atomic<std::uint32_t> refs{0};
        Slot *next = nullptr;
        void *home = nullptr;
    };

    struct Pool {
        MessagePoolStats stats;
        SlabArena<Slot> arena{&stats.slabAllocations,
                              &stats.slabBytes};
    };

    /**
     * This thread's pool. Immortal and registered (see
     * sim/pool_registry.hh) so slabs survive shard-thread exit (slots
     * migrate between threads) and stats() can aggregate after
     * workers are joined.
     */
    static Pool &
    localPool()
    {
        // Constant-initialized thread_local: no init-guard call on
        // the hot path (this runs on every ref copy/acquire/release).
        static thread_local Pool *pool;
        Pool *p = pool;
        if (__builtin_expect(p == nullptr, false)) {
            p = new Pool;
            PoolRegistry<Pool>::add(p);
            pool = p;
        }
        return *p;
    }

    static Slot *
    acquireSlot()
    {
        return localPool().arena.acquire();
    }

    static void
    releaseSlot(Slot *slot)
    {
        Pool &p = localPool();
        ++p.stats.releases;
        p.arena.release(slot);
    }

    Slot *slot_ = nullptr;
};

inline MessagePoolStats
MessageRef::stats()
{
    MessagePoolStats total;
    PoolRegistry<Pool>::forEach([&](const Pool &pool) {
        total.acquires += pool.stats.acquires;
        total.releases += pool.stats.releases;
        total.refsShared += pool.stats.refsShared;
        total.slabAllocations += pool.stats.slabAllocations;
        total.slabBytes += pool.stats.slabBytes;
    });
    return total;
}

} // namespace dsp

#endif // DSP_INTERCONNECT_MESSAGE_HH
