/**
 * @file
 * Network message taxonomy for the timing-level simulator.
 *
 * Sizes follow Section 5.1: requests, forwards, retries, invalidations
 * and grants are 8-byte control messages; data responses and
 * writebacks carry 64 B of data plus an 8 B header (72 B).
 */

#ifndef DSP_INTERCONNECT_MESSAGE_HH
#define DSP_INTERCONNECT_MESSAGE_HH

#include <cstdint>

#include "mem/destination_set.hh"
#include "mem/types.hh"

namespace dsp {

/** Unique id of one coherence transaction (miss). */
using TxnId = std::uint64_t;

/** Kinds of messages that cross the interconnect. */
enum class MessageKind : std::uint8_t {
    Request,     ///< coherence request (multicast via ordering point)
    Retry,       ///< directory-reissued request (ordered multicast)
    Forward,     ///< directory-protocol forward to the owner
    Invalidate,  ///< directory-protocol invalidation to a sharer
    Data,        ///< data response (72 B)
    Grant,       ///< dataless upgrade grant (directory protocol)
    Writeback,   ///< dirty eviction to the home (72 B)
};

/** True for kinds that flow through the total-order point. */
constexpr bool
isOrdered(MessageKind kind)
{
    return kind == MessageKind::Request || kind == MessageKind::Retry;
}

/** Wire size in bytes. */
constexpr std::uint32_t
messageBytes(MessageKind kind)
{
    switch (kind) {
      case MessageKind::Data:
      case MessageKind::Writeback:
        return static_cast<std::uint32_t>(dataMessageBytes);
      default:
        return static_cast<std::uint32_t>(requestMessageBytes);
    }
}

/** One network message. */
struct Message {
    MessageKind kind = MessageKind::Request;
    TxnId txn = 0;
    Addr addr = 0;
    Addr pc = 0;
    RequestType type = RequestType::GetShared;
    NodeId src = 0;

    /** Ordered multicasts use `dests`; point-to-point uses `dest`. */
    DestinationSet dests;
    NodeId dest = 0;

    /** Retry attempt (0 = original request). */
    std::uint8_t attempt = 0;

    std::uint32_t
    bytes() const
    {
        return messageBytes(kind);
    }

    BlockId
    block() const
    {
        return blockOf(addr);
    }
};

} // namespace dsp

#endif // DSP_INTERCONNECT_MESSAGE_HH
