/**
 * @file
 * Totally-ordered crossbar interconnect (Section 5.2: "we model a
 * single crossbar switch ... includes contention effects caused by
 * limited link bandwidth").
 *
 * Ordered multicasts (requests, retries) pass through a single
 * serialization point that defines the system-wide total order all
 * three protocols require; deliveries then traverse per-node ingress
 * links. Point-to-point messages (data, forwards, invalidations)
 * bypass the ordering point but share the same links.
 *
 * Uncontended latencies are calibrated to Table 4: one traversal is
 * 50 ns (ordering 25 ns + delivery 25 ns for ordered messages).
 */

#ifndef DSP_INTERCONNECT_CROSSBAR_HH
#define DSP_INTERCONNECT_CROSSBAR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "interconnect/message.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace dsp {

/** Crossbar timing/bandwidth parameters. */
struct CrossbarParams {
    double traversal_ns = 50.0;      ///< uncontended one-way latency
    double link_bytes_per_ns = 10.0; ///< 10 GB/s endpoint links
    double ordering_gap_ns = 0.5;    ///< min spacing at the order point
};

/** Per-kind traffic statistics. */
struct TrafficStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;

    void
    add(std::uint64_t b)
    {
        ++messages;
        bytes += b;
    }
};

/**
 * The interconnect. The owner (System) installs two callbacks:
 * onOrder fires once per ordered message at its serialization tick
 * (where the functional coherence transaction is applied), and
 * onDeliver fires per (message, destination) at its delivery tick.
 *
 * The order handler receives the shared payload handle so the owner
 * can enqueue further zero-copy deliveries (e.g. self-observation of
 * an ordered request) against the same pooled payload.
 */
class OrderedCrossbar
{
  public:
    using OrderHandler = std::function<void(const MessageRef &, Tick)>;
    using DeliverHandler =
        std::function<void(const Message &, NodeId, Tick)>;

    OrderedCrossbar(EventQueue &queue, NodeId num_nodes,
                    const CrossbarParams &params = CrossbarParams{});

    void setOrderHandler(OrderHandler handler);
    void setDeliverHandler(DeliverHandler handler);

    /**
     * Send an ordered multicast (Request/Retry). The message moves
     * into one pooled payload, is serialized at the ordering point,
     * the order handler runs, then every member of msg.dests except
     * the source receives a delivery that shares that payload
     * (self-delivery is free and instantaneous at the order tick --
     * modelled by the order handler itself).
     */
    void sendOrdered(Message msg);

    /** Send a point-to-point message (everything else). */
    void sendDirect(Message msg);

    /** Statistics by message kind (index by MessageKind). */
    const TrafficStats &traffic(MessageKind kind) const;

    /** Total bytes across all kinds. */
    std::uint64_t totalBytes() const;

    /** Zero all statistics (end of warmup). */
    void resetStats();

    NodeId numNodes() const { return numNodes_; }

  private:
    /** Pooled event: one message reaching the ordering point. */
    struct OrderEvent;

    /** Pooled event: one (payload handle, destination) delivery. */
    struct DeliverEvent;

    /** Earliest time dest's ingress link is free; returns delivery
     *  completion tick and books the occupancy. */
    Tick bookIngress(NodeId dest, Tick earliest, std::uint32_t bytes);

    /** Book the source's egress link. */
    Tick bookEgress(NodeId src, Tick earliest, std::uint32_t bytes);

    /** Serialize `msg`, then fan deliveries out to its destinations;
     *  all of them share the one pooled payload. */
    void orderAndFanOut(const MessageRef &msg, Tick order);

    void deliver(const MessageRef &msg, NodeId dest, Tick when);

    EventQueue &queue_;
    NodeId numNodes_;
    CrossbarParams params_;
    Tick halfTraversal_;
    Tick orderGap_;

    OrderHandler onOrder_;
    DeliverHandler onDeliver_;

    Tick lastOrder_ = 0;
    std::vector<Tick> ingressFree_;
    std::vector<Tick> egressFree_;

    std::array<TrafficStats, 7> stats_{};
};

} // namespace dsp

#endif // DSP_INTERCONNECT_CROSSBAR_HH
