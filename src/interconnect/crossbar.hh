/**
 * @file
 * Totally-ordered interconnect (Section 5.2: "we model a single
 * crossbar switch ... includes contention effects caused by limited
 * link bandwidth"), generalized to the two-level hierarchy and the
 * address-interleaved ordering points of docs/machine_topology.md.
 *
 * Ordered multicasts (requests, retries) pass through a serialization
 * point that defines the per-block total order all three protocols
 * require; with H ordering hubs, block b serializes at hub b mod H
 * and the total order is per-hub (blocks never span hubs, so this is
 * exactly the order the protocols need). Deliveries then traverse
 * per-node ingress links. Point-to-point messages (data, forwards,
 * invalidations) bypass the ordering points but share the same
 * endpoint links; their latency depends on whether source and
 * destination share a cluster (see interconnect/topology.hh).
 *
 * Sharding discipline: every piece of crossbar state is owned by
 * exactly one kernel domain and touched only while that domain
 * executes. A node's egress link is booked at send time (the sender's
 * domain); each ordering point's spacing (lastOrder) is applied when
 * the message *arrives* at that hub (the hub's own domain); a node's
 * ingress link is booked when the delivery *arrives* at that node (the
 * destination's domain). Traffic statistics are likewise accumulated
 * per destination node. This keeps the crossbar data-race free under
 * the sharded kernel without a single lock on the hot path.
 *
 * Uncontended flat-machine latencies are calibrated to Table 4: one
 * traversal is 50 ns (ordering 25 ns + delivery 25 ns for ordered
 * messages).
 */

#ifndef DSP_INTERCONNECT_CROSSBAR_HH
#define DSP_INTERCONNECT_CROSSBAR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "interconnect/message.hh"
#include "interconnect/topology.hh"
#include "sim/sharded_kernel.hh"
#include "sim/types.hh"

namespace dsp {

/** Crossbar timing/bandwidth parameters. */
struct CrossbarParams {
    double traversal_ns = 50.0;      ///< uncontended one-way latency
    double link_bytes_per_ns = 10.0; ///< 10 GB/s endpoint links
    double ordering_gap_ns = 0.5;    ///< min spacing at an order point
    /**
     * Fuse hop chains whose schedule is fully determined at send time
     * (fan-out deliveries sharing one tick, contended order-slot and
     * ingress refires) into single pooled events that execute the
     * later hops inline, instead of one calendar insert+pop per hop.
     * Bit-identical figure statistics either way (pinned by the chain
     * -fusion suite); off is the reference path.
     */
    bool fuse_chains = true;
    /** Cluster geometry, per-level legs, and the ordering-hub count;
     *  defaults to the flat single-hub crossbar. */
    TopologyParams topology;
};

/** Per-kind traffic statistics. */
struct TrafficStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;

    void
    add(std::uint64_t b)
    {
        ++messages;
        bytes += b;
    }
};

/**
 * The interconnect. The owner (System) installs two callbacks:
 * onOrder fires once per ordered message at its serialization tick
 * (where the functional coherence transaction is applied), and
 * onDeliver fires per (message, destination) at its delivery tick.
 *
 * The order handler receives the shared payload handle so the owner
 * can stamp the transaction echo into it (it is still exclusive at
 * that point) and enqueue further zero-copy deliveries (e.g.
 * self-observation of an ordered request) against the same pooled
 * payload.
 */
class OrderedCrossbar
{
  public:
    using OrderHandler = std::function<void(const MessageRef &, Tick)>;
    using DeliverHandler =
        std::function<void(const Message &, NodeId, Tick)>;

    /**
     * Sharded-kernel form: `hub_ports` are the ordering points'
     * domains (one per hub, size == params.topology.hubs),
     * `node_ports` the per-node domains deliveries execute in.
     */
    OrderedCrossbar(std::vector<DomainPort> hub_ports,
                    std::vector<DomainPort> node_ports,
                    const CrossbarParams &params = CrossbarParams{});

    /** Standalone form: everything on one queue (unit tests, tools). */
    OrderedCrossbar(EventQueue &queue, NodeId num_nodes,
                    const CrossbarParams &params = CrossbarParams{});

    void setOrderHandler(OrderHandler handler);
    void setDeliverHandler(DeliverHandler handler);

    /**
     * Send an ordered multicast (Request/Retry). The message moves
     * into one pooled payload, is serialized at its block's ordering
     * point, the order handler runs, then every member of msg.dests
     * except the source receives a delivery that shares that payload
     * (self-delivery is free and instantaneous at the order tick --
     * modelled by the order handler itself). Must be called from the
     * source node's domain.
     */
    void sendOrdered(Message msg);

    /** Send a point-to-point message (everything else); must be
     *  called from the source node's domain. */
    void sendDirect(Message msg);

    /** Statistics by message kind, summed over destination nodes.
     *  Counted when the delivery reaches the destination's ingress
     *  link; only meaningful while the kernel is quiescent. */
    TrafficStats traffic(MessageKind kind) const;

    /** Total bytes across all kinds. */
    std::uint64_t totalBytes() const;

    /** Zero all statistics (end of warmup). */
    void resetStats();

    NodeId numNodes() const
    {
        return static_cast<NodeId>(nodes_.size());
    }

    const Topology &topology() const { return topo_; }

    /**
     * Checkpoint link/ordering-point state + traffic counters.
     * In-flight Order/Deliver events are captured separately by the
     * kernel's pending-event enumeration (each serializes itself and
     * is rebuilt via ckptRestoreOrder/ckptRestoreDeliver).
     */
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);

    /** Reconstruct one in-flight crossbar event from its saved
     *  payload (the tag byte has already been consumed). Restored
     *  payloads are independent pooled copies -- sharing between the
     *  original fan-out's deliveries is a memory optimization, not
     *  semantics. */
    Event &ckptRestoreOrder(ckpt::Reader &r);
    Event &ckptRestoreDeliver(ckpt::Reader &r);

    /**
     * Reconstruct an in-flight fused hop chain by re-splitting it:
     * the remaining hops become plain deliveries carrying their
     * original (when, key, domain) coordinates -- hops after the
     * first are scheduled through `kernel` here, the first is
     * returned for the caller's pending-event loop. Splitting keeps
     * snapshots portable across shard counts (a chain requires all
     * its hops on one shard queue, which a different K need not
     * honor); later fan-outs simply re-fuse.
     */
    Event &ckptRestoreChain(ckpt::Reader &r, ShardedKernel &kernel);

  private:
    /** Pooled event: one message reaching (or, once serialized,
     *  leaving) its ordering point. */
    struct OrderEvent;

    /** Pooled event: one (payload handle, destination) delivery --
     *  first firing books the ingress link, a contended delivery
     *  refires at the link-free tick. */
    struct DeliverEvent;

    /** Pooled event: one fan-out's deliveries bound for one shard
     *  queue, all at one tick; later hops execute inline via
     *  EventQueue::chainAdvance with their pre-assigned keys. */
    struct ChainEvent;

    static constexpr std::size_t numKinds = 7;

    /** All state owned by one node's domain, padded so adjacent
     *  nodes on different shards do not false-share. */
    struct alignas(64) NodeState {
        DomainPort port;
        Tick ingressFree = 0;  ///< booked by the destination domain
        Tick egressFree = 0;   ///< booked by the source domain
        std::array<TrafficStats, numKinds> traffic{};
    };

    /** One ordering point: its kernel domain and its spacing state,
     *  touched only while that hub's domain executes. */
    struct alignas(64) HubState {
        DomainPort port;
        Tick lastOrder = 0;
    };

    Tick
    occupancy(std::uint32_t bytes) const
    {
        return nsToTicks(static_cast<double>(bytes) /
                         params_.link_bytes_per_ns);
    }

    /** Message sizes are per-kind constants, so the link-occupancy
     *  division runs once per kind at construction, not once per
     *  send and arrival (a double divide on every hop). */
    Tick
    occupancyOf(MessageKind kind) const
    {
        return occupancyByKind_[static_cast<std::size_t>(kind)];
    }

    /** Serialize `msg` at its hub, then fan deliveries out to its
     *  destinations; all of them share the one pooled payload. */
    void orderAndFanOut(const MessageRef &msg, Tick order);

    /** The fused fan-out: one ChainEvent per destination shard queue
     *  (singleton groups stay plain deliveries), with per-hop keys
     *  allocated in destination order so the key stream is identical
     *  to the unfused fan-out's. */
    void fanOutFused(const MessageRef &msg, Tick deliver);

    /** First arrival of a delivery at `dest`: count it, book the
     *  ingress link, and either fire the handler or refire at the
     *  contended tick. */
    void arriveAtDest(const MessageRef &msg, NodeId dest, Tick now);

    /** Arrival bookkeeping shared by all delivery shapes: count the
     *  traffic, book the ingress link, and deliver if the link is
     *  free. Returns maxTick when delivered, else the contended start
     *  tick the caller must refire at (the link is already booked). */
    Tick ingressArrival(const MessageRef &msg, NodeId dest, Tick now);

    void scheduleDelivery(const MessageRef &msg, NodeId dest,
                          Tick when, bool booked);

    /** Schedule an unbooked delivery at a pre-allocated key (fused
     *  fan-out singletons and chain-capacity spill). */
    void scheduleKeyedDelivery(const MessageRef &msg, NodeId dest,
                               Tick when, std::uint64_t key);

    /** Insert a completed chain at its first hop's coordinates. */
    void scheduleChain(ChainEvent &chain, Tick deliver);

    CrossbarParams params_;
    Topology topo_;
    Tick orderGap_;
    bool fuse_;
    std::array<Tick, numKinds> occupancyByKind_{};

    OrderHandler onOrder_;
    DeliverHandler onDeliver_;

    std::vector<HubState> hubs_;
    std::vector<NodeState> nodes_;
};

} // namespace dsp

#endif // DSP_INTERCONNECT_CROSSBAR_HH
