#include "interconnect/crossbar.hh"

#include <utility>

#include "checkpoint/checkpoint.hh"
#include "sim/logging.hh"

namespace dsp {

/**
 * The two hot event types of the interconnect: both live in pooled
 * slots and carry only a handle to the shared payload, so a
 * fully-loaded network schedules hops without touching the heap and
 * a multicast fan-out never copies the Message.
 */
struct OrderedCrossbar::OrderEvent final : Event {
    OrderEvent(OrderedCrossbar &x, MessageRef &&m, unsigned h, Tick t,
               bool serialized)
        : xbar(x), msg(std::move(m)), hub(h), tick(t),
          serialized(serialized)
    {
    }

    void
    process() override
    {
        if (serialized) {
            // Already holds its ordering slot; run the order handler
            // and fan out at the slot tick.
            xbar.orderAndFanOut(msg, tick);
            return;
        }
        // Arrival at the ordering point: claim the next slot. The
        // spacing state (lastOrder) belongs to this hub's domain, so
        // it is applied here -- at arrival, in deterministic arrival
        // order -- not at send time in some other domain.
        HubState &point = xbar.hubs_[hub];
        Tick slot = std::max(tick, point.lastOrder + xbar.orderGap_);
        point.lastOrder = slot;
        if (slot > tick) {
            point.port.schedule(
                *EventPool<OrderEvent>::instance().acquire(
                    xbar, std::move(msg), hub, slot, true),
                slot, EventPriority::NetworkOrder);
            return;
        }
        xbar.orderAndFanOut(msg, tick);
    }

    void
    release() override
    {
        EventPool<OrderEvent>::instance().release(this);
    }

    void
    ckptSave(ckpt::Writer &w) const override
    {
        w.u8(static_cast<std::uint8_t>(ckpt::EventTag::XbarOrder));
        w.pod(*msg);
        w.u32(hub);
        w.u64(tick);
        w.b(serialized);
    }

    OrderedCrossbar &xbar;
    MessageRef msg;
    unsigned hub;
    Tick tick;
    bool serialized;
};

struct OrderedCrossbar::DeliverEvent final : Event {
    DeliverEvent(OrderedCrossbar &x, const MessageRef &m, NodeId d,
                 Tick w, bool booked)
        : xbar(x), msg(m), dest(d), when(w), booked(booked)
    {
    }

    void
    process() override
    {
        if (!booked) {
            xbar.arriveAtDest(msg, dest, when);
            return;
        }
        if (xbar.onDeliver_)
            xbar.onDeliver_(*msg, dest, when);
    }

    void
    release() override
    {
        EventPool<DeliverEvent>::instance().release(this);
    }

    void
    ckptSave(ckpt::Writer &w) const override
    {
        w.u8(static_cast<std::uint8_t>(ckpt::EventTag::XbarDeliver));
        w.pod(*msg);
        w.u32(dest);
        w.u64(when);
        w.b(booked);
    }

    OrderedCrossbar &xbar;
    MessageRef msg;
    NodeId dest;
    Tick when;
    bool booked;
};

OrderedCrossbar::OrderedCrossbar(std::vector<DomainPort> hub_ports,
                                 std::vector<DomainPort> node_ports,
                                 const CrossbarParams &params)
    : params_(params),
      topo_(static_cast<NodeId>(node_ports.size()), params.topology,
            params.traversal_ns),
      orderGap_(nsToTicks(params.ordering_gap_ns))
{
    dsp_assert(!node_ports.empty() && node_ports.size() <= maxNodes,
               "bad crossbar size %zu", node_ports.size());
    dsp_assert(hub_ports.size() == topo_.hubs(),
               "expected %u hub ports, got %zu", topo_.hubs(),
               hub_ports.size());
    for (std::size_t k = 0; k < numKinds; ++k) {
        occupancyByKind_[k] =
            occupancy(messageBytes(static_cast<MessageKind>(k)));
    }
    hubs_.resize(hub_ports.size());
    for (std::size_t h = 0; h < hub_ports.size(); ++h)
        hubs_[h].port = hub_ports[h];
    nodes_.resize(node_ports.size());
    for (std::size_t n = 0; n < node_ports.size(); ++n)
        nodes_[n].port = node_ports[n];
}

namespace {

std::vector<DomainPort>
standalonePorts(EventQueue &queue, std::size_t count)
{
    return std::vector<DomainPort>(count, DomainPort(queue));
}

} // namespace

OrderedCrossbar::OrderedCrossbar(EventQueue &queue, NodeId num_nodes,
                                 const CrossbarParams &params)
    : OrderedCrossbar(standalonePorts(queue, params.topology.hubs),
                      standalonePorts(queue, num_nodes), params)
{
}

void
OrderedCrossbar::setOrderHandler(OrderHandler handler)
{
    onOrder_ = std::move(handler);
}

void
OrderedCrossbar::setDeliverHandler(DeliverHandler handler)
{
    onDeliver_ = std::move(handler);
}

void
OrderedCrossbar::scheduleDelivery(const MessageRef &msg, NodeId dest,
                                  Tick when, bool booked)
{
    nodes_[dest].port.schedule(
        *EventPool<DeliverEvent>::instance().acquire(*this, msg, dest,
                                                     when, booked),
        when, EventPriority::Delivery);
}

void
OrderedCrossbar::arriveAtDest(const MessageRef &msg, NodeId dest,
                              Tick now)
{
    NodeState &node = nodes_[dest];
    node.traffic[static_cast<std::size_t>(msg->kind)].add(
        msg->bytes());

    // Cut-through: the head is delivered when the link becomes free;
    // the occupancy only delays *later* messages on the same link.
    Tick start = std::max(now, node.ingressFree);
    node.ingressFree = start + occupancyOf(msg->kind);
    if (start > now) {
        scheduleDelivery(msg, dest, start, true);
        return;
    }
    if (onDeliver_)
        onDeliver_(*msg, dest, now);
}

void
OrderedCrossbar::orderAndFanOut(const MessageRef &msg, Tick order)
{
    if (onOrder_)
        onOrder_(msg, order);
    // Fan out to every destination but the source; each delivery
    // shares the one pooled payload and contends for its
    // destination's ingress link on arrival. The hub sits on the
    // global tier, so the downward leg is uniform over destinations.
    Tick deliver = order + topo_.hubHop();
    msg->dests.forEach([&](NodeId dest) {
        if (dest == msg->src)
            return;
        scheduleDelivery(msg, dest, deliver, false);
    });
}

void
OrderedCrossbar::sendOrdered(Message msg)
{
    dsp_assert(isOrdered(msg.kind), "sendOrdered with unordered kind");
    NodeState &src = nodes_[msg.src];
    Tick depart = std::max(src.port.now(), src.egressFree);
    src.egressFree = depart + occupancyOf(msg.kind);

    unsigned hub = topo_.hubOf(msg.block());
    Tick arrive = depart + topo_.hubHop();
    hubs_[hub].port.schedule(
        *EventPool<OrderEvent>::instance().acquire(
            *this, MessageRef(std::move(msg)), hub, arrive, false),
        arrive, EventPriority::NetworkOrder);
}

void
OrderedCrossbar::sendDirect(Message msg)
{
    dsp_assert(!isOrdered(msg.kind), "sendDirect with ordered kind");
    dsp_assert(msg.dest < numNodes(), "bad destination %u", msg.dest);
    NodeState &src = nodes_[msg.src];
    Tick depart = std::max(src.port.now(), src.egressFree);
    src.egressFree = depart + occupancyOf(msg.kind);

    NodeId dest = msg.dest;
    Tick arrive = depart + topo_.directHop(msg.src, dest);
    scheduleDelivery(MessageRef(std::move(msg)), dest, arrive, false);
}

TrafficStats
OrderedCrossbar::traffic(MessageKind kind) const
{
    TrafficStats total;
    for (const NodeState &node : nodes_) {
        const TrafficStats &s =
            node.traffic[static_cast<std::size_t>(kind)];
        total.messages += s.messages;
        total.bytes += s.bytes;
    }
    return total;
}

std::uint64_t
OrderedCrossbar::totalBytes() const
{
    std::uint64_t total = 0;
    for (const NodeState &node : nodes_) {
        for (const TrafficStats &s : node.traffic)
            total += s.bytes;
    }
    return total;
}

void
OrderedCrossbar::resetStats()
{
    for (NodeState &node : nodes_)
        node.traffic.fill(TrafficStats{});
}

void
OrderedCrossbar::ckptSave(ckpt::Writer &w) const
{
    w.section(0x58424152u);  // "XBAR"
    w.u64(hubs_.size());
    for (const HubState &hub : hubs_)
        w.u64(hub.lastOrder);
    w.u64(nodes_.size());
    for (const NodeState &node : nodes_) {
        w.u64(node.ingressFree);
        w.u64(node.egressFree);
        for (const TrafficStats &t : node.traffic) {
            w.u64(t.messages);
            w.u64(t.bytes);
        }
    }
}

void
OrderedCrossbar::ckptLoad(ckpt::Reader &r)
{
    r.section(0x58424152u);
    dsp_assert(r.u64() == hubs_.size(),
               "checkpoint crossbar hub count mismatch");
    for (HubState &hub : hubs_)
        hub.lastOrder = r.u64();
    dsp_assert(r.u64() == nodes_.size(),
               "checkpoint crossbar node count mismatch");
    for (NodeState &node : nodes_) {
        node.ingressFree = r.u64();
        node.egressFree = r.u64();
        for (TrafficStats &t : node.traffic) {
            t.messages = r.u64();
            t.bytes = r.u64();
        }
    }
}

Event &
OrderedCrossbar::ckptRestoreOrder(ckpt::Reader &r)
{
    Message m = r.pod<Message>();
    unsigned hub = r.u32();
    Tick tick = r.u64();
    bool serialized = r.b();
    return *EventPool<OrderEvent>::instance().acquire(
        *this, MessageRef(std::move(m)), hub, tick, serialized);
}

Event &
OrderedCrossbar::ckptRestoreDeliver(ckpt::Reader &r)
{
    Message m = r.pod<Message>();
    NodeId dest = r.u32();
    Tick when = r.u64();
    bool booked = r.b();
    return *EventPool<DeliverEvent>::instance().acquire(
        *this, MessageRef(std::move(m)), dest, when, booked);
}

} // namespace dsp
