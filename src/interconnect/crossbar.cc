#include "interconnect/crossbar.hh"

#include <utility>

#include "sim/logging.hh"

namespace dsp {

/**
 * The two hot event types of the interconnect: both live in pooled
 * slots and carry only a handle to the shared payload, so a
 * fully-loaded network schedules hops without touching the heap and
 * a multicast fan-out never copies the Message.
 */
struct OrderedCrossbar::OrderEvent final : Event {
    OrderEvent(OrderedCrossbar &x, MessageRef &&m, Tick o)
        : xbar(x), msg(std::move(m)), order(o)
    {
    }

    void process() override { xbar.orderAndFanOut(msg, order); }

    void
    release() override
    {
        EventPool<OrderEvent>::instance().release(this);
    }

    OrderedCrossbar &xbar;
    MessageRef msg;
    Tick order;
};

struct OrderedCrossbar::DeliverEvent final : Event {
    DeliverEvent(OrderedCrossbar &x, const MessageRef &m, NodeId d,
                 Tick w)
        : xbar(x), msg(m), dest(d), when(w)
    {
    }

    void
    process() override
    {
        if (xbar.onDeliver_)
            xbar.onDeliver_(*msg, dest, when);
    }

    void
    release() override
    {
        EventPool<DeliverEvent>::instance().release(this);
    }

    OrderedCrossbar &xbar;
    MessageRef msg;
    NodeId dest;
    Tick when;
};

OrderedCrossbar::OrderedCrossbar(EventQueue &queue, NodeId num_nodes,
                                 const CrossbarParams &params)
    : queue_(queue),
      numNodes_(num_nodes),
      params_(params),
      halfTraversal_(nsToTicks(params.traversal_ns / 2.0)),
      orderGap_(nsToTicks(params.ordering_gap_ns)),
      ingressFree_(num_nodes, 0),
      egressFree_(num_nodes, 0)
{
    dsp_assert(num_nodes > 0 && num_nodes <= maxNodes,
               "bad crossbar size %u", num_nodes);
}

void
OrderedCrossbar::setOrderHandler(OrderHandler handler)
{
    onOrder_ = std::move(handler);
}

void
OrderedCrossbar::setDeliverHandler(DeliverHandler handler)
{
    onDeliver_ = std::move(handler);
}

Tick
OrderedCrossbar::bookIngress(NodeId dest, Tick earliest,
                             std::uint32_t bytes)
{
    // Cut-through: the head is delivered when the link becomes free;
    // the occupancy only delays *later* messages on the same link.
    Tick occupancy = nsToTicks(static_cast<double>(bytes) /
                               params_.link_bytes_per_ns);
    Tick start = std::max(earliest, ingressFree_[dest]);
    ingressFree_[dest] = start + occupancy;
    return start;
}

Tick
OrderedCrossbar::bookEgress(NodeId src, Tick earliest,
                            std::uint32_t bytes)
{
    Tick occupancy = nsToTicks(static_cast<double>(bytes) /
                               params_.link_bytes_per_ns);
    Tick start = std::max(earliest, egressFree_[src]);
    egressFree_[src] = start + occupancy;
    return start;
}

void
OrderedCrossbar::deliver(const MessageRef &msg, NodeId dest, Tick when)
{
    stats_[static_cast<std::size_t>(msg->kind)].add(msg->bytes());
    queue_.schedule(*EventPool<DeliverEvent>::instance().acquire(
                        *this, msg, dest, when),
                    when, EventPriority::Delivery);
}

void
OrderedCrossbar::orderAndFanOut(const MessageRef &msg, Tick order)
{
    if (onOrder_)
        onOrder_(msg, order);
    // Fan out to every destination but the source; each delivery
    // contends for the destination's ingress link and shares the one
    // pooled payload.
    msg->dests.forEach([&](NodeId dest) {
        if (dest == msg->src)
            return;
        Tick arrive =
            bookIngress(dest, order + halfTraversal_, msg->bytes());
        deliver(msg, dest, arrive);
    });
}

void
OrderedCrossbar::sendOrdered(Message msg)
{
    dsp_assert(isOrdered(msg.kind), "sendOrdered with unordered kind");
    Tick depart = bookEgress(msg.src, queue_.now(), msg.bytes());
    Tick order = std::max(depart + halfTraversal_,
                          lastOrder_ + orderGap_);
    lastOrder_ = order;

    queue_.schedule(*EventPool<OrderEvent>::instance().acquire(
                        *this, MessageRef(std::move(msg)), order),
                    order, EventPriority::NetworkOrder);
}

void
OrderedCrossbar::sendDirect(Message msg)
{
    dsp_assert(!isOrdered(msg.kind), "sendDirect with ordered kind");
    dsp_assert(msg.dest < numNodes_, "bad destination %u", msg.dest);
    Tick depart = bookEgress(msg.src, queue_.now(), msg.bytes());
    Tick arrive = bookIngress(msg.dest,
                              depart + 2 * halfTraversal_,
                              msg.bytes());
    NodeId dest = msg.dest;
    deliver(MessageRef(std::move(msg)), dest, arrive);
}

const TrafficStats &
OrderedCrossbar::traffic(MessageKind kind) const
{
    return stats_[static_cast<std::size_t>(kind)];
}

std::uint64_t
OrderedCrossbar::totalBytes() const
{
    std::uint64_t total = 0;
    for (const TrafficStats &s : stats_)
        total += s.bytes;
    return total;
}

void
OrderedCrossbar::resetStats()
{
    for (TrafficStats &s : stats_)
        s = TrafficStats{};
}

} // namespace dsp
