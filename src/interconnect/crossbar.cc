#include "interconnect/crossbar.hh"

#include <utility>

#include "checkpoint/checkpoint.hh"
#include "sim/logging.hh"

namespace dsp {

/**
 * The two hot event types of the interconnect: both live in pooled
 * slots and carry only a handle to the shared payload, so a
 * fully-loaded network schedules hops without touching the heap and
 * a multicast fan-out never copies the Message.
 */
struct OrderedCrossbar::OrderEvent final : Event {
    OrderEvent(OrderedCrossbar &x, MessageRef &&m, unsigned h, Tick t,
               bool serialized)
        : xbar(x), msg(std::move(m)), hub(h), tick(t),
          serialized(serialized)
    {
    }

    void
    process() override
    {
        if (serialized) {
            // Already holds its ordering slot; run the order handler
            // and fan out at the slot tick.
            xbar.orderAndFanOut(msg, tick);
            return;
        }
        // Arrival at the ordering point: claim the next slot. The
        // spacing state (lastOrder) belongs to this hub's domain, so
        // it is applied here -- at arrival, in deterministic arrival
        // order -- not at send time in some other domain.
        HubState &point = xbar.hubs_[hub];
        Tick slot = std::max(tick, point.lastOrder + xbar.orderGap_);
        point.lastOrder = slot;
        if (slot > tick) {
            if (xbar.fuse_) {
                // Fused: consume the same key the unfused reschedule
                // would, then either take the slot inline (the gap is
                // tiny, so it usually sits inside this window) or
                // re-insert *ourselves* at it -- either way one pool
                // event serves both hops.
                std::uint64_t key = point.port.allocKey(
                    EventPriority::NetworkOrder);
                tick = slot;
                serialized = true;
                if (point.port.queue().chainAdvance(
                        slot, key, point.port.domain())) {
                    xbar.orderAndFanOut(msg, slot);
                    return;
                }
                point.port.scheduleKeyed(*this, slot, key);
                return;
            }
            point.port.schedule(
                *EventPool<OrderEvent>::instance().acquire(
                    xbar, std::move(msg), hub, slot, true),
                slot, EventPriority::NetworkOrder);
            return;
        }
        xbar.orderAndFanOut(msg, tick);
    }

    void
    release() override
    {
        EventPool<OrderEvent>::instance().release(this);
    }

    void
    ckptSave(ckpt::Writer &w) const override
    {
        w.u8(static_cast<std::uint8_t>(ckpt::EventTag::XbarOrder));
        w.pod(*msg);
        w.u32(hub);
        w.u64(tick);
        w.b(serialized);
    }

    OrderedCrossbar &xbar;
    MessageRef msg;
    unsigned hub;
    Tick tick;
    bool serialized;
};

struct OrderedCrossbar::DeliverEvent final : Event {
    DeliverEvent(OrderedCrossbar &x, const MessageRef &m, NodeId d,
                 Tick w, bool booked)
        : xbar(x), msg(m), dest(d), when(w), booked(booked)
    {
    }

    void
    process() override
    {
        if (!booked) {
            if (xbar.fuse_) {
                Tick start = xbar.ingressArrival(msg, dest, when);
                if (start == maxTick)
                    return;
                // Contended link: same key the unfused refire would
                // consume, then deliver inline at the link-free tick
                // or re-insert ourselves there.
                DomainPort &port = xbar.nodes_[dest].port;
                std::uint64_t key =
                    port.allocKey(EventPriority::Delivery);
                when = start;
                booked = true;
                if (port.queue().chainAdvance(start, key,
                                              port.domain())) {
                    if (xbar.onDeliver_)
                        xbar.onDeliver_(*msg, dest, start);
                    return;
                }
                port.scheduleKeyed(*this, start, key);
                return;
            }
            xbar.arriveAtDest(msg, dest, when);
            return;
        }
        if (xbar.onDeliver_)
            xbar.onDeliver_(*msg, dest, when);
    }

    void
    release() override
    {
        EventPool<DeliverEvent>::instance().release(this);
    }

    void
    ckptSave(ckpt::Writer &w) const override
    {
        w.u8(static_cast<std::uint8_t>(ckpt::EventTag::XbarDeliver));
        w.pod(*msg);
        w.u32(dest);
        w.u64(when);
        w.b(booked);
    }

    OrderedCrossbar &xbar;
    MessageRef msg;
    NodeId dest;
    Tick when;
    bool booked;
};

/**
 * One fan-out's deliveries bound for one shard queue. Every hop
 * shares the fan-out's delivery tick and carries the key the unfused
 * fan-out would have assigned it, so the calendar sees one insert and
 * one pop where it used to see one per destination; the later hops
 * execute inline through chainAdvance (which refuses -- and the chain
 * re-inserts itself -- whenever an unrelated event orders between two
 * hops or the window ends, reproducing the unfused total order
 * exactly).
 */
struct OrderedCrossbar::ChainEvent final : Event {
    /** Hops per chain; larger fan-outs split into several chains
     *  (still one insert+pop per maxHops destinations). */
    static constexpr unsigned maxHops = 8;

    struct Hop {
        NodeId dest;
        std::uint64_t key;
        std::uint16_t domain;
    };

    ChainEvent(OrderedCrossbar &x, const MessageRef &m, Tick w)
        : xbar(x), msg(m), when(w)
    {
    }

    void
    addHop(NodeId dest, std::uint64_t key, std::uint16_t domain,
           const EventQueue *q)
    {
        dsp_assert(count < maxHops, "chain overflow");
        // The fusion-legality contract: every hop of a chain must be
        // owned by the one shard queue the chain is scheduled on.
        dsp_assert(queue == nullptr || queue == q,
                   "fused chain spans shard queues");
        queue = q;
        hops[count++] = Hop{dest, key, domain};
    }

    void
    process() override
    {
        for (;;) {
            xbar.arriveAtDest(msg, hops[next].dest, when);
            ++next;
            if (next == count)
                return;  // the queue releases us
            const Hop &hop = hops[next];
            DomainPort &port = xbar.nodes_[hop.dest].port;
            if (!port.queue().chainAdvance(when, hop.key,
                                           hop.domain)) {
                // Something orders before this hop (or the window
                // ends here): hand the rest back to the calendar.
                port.scheduleKeyed(*this, when, hop.key);
                return;
            }
        }
    }

    void
    release() override
    {
        EventPool<ChainEvent>::instance().release(this);
    }

    void
    ckptSave(ckpt::Writer &w) const override
    {
        // Only the hops still to run; restore re-splits them into
        // plain deliveries (see ckptRestoreChain).
        w.u8(static_cast<std::uint8_t>(ckpt::EventTag::XbarChain));
        w.pod(*msg);
        w.u64(when);
        w.u32(count - next);
        for (unsigned i = next; i < count; ++i) {
            w.u32(hops[i].dest);
            w.u64(hops[i].key);
            w.u16(hops[i].domain);
        }
    }

    OrderedCrossbar &xbar;
    MessageRef msg;
    Tick when;
    unsigned next = 0;
    unsigned count = 0;
    const EventQueue *queue = nullptr;
    std::array<Hop, maxHops> hops;
};

OrderedCrossbar::OrderedCrossbar(std::vector<DomainPort> hub_ports,
                                 std::vector<DomainPort> node_ports,
                                 const CrossbarParams &params)
    : params_(params),
      topo_(static_cast<NodeId>(node_ports.size()), params.topology,
            params.traversal_ns),
      orderGap_(nsToTicks(params.ordering_gap_ns)),
      fuse_(params.fuse_chains)
{
    dsp_assert(!node_ports.empty() && node_ports.size() <= maxNodes,
               "bad crossbar size %zu", node_ports.size());
    dsp_assert(hub_ports.size() == topo_.hubs(),
               "expected %u hub ports, got %zu", topo_.hubs(),
               hub_ports.size());
    for (std::size_t k = 0; k < numKinds; ++k) {
        occupancyByKind_[k] =
            occupancy(messageBytes(static_cast<MessageKind>(k)));
    }
    hubs_.resize(hub_ports.size());
    for (std::size_t h = 0; h < hub_ports.size(); ++h)
        hubs_[h].port = hub_ports[h];
    nodes_.resize(node_ports.size());
    for (std::size_t n = 0; n < node_ports.size(); ++n)
        nodes_[n].port = node_ports[n];
}

namespace {

std::vector<DomainPort>
standalonePorts(EventQueue &queue, std::size_t count)
{
    return std::vector<DomainPort>(count, DomainPort(queue));
}

} // namespace

OrderedCrossbar::OrderedCrossbar(EventQueue &queue, NodeId num_nodes,
                                 const CrossbarParams &params)
    : OrderedCrossbar(standalonePorts(queue, params.topology.hubs),
                      standalonePorts(queue, num_nodes), params)
{
}

void
OrderedCrossbar::setOrderHandler(OrderHandler handler)
{
    onOrder_ = std::move(handler);
}

void
OrderedCrossbar::setDeliverHandler(DeliverHandler handler)
{
    onDeliver_ = std::move(handler);
}

void
OrderedCrossbar::scheduleDelivery(const MessageRef &msg, NodeId dest,
                                  Tick when, bool booked)
{
    nodes_[dest].port.schedule(
        *EventPool<DeliverEvent>::instance().acquire(*this, msg, dest,
                                                     when, booked),
        when, EventPriority::Delivery);
}

Tick
OrderedCrossbar::ingressArrival(const MessageRef &msg, NodeId dest,
                                Tick now)
{
    NodeState &node = nodes_[dest];
    node.traffic[static_cast<std::size_t>(msg->kind)].add(
        msg->bytes());

    // Cut-through: the head is delivered when the link becomes free;
    // the occupancy only delays *later* messages on the same link.
    Tick start = std::max(now, node.ingressFree);
    node.ingressFree = start + occupancyOf(msg->kind);
    if (start > now)
        return start;
    if (onDeliver_)
        onDeliver_(*msg, dest, now);
    return maxTick;
}

void
OrderedCrossbar::arriveAtDest(const MessageRef &msg, NodeId dest,
                              Tick now)
{
    Tick start = ingressArrival(msg, dest, now);
    if (start != maxTick)
        scheduleDelivery(msg, dest, start, true);
}

void
OrderedCrossbar::orderAndFanOut(const MessageRef &msg, Tick order)
{
    if (onOrder_)
        onOrder_(msg, order);
    // Fan out to every destination but the source; each delivery
    // shares the one pooled payload and contends for its
    // destination's ingress link on arrival. The hub sits on the
    // global tier, so the downward leg is uniform over destinations.
    Tick deliver = order + topo_.hubHop();
    if (fuse_) {
        fanOutFused(msg, deliver);
        return;
    }
    msg->dests.forEach([&](NodeId dest) {
        if (dest == msg->src)
            return;
        scheduleDelivery(msg, dest, deliver, false);
    });
}

void
OrderedCrossbar::fanOutFused(const MessageRef &msg, Tick deliver)
{
    // Keys are allocated in destination order, exactly as the unfused
    // fan-out would allocate them, then hops are grouped by owning
    // shard queue in first-appearance order. A group of one stays a
    // plain keyed delivery; a larger group becomes a ChainEvent -- one
    // calendar insert+pop for up to maxHops same-tick deliveries. The
    // grouping never changes behaviour (every hop keeps its unfused
    // (tick, key) coordinates), only how many calendar operations
    // carry the fan-out.
    struct Group {
        const EventQueue *queue;
        ChainEvent *chain;
        NodeId firstDest;
        std::uint64_t firstKey;
        std::uint16_t firstDomain;
    };
    // One slot per distinct shard queue among the destinations; a
    // fan-out can touch at most one queue per shard. Deliberately
    // uninitialized: zeroing all 64 slots per fan-out costs more than
    // the fusion saves on small destination sets, and every field of
    // a slot is written when the slot is claimed.
    Group groups[64];
    std::size_t numGroups = 0;
    constexpr std::size_t maxGroups = sizeof(groups) / sizeof(groups[0]);

    const NodeId src = msg->src;
    msg->dests.forEach([&](NodeId dest) {
        if (dest == src)
            return;
        DomainPort &port = nodes_[dest].port;
        const std::uint64_t key =
            port.allocKey(EventPriority::Delivery);
        const EventQueue *q = &port.queue();

        Group *g = nullptr;
        for (std::size_t i = 0; i < numGroups; ++i) {
            if (groups[i].queue == q) {
                g = &groups[i];
                break;
            }
        }
        if (!g) {
            if (numGroups == maxGroups) {
                // More distinct queues than slots (never in practice:
                // it needs > 64 shards in one fan-out). Degrade to a
                // plain delivery; coordinates are unchanged.
                scheduleKeyedDelivery(msg, dest, deliver, key);
                return;
            }
            g = &groups[numGroups++];
            g->queue = q;
            g->chain = nullptr;
            g->firstDest = dest;
            g->firstKey = key;
            g->firstDomain = port.domain();
            return;
        }
        if (g->chain && g->chain->count == ChainEvent::maxHops) {
            // Chain full: commit it and let this hop seed the next
            // chain on the same queue.
            scheduleChain(*g->chain, deliver);
            g->chain = nullptr;
            g->firstDest = dest;
            g->firstKey = key;
            g->firstDomain = port.domain();
            return;
        }
        if (!g->chain) {
            g->chain = EventPool<ChainEvent>::instance().acquire(
                *this, msg, deliver);
            g->chain->addHop(g->firstDest, g->firstKey,
                             g->firstDomain, q);
        }
        g->chain->addHop(dest, key, port.domain(), q);
    });

    for (std::size_t i = 0; i < numGroups; ++i) {
        Group &g = groups[i];
        if (g.chain) {
            scheduleChain(*g.chain, deliver);
        } else {
            scheduleKeyedDelivery(msg, g.firstDest, deliver,
                                  g.firstKey);
        }
    }
}

void
OrderedCrossbar::scheduleKeyedDelivery(const MessageRef &msg,
                                       NodeId dest, Tick when,
                                       std::uint64_t key)
{
    nodes_[dest].port.scheduleKeyed(
        *EventPool<DeliverEvent>::instance().acquire(*this, msg, dest,
                                                     when, false),
        when, key);
}

void
OrderedCrossbar::scheduleChain(ChainEvent &chain, Tick deliver)
{
    // The chain pops at its first hop's coordinates; later hops run
    // inline from there (or re-insert the chain at their own key).
    const ChainEvent::Hop &head = chain.hops[0];
    nodes_[head.dest].port.scheduleKeyed(chain, deliver, head.key);
}

void
OrderedCrossbar::sendOrdered(Message msg)
{
    dsp_assert(isOrdered(msg.kind), "sendOrdered with unordered kind");
    NodeState &src = nodes_[msg.src];
    Tick depart = std::max(src.port.now(), src.egressFree);
    src.egressFree = depart + occupancyOf(msg.kind);

    unsigned hub = topo_.hubOf(msg.block());
    Tick arrive = depart + topo_.hubHop();
    hubs_[hub].port.schedule(
        *EventPool<OrderEvent>::instance().acquire(
            *this, MessageRef(std::move(msg)), hub, arrive, false),
        arrive, EventPriority::NetworkOrder);
}

void
OrderedCrossbar::sendDirect(Message msg)
{
    dsp_assert(!isOrdered(msg.kind), "sendDirect with ordered kind");
    dsp_assert(msg.dest < numNodes(), "bad destination %u", msg.dest);
    NodeState &src = nodes_[msg.src];
    Tick depart = std::max(src.port.now(), src.egressFree);
    src.egressFree = depart + occupancyOf(msg.kind);

    NodeId dest = msg.dest;
    Tick arrive = depart + topo_.directHop(msg.src, dest);
    scheduleDelivery(MessageRef(std::move(msg)), dest, arrive, false);
}

TrafficStats
OrderedCrossbar::traffic(MessageKind kind) const
{
    TrafficStats total;
    for (const NodeState &node : nodes_) {
        const TrafficStats &s =
            node.traffic[static_cast<std::size_t>(kind)];
        total.messages += s.messages;
        total.bytes += s.bytes;
    }
    return total;
}

std::uint64_t
OrderedCrossbar::totalBytes() const
{
    std::uint64_t total = 0;
    for (const NodeState &node : nodes_) {
        for (const TrafficStats &s : node.traffic)
            total += s.bytes;
    }
    return total;
}

void
OrderedCrossbar::resetStats()
{
    for (NodeState &node : nodes_)
        node.traffic.fill(TrafficStats{});
}

void
OrderedCrossbar::ckptSave(ckpt::Writer &w) const
{
    w.section(0x58424152u);  // "XBAR"
    w.u64(hubs_.size());
    for (const HubState &hub : hubs_)
        w.u64(hub.lastOrder);
    w.u64(nodes_.size());
    for (const NodeState &node : nodes_) {
        w.u64(node.ingressFree);
        w.u64(node.egressFree);
        for (const TrafficStats &t : node.traffic) {
            w.u64(t.messages);
            w.u64(t.bytes);
        }
    }
}

void
OrderedCrossbar::ckptLoad(ckpt::Reader &r)
{
    r.section(0x58424152u);
    dsp_assert(r.u64() == hubs_.size(),
               "checkpoint crossbar hub count mismatch");
    for (HubState &hub : hubs_)
        hub.lastOrder = r.u64();
    dsp_assert(r.u64() == nodes_.size(),
               "checkpoint crossbar node count mismatch");
    for (NodeState &node : nodes_) {
        node.ingressFree = r.u64();
        node.egressFree = r.u64();
        for (TrafficStats &t : node.traffic) {
            t.messages = r.u64();
            t.bytes = r.u64();
        }
    }
}

Event &
OrderedCrossbar::ckptRestoreOrder(ckpt::Reader &r)
{
    Message m = r.pod<Message>();
    unsigned hub = r.u32();
    Tick tick = r.u64();
    bool serialized = r.b();
    return *EventPool<OrderEvent>::instance().acquire(
        *this, MessageRef(std::move(m)), hub, tick, serialized);
}

Event &
OrderedCrossbar::ckptRestoreDeliver(ckpt::Reader &r)
{
    Message m = r.pod<Message>();
    NodeId dest = r.u32();
    Tick when = r.u64();
    bool booked = r.b();
    return *EventPool<DeliverEvent>::instance().acquire(
        *this, MessageRef(std::move(m)), dest, when, booked);
}

Event &
OrderedCrossbar::ckptRestoreChain(ckpt::Reader &r,
                                  ShardedKernel &kernel)
{
    Message m = r.pod<Message>();
    Tick when = r.u64();
    std::uint32_t remaining = r.u32();
    dsp_assert(remaining >= 1, "empty fused chain in checkpoint");

    MessageRef msg{std::move(m)};
    // Hop 0 rides the caller's pending-event record (the chain was
    // saved at hop 0's coordinates); the rest re-insert themselves
    // here at their own saved (when, key, domain). All of them come
    // back as plain unbooked deliveries -- a different shard count
    // need not keep them on one queue, and later fan-outs re-fuse.
    NodeId dest0 = r.u32();
    r.u64();  // hop 0's key: re-supplied by the pending-event record
    r.u16();  // hop 0's domain: likewise
    Event &head = *EventPool<DeliverEvent>::instance().acquire(
        *this, msg, dest0, when, false);
    for (std::uint32_t i = 1; i < remaining; ++i) {
        NodeId dest = r.u32();
        std::uint64_t key = r.u64();
        std::uint16_t domain = r.u16();
        kernel.ckptSchedule(*EventPool<DeliverEvent>::instance()
                                 .acquire(*this, msg, dest, when,
                                          false),
                            domain, when, key);
    }
    return head;
}

} // namespace dsp
