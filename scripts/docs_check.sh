#!/usr/bin/env bash
#
# Docs hygiene, run by CI and scripts/check.sh:
#
#   1. Link check: every relative markdown link in README.md and
#      docs/*.md must point at a file that exists (anchors stripped;
#      http(s) links are not fetched).
#   2. Coverage check: every top-level subsystem directory under src/
#      must be mentioned in the docs index (docs/README.md), so new
#      subsystems cannot land undocumented.
#
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

# --- 1. relative-link check -----------------------------------------
for page in README.md docs/*.md; do
    dir="$(dirname "$page")"
    # Markdown inline links: [text](target). One per line via grep -o.
    while IFS= read -r target; do
        case "$target" in
          http://*|https://*|mailto:*) continue ;;
        esac
        target="${target%%#*}"          # strip anchor
        [[ -z "$target" ]] && continue  # pure-anchor link
        if [[ ! -e "$dir/$target" ]]; then
            echo "docs_check: $page: broken link -> $target" >&2
            status=1
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$page" \
             | sed 's/^\[[^]]*\](//; s/)$//')
done

# --- 2. subsystem coverage in the docs index ------------------------
index=docs/README.md
if [[ ! -f "$index" ]]; then
    echo "docs_check: missing $index" >&2
    exit 1
fi
for dir in src/*/; do
    subsystem="$(basename "$dir")"
    if ! grep -q "src/$subsystem" "$index"; then
        echo "docs_check: src/$subsystem is not mentioned in $index" \
             "-- document new subsystems in the index" >&2
        status=1
    fi
done

if [[ "$status" -eq 0 ]]; then
    echo "docs_check: links OK, all $(ls -d src/*/ | wc -l)" \
         "subsystems covered by $index"
fi
exit $status
