#!/usr/bin/env bash
#
# Sweep-driver crash-tolerance smoke (used by check.sh and CI):
#
#   1. fault-free reference sweep of a small 4-job matrix
#   2. the same matrix under seeded fault injection (crashes, hangs,
#      garbage rows) with a single-attempt budget -- must terminate,
#      exit 2, and journal exactly the expected deterministic set of
#      failed rows
#   3. resume without faults -- must complete the matrix, exit 0, and
#      produce an aggregate table byte-identical to the reference
#
# The fault pattern is a pure function of (job id, attempt, seed), so
# the failed-row count below is a constant of this config; if it
# drifts, either the job-id format or the fault hash changed -- both
# are resume-compatibility breaks that deserve a loud failure.
#
# Env: SWEEP_BIN (default ./build/bench_sweep), SWEEP_WORK (scratch
# dir, default build/sweep_smoke).
#
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${SWEEP_BIN:-./build/bench_sweep}"
WORK="${SWEEP_WORK:-build/sweep_smoke}"
FAULTS="crash=0.4,hang=0.15,garbage=0.2,seed=11"
EXPECT_FAILED=3

mkdir -p "$WORK"
rm -f "$WORK"/*.jsonl "$WORK"/*.table
CONF="$WORK/smoke.conf"
cat > "$CONF" <<'EOF'
# sweep_smoke matrix: 2 seeds x 2 shard counts, tiny run lengths
workload = barnes
protocol = multicast
policy = owner-group
nodes = 4
seed = 1..2
threads = 1, 2
warmup_misses = 100
warmup_instr = 200
measure_instr = $(warmup_instr) * 10
EOF

echo "sweep_smoke: fault-free reference sweep"
"$BIN" --config "$CONF" --journal "$WORK/ref.jsonl" \
    --table "$WORK/ref.table" --fresh --no-fsync --jobs 2 > /dev/null

echo "sweep_smoke: faulted sweep ($FAULTS, single attempt)"
rc=0
SWEEP_FAULT_INJECT="$FAULTS" \
    "$BIN" --config "$CONF" --journal "$WORK/fault.jsonl" \
    --table "$WORK/fault.table" --fresh --no-fsync --jobs 2 \
    --retries 1 --timeout 5 --backoff 0.01 > /dev/null || rc=$?
if [[ "$rc" -ne 2 ]]; then
    echo "sweep_smoke: faulted sweep exited $rc, expected 2" \
         "(completed-with-failed-rows)" >&2
    exit 1
fi

FAILED=$(grep -c '"status":"failed"' "$WORK/fault.jsonl" || true)
if [[ "$FAILED" -ne "$EXPECT_FAILED" ]]; then
    echo "sweep_smoke: $FAILED failed row(s) journaled, expected" \
         "$EXPECT_FAILED -- the deterministic fault pattern changed" >&2
    exit 1
fi

echo "sweep_smoke: resuming without faults"
rc=0
"$BIN" --config "$CONF" --journal "$WORK/fault.jsonl" \
    --table "$WORK/resumed.table" --no-fsync --jobs 2 \
    > "$WORK/resume.out" || rc=$?
if [[ "$rc" -ne 0 ]]; then
    echo "sweep_smoke: resume exited $rc, expected 0" >&2
    cat "$WORK/resume.out" >&2
    exit 1
fi
if ! grep -q "skipped (resumed)" "$WORK/resume.out"; then
    echo "sweep_smoke: resume did not report skipped jobs" >&2
    exit 1
fi

if ! diff "$WORK/ref.table" "$WORK/resumed.table"; then
    echo "sweep_smoke: RESUME DETERMINISM FAILURE -- crash+resumed" \
         "aggregate table differs from the fault-free table" >&2
    exit 1
fi

echo "sweep_smoke: fresh == crash+resumed aggregate table" \
     "($EXPECT_FAILED injected failures recovered) OK"
