#!/usr/bin/env bash
#
# Checkpoint/restore end-to-end smoke (used by check.sh and CI), three
# legs over the deterministic snapshot machinery (docs/checkpoint.md):
#
#   1. kill-and-resume: a bench_perf_hotpath run SIGKILLs itself right
#      after its 2nd snapshot (DSP_CKPT_KILL_AFTER); rerunning with
#      --restore must resume from the newest valid snapshot and emit
#      figure statistics byte-identical to an uninterrupted run.
#      Both sides run with checkpointing ON: each snapshot stop ends a
#      kernel lookahead window, so a checkpoint-free run legitimately
#      differs in windows/crossings (and only there).
#   2. nearest-checkpoint violation replay: a mutated oracle run with
#      checkpointing on dies with exit 77 and a DSP-REPRO bundle whose
#      "checkpoint" field names the newest pre-violation snapshot;
#      replaying with --restore-from <that> --stop-at <bundle stop_at>
#      must re-raise the byte-identical DSP-VIOLATION line while
#      executing only the suffix.
#   3. sweep kill+resume: the committed configs/nightly.conf (verify
#      =on row, checkpointing enabled) under seeded crash injection,
#      then resumed fault-free -- the resumed aggregate table must be
#      byte-identical to an uninterrupted reference sweep, with the
#      killed jobs restoring from their per-job snapshots.
#
# Env: HOTPATH_BIN (default ./build/bench_perf_hotpath), SWEEP_BIN
# (default ./build/bench_sweep), CKPT_WORK (scratch dir, default
# build/ckpt_smoke).
#
set -euo pipefail
cd "$(dirname "$0")/.."

HOTPATH="${HOTPATH_BIN:-./build/bench_perf_hotpath}"
SWEEP="${SWEEP_BIN:-./build/bench_sweep}"
WORK="${CKPT_WORK:-build/ckpt_smoke}"

rm -rf "$WORK"
mkdir -p "$WORK"

# The deterministic figure statistics of a bench JSON (the same
# extraction check.sh's shard-count cross-check uses); wall-clock and
# events/sec are excluded by construction.
extract_det() {
    awk -F: '
        /"events"|"misses"|"retries"|"traffic_bytes"|"avg_miss_latency_ns"|"sim_runtime_ms"|"l0_hit_rate"|"touched_words_per_access"/ {
            gsub(/[ ",]/, "", $1); gsub(/[ ,]/, "", $2)
            print $1, $2
        }' "$1"
}

RUN_ARGS=(--config multicast-owner-group --measure 20000 --warmup 5000
          --checkpoint-every 20000000)

# --- 1. kill-and-resume ----------------------------------------------
echo "checkpoint_smoke: uninterrupted reference (checkpointing on)"
"$HOTPATH" "${RUN_ARGS[@]}" --checkpoint-dir "$WORK/ref_ckpts" \
    --out "$WORK/ref.json" > /dev/null 2> "$WORK/ref.log"
WRITES=$(grep -c '^DSP-CKPT {"op":"write"' "$WORK/ref.log" || true)
if [[ "$WRITES" -lt 2 ]]; then
    echo "checkpoint_smoke: reference run wrote $WRITES snapshot(s)," \
         "need >= 2 for the kill-after-2nd leg -- cadence out of tune" \
         "with the run length" >&2
    exit 1
fi

echo "checkpoint_smoke: SIGKILL after 2nd snapshot, then --restore"
rc=0
DSP_CKPT_KILL_AFTER=2 \
    "$HOTPATH" "${RUN_ARGS[@]}" --checkpoint-dir "$WORK/kill_ckpts" \
    --out "$WORK/killed.json" > /dev/null 2> "$WORK/kill.log" || rc=$?
if [[ "$rc" -ne 137 ]]; then
    echo "checkpoint_smoke: self-kill run exited $rc, expected 137" \
         "(SIGKILL)" >&2
    cat "$WORK/kill.log" >&2
    exit 1
fi
if [[ -e "$WORK/killed.json" ]]; then
    echo "checkpoint_smoke: SIGKILLed run left a bench JSON -- the" \
         "kill fired after the run finished instead of mid-flight" >&2
    exit 1
fi
rc=0
DSP_CKPT_KILL_AFTER=2 \
    "$HOTPATH" "${RUN_ARGS[@]}" --checkpoint-dir "$WORK/kill_ckpts" \
    --restore --out "$WORK/resumed.json" > /dev/null \
    2> "$WORK/resume.log" || rc=$?
if [[ "$rc" -ne 0 ]]; then
    echo "checkpoint_smoke: restored run exited $rc" >&2
    cat "$WORK/resume.log" >&2
    exit 1
fi
if ! grep -q '^DSP-CKPT {"op":"restore"' "$WORK/resume.log"; then
    echo "checkpoint_smoke: restored run never restored (no DSP-CKPT" \
         "restore line) -- it silently reran from scratch" >&2
    exit 1
fi
# Guard the guard: the extraction must keep finding every field.
for f in "$WORK/ref.json" "$WORK/resumed.json"; do
    n="$(extract_det "$f" | wc -l)"
    if [[ "$n" -ne 8 ]]; then
        echo "checkpoint_smoke: determinism extraction found $n/8" \
             "fields in $f -- extractor out of sync" >&2
        exit 1
    fi
done
if ! diff <(extract_det "$WORK/ref.json") \
          <(extract_det "$WORK/resumed.json"); then
    echo "checkpoint_smoke: RESTORE DETERMINISM FAILURE --" \
         "kill+resume diverged from the uninterrupted run" >&2
    exit 1
fi
echo "checkpoint_smoke: kill+resume figure stats byte-identical"

# --- 2. nearest-checkpoint violation replay --------------------------
echo "checkpoint_smoke: mutated run with snapshots, then bounded" \
     "replay from the bundle's checkpoint"
rc=0
"$HOTPATH" --config multicast-owner-group --measure 20000 \
    --warmup 5000 --mutate drop-inval --checkpoint-every 5000000 \
    --checkpoint-dir "$WORK/viol_ckpts" > /dev/null \
    2> "$WORK/viol.log" || rc=$?
if [[ "$rc" -ne 77 ]]; then
    echo "checkpoint_smoke: mutated run exited $rc, expected 77" >&2
    cat "$WORK/viol.log" >&2
    exit 1
fi
VIOLATION=$(grep -m1 '^DSP-VIOLATION ' "$WORK/viol.log" || true)
STOP_AT=$(grep -m1 -o '"stop_at":[0-9]*' "$WORK/viol.log" | cut -d: -f2)
CKPT=$(grep -m1 -o '"checkpoint":"[^"]*"' "$WORK/viol.log" \
       | sed 's/^"checkpoint":"//; s/"$//')
if [[ -z "$VIOLATION" || -z "$STOP_AT" ]]; then
    echo "checkpoint_smoke: mutated run printed no violation/bundle" >&2
    cat "$WORK/viol.log" >&2
    exit 1
fi
if [[ -z "$CKPT" || ! -f "$CKPT" ]]; then
    echo "checkpoint_smoke: repro bundle names no usable checkpoint" \
         "('$CKPT') -- no snapshot landed before the violation" >&2
    cat "$WORK/viol.log" >&2
    exit 1
fi
rc=0
"$HOTPATH" --config multicast-owner-group --measure 20000 \
    --warmup 5000 --mutate drop-inval --stop-at "$STOP_AT" \
    --restore-from "$CKPT" > /dev/null 2> "$WORK/replay.log" || rc=$?
if [[ "$rc" -ne 77 ]]; then
    echo "checkpoint_smoke: checkpointed replay exited $rc," \
         "expected 77" >&2
    cat "$WORK/replay.log" >&2
    exit 1
fi
if ! grep -q '^DSP-CKPT {"op":"restore"' "$WORK/replay.log"; then
    echo "checkpoint_smoke: replay never restored the snapshot" >&2
    exit 1
fi
REPLAYED=$(grep -m1 '^DSP-VIOLATION ' "$WORK/replay.log" || true)
if [[ "$VIOLATION" != "$REPLAYED" ]]; then
    echo "checkpoint_smoke: REPLAY DIVERGENCE from the nearest" \
         "checkpoint:" >&2
    echo "  full run: $VIOLATION" >&2
    echo "  replay:   $REPLAYED" >&2
    exit 1
fi
echo "checkpoint_smoke: suffix replay re-raised the identical" \
     "violation (checkpoint tick $(grep -m1 -o \
     '"checkpoint_tick":[0-9]*' "$WORK/viol.log" | cut -d: -f2))"

# --- 3. sweep kill+resume over the committed nightly matrix ----------
echo "checkpoint_smoke: nightly sweep reference (no faults)"
rm -rf build/nightly_ckpts
"$SWEEP" --config configs/nightly.conf \
    --journal "$WORK/nightly_ref.jsonl" \
    --table "$WORK/nightly_ref.table" --fresh --no-fsync --jobs 2 \
    > /dev/null

echo "checkpoint_smoke: nightly sweep under crash+hang injection"
rm -rf build/nightly_ckpts
rc=0
SWEEP_FAULT_INJECT="crash=0.4,hang=0.25,seed=7" \
    "$SWEEP" --config configs/nightly.conf \
    --journal "$WORK/nightly.jsonl" \
    --table "$WORK/nightly.table" --fresh --no-fsync --jobs 2 \
    --retries 1 --timeout 10 --backoff 0.01 > /dev/null || rc=$?
if [[ "$rc" -ne 2 ]]; then
    echo "checkpoint_smoke: faulted nightly sweep exited $rc," \
         "expected 2 (completed with failed rows)" >&2
    exit 1
fi
if ! ls build/nightly_ckpts/*/ckpt_*.dsp > /dev/null 2>&1; then
    echo "checkpoint_smoke: nightly jobs wrote no snapshots --" \
         "checkpoint_every/checkpoint_dir not reaching the workers" >&2
    exit 1
fi

echo "checkpoint_smoke: resuming the nightly sweep fault-free"
"$SWEEP" --config configs/nightly.conf \
    --journal "$WORK/nightly.jsonl" \
    --table "$WORK/nightly_resumed.table" --no-fsync --jobs 2 \
    > "$WORK/nightly_resume.out"
if ! grep -q "skipped (resumed)" "$WORK/nightly_resume.out"; then
    echo "checkpoint_smoke: nightly resume did not skip completed" \
         "rows" >&2
    exit 1
fi
if ! diff "$WORK/nightly_ref.table" "$WORK/nightly_resumed.table"; then
    echo "checkpoint_smoke: SWEEP RESUME DETERMINISM FAILURE --" \
         "kill+resumed nightly table differs from the reference" >&2
    exit 1
fi
echo "checkpoint_smoke: nightly kill+resume aggregate table" \
     "byte-identical OK"
