#!/usr/bin/env bash
#
# Tier-1 verification plus the hot-path perf bench. Run from anywhere;
# everything happens in the repo root. This is what CI runs, and what
# every PR should pass locally:
#
#   1. configure + build (Release, warnings-as-errors for src/)
#   2. ctest unit suite
#   3. bench_perf_hotpath with a small --measure, checked against the
#      committed BENCH_hotpath.json: a >15% events/sec regression on
#      any config fails the run. Pass --allow-perf-regression (or set
#      ALLOW_PERF_REGRESSION=1) for intentional perf changes.
#   4. sharded-kernel determinism cross-check: the Figure-7 multicast
#      config is run with --threads 1 and --threads 4 and every
#      deterministic figure statistic must match bit-for-bit -- first
#      on the paper's 16-node machine, then on a 64-node hierarchical
#      4-hub machine (the configs/fig6_scaling.conf shape).
#   5. sweep-driver crash-tolerance smoke (scripts/sweep_smoke.sh):
#      a seeded fault-injection sweep must terminate with the expected
#      failed rows, and resuming it must produce an aggregate table
#      byte-identical to a fault-free sweep.
#   6. coherence-oracle legs: all four bench configs shadowed by the
#      runtime oracle must stay violation-free; an injected protocol
#      mutation must die with exit 77 and a repro bundle whose bounded
#      replay (--stop-at) reproduces the byte-identical violation
#      line. The perf-guarded runs above stay oracle-off, so the
#      events/sec bar keeps holding the oracle's zero-overhead claim.
#   7. docs hygiene (scripts/docs_check.sh): markdown links resolve
#      and every src/ subsystem appears in the docs index.
#
# Bench JSONs are validated (python3, else jq, else a warning) before
# any regression grep reads them, so a truncated or interrupted file
# fails loudly instead of feeding the guards nonsense.
#
# BENCH_hotpath.json is only rewritten at the very end, after *every*
# guard has passed (or been explicitly waived), so a failed run can
# never clobber the committed baseline with the numbers that failed.
#
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOW_PERF_REGRESSION="${ALLOW_PERF_REGRESSION:-0}"
for arg in "$@"; do
    case "$arg" in
      --allow-perf-regression) ALLOW_PERF_REGRESSION=1 ;;
      *) echo "check.sh: unknown option '$arg'" >&2; exit 2 ;;
    esac
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B build -S .
cmake --build build -j"$JOBS"

# --no-tests=error: a missing GTest only warns at configure time; an
# empty test set must fail loudly here, not report green.
ctest --test-dir build --output-on-failure --no-tests=error -j"$JOBS"

# Walk-counter invariants of the staged access pipeline, asserted
# explicitly (they also run inside ctest; this names them in the CI
# log): the L1-hit path touches zero simulated-L2 words, a repeat hit
# through the L0 filter walks neither plane, and an absorbed repeat
# touches zero packed-array words at all.
# Guard the guard: gtest exits 0 when a filter matches zero tests, so
# require the exact test count or fail loudly.
WALK_OUT=$(./build/test_access_pipeline --gtest_filter='AccessPipeline.L1HitPathTouchesZeroL2Words:AccessPipeline.RepeatHitWalksNothing:AccessPipeline.AbsorbedRepeatTouchesZeroPackedWords')
if ! grep -q "3 tests from 1 test suite ran" <<< "$WALK_OUT"; then
    echo "check.sh: walk-counter invariant tests did not run (filter" \
         "out of sync with test_access_pipeline?)" >&2
    exit 1
fi
echo "walk-counter invariants: L1-hit/L0/absorbed paths OK"

# Coherence-oracle legs (see header item 6). Quick runs: the oracle's
# value here is the invariants, not the throughput.
ORACLE_JSON=build/BENCH_hotpath_oracle.json
./build/bench_perf_hotpath --measure 20000 --warmup 5000 --oracle \
    --out "$ORACLE_JSON" > /dev/null
echo "oracle: all 4 configs violation-free"

MUT_LOG=build/oracle_mutation.log
rc=0
./build/bench_perf_hotpath --measure 20000 --warmup 5000 \
    --mutate drop-inval --config multicast-owner-group \
    > /dev/null 2> "$MUT_LOG" || rc=$?
if [[ "$rc" -ne 77 ]]; then
    echo "check.sh: mutated run exited $rc, expected 77 (violation)" >&2
    cat "$MUT_LOG" >&2
    exit 1
fi
VIOLATION=$(grep -m1 '^DSP-VIOLATION ' "$MUT_LOG" || true)
STOP_AT=$(grep -m1 -o '"stop_at":[0-9]*' "$MUT_LOG" | cut -d: -f2)
if [[ -z "$VIOLATION" || -z "$STOP_AT" ]]; then
    echo "check.sh: mutated run printed no violation / repro bundle" >&2
    cat "$MUT_LOG" >&2
    exit 1
fi
REPLAY_LOG=build/oracle_replay.log
rc=0
./build/bench_perf_hotpath --measure 20000 --warmup 5000 \
    --mutate drop-inval --stop-at "$STOP_AT" \
    --config multicast-owner-group > /dev/null 2> "$REPLAY_LOG" \
    || rc=$?
if [[ "$rc" -ne 77 ]]; then
    echo "check.sh: bounded replay exited $rc, expected 77" >&2
    cat "$REPLAY_LOG" >&2
    exit 1
fi
REPLAYED=$(grep -m1 '^DSP-VIOLATION ' "$REPLAY_LOG" || true)
if [[ "$VIOLATION" != "$REPLAYED" ]]; then
    echo "check.sh: bounded replay diverged from the full run:" >&2
    echo "  full run: $VIOLATION" >&2
    echo "  replay:   $REPLAYED" >&2
    exit 1
fi
echo "oracle: drop-inval caught (exit 77); bounded replay identical"

# Small measured run: enough events for a stable events/sec figure,
# quick enough for CI (a few seconds). --repeat 3 takes the best of
# three per config, cutting scheduler noise out of the regression
# guard (each repetition is also checked to be bit-identical by the
# bench itself).
BASELINE=BENCH_hotpath.json
FRESH=build/BENCH_hotpath_fresh.json
./build/bench_perf_hotpath --measure 200000 --warmup 20000 \
    --repeat 3 --out "$FRESH"

# Guard the guards: everything below greps the bench JSON as raw
# text, so a malformed, truncated, or interrupted file could feed the
# regression checks nonsense that happens to pass. Require the file
# to parse and every guarded field to exist and be finite first.
validate_bench_json() {
    local file="$1"
    if command -v python3 > /dev/null 2>&1; then
        python3 - "$file" <<'PYEOF'
import json, math, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
if doc.get("interrupted"):
    sys.exit("bench JSON is marked interrupted (partial results)")
configs = doc.get("configs")
if not configs:
    sys.exit("bench JSON has no configs")
for c in configs:
    if c.get("partial"):
        sys.exit("config %r is marked partial" % c.get("name"))
    for field in ("events_per_sec", "barriers_per_window",
                  "l0_hit_rate", "events", "misses",
                  "calendar_ops_per_miss", "prefetch_issued"):
        v = c.get(field)
        if not isinstance(v, (int, float)) or isinstance(v, bool) \
                or not math.isfinite(v):
            sys.exit("config %r field %r is %r -- missing or not a "
                     "finite number" % (c.get("name"), field, v))
PYEOF
    elif command -v jq > /dev/null 2>&1; then
        jq -e '
            ((.interrupted // false) | not)
            and (.configs | length > 0)
            and ([.configs[] | (.partial // false) | not] | all)
            and ([.configs[] | .events_per_sec, .barriers_per_window,
                  .l0_hit_rate, .events, .misses,
                  .calendar_ops_per_miss, .prefetch_issued]
                 | all(type == "number" and (isinfinite | not)
                       and (isnan | not)))' "$file" > /dev/null
    else
        echo "check.sh: warning: neither python3 nor jq found --" \
             "skipping JSON validation of $file" >&2
        return 0
    fi || {
        echo "check.sh: $file failed JSON validation -- refusing to" \
             "run regression greps over it" >&2
        exit 1
    }
}
validate_bench_json "$FRESH"

# Single-barrier window invariant: the parallel config must cross the
# barrier about once per window (the old kernel crossed twice; quiet
# -window batching may dip slightly below 1.0).
BPW=$(awk -F: '
    /"name"/   { gsub(/[ ",]/, "", $2); name = $2 }
    /"barriers_per_window"/ && name == "multicast-owner-group-par" {
        gsub(/[ ,]/, "", $2); print $2; exit
    }' "$FRESH")
if ! awk -v b="$BPW" 'BEGIN { exit !(b > 0.5 && b <= 1.05) }'; then
    echo "check.sh: barriers_per_window=$BPW on the par config --" \
         "expected ~1.0 (single-crossing windows)" >&2
    exit 1
fi
echo "barriers_per_window: $BPW (par config)"

# L0 block-result filter sanity: every config must report a non-zero
# hit rate (the filter silently disabling itself would erase the
# repeat-hit fast path without failing anything else).
L0MIN=$(awk -F: '
    /"l0_hit_rate"/ { gsub(/[ ,]/, "", $2); if (min == "" || $2 < min) min = $2 }
    END { print (min == "" ? "missing" : min) }' "$FRESH")
if ! awk -v r="$L0MIN" 'BEGIN { exit !(r > 0 && r < 1) }'; then
    echo "check.sh: l0_hit_rate=$L0MIN -- the L0 filter is not" \
         "filtering (expected a rate in (0,1) on every config)" >&2
    exit 1
fi
echo "l0_hit_rate: >= $L0MIN on all configs"

# Per-config events/sec guard. Bench noise on a busy machine is well
# under the 15% bar; a real regression from a hot-path change is not.
# With --allow-perf-regression the comparison still prints, but only
# informationally (intentional perf changes, non-comparable hardware).
extract_evps() {
    awk -F: '
        /"name"/   { gsub(/[ ",]/, "", $2); name = $2 }
        /"events_per_sec"/ && name != "" {
            gsub(/[ ,]/, "", $2); print name, $2; name = ""
        }' "$1"
}
if [[ -f "$BASELINE" ]]; then
    if ! { extract_evps "$BASELINE"; echo "--"; extract_evps "$FRESH"; } \
        | awk -v \
        enforce="$([[ "$ALLOW_PERF_REGRESSION" == "1" ]] || echo 1)" '
        $1 == "--"  { fresh_section = 1; next }
        !fresh_section { base[$1] = $2; next }
        { fresh[$1] = $2 }
        END {
            status = 0
            for (name in fresh) {
                if (!(name in base) || base[name] <= 0) continue
                ratio = fresh[name] / base[name]
                printf "perf guard: %-32s %12.0f -> %12.0f ev/s (%.2fx)\n", \
                       name, base[name], fresh[name], ratio
                if (ratio < 0.85 && enforce == "1") {
                    printf "perf guard: FAIL %s regressed >15%%\n", name
                    status = 1
                }
            }
            exit status
        }'; then
        echo "check.sh: events/sec regression vs committed" \
             "BENCH_hotpath.json (rerun with --allow-perf-regression" \
             "if intentional)" >&2
        exit 1
    fi
fi

# Hot-path counter guards (PR 10). calendar_ops_per_miss pins the
# chain-fusion win: a >15% rise vs the committed baseline on a
# multicast config means fusion quietly stopped firing. The comparison
# is skipped when the baseline predates the field (first run after it
# landed). prefetch_issued must be non-zero on the single-threaded
# configs: at K=1 every hint is same-shard, so zero means the hint
# sites are dead. Both are host performance counters, deliberately
# absent from the determinism extraction below (they are
# partition-dependent by design).
extract_field() {
    awk -F: -v field="$2" '
        /"name"/ { gsub(/[ ",]/, "", $2); name = $2 }
        $0 ~ "\"" field "\"" && name != "" {
            gsub(/[ ,]/, "", $2); print name, $2
        }' "$1"
}
PREFETCH_ZERO=$(extract_field "$FRESH" prefetch_issued | awk '
    ($1 == "snooping" || $1 == "multicast-owner-group") && $2 + 0 == 0 \
        { print $1 }')
if [[ -n "$PREFETCH_ZERO" ]]; then
    echo "check.sh: prefetch_issued is zero on:" $PREFETCH_ZERO "--" \
         "the send-time prefetch hints are not firing" >&2
    exit 1
fi
echo "prefetch_issued: non-zero on the single-threaded configs"
if [[ -f "$BASELINE" ]] && grep -q '"calendar_ops_per_miss"' "$BASELINE"
then
    if ! { extract_field "$BASELINE" calendar_ops_per_miss; echo "--"
           extract_field "$FRESH" calendar_ops_per_miss; } | awk -v \
        enforce="$([[ "$ALLOW_PERF_REGRESSION" == "1" ]] || echo 1)" '
        $1 == "--"  { fresh_section = 1; next }
        !fresh_section { base[$1] = $2; next }
        { fresh[$1] = $2 }
        END {
            status = 0
            for (name in fresh) {
                if (name !~ /^multicast/) continue
                if (!(name in base) || base[name] <= 0) continue
                ratio = fresh[name] / base[name]
                printf "calendar guard: %-32s %8.3f -> %8.3f " \
                       "ops/miss (%.2fx)\n", \
                       name, base[name], fresh[name], ratio
                if (ratio > 1.15 && enforce == "1") {
                    printf "calendar guard: FAIL %s " \
                           "calendar_ops_per_miss rose >15%%\n", name
                    status = 1
                }
            }
            exit status
        }'; then
        echo "check.sh: calendar_ops_per_miss regression vs committed" \
             "BENCH_hotpath.json -- chain fusion lost ground (rerun" \
             "with --allow-perf-regression if intentional)" >&2
        exit 1
    fi
else
    echo "check.sh: baseline lacks calendar_ops_per_miss -- skipping" \
         "the chain-fusion guard (first run after the field landed)"
fi

# Sharded-kernel determinism cross-check: a K-shard run must emit
# bit-identical figure statistics to the single-threaded run -- here
# with the two placement extremes (K=1, and K=4 with a dedicated hub
# shard), so both the single-barrier windows and the hub-shard
# partition are covered. Wall clock and events/sec may differ;
# everything else may not.
DET1=build/BENCH_det_t1.json
DET4=build/BENCH_det_t4.json
./build/bench_perf_hotpath --config multicast-owner-group-par \
    --measure 100000 --warmup 10000 --threads 1 --out "$DET1" \
    > /dev/null
./build/bench_perf_hotpath --config multicast-owner-group-par \
    --measure 100000 --warmup 10000 --threads 4 --hub-shard \
    --out "$DET4" > /dev/null
validate_bench_json "$DET1"
validate_bench_json "$DET4"
extract_det() {
    awk -F: '
        /"events"|"misses"|"retries"|"traffic_bytes"|"avg_miss_latency_ns"|"sim_runtime_ms"|"l0_hit_rate"|"touched_words_per_access"/ {
            gsub(/[ ",]/, "", $1); gsub(/[ ,]/, "", $2)
            print $1, $2
        }' "$1"
}
# Guard the guard: if the JSON field names ever drift, the extraction
# would compare two empty streams and "pass" while checking nothing.
DET_FIELDS=8
for f in "$DET1" "$DET4"; do
    n="$(extract_det "$f" | wc -l)"
    if [[ "$n" -ne "$DET_FIELDS" ]]; then
        echo "check.sh: determinism extraction found $n/$DET_FIELDS" \
             "stat fields in $f -- extractor out of sync with the" \
             "bench JSON" >&2
        exit 1
    fi
done
if ! diff <(extract_det "$DET1") <(extract_det "$DET4"); then
    echo "check.sh: DETERMINISM FAILURE -- --threads 4 diverged from" \
         "--threads 1 on multicast-owner-group-par (see diff above)" >&2
    exit 1
fi
echo "determinism: --threads 1 == --threads 4 on all figure stats"

# 64-node scaling smoke: the same determinism contract on a larger
# hierarchical machine -- 64 nodes in 4 clusters of 16 behind
# switches, 4 address-interleaved ordering hubs (the committed
# configs/fig6_scaling.conf shape, docs/machine_topology.md). This
# exercises the parameterized topology, multi-hub ordering, and the
# 64-node txn-id/oracle-buffer regressions end to end in CI without
# paying for a full scaling sweep.
DET64_1=build/BENCH_det64_t1.json
DET64_4=build/BENCH_det64_t4.json
./build/bench_perf_hotpath --config multicast-owner-group-par \
    --nodes 64 --hubs 4 --cluster 16 --switch-ns 15 \
    --measure 20000 --warmup 5000 --threads 1 --out "$DET64_1" \
    > /dev/null
./build/bench_perf_hotpath --config multicast-owner-group-par \
    --nodes 64 --hubs 4 --cluster 16 --switch-ns 15 \
    --measure 20000 --warmup 5000 --threads 4 --hub-shard \
    --out "$DET64_4" > /dev/null
validate_bench_json "$DET64_1"
validate_bench_json "$DET64_4"
for f in "$DET64_1" "$DET64_4"; do
    n="$(extract_det "$f" | wc -l)"
    if [[ "$n" -ne "$DET_FIELDS" ]]; then
        echo "check.sh: 64-node determinism extraction found" \
             "$n/$DET_FIELDS stat fields in $f -- extractor out of" \
             "sync with the bench JSON" >&2
        exit 1
    fi
done
if ! diff <(extract_det "$DET64_1") <(extract_det "$DET64_4"); then
    echo "check.sh: DETERMINISM FAILURE -- 64-node hierarchical" \
         "--threads 4 diverged from --threads 1 (see diff above)" >&2
    exit 1
fi
echo "determinism: 64-node 4-hub hierarchical machine," \
     "--threads 1 == --threads 4"

# Refuse to install a fresh baseline that lost configs (e.g. a bench
# crash after a partial write): the perf guard would silently stop
# guarding whatever is missing.
for config in snooping multicast-owner-group \
              multicast-owner-group-detailed multicast-owner-group-par
do
    if ! grep -q "\"name\": \"$config\"" "$FRESH"; then
        echo "check.sh: fresh bench JSON is missing config" \
             "'$config'; not touching $BASELINE" >&2
        exit 1
    fi
done

# Sweep-driver crash-tolerance smoke: seeded fault injection must
# fail the expected jobs, and a resumed sweep must reproduce the
# fault-free aggregate table byte-for-byte.
SWEEP_BIN=./build/bench_sweep scripts/sweep_smoke.sh

# Checkpoint/restore smoke (scripts/checkpoint_smoke.sh): a run
# SIGKILLed mid-flight resumes from its newest snapshot with
# byte-identical figure stats; a violation replays from the repro
# bundle's nearest checkpoint re-raising the identical DSP-VIOLATION
# line; the committed configs/nightly.conf sweep survives kill+resume
# with a byte-identical aggregate table.
scripts/checkpoint_smoke.sh

# The checkpoint tests again under AddressSanitizer: restore rebuilds
# every in-flight event through the component pools, exactly where a
# stale pointer or double-release would hide. A dedicated build tree
# keeps the instrumented objects out of the Release build. Skipped
# (with a warning) only if the toolchain lacks libasan.
if echo 'int main(){}' | g++ -fsanitize=address -x c++ - \
        -o build/asan_probe 2> /dev/null; then
    rm -f build/asan_probe
    cmake -B build-asan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address" > /dev/null
    cmake --build build-asan --target test_checkpoint -j"$JOBS"
    ASAN_OUT=$(./build-asan/test_checkpoint \
        --gtest_filter='CheckpointFile.*:Checkpoint.FlatRestoreBitEquivalentAcrossShardCounts')
    if ! grep -q "4 tests from 2 test suites ran" <<< "$ASAN_OUT"; then
        echo "check.sh: ASan checkpoint tests did not run (filter out" \
             "of sync with test_checkpoint?)" >&2
        exit 1
    fi
    echo "checkpoint tests clean under AddressSanitizer"
else
    echo "check.sh: warning: g++ lacks -fsanitize=address --" \
         "skipping the ASan checkpoint leg" >&2
fi

# Docs hygiene: markdown links resolve, and every src/ subsystem is
# mentioned in the docs index.
scripts/docs_check.sh

# Every guard passed (or was explicitly waived): only now does the
# fresh run become the committed perf trajectory.
cp "$FRESH" "$BASELINE"

echo "check.sh: build + tests + hotpath bench + determinism +" \
     "sweep-resume OK"
