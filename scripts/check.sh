#!/usr/bin/env bash
#
# Tier-1 verification plus the hot-path perf bench. Run from anywhere;
# everything happens in the repo root. This is what CI runs, and what
# every PR should pass locally:
#
#   1. configure + build (Release, warnings-as-errors for src/)
#   2. ctest unit suite
#   3. bench_perf_hotpath with a small --measure, writing
#      BENCH_hotpath.json so perf regressions are visible per PR
#
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B build -S .
cmake --build build -j"$JOBS"

ctest --test-dir build --output-on-failure -j"$JOBS"

# Small measured run: enough events for a stable events/sec figure,
# quick enough for CI (a few seconds).
./build/bench_perf_hotpath --measure 200000 --warmup 20000 \
    --out BENCH_hotpath.json

echo "check.sh: build + tests + hotpath bench OK"
