#!/usr/bin/env bash
#
# Tier-1 verification plus the hot-path perf bench. Run from anywhere;
# everything happens in the repo root. This is what CI runs, and what
# every PR should pass locally:
#
#   1. configure + build (Release, warnings-as-errors for src/)
#   2. ctest unit suite
#   3. bench_perf_hotpath with a small --measure, checked against the
#      committed BENCH_hotpath.json: a >15% events/sec regression on
#      any config fails the run. Pass --allow-perf-regression (or set
#      ALLOW_PERF_REGRESSION=1) for intentional perf changes; the
#      fresh numbers are then (as always, on success) written back to
#      BENCH_hotpath.json so every PR leaves a perf trajectory behind.
#
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOW_PERF_REGRESSION="${ALLOW_PERF_REGRESSION:-0}"
for arg in "$@"; do
    case "$arg" in
      --allow-perf-regression) ALLOW_PERF_REGRESSION=1 ;;
      *) echo "check.sh: unknown option '$arg'" >&2; exit 2 ;;
    esac
done

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B build -S .
cmake --build build -j"$JOBS"

# --no-tests=error: a missing GTest only warns at configure time; an
# empty test set must fail loudly here, not report green.
ctest --test-dir build --output-on-failure --no-tests=error -j"$JOBS"

# Small measured run: enough events for a stable events/sec figure,
# quick enough for CI (a few seconds).
BASELINE=BENCH_hotpath.json
FRESH=build/BENCH_hotpath_fresh.json
./build/bench_perf_hotpath --measure 200000 --warmup 20000 \
    --out "$FRESH"

# Per-config events/sec guard. Bench noise on a busy machine is well
# under the 15% bar; a real regression from a hot-path change is not.
# With --allow-perf-regression the comparison still prints, but only
# informationally (intentional perf changes, non-comparable hardware).
if [[ -f "$BASELINE" ]]; then
    extract() {
        awk -F: '
            /"name"/   { gsub(/[ ",]/, "", $2); name = $2 }
            /"events_per_sec"/ && name != "" {
                gsub(/[ ,]/, "", $2); print name, $2; name = ""
            }' "$1"
    }
    if ! { extract "$BASELINE"; echo "--"; extract "$FRESH"; } | awk -v \
        enforce="$([[ "$ALLOW_PERF_REGRESSION" == "1" ]] || echo 1)" '
        $1 == "--"  { fresh_section = 1; next }
        !fresh_section { base[$1] = $2; next }
        { fresh[$1] = $2 }
        END {
            status = 0
            for (name in fresh) {
                if (!(name in base) || base[name] <= 0) continue
                ratio = fresh[name] / base[name]
                printf "perf guard: %-32s %12.0f -> %12.0f ev/s (%.2fx)\n", \
                       name, base[name], fresh[name], ratio
                if (ratio < 0.85 && enforce == "1") {
                    printf "perf guard: FAIL %s regressed >15%%\n", name
                    status = 1
                }
            }
            exit status
        }'; then
        echo "check.sh: events/sec regression vs committed" \
             "BENCH_hotpath.json (rerun with --allow-perf-regression" \
             "if intentional)" >&2
        exit 1
    fi
fi

cp "$FRESH" "$BASELINE"

echo "check.sh: build + tests + hotpath bench OK"
