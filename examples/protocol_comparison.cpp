/**
 * @file
 * Protocol comparison on one workload: collects an annotated L2-miss
 * trace from a chosen Table 1 workload, then replays it through
 * broadcast snooping, the directory protocol, and multicast snooping
 * with each predictor policy -- a miniature of Figure 5 for
 * interactive exploration.
 *
 * Usage: protocol_comparison [workload] [misses]
 *   workload: apache | barnes | ocean | oltp | slashcode | specjbb
 *             (default oltp)
 *   misses:   measured misses (default 50000; warmup adds 2x)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/predictor_eval.hh"
#include "analysis/trace_collector.hh"
#include "stats/table.hh"
#include "workload/presets.hh"

int
main(int argc, char **argv)
{
    using namespace dsp;

    const std::string name = argc > 1 ? argv[1] : "oltp";
    const std::uint64_t misses =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50000;
    const NodeId nodes = 16;

    std::cout << "collecting " << misses << " misses from '" << name
              << "' (plus " << 2 * misses << " warmup)...\n";
    auto workload = makeWorkload(name, nodes, /* seed */ 1,
                                 /* scale */ 1.0);
    TraceCollector collector(*workload);
    Trace trace = collector.collect(2 * misses, misses);

    PredictorEvaluator evaluator(nodes);
    stats::Table table({"config", "reqMsgs/miss", "indirections",
                        "traffic(B/miss)", "retries/miss"});

    auto addRow = [&](const std::string &label, const EvalResult &r) {
        table.addRow({
            label,
            stats::Table::fixed(r.requestMessagesPerMiss, 2),
            stats::Table::percent(r.indirectionPct, 1),
            stats::Table::fixed(r.trafficBytesPerMiss, 1),
            stats::Table::fixed(r.retriesPerMiss, 3),
        });
    };

    BroadcastSnoopingModel snooping(nodes);
    DirectoryModel directory(nodes);
    addRow("snooping (max set)",
           evaluator.evaluateBaseline(trace, snooping));
    addRow("directory (min set)",
           evaluator.evaluateBaseline(trace, directory));

    PredictorConfig config;
    config.numNodes = nodes;
    config.entries = 8192;
    for (PredictorPolicy policy : proposedPolicies()) {
        addRow("multicast + " + toString(policy),
               evaluator.evaluatePredictor(trace, policy, config));
    }
    addRow("multicast + sticky-spatial (prior work)",
           evaluator.evaluatePredictor(
               trace, PredictorPolicy::StickySpatial, config));

    table.print(std::cout,
                "\nLatency/bandwidth tradeoff on '" + name + "' (" +
                    stats::Table::num(misses) + " misses)");
    std::cout << "\nReading the table: snooping anchors the low-"
                 "latency/high-bandwidth corner,\nthe directory the "
                 "opposite one; predictors trade between them "
                 "(Figure 1 of the paper).\n";
    return 0;
}
