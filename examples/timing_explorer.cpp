/**
 * @file
 * Execution-driven timing exploration: run the full 16-node system
 * (CPUs, caches, predictors, totally-ordered crossbar) on a workload
 * under a chosen protocol and predictor policy, and report runtime,
 * traffic, and latency -- the machinery behind Figures 7 and 8.
 *
 * Usage:
 *   timing_explorer [workload] [protocol] [policy] [instrPerCpu]
 *     workload: apache|barnes|ocean|oltp|slashcode|specjbb (oltp)
 *     protocol: snooping|directory|multicast        (multicast)
 *     policy:   owner|bcast-if-shared|group|owner-group|
 *               sticky-spatial|always-broadcast|always-minimal
 *                                                   (owner-group)
 *     instrPerCpu: measured instructions per CPU    (500000)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "stats/table.hh"
#include "system/system.hh"
#include "workload/presets.hh"

int
main(int argc, char **argv)
{
    using namespace dsp;

    const std::string name = argc > 1 ? argv[1] : "oltp";
    const std::string protocol = argc > 2 ? argv[2] : "multicast";
    const std::string policy = argc > 3 ? argv[3] : "owner-group";
    const std::uint64_t instr =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 500000;

    SystemParams params;
    params.nodes = 16;
    if (protocol == "snooping")
        params.protocol = ProtocolKind::Snooping;
    else if (protocol == "directory")
        params.protocol = ProtocolKind::Directory;
    else if (protocol == "multicast")
        params.protocol = ProtocolKind::Multicast;
    else
        dsp_fatal("unknown protocol '%s'", protocol.c_str());
    params.policy = parsePredictorPolicy(policy);
    params.predictor.entries = 8192;
    params.warmupInstrPerCpu = instr / 2;
    params.measureInstrPerCpu = instr;

    auto workload = makeWorkload(name, params.nodes, 1, 1.0);
    std::cout << "running '" << name << "' under " << protocol;
    if (params.protocol == ProtocolKind::Multicast)
        std::cout << " + " << policy;
    std::cout << " (" << instr << " instrs/cpu measured)...\n";

    System system(*workload, params);
    SystemStats stats = system.run();

    stats::Table table({"metric", "value"});
    table.addRow({"simulated runtime",
                  stats::Table::fixed(stats.runtimeMs(), 3) + " ms"});
    table.addRow({"instructions",
                  stats::Table::num(stats.instructions)});
    table.addRow({"L2 misses", stats::Table::num(stats.misses)});
    table.addRow(
        {"misses / 1k instr",
         stats::Table::fixed(1000.0 *
                                 static_cast<double>(stats.misses) /
                                 static_cast<double>(
                                     stats.instructions),
                             2)});
    table.addRow({"avg miss latency",
                  stats::Table::fixed(stats.avgMissLatencyNs, 1) +
                      " ns"});
    double miss_pct =
        stats.misses
            ? 100.0 * static_cast<double>(stats.indirections) /
                  static_cast<double>(stats.misses)
            : 0.0;
    table.addRow({"indirections",
                  stats::Table::num(stats.indirections) + " (" +
                      stats::Table::percent(miss_pct, 1) + ")"});
    table.addRow({"retries", stats::Table::num(stats.retries)});
    table.addRow({"cache-to-cache transfers",
                  stats::Table::num(stats.cacheToCache)});
    table.addRow({"upgrades", stats::Table::num(stats.upgrades)});
    table.addRow({"request messages",
                  stats::Table::num(stats.requestMessages)});
    table.addRow({"interconnect traffic",
                  stats::Table::fixed(
                      static_cast<double>(stats.trafficBytes) /
                          (1 << 20),
                      2) +
                      " MB"});
    table.addRow({"traffic / miss",
                  stats::Table::fixed(stats.trafficPerMiss(), 1) +
                      " B"});
    table.print(std::cout, "");
    return 0;
}
