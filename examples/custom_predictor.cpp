/**
 * @file
 * Extending the library with a user-defined destination-set policy.
 *
 * Implements a "recent-two owners" predictor -- it remembers the last
 * two distinct nodes that touched each macroblock and sends to both,
 * splitting the difference between Owner (one candidate) and Group
 * (everyone with a high counter). It then competes against the
 * built-in policies on a real workload trace using the same
 * evaluation harness the paper's figures use.
 *
 * The point: anything deriving from dsp::Predictor plugs into the
 * replay harness, the timing simulator, and the benches.
 */

#include <iostream>

#include "analysis/predictor_eval.hh"
#include "analysis/trace_collector.hh"
#include "core/predictor.hh"
#include "core/predictor_table.hh"
#include "stats/table.hh"
#include "workload/presets.hh"

namespace {

using namespace dsp;

/** Last two distinct sharers of a block. */
struct RecentTwoEntry {
    NodeId recent = invalidNode;
    NodeId previous = invalidNode;

    void
    touch(NodeId node)
    {
        if (node == recent)
            return;
        previous = recent;
        recent = node;
    }
};

class RecentTwoPredictor : public Predictor
{
  public:
    explicit RecentTwoPredictor(const PredictorConfig &config)
        : Predictor(config), table_(config.entries, config.ways)
    {
    }

    DestinationSet
    predict(Addr addr, Addr pc, RequestType, NodeId requester,
            NodeId home) override
    {
        DestinationSet set = minimalSet(requester, home);
        if (RecentTwoEntry *entry =
                table_.find(indexKey(config_.indexing, addr, pc))) {
            if (entry->recent != invalidNode)
                set.add(entry->recent);
            if (entry->previous != invalidNode)
                set.add(entry->previous);
        }
        return set;
    }

    void
    trainResponse(Addr addr, Addr pc, NodeId responder,
                  bool insufficient) override
    {
        std::uint64_t key = indexKey(config_.indexing, addr, pc);
        if (responder == invalidNode)
            return;  // nothing to learn from memory
        RecentTwoEntry *entry = table_.find(key);
        if (!entry && insufficient)
            entry = &table_.findOrAllocate(key);
        if (entry)
            entry->touch(responder);
    }

    void
    trainExternalRequest(Addr addr, Addr pc, RequestType type,
                         NodeId requester) override
    {
        if (type == RequestType::GetShared)
            return;
        table_.findOrAllocate(indexKey(config_.indexing, addr, pc))
            .touch(requester);
    }

    std::string name() const override { return "recent-two"; }
    std::size_t entryCount() const override { return table_.size(); }

    unsigned
    entryBits() const override
    {
        unsigned id_bits = 1;
        while ((1u << id_bits) < config_.numNodes)
            ++id_bits;
        return 2 * (id_bits + 1);
    }

  private:
    PredictorTable<RecentTwoEntry> table_;
};

/** Replay a trace through multicast snooping with any predictor. */
EvalResult
evaluateCustom(const Trace &trace, const PredictorConfig &config)
{
    std::vector<std::unique_ptr<Predictor>> predictors;
    for (NodeId n = 0; n < config.numNodes; ++n)
        predictors.push_back(
            std::make_unique<RecentTwoPredictor>(config));

    MulticastSnoopingModel protocol(config.numNodes);
    EvalResult result;
    result.protocol = protocol.name();
    result.policy = predictors[0]->name();

    std::uint64_t msgs = 0, indirections = 0, bytes = 0;
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        MissInfo miss = trace.records[i].toMissInfo(config.numNodes);
        DestinationSet predicted = predictors[miss.requester]->predict(
            miss.addr, miss.pc, miss.type, miss.requester, miss.home);
        MissOutcome out = protocol.handleMiss(miss, predicted);

        Predictor &own = *predictors[miss.requester];
        if (miss.responder != miss.requester)
            own.trainResponse(miss.addr, miss.pc, miss.responder,
                              !miss.required.empty());
        out.observers.forEach([&](NodeId q) {
            if (q != miss.requester)
                predictors[q]->trainExternalRequest(
                    miss.addr, miss.pc, miss.type, miss.requester);
        });

        if (i < trace.warmupRecords)
            continue;
        ++result.misses;
        msgs += out.requestMessages;
        indirections += out.indirection ? 1 : 0;
        bytes += out.totalBytes();
    }
    double n = static_cast<double>(result.misses);
    result.requestMessagesPerMiss = msgs / n;
    result.indirectionPct = 100.0 * indirections / n;
    result.trafficBytesPerMiss = bytes / n;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dsp;
    const std::string name = argc > 1 ? argv[1] : "apache";
    const NodeId nodes = 16;

    auto workload = makeWorkload(name, nodes, 1, 1.0);
    TraceCollector collector(*workload);
    Trace trace = collector.collect(100000, 50000);

    PredictorConfig config;
    config.numNodes = nodes;
    config.entries = 8192;

    stats::Table table(
        {"policy", "reqMsgs/miss", "indirections", "traffic(B/miss)"});
    PredictorEvaluator evaluator(nodes);

    auto addRow = [&](const EvalResult &r) {
        table.addRow({
            r.policy,
            stats::Table::fixed(r.requestMessagesPerMiss, 2),
            stats::Table::percent(r.indirectionPct, 1),
            stats::Table::fixed(r.trafficBytesPerMiss, 1),
        });
    };

    for (PredictorPolicy policy : proposedPolicies())
        addRow(evaluator.evaluatePredictor(trace, policy, config));
    addRow(evaluateCustom(trace, config));

    table.print(std::cout, "Custom 'recent-two' policy vs built-ins ('"
                               + name + "')");
    return 0;
}
