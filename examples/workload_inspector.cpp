/**
 * @file
 * Workload inspector: attributes a workload's L2 misses to the
 * sharing-pattern region that generated them and classifies each
 * region's misses (cache-to-cache, memory, upgrade, indirection).
 *
 * This is the tool used to tune the six Table 1 presets against the
 * paper's Table 2 / Figure 2-4 targets; run it when building new
 * workload models or adjusting existing ones.
 *
 * Usage: workload_inspector [workload] [warmupMisses] [measureMisses]
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "analysis/trace_collector.hh"
#include "stats/table.hh"
#include "workload/presets.hh"

int
main(int argc, char **argv)
{
    using namespace dsp;

    const std::string name = argc > 1 ? argv[1] : "ocean";
    const std::uint64_t warmup =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300000;
    const std::uint64_t measure =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 100000;
    const NodeId nodes = 16;

    auto workload = makeWorkload(name, nodes, 1, 1.0);
    TraceCollector collector(*workload);

    struct RegionStats {
        std::uint64_t misses = 0;
        std::uint64_t cacheToCache = 0;
        std::uint64_t indirections = 0;
        std::uint64_t memory = 0;
        std::uint64_t upgrades = 0;
    };
    std::map<std::string, RegionStats> by_region;
    bool measuring = false;

    collector.addMissObserver(
        [&](const TraceRecord &record,
            const SharingTracker::Transaction &txn) {
            if (!measuring)
                return;
            std::string region = "?";
            for (std::size_t i = 0; i < workload->regionCount(); ++i) {
                const Region &r = workload->region(i);
                if (record.addr >= r.base() &&
                    record.addr < r.base() + r.bytes()) {
                    region = r.name();
                    break;
                }
            }
            RegionStats &s = by_region[region];
            ++s.misses;
            if (txn.cacheToCache)
                ++s.cacheToCache;
            if (!txn.required.empty())
                ++s.indirections;
            if (txn.responder == invalidNode)
                ++s.memory;
            if (txn.responder == record.requester)
                ++s.upgrades;
        });

    std::cout << "inspecting '" << name << "' (" << warmup
              << " warmup + " << measure << " measured misses)...\n";
    collector.run(warmup);
    measuring = true;
    collector.run(measure);

    stats::Table table({"region", "misses", "shareOfMisses",
                        "c2c", "indirections", "memory", "upgrades"});
    std::uint64_t total = 0;
    for (const auto &kv : by_region)
        total += kv.second.misses;

    auto pct = [](std::uint64_t part, std::uint64_t whole) {
        return stats::Table::percent(
            whole ? 100.0 * static_cast<double>(part) /
                        static_cast<double>(whole)
                  : 0.0,
            1);
    };

    for (const auto &[region, s] : by_region) {
        table.addRow({
            region,
            stats::Table::num(s.misses),
            pct(s.misses, total),
            pct(s.cacheToCache, s.misses),
            pct(s.indirections, s.misses),
            pct(s.memory, s.misses),
            pct(s.upgrades, s.misses),
        });
    }
    table.print(std::cout, "\nPer-region miss breakdown");

    std::cout << "\nReading the table: regions with high c2c/"
                 "indirection shares drive the\nlatency/bandwidth "
                 "tradeoff; 'memory' misses are the directory-"
                 "friendly part.\n";
    return 0;
}
