/**
 * @file
 * Quickstart: the destination-set predictor API in ~40 lines.
 *
 * Builds an Owner/Group predictor (the paper's balanced policy),
 * feeds it the two training cues every predictor learns from --
 * data responses and external requests -- and shows how predictions
 * move from the minimal destination set toward the sharing group.
 *
 * Build & run:
 *   cmake --build build && ./build/examples/quickstart
 */

#include <cstdio>

#include "core/factory.hh"

int
main()
{
    using namespace dsp;

    // One predictor lives beside each L2 cache controller. Configure
    // for a 16-node system, 8192 entries, 1 KB macroblock indexing
    // (the paper's standout configuration, Figure 5).
    PredictorConfig config;
    config.numNodes = 16;
    config.entries = 8192;
    config.indexing = IndexingMode::Macroblock1024;

    auto predictor =
        makePredictor(PredictorPolicy::OwnerGroup, config);

    const Addr addr = 0x7f3000;  // some shared cache block
    const Addr pc = 0x4008a0;    // PC of the missing load/store
    const NodeId me = 3;
    const NodeId home = homeOf(blockOf(addr), config.numNodes);

    auto show = [&](const char *when) {
        DestinationSet reads = predictor->predict(
            addr, pc, RequestType::GetShared, me, home);
        DestinationSet writes = predictor->predict(
            addr, pc, RequestType::GetExclusive, me, home);
        std::printf("%-28s GETS -> %-18s GETX -> %s\n", when,
                    reads.toString().c_str(),
                    writes.toString().c_str());
    };

    show("cold (minimal set only):");

    // Cue 1: we missed on this block and node 7 supplied the data.
    predictor->trainResponse(addr, pc, /* responder */ 7,
                             /* minimal set was insufficient */ true);
    show("after data response from 7:");

    // Cue 2: we observed external GETX requests from nodes 7 and 9 --
    // evidence of a sharing group.
    for (int round = 0; round < 2; ++round) {
        predictor->trainExternalRequest(addr, pc,
                                        RequestType::GetExclusive, 7);
        predictor->trainExternalRequest(addr, pc,
                                        RequestType::GetExclusive, 9);
    }
    show("after observing GETX from 7,9:");

    // A memory response trains back down: the block stopped bouncing.
    predictor->trainResponse(addr, pc, invalidNode, false);
    show("after a memory response:");

    std::printf("\n%zu table entries in use; %u modelled bits/entry\n",
                predictor->entryCount(), predictor->entryBits());
    return 0;
}
