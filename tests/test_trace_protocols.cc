/**
 * @file
 * Unit tests for the trace-level protocol models: exact message
 * counts, indirection rules, latency classes, and byte accounting for
 * broadcast snooping, the directory protocol, and multicast snooping.
 */

#include <gtest/gtest.h>

#include "coherence/trace_protocols.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace dsp {
namespace {

constexpr NodeId kNodes = 16;

MissInfo
makeMiss(NodeId requester, RequestType type, NodeId responder,
         DestinationSet required, NodeId home = 0)
{
    MissInfo miss;
    miss.addr = 0x4000;  // block 0x100 -> home 0 for 16 nodes
    miss.pc = 0x1000;
    miss.requester = requester;
    miss.type = type;
    miss.required = required;
    miss.responder = responder;
    miss.home = home;
    return miss;
}

DestinationSet
minimalSet(NodeId requester, NodeId home)
{
    DestinationSet s;
    s.add(requester);
    s.add(home);
    return s;
}

// ---------------------------------------------------------------- snooping

TEST(Snooping, BroadcastsToAllOthers)
{
    BroadcastSnoopingModel model(kNodes);
    auto out = model.handleMiss(
        makeMiss(3, RequestType::GetShared, invalidNode, {}));
    EXPECT_EQ(out.requestMessages, 15u);
    EXPECT_FALSE(out.indirection);
    EXPECT_EQ(out.dataMessages, 1u);
    EXPECT_EQ(out.latency, LatencyClass::Memory);
    EXPECT_FALSE(out.observers.contains(3));
    EXPECT_EQ(out.observers.count(), 15u);
}

TEST(Snooping, CacheToCacheIsDirect)
{
    BroadcastSnoopingModel model(kNodes);
    auto out = model.handleMiss(makeMiss(
        3, RequestType::GetShared, 7, DestinationSet::of(7)));
    EXPECT_FALSE(out.indirection);
    EXPECT_TRUE(out.cacheToCache);
    EXPECT_EQ(out.latency, LatencyClass::DirectCache);
}

TEST(Snooping, UpgradeSendsNoData)
{
    BroadcastSnoopingModel model(kNodes);
    auto out = model.handleMiss(makeMiss(
        3, RequestType::GetExclusive, 3, DestinationSet::of(9)));
    EXPECT_EQ(out.dataMessages, 0u);
    EXPECT_EQ(out.controlMessages, 0u);
    EXPECT_EQ(out.latency, LatencyClass::LocalUpgrade);
    EXPECT_EQ(out.totalBytes(), 15u * requestMessageBytes);
}

TEST(Snooping, NeverIndirectsRegardlessOfSharers)
{
    BroadcastSnoopingModel model(kNodes);
    DestinationSet many;
    for (NodeId n = 4; n < 12; ++n)
        many.add(n);
    auto out = model.handleMiss(
        makeMiss(0, RequestType::GetExclusive, 4, many));
    EXPECT_FALSE(out.indirection);
}

// --------------------------------------------------------------- directory

TEST(Directory, MemoryReadIsTwoHop)
{
    DirectoryModel model(kNodes);
    auto out = model.handleMiss(
        makeMiss(3, RequestType::GetShared, invalidNode, {}));
    EXPECT_EQ(out.requestMessages, 1u);  // request to home only
    EXPECT_FALSE(out.indirection);
    EXPECT_EQ(out.latency, LatencyClass::Memory);
    EXPECT_EQ(out.totalBytes(),
              requestMessageBytes + dataMessageBytes);
}

TEST(Directory, CacheToCacheIndirects)
{
    DirectoryModel model(kNodes);
    auto out = model.handleMiss(makeMiss(
        3, RequestType::GetShared, 7, DestinationSet::of(7)));
    EXPECT_TRUE(out.indirection);
    EXPECT_EQ(out.requestMessages, 2u);  // request + forward
    EXPECT_EQ(out.latency, LatencyClass::Indirect);
    EXPECT_TRUE(out.cacheToCache);
}

TEST(Directory, WriteWithSharersCountsInvalidations)
{
    DirectoryModel model(kNodes);
    DestinationSet req;
    req.add(7);
    req.add(8);
    req.add(9);
    auto out = model.handleMiss(
        makeMiss(3, RequestType::GetExclusive, 7, req));
    // 1 request + 3 forwards/invalidations.
    EXPECT_EQ(out.requestMessages, 4u);
    EXPECT_TRUE(out.indirection);
    EXPECT_EQ(out.observers, req);
}

TEST(Directory, RequesterAtHomeSavesRequestMessage)
{
    DirectoryModel model(kNodes);
    auto out = model.handleMiss(makeMiss(
        0, RequestType::GetShared, invalidNode, {}, /* home */ 0));
    EXPECT_EQ(out.requestMessages, 0u);
}

TEST(Directory, UpgradeGetsGrantMessage)
{
    DirectoryModel model(kNodes);
    auto out = model.handleMiss(makeMiss(
        3, RequestType::GetExclusive, 3, DestinationSet::of(9)));
    EXPECT_EQ(out.dataMessages, 0u);
    EXPECT_EQ(out.controlMessages, 1u);
    EXPECT_TRUE(out.indirection);  // a sharer must observe
}

TEST(Directory, UpgradeWithNoSharersIsNotIndirect)
{
    DirectoryModel model(kNodes);
    auto out = model.handleMiss(
        makeMiss(3, RequestType::GetExclusive, 3, {}));
    EXPECT_FALSE(out.indirection);
    EXPECT_EQ(out.latency, LatencyClass::Memory);
}

// --------------------------------------------------------------- multicast

TEST(Multicast, SufficientSetAvoidsIndirection)
{
    MulticastSnoopingModel model(kNodes);
    DestinationSet predicted = minimalSet(3, 0);
    predicted.add(7);
    auto out = model.handleMiss(
        makeMiss(3, RequestType::GetShared, 7, DestinationSet::of(7)),
        predicted);
    EXPECT_FALSE(out.indirection);
    EXPECT_EQ(out.retries, 0u);
    EXPECT_EQ(out.requestMessages, 2u);  // home + owner
    EXPECT_EQ(out.latency, LatencyClass::DirectCache);
}

TEST(Multicast, InsufficientSetRetriesWithIndirection)
{
    MulticastSnoopingModel model(kNodes);
    DestinationSet predicted = minimalSet(3, 0);  // misses owner 7
    auto out = model.handleMiss(
        makeMiss(3, RequestType::GetShared, 7, DestinationSet::of(7)),
        predicted);
    EXPECT_TRUE(out.indirection);
    EXPECT_EQ(out.retries, 1u);
    // 1 initial (to home) + retry to {7, requester 3}.
    EXPECT_EQ(out.requestMessages, 3u);
    EXPECT_EQ(out.latency, LatencyClass::Indirect);
    EXPECT_TRUE(out.observers.contains(7));
}

TEST(Multicast, MinimalSetSufficientForMemoryRead)
{
    MulticastSnoopingModel model(kNodes);
    auto out = model.handleMiss(
        makeMiss(3, RequestType::GetShared, invalidNode, {}),
        minimalSet(3, 0));
    EXPECT_FALSE(out.indirection);
    EXPECT_EQ(out.requestMessages, 1u);  // just the home
    EXPECT_EQ(out.latency, LatencyClass::Memory);
}

TEST(Multicast, BroadcastPredictionMatchesSnooping)
{
    MulticastSnoopingModel multicast(kNodes);
    BroadcastSnoopingModel snooping(kNodes);
    DestinationSet sharers;
    sharers.add(5);
    sharers.add(6);
    MissInfo miss =
        makeMiss(3, RequestType::GetExclusive, 5, sharers);

    auto m = multicast.handleMiss(miss, DestinationSet::all(kNodes));
    auto s = snooping.handleMiss(miss, {});
    EXPECT_EQ(m.requestMessages, s.requestMessages);
    EXPECT_EQ(m.indirection, s.indirection);
    EXPECT_EQ(m.latency, s.latency);
    EXPECT_EQ(m.totalBytes(), s.totalBytes());
}

TEST(Multicast, PartialCoverageStillRetries)
{
    MulticastSnoopingModel model(kNodes);
    DestinationSet required;
    required.add(7);
    required.add(8);
    DestinationSet predicted = minimalSet(3, 0);
    predicted.add(7);  // covers the owner but not sharer 8
    auto out = model.handleMiss(
        makeMiss(3, RequestType::GetExclusive, 7, required),
        predicted);
    EXPECT_TRUE(out.indirection);
    EXPECT_EQ(out.retries, 1u);
}

TEST(Multicast, MissingRequesterInSetPanics)
{
    MulticastSnoopingModel model(kNodes);
    PanicGuard guard;
    EXPECT_THROW(
        model.handleMiss(
            makeMiss(3, RequestType::GetShared, invalidNode, {}),
            DestinationSet::of(0)),
        std::runtime_error);
}

TEST(Multicast, UpgradeSufficientIsLocal)
{
    MulticastSnoopingModel model(kNodes);
    DestinationSet predicted = minimalSet(3, 0);
    predicted.add(9);
    auto out = model.handleMiss(
        makeMiss(3, RequestType::GetExclusive, 3,
                 DestinationSet::of(9)),
        predicted);
    EXPECT_FALSE(out.indirection);
    EXPECT_EQ(out.dataMessages, 0u);
    EXPECT_EQ(out.latency, LatencyClass::LocalUpgrade);
}

/**
 * Property sweep: on random misses, multicast with a broadcast
 * prediction never retries, and any sufficient prediction yields the
 * same latency class as snooping.
 */
class MulticastProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MulticastProperty, SufficiencyInvariants)
{
    Rng rng(GetParam());
    MulticastSnoopingModel multicast(kNodes);
    BroadcastSnoopingModel snooping(kNodes);

    for (int i = 0; i < 2000; ++i) {
        NodeId req = static_cast<NodeId>(rng.uniformInt(kNodes));
        RequestType type = rng.chance(0.5)
                               ? RequestType::GetExclusive
                               : RequestType::GetShared;
        DestinationSet required =
            DestinationSet::fromMask(rng.next() & 0xffff);
        required.remove(req);
        NodeId responder = invalidNode;
        if (!required.empty() && rng.chance(0.7)) {
            // pick some member as the owner
            required.forEach([&](NodeId n) { responder = n; });
        } else if (rng.chance(0.3)) {
            responder = req;  // upgrade
        }
        MissInfo miss = makeMiss(req, type, responder, required,
                                 static_cast<NodeId>(
                                     rng.uniformInt(kNodes)));

        auto broadcast = multicast.handleMiss(
            miss, DestinationSet::all(kNodes));
        ASSERT_FALSE(broadcast.indirection);
        ASSERT_EQ(broadcast.retries, 0u);

        DestinationSet predicted = required;
        predicted.add(req);
        predicted.add(miss.home);
        auto exact = multicast.handleMiss(miss, predicted);
        ASSERT_FALSE(exact.indirection);
        ASSERT_EQ(exact.latency,
                  snooping.handleMiss(miss, {}).latency);
        // The exact prediction never sends more request messages
        // than broadcast.
        ASSERT_LE(exact.requestMessages, broadcast.requestMessages);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MulticastProperty,
                         ::testing::Values(7, 8, 9, 10));

TEST(LatencyParams, PaperCalibration)
{
    LatencyParams lat;
    EXPECT_DOUBLE_EQ(lat.memoryFetch(), 180.0);
    EXPECT_DOUBLE_EQ(lat.directCacheToCache(), 112.0);
    EXPECT_DOUBLE_EQ(lat.indirectCacheToCache(), 242.0);
}

} // namespace
} // namespace dsp
