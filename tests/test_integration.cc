/**
 * @file
 * Cross-module integration tests: the full pipeline from workload
 * synthesis through trace collection, characterization, predictor
 * replay, and the timing simulator -- plus forward-progress and
 * agreement properties between the trace-driven and execution-driven
 * paths.
 */

#include <gtest/gtest.h>

#include <memory>

#include "analysis/characterization.hh"
#include "analysis/predictor_eval.hh"
#include "analysis/trace_collector.hh"
#include "system/system.hh"
#include "workload/presets.hh"
#include "workload/region.hh"

namespace dsp {
namespace {

constexpr NodeId kNodes = 16;

/** All 16 processors write one contended block: retry stress. */
class AllWritersRegion : public Region
{
  public:
    AllWritersRegion(const Params &params, NodeId nodes)
        : Region(params, nodes)
    {
    }

    RegionRef
    gen(NodeId /* p */, Rng &rng) override
    {
        // Block index 3: home is node 3 (not special otherwise).
        return RegionRef{addrOf(3, rng), pcFor(rng), true};
    }
};

TEST(Integration, FullPipelineEndToEnd)
{
    // workload -> collector -> characterization + trace -> replay.
    auto workload = makeWorkload("apache", kNodes, 21, 0.05);
    TraceCollector collector(*workload);
    WorkloadCharacterization chars(kNodes);
    chars.attach(collector);

    collector.run(3000);
    chars.beginMeasurement(collector.totalInstructions());
    Trace trace = collector.collect(0, 3000);
    chars.absorbTrace(trace);

    auto row = chars.table2(collector.totalInstructions());
    EXPECT_GT(row.totalMisses, 0u);
    EXPECT_GT(row.touched64Bytes, 0u);

    PredictorEvaluator evaluator(kNodes);
    PredictorConfig config;
    config.numNodes = kNodes;
    config.entries = 4096;
    EvalResult r = evaluator.evaluatePredictor(
        trace, PredictorPolicy::OwnerGroup, config);
    EXPECT_EQ(r.misses, trace.measuredRecords());
    // Note: a minimal-set request whose requester is also the home
    // node sends zero network messages, so the floor is below 1.
    EXPECT_GE(r.requestMessagesPerMiss, 0.8);
    EXPECT_LE(r.requestMessagesPerMiss, 15.0 + 16.0);
}

TEST(Integration, TraceAndTimingIndirectionsAgree)
{
    // The same workload evaluated trace-driven and execution-driven
    // should report similar indirection fractions for multicast with
    // the same policy (timing adds only window-of-vulnerability
    // retries, a small effect).
    const double scale = 0.05;

    auto trace_workload = makeWorkload("oltp", kNodes, 31, scale);
    TraceCollector collector(*trace_workload);
    Trace trace = collector.collect(20000, 20000);
    PredictorEvaluator evaluator(kNodes);
    PredictorConfig config;
    config.numNodes = kNodes;
    config.entries = 8192;
    EvalResult replay = evaluator.evaluatePredictor(
        trace, PredictorPolicy::Owner, config);

    auto timing_workload = makeWorkload("oltp", kNodes, 31, scale);
    SystemParams params;
    params.nodes = kNodes;
    params.protocol = ProtocolKind::Multicast;
    params.policy = PredictorPolicy::Owner;
    params.predictor.entries = 8192;
    params.functionalWarmupMisses = 20000;
    params.warmupInstrPerCpu = 10000;
    params.measureInstrPerCpu = 60000;
    System system(*timing_workload, params);
    SystemStats stats = system.run();

    double timing_indir =
        stats.misses ? 100.0 *
                           static_cast<double>(stats.indirections) /
                           static_cast<double>(stats.misses)
                     : 0.0;
    EXPECT_NEAR(timing_indir, replay.indirectionPct, 12.0);
}

TEST(Integration, ContendedBlockMakesForwardProgress)
{
    // 16 concurrent writers on one block under AlwaysMinimal: every
    // request retries, retries race (window of vulnerability), and
    // the third attempt's broadcast guarantees completion.
    auto w = std::make_unique<Workload>("stress", kNodes, 0.0, 1);
    Region::Params rp;
    rp.name = "stress";
    rp.base = 0x1000000;
    rp.bytes = 1 << 20;
    rp.pcSites = 8;
    w->addRegion(std::make_unique<AllWritersRegion>(rp, kNodes), 1.0);

    SystemParams params;
    params.nodes = kNodes;
    params.protocol = ProtocolKind::Multicast;
    params.policy = PredictorPolicy::AlwaysMinimal;
    params.predictor.entries = 64;
    params.warmupInstrPerCpu = 0;
    params.measureInstrPerCpu = 3000;
    params.cpu.quantum_ns = 50;

    System system(*w, params);
    SystemStats stats = system.run();  // must terminate (no wedge)

    EXPECT_GT(stats.misses, 100u);
    EXPECT_GT(stats.retries, stats.misses / 2);
    // Under this much contention some retries lose the race and the
    // transaction needs a second retry (or the broadcast fallback).
    EXPECT_GT(stats.doubleRetries, 0u);
    EXPECT_LE(stats.doubleRetries, stats.retries);
}

TEST(Integration, PredictorsReduceTimingRetriesVsMinimal)
{
    auto run_policy = [&](PredictorPolicy policy) {
        auto workload = makeWorkload("apache", kNodes, 41, 0.05);
        SystemParams params;
        params.nodes = kNodes;
        params.protocol = ProtocolKind::Multicast;
        params.policy = policy;
        params.predictor.entries = 8192;
        params.functionalWarmupMisses = 15000;
        params.warmupInstrPerCpu = 5000;
        params.measureInstrPerCpu = 40000;
        System system(*workload, params);
        return system.run();
    };

    SystemStats minimal = run_policy(PredictorPolicy::AlwaysMinimal);
    for (PredictorPolicy policy : proposedPolicies()) {
        SystemStats r = run_policy(policy);
        double r_rate = static_cast<double>(r.retries) /
                        static_cast<double>(r.misses);
        double m_rate = static_cast<double>(minimal.retries) /
                        static_cast<double>(minimal.misses);
        EXPECT_LT(r_rate, m_rate) << toString(policy);
    }
}

TEST(Integration, SeedPerturbationChangesOutcomesSlightly)
{
    // Section 5.2's methodology: perturbed runs differ, but not
    // wildly. Two seeds of the same workload land within 25% on
    // per-miss traffic.
    auto run_seed = [&](std::uint64_t seed) {
        auto workload = makeWorkload("specjbb", kNodes, seed, 0.05);
        SystemParams params;
        params.nodes = kNodes;
        params.protocol = ProtocolKind::Snooping;
        params.warmupInstrPerCpu = 10000;
        params.measureInstrPerCpu = 40000;
        System system(*workload, params);
        return system.run();
    };
    SystemStats a = run_seed(1);
    SystemStats b = run_seed(2);
    EXPECT_NE(a.runtimeTicks, b.runtimeTicks);
    EXPECT_NEAR(a.trafficPerMiss() / b.trafficPerMiss(), 1.0, 0.25);
}

TEST(Integration, WorkloadStateIsContinuousAcrossPhases)
{
    // The functional warmup, timing warmup, and measurement all pull
    // from one workload stream; verify the system consumes it without
    // resetting (misses in measure reflect a warmed cache).
    auto cold_workload = makeWorkload("slashcode", kNodes, 51, 0.05);
    SystemParams params;
    params.nodes = kNodes;
    params.protocol = ProtocolKind::Directory;
    params.warmupInstrPerCpu = 0;
    params.measureInstrPerCpu = 30000;

    System cold(*cold_workload, params);
    SystemStats cold_stats = cold.run();

    auto warm_workload = makeWorkload("slashcode", kNodes, 51, 0.05);
    params.functionalWarmupMisses = 30000;
    System warm(*warm_workload, params);
    SystemStats warm_stats = warm.run();

    // Warming must cut the measured miss count (at this tiny scale
    // most misses are coherence misses, so the drop is modest).
    EXPECT_LT(warm_stats.misses, cold_stats.misses * 19 / 20);
}

} // namespace
} // namespace dsp
