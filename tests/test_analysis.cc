/**
 * @file
 * Tests for the workload characterization (Table 2 / Figures 2-4
 * math) and the trace-driven predictor evaluator (Figures 5-6).
 */

#include <gtest/gtest.h>

#include "analysis/characterization.hh"
#include "analysis/predictor_eval.hh"
#include "analysis/trace_collector.hh"
#include "workload/presets.hh"

namespace dsp {
namespace {

constexpr NodeId kNodes = 16;

TraceRecord
record(Addr addr, Addr pc, NodeId req, RequestType type,
       std::uint32_t responder, std::uint64_t required_mask)
{
    TraceRecord r;
    r.addr = addr;
    r.pc = pc;
    r.requester = req;
    r.type = static_cast<std::uint8_t>(type);
    r.responder = responder;
    r.requiredMask = required_mask;
    return r;
}

Trace
syntheticTrace()
{
    Trace trace;
    trace.workloadName = "synthetic";
    trace.numNodes = kNodes;
    trace.totalInstructions = 10000;
    trace.warmupInstructions = 0;
    // 4 misses: one memory read, one c2c read, one upgrade with a
    // sharer, one widely-shared write.
    trace.records = {
        record(0x0000, 0x10, 0, RequestType::GetShared,
               TraceRecord::memoryResponder, 0),
        record(0x1000, 0x14, 1, RequestType::GetShared, 2,
               DestinationSet::of(2).mask()),
        record(0x2000, 0x18, 3, RequestType::GetExclusive, 3,
               DestinationSet::of(4).mask()),
        record(0x3000, 0x1c, 5, RequestType::GetExclusive, 6,
               0b11011000000ull),  // nodes 6,7,9,10
    };
    return trace;
}

TEST(Characterization, Table2Math)
{
    Trace trace = syntheticTrace();
    WorkloadCharacterization chars(kNodes);
    chars.beginMeasurement(0);
    chars.absorbTrace(trace);

    auto row = chars.table2(trace.totalInstructions);
    EXPECT_EQ(row.totalMisses, 4u);
    EXPECT_EQ(row.staticMissPcs, 4u);
    EXPECT_DOUBLE_EQ(row.missesPer1kInstr, 0.4);
    // 3 of 4 misses have a non-empty required set.
    EXPECT_DOUBLE_EQ(row.directoryIndirectionPct, 75.0);
    // 4 distinct blocks and 4 distinct macroblocks touched.
    EXPECT_EQ(row.touched64Bytes, 4 * blockBytes);
    EXPECT_EQ(row.touched1024Bytes, 4 * macroblockBytes);
}

TEST(Characterization, Figure2Bins)
{
    Trace trace = syntheticTrace();
    WorkloadCharacterization chars(kNodes);
    chars.beginMeasurement(0);
    chars.absorbTrace(trace);

    const auto &reads = chars.sharingHistogramReads();
    EXPECT_EQ(reads.total(), 2u);
    EXPECT_EQ(reads.bucket(0), 1u);  // memory read
    EXPECT_EQ(reads.bucket(1), 1u);  // c2c read

    const auto &writes = chars.sharingHistogramWrites();
    EXPECT_EQ(writes.total(), 2u);
    EXPECT_EQ(writes.bucket(1), 1u);  // upgrade, one sharer
    EXPECT_EQ(writes.bucket(3), 1u);  // 4 observers -> "3+"
}

TEST(Characterization, WarmupRecordsExcludedFromRates)
{
    Trace trace = syntheticTrace();
    trace.warmupRecords = 2;
    trace.warmupInstructions = 5000;
    WorkloadCharacterization chars(kNodes);
    chars.beginMeasurement(trace.warmupInstructions);
    chars.absorbTrace(trace);

    auto row = chars.table2(trace.totalInstructions);
    EXPECT_EQ(row.totalMisses, 2u);
    // Footprint still covers warmup blocks.
    EXPECT_EQ(row.touched64Bytes, 4 * blockBytes);
}

TEST(Characterization, Figure3TouchedByAndWeighting)
{
    WorkloadCharacterization chars(kNodes);
    chars.beginMeasurement(0);
    // Block 0x0 touched by nodes 0,1,2 (3 misses); block 0x1000 by
    // node 3 alone (1 miss).
    chars.onMissRecord(record(0x0000, 0x10, 0, RequestType::GetShared,
                              TraceRecord::memoryResponder, 0),
                       true);
    chars.onMissRecord(record(0x0000, 0x10, 1, RequestType::GetShared,
                              0, 1),
                       true);
    chars.onMissRecord(record(0x0000, 0x10, 2, RequestType::GetShared,
                              0, 1),
                       true);
    chars.onMissRecord(record(0x1000, 0x14, 3, RequestType::GetShared,
                              TraceRecord::memoryResponder, 0),
                       true);

    auto blocks = chars.blocksTouchedBy();
    EXPECT_EQ(blocks.bucket(1), 1u);
    EXPECT_EQ(blocks.bucket(3), 1u);

    auto weighted = chars.missesToBlocksTouchedBy();
    EXPECT_EQ(weighted.bucket(3), 3u);
    EXPECT_EQ(weighted.bucket(1), 1u);
}

TEST(Characterization, Figure4CoverageCountsOnlyC2c)
{
    Trace trace = syntheticTrace();
    WorkloadCharacterization chars(kNodes);
    chars.beginMeasurement(0);
    chars.absorbTrace(trace);

    // Records 2 and 4 are cache-to-cache (cache responder != req).
    EXPECT_EQ(chars.cacheToCacheMisses(), 2u);
    auto coverage = chars.blockCoverage({1, 2, 10});
    EXPECT_DOUBLE_EQ(coverage[2], 100.0);
    EXPECT_GE(coverage[0], 50.0);
}

TEST(Characterization, AbsorbEquivalentToLiveObservation)
{
    auto workload = makeWorkload("oltp", kNodes, 7, 0.05);
    TraceCollector collector(*workload);
    WorkloadCharacterization live(kNodes);
    live.attach(collector);
    live.beginMeasurement(0);
    Trace trace = collector.collect(0, 1500);

    WorkloadCharacterization replay(kNodes);
    replay.beginMeasurement(0);
    replay.absorbTrace(trace);

    auto a = live.table2(trace.totalInstructions);
    auto b = replay.table2(trace.totalInstructions);
    EXPECT_EQ(a.totalMisses, b.totalMisses);
    EXPECT_EQ(a.staticMissPcs, b.staticMissPcs);
    EXPECT_DOUBLE_EQ(a.directoryIndirectionPct,
                     b.directoryIndirectionPct);
    EXPECT_EQ(live.cacheToCacheMisses(), replay.cacheToCacheMisses());
    // Footprint recovered from misses matches the reference-stream
    // footprint (cold caches: every toucher misses at least once).
    EXPECT_EQ(a.touched64Bytes, b.touched64Bytes);
}

// ---------------------------------------------------------- predictor eval

Trace
pingPongTrace(std::size_t misses)
{
    // Block bounces between nodes 1 and 2: each GETX needs the other.
    Trace trace;
    trace.workloadName = "pingpong";
    trace.numNodes = kNodes;
    trace.totalInstructions = misses * 100;
    for (std::size_t i = 0; i < misses; ++i) {
        NodeId me = 1 + (i % 2);
        NodeId other = 1 + ((i + 1) % 2);
        trace.records.push_back(
            record(0x4000, 0x20, me, RequestType::GetExclusive, other,
                   DestinationSet::of(other).mask()));
    }
    return trace;
}

TEST(PredictorEval, SnoopingAnchorIsExact)
{
    Trace trace = pingPongTrace(100);
    PredictorEvaluator eval(kNodes);
    BroadcastSnoopingModel snooping(kNodes);
    EvalResult r = eval.evaluateBaseline(trace, snooping);
    EXPECT_DOUBLE_EQ(r.requestMessagesPerMiss, 15.0);
    EXPECT_DOUBLE_EQ(r.indirectionPct, 0.0);
    EXPECT_EQ(r.misses, 100u);
}

TEST(PredictorEval, DirectoryAnchorIndirectsEveryPingPong)
{
    Trace trace = pingPongTrace(100);
    PredictorEvaluator eval(kNodes);
    DirectoryModel directory(kNodes);
    EvalResult r = eval.evaluateBaseline(trace, directory);
    EXPECT_DOUBLE_EQ(r.indirectionPct, 100.0);
    EXPECT_LT(r.requestMessagesPerMiss, 3.0);
}

TEST(PredictorEval, OwnerPredictorLearnsPingPong)
{
    Trace trace = pingPongTrace(400);
    trace.warmupRecords = 100;
    PredictorEvaluator eval(kNodes);
    PredictorConfig config;
    config.numNodes = kNodes;
    config.entries = 1024;
    EvalResult r = eval.evaluatePredictor(
        trace, PredictorPolicy::Owner, config);
    // After warmup both sides know each other: no indirections, and
    // requests go to {requester, home, owner} = 2 messages.
    EXPECT_LT(r.indirectionPct, 2.0);
    EXPECT_NEAR(r.requestMessagesPerMiss, 2.0, 0.1);
}

TEST(PredictorEval, AlwaysBroadcastMatchesSnoopingShape)
{
    Trace trace = pingPongTrace(100);
    PredictorEvaluator eval(kNodes);
    PredictorConfig config;
    config.numNodes = kNodes;
    EvalResult r = eval.evaluatePredictor(
        trace, PredictorPolicy::AlwaysBroadcast, config);
    EXPECT_DOUBLE_EQ(r.indirectionPct, 0.0);
    EXPECT_DOUBLE_EQ(r.requestMessagesPerMiss, 15.0);
}

TEST(PredictorEval, AlwaysMinimalRetriesEverySharingMiss)
{
    Trace trace = pingPongTrace(100);
    PredictorEvaluator eval(kNodes);
    PredictorConfig config;
    config.numNodes = kNodes;
    EvalResult r = eval.evaluatePredictor(
        trace, PredictorPolicy::AlwaysMinimal, config);
    EXPECT_DOUBLE_EQ(r.indirectionPct, 100.0);
    EXPECT_DOUBLE_EQ(r.retriesPerMiss, 1.0);
}

TEST(PredictorEval, WarmupExcludedFromStats)
{
    Trace trace = pingPongTrace(200);
    trace.warmupRecords = 150;
    PredictorEvaluator eval(kNodes);
    BroadcastSnoopingModel snooping(kNodes);
    EvalResult r = eval.evaluateBaseline(trace, snooping);
    EXPECT_EQ(r.misses, 50u);
}

TEST(PredictorEval, PredictorsBeatMinimalOnRealWorkload)
{
    auto workload = makeWorkload("oltp", kNodes, 11, 0.05);
    TraceCollector collector(*workload);
    Trace trace = collector.collect(2000, 4000);

    PredictorEvaluator eval(kNodes);
    PredictorConfig config;
    config.numNodes = kNodes;
    config.entries = 8192;

    EvalResult minimal = eval.evaluatePredictor(
        trace, PredictorPolicy::AlwaysMinimal, config);
    for (PredictorPolicy policy : proposedPolicies()) {
        EvalResult r = eval.evaluatePredictor(trace, policy, config);
        EXPECT_LT(r.indirectionPct, minimal.indirectionPct)
            << toString(policy);
    }

    // And all predictors use less request traffic than broadcast.
    BroadcastSnoopingModel snooping(kNodes);
    EvalResult snoop = eval.evaluateBaseline(trace, snooping);
    for (PredictorPolicy policy : proposedPolicies()) {
        EvalResult r = eval.evaluatePredictor(trace, policy, config);
        EXPECT_LT(r.requestMessagesPerMiss,
                  snoop.requestMessagesPerMiss)
            << toString(policy);
    }
}

} // namespace
} // namespace dsp
