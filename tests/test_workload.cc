/**
 * @file
 * Tests for the Zipf samplers, sharing-pattern regions, workload
 * mixtures, and the six Table 1 presets.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "sim/logging.hh"
#include "workload/presets.hh"
#include "workload/region.hh"
#include "workload/workload.hh"
#include "workload/zipf.hh"

namespace dsp {
namespace {

constexpr NodeId kNodes = 16;

// ------------------------------------------------------------------- zipf

TEST(Zipf, UniformWhenThetaZero)
{
    ZipfSampler z(10, 0.0);
    Rng rng(1);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 10000; ++i)
        counts[z.sample(rng)]++;
    for (int c : counts) {
        EXPECT_GT(c, 700);
        EXPECT_LT(c, 1300);
    }
}

TEST(Zipf, SkewFavoursLowRanks)
{
    ZipfSampler z(1000, 0.9);
    Rng rng(2);
    int head = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        head += z.sample(rng) < 10;
    // Rank 0-9 should take far more than the uniform 1%.
    EXPECT_GT(head, n / 20);
}

TEST(Zipf, HeadMassMonotoneInTheta)
{
    ZipfSampler flat(10000, 0.2);
    ZipfSampler steep(10000, 0.95);
    EXPECT_LT(flat.headMass(100), steep.headMass(100));
    EXPECT_DOUBLE_EQ(flat.headMass(10000), 1.0);
    EXPECT_DOUBLE_EQ(flat.headMass(0), 0.0);
}

TEST(Zipf, SamplesStayInRange)
{
    ZipfSampler z(7, 1.2);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(z.sample(rng), 7u);
}

TEST(Zipf, InvalidParamsPanic)
{
    PanicGuard guard;
    EXPECT_THROW(ZipfSampler(0, 0.5), std::runtime_error);
    EXPECT_THROW(ZipfSampler(10, -0.1), std::runtime_error);
    EXPECT_THROW(ZipfSampler(10, 2.5), std::runtime_error);
}

TEST(WorkingSet, HotProbControlsHitFraction)
{
    WorkingSetSampler s(100000, 1000, 0.99);
    Rng rng(4);
    int hot = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hot += s.sample(rng) < 1000;
    EXPECT_NEAR(hot / static_cast<double>(n), 0.99, 0.01);
}

TEST(WorkingSet, ColdTailCoversWholeRegion)
{
    WorkingSetSampler s(1000, 10, 0.0);  // always cold
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t v = s.sample(rng);
        ASSERT_GE(v, 10u);
        ASSERT_LT(v, 1000u);
        seen.insert(v);
    }
    EXPECT_GT(seen.size(), 900u);
}

TEST(WorkingSet, HotLargerThanRegionDegenerates)
{
    WorkingSetSampler s(10, 100, 0.5);
    Rng rng(6);
    for (int i = 0; i < 100; ++i)
        ASSERT_LT(s.sample(rng), 10u);
}

TEST(ScatterRank, IsAPermutationOverClusters)
{
    const std::uint64_t blocks = 1024;
    std::set<std::uint64_t> seen;
    for (std::uint64_t r = 0; r < blocks; ++r)
        seen.insert(scatterRank(r, blocks, 16));
    EXPECT_EQ(seen.size(), blocks);
}

TEST(ScatterRank, KeepsRunsWithinMacroblocks)
{
    // Ranks within the same 16-block run stay contiguous.
    std::uint64_t base = scatterRank(32, 4096, 16);
    for (std::uint64_t i = 1; i < 16; ++i)
        EXPECT_EQ(scatterRank(32 + i, 4096, 16), base + i);
}

// ----------------------------------------------------------------- regions

Region::Params
regionParams(Addr base, Addr bytes, std::uint32_t pcs = 64)
{
    Region::Params p;
    p.name = "test";
    p.base = base;
    p.bytes = bytes;
    p.pcSites = pcs;
    return p;
}

TEST(PrivateRegion, AddressesStayInOwnSlice)
{
    PrivateRegion region(regionParams(0x100000, 1 << 20), kNodes,
                         PrivateRegion::Config{64, 0.9, 0.3, 0.1, 8,
                                               4});
    Rng rng(7);
    Addr slice = (1 << 20) / kNodes;
    for (NodeId p = 0; p < kNodes; ++p) {
        for (int i = 0; i < 500; ++i) {
            RegionRef ref = region.gen(p, rng);
            ASSERT_GE(ref.addr, 0x100000u + p * slice);
            ASSERT_LT(ref.addr, 0x100000u + (p + 1) * slice);
        }
    }
}

TEST(ReadMostlyRegion, WriteFractionRespected)
{
    ReadMostlyRegion region(
        regionParams(0x200000, 1 << 20), kNodes,
        ReadMostlyRegion::Config{1024, 0.99, 0.05});
    Rng rng(8);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += region.gen(i % kNodes, rng).write;
    EXPECT_NEAR(writes / static_cast<double>(n), 0.05, 0.01);
}

TEST(MigratoryRegion, BurstReadsThenWrites)
{
    MigratoryRegion region(regionParams(0x300000, 1 << 20), kNodes,
                           MigratoryRegion::Config{2, 6, 0.5, 0.0});
    Rng rng(9);
    // One processor's burst: first half reads, second half writes.
    std::vector<bool> writes;
    for (int i = 0; i < 6; ++i)
        writes.push_back(region.gen(0, rng).write);
    EXPECT_FALSE(writes[0]);
    EXPECT_FALSE(writes[1]);
    EXPECT_FALSE(writes[2]);
    EXPECT_TRUE(writes[3]);
    EXPECT_TRUE(writes[4]);
    EXPECT_TRUE(writes[5]);
}

TEST(MigratoryRegion, BurstStaysOnOneItem)
{
    MigratoryRegion region(regionParams(0x300000, 1 << 20), kNodes,
                           MigratoryRegion::Config{2, 6, 0.5, 0.0});
    Rng rng(10);
    std::set<std::uint64_t> items;
    for (int i = 0; i < 6; ++i) {
        RegionRef ref = region.gen(1, rng);
        items.insert((ref.addr - 0x300000) / (2 * blockBytes));
    }
    EXPECT_EQ(items.size(), 1u);
}

TEST(ProducerConsumerRegion, PassesAreSequentialAndTyped)
{
    ProducerConsumerRegion region(
        regionParams(0x400000, 1 << 20), kNodes,
        ProducerConsumerRegion::Config{16, 1, 0.0, 1});  // produce only
    Rng rng(11);
    // With consumeFraction 0, processor 2 always writes its own
    // buffers, one block at a time, sequentially.
    std::vector<BlockId> blocks;
    for (int i = 0; i < 16; ++i) {
        RegionRef ref = region.gen(2, rng);
        EXPECT_TRUE(ref.write);
        blocks.push_back(blockOf(ref.addr));
    }
    for (std::size_t i = 1; i < blocks.size(); ++i)
        EXPECT_EQ(blocks[i], blocks[i - 1] + 1);
}

TEST(ProducerConsumerRegion, ConsumerReadsNeighbourBuffer)
{
    ProducerConsumerRegion region(
        regionParams(0x400000, 1 << 20), kNodes,
        ProducerConsumerRegion::Config{16, 1, 1.0, 1});  // consume only
    Rng rng(12);
    RegionRef ref = region.gen(2, rng);
    EXPECT_FALSE(ref.write);
    // Buffer index modulo nodes identifies the owner: must be the
    // immediate neighbour (2 + 1).
    std::uint64_t buffer =
        (blockOf(ref.addr) - blockOf(0x400000)) / 16;
    EXPECT_EQ(buffer % kNodes, 3u);
}

TEST(GroupRegion, MembersStayInGroupSlice)
{
    GroupRegion region(regionParams(0x500000, 1 << 20), kNodes,
                       GroupRegion::Config{4, 256, 0.9, 0.3});
    Rng rng(13);
    Addr slice = (1 << 20) / 4;  // 4 groups
    for (NodeId p = 0; p < kNodes; ++p) {
        NodeId group = p / 4;
        for (int i = 0; i < 200; ++i) {
            RegionRef ref = region.gen(p, rng);
            ASSERT_GE(ref.addr, 0x500000u + group * slice);
            ASSERT_LT(ref.addr, 0x500000u + (group + 1) * slice);
        }
    }
}

TEST(HotRegion, StaysTinyAndWriteHeavy)
{
    HotRegion region(regionParams(0x600000, 64 * 1024), kNodes,
                     HotRegion::Config{0.8, 0.5});
    Rng rng(14);
    int writes = 0;
    for (int i = 0; i < 10000; ++i) {
        RegionRef ref = region.gen(i % kNodes, rng);
        ASSERT_GE(ref.addr, 0x600000u);
        ASSERT_LT(ref.addr, 0x600000u + 64 * 1024);
        writes += ref.write;
    }
    EXPECT_NEAR(writes / 10000.0, 0.5, 0.05);
}

TEST(Region, PcsComeFromTheRegionPool)
{
    HotRegion region(regionParams(0x600000, 64 * 1024, 32), kNodes,
                     HotRegion::Config{0.8, 0.5});
    Rng rng(15);
    std::set<Addr> pcs;
    for (int i = 0; i < 5000; ++i)
        pcs.insert(region.gen(0, rng).pc);
    EXPECT_LE(pcs.size(), 32u);
    EXPECT_GT(pcs.size(), 10u);
}

// ---------------------------------------------------------------- workload

TEST(Workload, DeterministicPerSeed)
{
    auto make = [](std::uint64_t seed) {
        return makeWorkload("oltp", kNodes, seed, 0.05);
    };
    auto a = make(42), b = make(42), c = make(43);
    bool all_same = true, any_diff = false;
    for (int i = 0; i < 1000; ++i) {
        NodeId p = static_cast<NodeId>(i % kNodes);
        MemRef ra = a->next(p), rb = b->next(p), rc = c->next(p);
        all_same &= ra.addr == rb.addr && ra.pc == rb.pc &&
                    ra.write == rb.write && ra.work == rb.work;
        any_diff |= ra.addr != rc.addr;
    }
    EXPECT_TRUE(all_same);
    EXPECT_TRUE(any_diff);
}

TEST(Workload, RefillBatchingIsDrawIdentical)
{
    // The per-processor refill buffer is a pure amortization: every
    // batch size must produce the exact same reference stream as
    // generating one reference at a time (batch 1), under any
    // cross-processor interleaving.
    auto batched = makeWorkload("apache", kNodes, 7, 0.25);
    auto unbatched = makeWorkload("apache", kNodes, 7, 0.25);
    ASSERT_EQ(batched->refillBatch(), 64u);
    unbatched->setRefillBatch(1);

    Rng interleave(3);
    for (int i = 0; i < 20000; ++i) {
        // Bursty, uneven interleaving across processors.
        NodeId p = static_cast<NodeId>(interleave.uniformInt(kNodes));
        int burst = static_cast<int>(interleave.uniformInt(5)) + 1;
        for (int j = 0; j < burst; ++j) {
            MemRef rb = batched->next(p);
            MemRef ru = unbatched->next(p);
            ASSERT_EQ(rb.addr, ru.addr);
            ASSERT_EQ(rb.pc, ru.pc);
            ASSERT_EQ(rb.write, ru.write);
            ASSERT_EQ(rb.work, ru.work);
        }
    }

    // Changing the batch mid-stream only changes generation timing.
    batched->setRefillBatch(7);
    for (int i = 0; i < 1000; ++i) {
        NodeId p = static_cast<NodeId>(i % kNodes);
        MemRef rb = batched->next(p);
        MemRef ru = unbatched->next(p);
        ASSERT_EQ(rb.addr, ru.addr);
        ASSERT_EQ(rb.work, ru.work);
    }
}

TEST(Workload, MeanWorkApproximatelyHonoured)
{
    Workload w("test", kNodes, 4.0, 1);
    w.addRegion(std::make_unique<HotRegion>(
                    regionParams(0x1000000, 64 * 1024), kNodes,
                    HotRegion::Config{0.5, 0.5}),
                1.0);
    double total = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        total += w.next(static_cast<NodeId>(i % kNodes)).work;
    EXPECT_NEAR(total / n, 4.0, 0.25);
}

TEST(Workload, AllPresetsConstructAndRun)
{
    for (const std::string &name : workloadNames()) {
        auto w = makeWorkload(name, kNodes, 1, 0.05);
        ASSERT_EQ(w->name(), name);
        ASSERT_EQ(w->numNodes(), kNodes);
        ASSERT_GE(w->regionCount(), 4u);
        EXPECT_GT(w->totalFootprint(), 0u);
        for (int i = 0; i < 2000; ++i) {
            MemRef ref = w->next(static_cast<NodeId>(i % kNodes));
            ASSERT_NE(ref.addr, 0u);
            ASSERT_NE(ref.pc, 0u);
        }
    }
}

/**
 * Regression for the 256-node scaling sweep: at scale 0.05 apache's
 * netbufs pool used to round to zero buffers per node once the node
 * count outgrew the generic 64 KB footprint floor, panicking in the
 * ProducerConsumerRegion constructor. Every preset must construct
 * and generate references on every machine size the sweep supports.
 */
TEST(Workload, AllPresetsScaleTo256Nodes)
{
    for (NodeId nodes : {NodeId(64), NodeId(256)}) {
        for (const std::string &name : workloadNames()) {
            auto w = makeWorkload(name, nodes, 1, 0.05);
            ASSERT_EQ(w->numNodes(), nodes);
            for (int i = 0; i < 2000; ++i) {
                MemRef ref = w->next(static_cast<NodeId>(i % nodes));
                ASSERT_NE(ref.addr, 0u);
            }
        }
    }
}

TEST(Workload, UnknownPresetFatals)
{
    PanicGuard guard;
    EXPECT_THROW(makeWorkload("nosuch", kNodes, 1, 1.0),
                 std::runtime_error);
}

TEST(Workload, PresetFootprintOrderingMatchesTable2)
{
    // specjbb > slashcode > {oltp, ocean, apache} > barnes.
    std::unordered_map<std::string, Addr> fp;
    for (const std::string &name : workloadNames())
        fp[name] = makeWorkload(name, kNodes, 1, 1.0)->totalFootprint();
    EXPECT_GT(fp["specjbb"], fp["slashcode"]);
    EXPECT_GT(fp["slashcode"], fp["oltp"]);
    EXPECT_GT(fp["oltp"], fp["barnes"]);
    EXPECT_GT(fp["ocean"], fp["barnes"]);
    EXPECT_GT(fp["apache"], fp["barnes"]);
}

TEST(Workload, ScaleShrinksFootprint)
{
    auto full = makeWorkload("apache", kNodes, 1, 1.0);
    auto quarter = makeWorkload("apache", kNodes, 1, 0.25);
    EXPECT_LT(quarter->totalFootprint(), full->totalFootprint());
}

} // namespace
} // namespace dsp
